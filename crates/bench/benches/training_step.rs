//! Criterion benchmarks of real training: one synchronous step and one
//! elastic-averaging round on the analogue models.

use criterion::{criterion_group, criterion_main, Criterion};
use ea_data::SyntheticTask;
use ea_models::{gnmt_analogue, AnalogueConfig};
use ea_optim::{OptKind, Optimizer};
use ea_runtime::{train_step, ElasticSemantic};
use ea_tensor::TensorRng;

const CFG: AnalogueConfig = AnalogueConfig { vocab: 32, seq: 8, hidden: 32, blocks: 3, stages: 3 };

fn adam() -> Vec<Box<dyn Optimizer>> {
    (0..CFG.stages).map(|_| OptKind::Adam { lr: 1e-2 }.build()).collect()
}

fn bench_sync_step(c: &mut Criterion) {
    let mut model = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(0));
    let mut opts = adam();
    let task = SyntheticTask::copy_translate(32, 8, 1);
    let batch = task.batch(16, 0);
    let mut step = 0u64;
    c.bench_function("train_step/gnmt_analogue_b16_m4", |b| {
        b.iter(|| {
            step += 1;
            train_step(&mut model, &mut opts, &batch, 4, step)
        })
    });
}

fn bench_elastic_round(c: &mut Criterion) {
    let replicas = (0..2).map(|_| gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(0))).collect();
    let opts = (0..2).map(|_| adam()).collect();
    let eval = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(0));
    let mut ea = ElasticSemantic::with_eval_replica(replicas, opts, 4, None, eval);
    let task = SyntheticTask::copy_translate(32, 8, 2);
    let b0 = task.batch(16, 0);
    let b1 = task.batch(16, 1);
    c.bench_function("elastic_round/n2_b16_m4", |b| {
        b.iter(|| ea.round(std::hint::black_box(&[b0.clone(), b1.clone()])))
    });
}

criterion_group!(benches, bench_sync_step, bench_elastic_round);
criterion_main!(benches);
