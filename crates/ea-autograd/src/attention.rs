//! Multi-head self-attention.

use crate::{ForwardCtx, Layer, Param, Saved};
use ea_tensor::{
    matmul, matmul_a_bt, matmul_a_bt_into, matmul_at_b_into, matmul_into, pool, softmax_rows_into,
    xavier_uniform, Tensor, TensorRng,
};

/// Bidirectional (unmasked) multi-head self-attention, as in a BERT
/// encoder block.
///
/// Inputs are `[batch*seq, dim]` in the matrix view with a fixed `seq`
/// supplied at construction; `batch` is inferred from the row count.
pub struct SelfAttention {
    wq: Param,
    wk: Param,
    wv: Param,
    wo: Param,
    seq: usize,
    dim: usize,
    heads: usize,
}

impl SelfAttention {
    /// Creates an attention layer; `dim` must be divisible by `heads`.
    pub fn new(seq: usize, dim: usize, heads: usize, rng: &mut TensorRng) -> Self {
        assert!(dim.is_multiple_of(heads), "dim {dim} not divisible by heads {heads}");
        SelfAttention {
            wq: Param::new("attn.wq", xavier_uniform(dim, dim, rng)),
            wk: Param::new("attn.wk", xavier_uniform(dim, dim, rng)),
            wv: Param::new("attn.wv", xavier_uniform(dim, dim, rng)),
            wo: Param::new("attn.wo", xavier_uniform(dim, dim, rng)),
            seq,
            dim,
            heads,
        }
    }

    fn head_dim(&self) -> usize {
        self.dim / self.heads
    }

    /// Extracts columns `[h*dh, (h+1)*dh)` of rows `[r0, r0+seq)` into a
    /// reusable scratch tensor.
    fn head_slice_into(&self, t: &Tensor, r0: usize, h: usize, out: &mut Tensor) {
        let dh = self.head_dim();
        out.prepare_out(&[self.seq, dh]);
        let obuf = out.data_mut();
        for (i, r) in (r0..r0 + self.seq).enumerate() {
            let row = &t.data()[r * self.dim..(r + 1) * self.dim];
            obuf[i * dh..(i + 1) * dh].copy_from_slice(&row[h * dh..(h + 1) * dh]);
        }
    }

    /// Adds `block` (`[seq, dh]`) into columns of head `h`, rows from `r0`,
    /// of flat buffer `dst` laid out as `[rows, dim]`.
    fn add_head_slice(&self, dst: &mut [f32], block: &Tensor, r0: usize, h: usize) {
        let dh = self.head_dim();
        for (i, r) in (r0..r0 + self.seq).enumerate() {
            let src = &block.data()[i * dh..(i + 1) * dh];
            let drow = &mut dst[r * self.dim + h * dh..r * self.dim + (h + 1) * dh];
            for (d, &s) in drow.iter_mut().zip(src) {
                *d += s;
            }
        }
    }
}

impl Layer for SelfAttention {
    fn forward(&self, x: &Tensor, _ctx: &ForwardCtx) -> (Tensor, Saved) {
        let (rows, c) = x.shape().as_matrix();
        assert_eq!(c, self.dim, "attention width mismatch");
        assert_eq!(rows % self.seq, 0, "rows must be a multiple of seq");
        let batch = rows / self.seq;
        let dh = self.head_dim();
        let scale = 1.0 / (dh as f32).sqrt();

        let q = matmul(x, &self.wq.value);
        let k = matmul(x, &self.wk.value);
        let v = matmul(x, &self.wv.value);

        let mut ctx_buf = pool::take_zeroed(rows * self.dim);
        let mut attn_rows = pool::take_cleared(batch * self.heads * self.seq * self.seq);
        // Scratch reused across the head loop; dropped tensors return their
        // buffers to the pool, so repeat calls allocate nothing.
        let mut qh = Tensor::zeros(&[0]);
        let mut kh = Tensor::zeros(&[0]);
        let mut vh = Tensor::zeros(&[0]);
        let mut scores = Tensor::zeros(&[0]);
        let mut a = Tensor::zeros(&[0]);
        let mut ctxh = Tensor::zeros(&[0]);
        for b in 0..batch {
            let r0 = b * self.seq;
            for h in 0..self.heads {
                self.head_slice_into(&q, r0, h, &mut qh);
                self.head_slice_into(&k, r0, h, &mut kh);
                self.head_slice_into(&v, r0, h, &mut vh);
                matmul_a_bt_into(&qh, &kh, &mut scores);
                scores.map_inplace(|s| s * scale);
                softmax_rows_into(&scores, &mut a);
                matmul_into(&a, &vh, &mut ctxh);
                self.add_head_slice(&mut ctx_buf, &ctxh, r0, h);
                attn_rows.extend_from_slice(a.data());
            }
        }
        let ctx_t = Tensor::from_vec(ctx_buf, &[rows, self.dim]);
        let y = matmul(&ctx_t, &self.wo.value);
        let attn = Tensor::from_vec(attn_rows, &[batch * self.heads * self.seq, self.seq]);
        (y, Saved::new(vec![x.clone(), q, k, v, attn, ctx_t]))
    }

    fn backward(&mut self, saved: &Saved, dy: &Tensor) -> Tensor {
        let x = saved.get(0);
        let q = saved.get(1);
        let k = saved.get(2);
        let v = saved.get(3);
        let attn = saved.get(4);
        let ctx_t = saved.get(5);
        let (rows, _) = x.shape().as_matrix();
        let batch = rows / self.seq;
        let dh = self.head_dim();
        let scale = 1.0 / (dh as f32).sqrt();

        // Output projection; `dw` is the shared scratch for all four
        // weight gradients.
        let mut dw = Tensor::zeros(&[0]);
        matmul_at_b_into(ctx_t, dy, &mut dw);
        self.wo.accumulate_grad(&dw);
        let dctx = matmul_a_bt(dy, &self.wo.value);

        let mut dq = pool::take_zeroed(rows * self.dim);
        let mut dk = pool::take_zeroed(rows * self.dim);
        let mut dv = pool::take_zeroed(rows * self.dim);

        // Scratch reused across the head loop (see forward).
        let mut qh = Tensor::zeros(&[0]);
        let mut kh = Tensor::zeros(&[0]);
        let mut vh = Tensor::zeros(&[0]);
        let mut dctx_h = Tensor::zeros(&[0]);
        let mut a = Tensor::zeros(&[0]);
        let mut da = Tensor::zeros(&[0]);
        let mut dvh = Tensor::zeros(&[0]);
        let mut ds = Tensor::zeros(&[0]);
        let mut dqh = Tensor::zeros(&[0]);
        let mut dkh = Tensor::zeros(&[0]);

        for b in 0..batch {
            let r0 = b * self.seq;
            for h in 0..self.heads {
                self.head_slice_into(q, r0, h, &mut qh);
                self.head_slice_into(k, r0, h, &mut kh);
                self.head_slice_into(v, r0, h, &mut vh);
                self.head_slice_into(&dctx, r0, h, &mut dctx_h);
                let a_off = (b * self.heads + h) * self.seq * self.seq;
                a.prepare_out(&[self.seq, self.seq]);
                a.data_mut().copy_from_slice(&attn.data()[a_off..a_off + self.seq * self.seq]);
                // dA = dCtx · Vᵀ ; dV = Aᵀ · dCtx
                matmul_a_bt_into(&dctx_h, &vh, &mut da);
                matmul_at_b_into(&a, &dctx_h, &mut dvh);
                // Softmax backward per row: dS = A ⊙ (dA - rowdot(dA, A)).
                ds.prepare_out(&[self.seq, self.seq]);
                let dsbuf = ds.data_mut();
                for i in 0..self.seq {
                    let arow = &a.data()[i * self.seq..(i + 1) * self.seq];
                    let darow = &da.data()[i * self.seq..(i + 1) * self.seq];
                    let dot: f32 = arow.iter().zip(darow).map(|(x, y)| x * y).sum();
                    for j in 0..self.seq {
                        dsbuf[i * self.seq + j] = arow[j] * (darow[j] - dot);
                    }
                }
                ds.map_inplace(|s| s * scale);
                matmul_into(&ds, &kh, &mut dqh);
                matmul_at_b_into(&ds, &qh, &mut dkh);
                self.add_head_slice(&mut dq, &dqh, r0, h);
                self.add_head_slice(&mut dk, &dkh, r0, h);
                self.add_head_slice(&mut dv, &dvh, r0, h);
            }
        }

        let dq = Tensor::from_vec(dq, &[rows, self.dim]);
        let dk = Tensor::from_vec(dk, &[rows, self.dim]);
        let dv = Tensor::from_vec(dv, &[rows, self.dim]);
        matmul_at_b_into(x, &dq, &mut dw);
        self.wq.accumulate_grad(&dw);
        matmul_at_b_into(x, &dk, &mut dw);
        self.wk.accumulate_grad(&dw);
        matmul_at_b_into(x, &dv, &mut dw);
        self.wv.accumulate_grad(&dw);

        let mut dx = matmul_a_bt(&dq, &self.wq.value);
        let mut tmp = Tensor::zeros(&[0]);
        matmul_a_bt_into(&dk, &self.wk.value, &mut tmp);
        dx.add_assign(&tmp);
        matmul_a_bt_into(&dv, &self.wv.value, &mut tmp);
        dx.add_assign(&tmp);
        dx
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.wq);
        f(&self.wk);
        f(&self.wv);
        f(&self.wo);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.wq);
        f(&mut self.wk);
        f(&mut self.wv);
        f(&mut self.wo);
    }

    fn name(&self) -> &'static str {
        "SelfAttention"
    }

    fn flops_per_row(&self) -> u64 {
        // 4 projections + 2 seq-length score/context matmuls per row.
        (8 * self.dim * self.dim + 4 * self.seq * self.dim) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck_layer;

    #[test]
    fn forward_shapes() {
        let mut rng = TensorRng::seed_from_u64(0);
        let attn = SelfAttention::new(4, 8, 2, &mut rng);
        let x = ea_tensor::uniform(&[2 * 4, 8], -1.0, 1.0, &mut rng);
        let (y, s) = attn.forward(&x, &ForwardCtx::eval());
        assert_eq!(y.dims(), &[8, 8]);
        // Stash: x, q, k, v, attn, ctx.
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn attention_rows_sum_to_one() {
        let mut rng = TensorRng::seed_from_u64(1);
        let attn = SelfAttention::new(3, 6, 3, &mut rng);
        let x = ea_tensor::uniform(&[3, 6], -1.0, 1.0, &mut rng);
        let (_, s) = attn.forward(&x, &ForwardCtx::eval());
        let a = s.get(4);
        for v in ea_tensor::row_sums(a).data() {
            assert!((v - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn gradcheck_single_head() {
        let mut rng = TensorRng::seed_from_u64(2);
        let attn = SelfAttention::new(3, 4, 1, &mut rng);
        gradcheck_layer(attn, &[3, 4], 5e-2, 13);
    }

    #[test]
    fn gradcheck_multi_head_multi_batch() {
        let mut rng = TensorRng::seed_from_u64(3);
        let attn = SelfAttention::new(2, 6, 2, &mut rng);
        gradcheck_layer(attn, &[4, 6], 5e-2, 14);
    }

    #[test]
    #[should_panic]
    fn rejects_row_count_not_multiple_of_seq() {
        let mut rng = TensorRng::seed_from_u64(4);
        let attn = SelfAttention::new(4, 8, 2, &mut rng);
        let x = Tensor::zeros(&[6, 8]);
        attn.forward(&x, &ForwardCtx::eval());
    }
}
