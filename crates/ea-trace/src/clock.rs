//! A process-wide monotonic clock in microseconds.
//!
//! All spans and histograms share one epoch (the first call into the
//! clock), so timestamps from different threads land on one timeline and
//! the Chrome export needs no renormalization.

use std::sync::OnceLock;
use std::time::Instant;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Pins the epoch now (optional; the first timestamp does it anyway).
pub fn init() {
    let _ = epoch();
}

/// Microseconds since the process trace epoch.
#[inline]
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }
}
