//! Element-wise activation layers.

use crate::{ForwardCtx, Layer, Param, Saved};
use ea_tensor::Tensor;

/// The supported element-wise nonlinearities.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActivationKind {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Gaussian error linear unit (tanh approximation, as used by BERT).
    Gelu,
}

/// A parameter-free element-wise activation.
pub struct Activation {
    kind: ActivationKind,
}

impl Activation {
    /// Creates an activation of the given kind.
    pub fn new(kind: ActivationKind) -> Self {
        Activation { kind }
    }

    fn apply(&self, x: f32) -> f32 {
        match self.kind {
            ActivationKind::Relu => x.max(0.0),
            ActivationKind::Tanh => x.tanh(),
            ActivationKind::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            ActivationKind::Gelu => {
                let c = (2.0 / std::f32::consts::PI).sqrt();
                0.5 * x * (1.0 + (c * (x + 0.044_715 * x * x * x)).tanh())
            }
        }
    }

    /// d(activation)/dx expressed in terms of the input x.
    fn derivative(&self, x: f32) -> f32 {
        match self.kind {
            ActivationKind::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActivationKind::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            ActivationKind::Sigmoid => {
                let s = 1.0 / (1.0 + (-x).exp());
                s * (1.0 - s)
            }
            ActivationKind::Gelu => {
                let c = (2.0 / std::f32::consts::PI).sqrt();
                let inner = c * (x + 0.044_715 * x * x * x);
                let t = inner.tanh();
                let d_inner = c * (1.0 + 3.0 * 0.044_715 * x * x);
                0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * d_inner
            }
        }
    }
}

impl Layer for Activation {
    fn forward(&self, x: &Tensor, _ctx: &ForwardCtx) -> (Tensor, Saved) {
        let y = x.map(|v| self.apply(v));
        (y, Saved::new(vec![x.clone()]))
    }

    fn backward(&mut self, saved: &Saved, dy: &Tensor) -> Tensor {
        let x = saved.get(0);
        x.zip(dy, |xv, g| self.derivative(xv) * g)
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        match self.kind {
            ActivationKind::Relu => "Relu",
            ActivationKind::Tanh => "Tanh",
            ActivationKind::Sigmoid => "Sigmoid",
            ActivationKind::Gelu => "Gelu",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck_layer;

    #[test]
    fn relu_clamps_negatives() {
        let a = Activation::new(ActivationKind::Relu);
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        let (y, _) = a.forward(&x, &ForwardCtx::eval());
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn sigmoid_range() {
        let a = Activation::new(ActivationKind::Sigmoid);
        let x = Tensor::from_vec(vec![-10.0, 0.0, 10.0], &[3]);
        let (y, _) = a.forward(&x, &ForwardCtx::eval());
        assert!(y.data()[0] < 1e-4);
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
        assert!(y.data()[2] > 1.0 - 1e-4);
    }

    #[test]
    fn gelu_is_close_to_identity_for_large_x() {
        let a = Activation::new(ActivationKind::Gelu);
        let x = Tensor::from_vec(vec![5.0], &[1]);
        let (y, _) = a.forward(&x, &ForwardCtx::eval());
        assert!((y.data()[0] - 5.0).abs() < 1e-3);
    }

    #[test]
    fn tanh_gradcheck() {
        gradcheck_layer(Activation::new(ActivationKind::Tanh), &[3, 4], 1e-2, 7);
    }

    #[test]
    fn gelu_gradcheck() {
        gradcheck_layer(Activation::new(ActivationKind::Gelu), &[3, 4], 1e-2, 8);
    }

    #[test]
    fn sigmoid_gradcheck() {
        gradcheck_layer(Activation::new(ActivationKind::Sigmoid), &[2, 5], 1e-2, 9);
    }
}
