//! Dense `f32` tensor kernels for the AvgPipe reproduction.
//!
//! This crate provides the numeric substrate for the from-scratch autodiff
//! engine in `ea-autograd`: contiguous row-major tensors, rayon-parallel
//! matrix multiplication, element-wise kernels, reductions and softmax.
//!
//! Design goals, in order:
//!
//! 1. **Determinism** — every random initializer takes an explicit seed;
//!    reductions use a fixed summation order so repeated runs of the
//!    statistical-efficiency experiments are bit-identical.
//! 2. **Simplicity** — tensors are always contiguous and row-major. The
//!    handful of layouts needed by the NN modules (matmul with either side
//!    transposed, batched matmul) are provided as dedicated kernels rather
//!    than a general stride system.
//! 3. **Throughput** — the matmul kernel is cache-blocked and parallelized
//!    over row blocks with rayon, which is what keeps the real-execution
//!    (threads-as-GPUs) experiments fast enough to converge.

mod init;
mod matmul;
mod ops;
pub mod pool;
mod shape;
pub mod simd;
mod tensor;

pub use init::{kaiming_uniform, uniform, xavier_uniform, TensorRng};
pub use matmul::{
    matmul, matmul_a_bt, matmul_a_bt_into, matmul_at_b, matmul_at_b_into, matmul_into, outer,
};
pub use ops::{
    argmax_rows, col_sums, log_softmax_rows, log_softmax_rows_into, row_sums, softmax_rows,
    softmax_rows_into, transpose, transpose_into,
};
pub use shape::Shape;
pub use tensor::Tensor;

/// Absolute tolerance used by the test-suites of the numeric crates.
pub const TEST_EPS: f32 = 1e-4;

/// Returns true if `a` and `b` have identical shape and are element-wise
/// close within a relative/absolute tolerance `tol`.
pub fn allclose(a: &Tensor, b: &Tensor, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allclose_detects_shape_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[3, 2]);
        assert!(!allclose(&a, &b, 1e-6));
    }

    #[test]
    fn allclose_tolerates_small_differences() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![1.0 + 1e-7, 2.0 - 1e-7], &[2]);
        assert!(allclose(&a, &b, 1e-5));
        let c = Tensor::from_vec(vec![1.1, 2.0], &[2]);
        assert!(!allclose(&a, &c, 1e-5));
    }
}
