//! Loss functions returning the value and the gradient of the logits.

use ea_tensor::{log_softmax_rows, softmax_rows, Tensor};

/// A loss value together with the gradient w.r.t. the network output —
/// exactly what the last pipeline stage feeds back into `backward`.
pub struct LossOutput {
    /// Mean loss over the micro-batch.
    pub loss: f32,
    /// Gradient w.r.t. the logits/outputs (same shape).
    pub grad: Tensor,
}

/// Mean softmax cross-entropy over rows of the matrix view, with integer
/// class targets. The gradient is normalized by the row count, so
/// accumulating micro-batch gradients and dividing by the micro-batch
/// count reproduces full-batch semantics.
pub fn cross_entropy_loss(logits: &Tensor, targets: &[usize]) -> LossOutput {
    let (r, c) = logits.shape().as_matrix();
    assert_eq!(r, targets.len(), "target count must equal rows");
    let logp = log_softmax_rows(logits);
    let mut loss = 0.0;
    for (i, &t) in targets.iter().enumerate() {
        assert!(t < c, "target class {t} out of range {c}");
        loss -= logp.data()[i * c + t];
    }
    loss /= r as f32;
    // grad = (softmax - onehot) / r
    let mut grad = softmax_rows(logits);
    let scale = 1.0 / r as f32;
    {
        let gbuf = grad.data_mut();
        for (i, &t) in targets.iter().enumerate() {
            gbuf[i * c + t] -= 1.0;
        }
    }
    grad.map_inplace(|v| v * scale);
    LossOutput { loss, grad: grad.reshape(logits.dims()) }
}

/// Mean squared error `mean((y - target)²)`.
pub fn mse_loss(y: &Tensor, target: &Tensor) -> LossOutput {
    assert_eq!(y.shape(), target.shape(), "mse shapes must match");
    let n = y.numel() as f32;
    let diff = y.sub(target);
    let loss = diff.data().iter().map(|v| v * v).sum::<f32>() / n;
    let grad = diff.scale(2.0 / n);
    LossOutput { loss, grad }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_perfect_prediction_is_near_zero() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0, 10.0], &[2, 2]);
        let out = cross_entropy_loss(&logits, &[0, 1]);
        assert!(out.loss < 1e-4);
    }

    #[test]
    fn cross_entropy_uniform_is_log_c() {
        let logits = Tensor::zeros(&[3, 4]);
        let out = cross_entropy_loss(&logits, &[0, 1, 2]);
        assert!((out.loss - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_grad_matches_finite_diff() {
        let logits = Tensor::from_vec(vec![0.3, -0.2, 0.5, 0.1, 0.9, -0.7], &[2, 3]);
        let targets = [2usize, 0];
        let out = cross_entropy_loss(&logits, &targets);
        let eps = 1e-3;
        for i in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let fd = (cross_entropy_loss(&lp, &targets).loss
                - cross_entropy_loss(&lm, &targets).loss)
                / (2.0 * eps);
            assert!(
                (fd - out.grad.data()[i]).abs() < 1e-3,
                "grad[{i}] {} vs fd {fd}",
                out.grad.data()[i]
            );
        }
    }

    #[test]
    fn cross_entropy_grad_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let out = cross_entropy_loss(&logits, &[1]);
        assert!(out.grad.sum().abs() < 1e-6);
    }

    #[test]
    fn mse_basics() {
        let y = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let t = Tensor::from_vec(vec![0.0, 0.0], &[2]);
        let out = mse_loss(&y, &t);
        assert!((out.loss - 2.5).abs() < 1e-6);
        assert_eq!(out.grad.data(), &[1.0, 2.0]);
    }
}
