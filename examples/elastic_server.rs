//! Reference-shard server for the two-process elastic-averaging demo.
//!
//! Hosts the per-stage reference shards behind the TCP transport and
//! serves the configured number of worker pipelines until they finish and
//! disconnect, then prints a bit-exact checksum of the final reference
//! weights for each stage (the workers print the same checksums, so a
//! byte-level comparison across processes is a `grep` away).
//!
//! With `--fault-tolerant` the server instead runs the membership/lease
//! protocol: workers that go silent past the lease are evicted and
//! stalled rounds complete degraded over the survivors; a restarted
//! worker rejoins at the next round boundary. `--checkpoint PATH` adds
//! periodic atomic reference checkpoints — if PATH already exists on
//! startup the server restores from it and resumes at the recorded round
//! (printing `RESTORED round=R`), which is what the kill-and-restart
//! script exercises.
//!
//! ```text
//! cargo run --release --example elastic_server -- --addr 127.0.0.1:7070
//! cargo run --release --example elastic_worker -- --addr 127.0.0.1:7070 --pipe 0 &
//! cargo run --release --example elastic_worker -- --addr 127.0.0.1:7070 --pipe 1
//! ```

use avgpipe_suite::demo;
use ea_comms::{TcpConfig, TcpServer};
use ea_runtime::{FtConfig, RefCheckpoint, RefShardServer};
use std::path::PathBuf;
use std::time::Duration;

fn main() {
    let mut addr = "127.0.0.1:7070".to_string();
    let mut fault_tolerant = false;
    let mut lease_ms: u64 = 2000;
    let mut checkpoint: Option<PathBuf> = None;
    let mut rounds: u64 = demo::ROUNDS;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().expect("--addr needs a value"),
            "--fault-tolerant" => fault_tolerant = true,
            "--lease-ms" => {
                lease_ms = args
                    .next()
                    .expect("--lease-ms needs a value")
                    .parse()
                    .expect("--lease-ms: integer milliseconds")
            }
            "--checkpoint" => {
                checkpoint = Some(PathBuf::from(args.next().expect("--checkpoint needs a path")))
            }
            "--rounds" => {
                rounds =
                    args.next().expect("--rounds needs a value").parse().expect("--rounds: integer")
            }
            "--help" | "-h" => {
                println!(
                    "usage: elastic_server [--addr HOST:PORT] [--fault-tolerant] \
                     [--lease-ms MS] [--checkpoint PATH] [--rounds R]"
                );
                return;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    let n = demo::N_PIPELINES;
    // Crash-restart recovery: if the checkpoint file already exists we
    // are a restarted server — reload the reference shards and resume at
    // the recorded round instead of re-initializing.
    let server = match checkpoint.as_deref().filter(|p| p.exists()) {
        Some(path) => {
            let ckpt = RefCheckpoint::load(path).expect("load reference checkpoint");
            println!("RESTORED round={}", ckpt.round);
            RefShardServer::from_checkpoint(&ckpt, n)
        }
        None => RefShardServer::from_initial_weights(demo::initial_reference(), n),
    };

    let mut listener = TcpServer::bind(&addr, TcpConfig::default()).expect("bind the demo address");
    let addr = listener.local_addr().expect("local addr");

    if fault_tolerant {
        let lease = Duration::from_millis(lease_ms);
        let cfg = FtConfig {
            lease,
            reap_interval: lease / 4,
            pull_wait: lease / 8,
            checkpoint: checkpoint.clone().map(|p| (p, lease / 4)),
        };
        let server = server.with_fault_tolerance(cfg);
        // The workers (and the CI smoke test) wait for this line.
        println!("LISTENING {addr}");
        let _accept = server.serve_background(Box::new(listener));

        // Workers connect, crash, and reconnect in any order; the server
        // is done once every shard has advanced past the target round.
        loop {
            let done = server.shards().iter().all(|s| s.version() >= rounds);
            if done {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let m = server.metrics();
        println!(
            "METRICS evictions={} rejoins={} degraded_rounds={} heartbeats={} \
             checkpoints_saved={} disconnects={} protocol_violations={} crc_failures={}",
            m.evictions,
            m.rejoins,
            m.degraded_rounds,
            m.heartbeats,
            m.checkpoints_saved,
            m.disconnects,
            m.protocol_violations,
            m.crc_failures,
        );
        println!("QUORUM live={}/{n}", server.live_count());
        print_checksums(&server);
        println!("SERVER DONE after {rounds} rounds");
    } else {
        println!("LISTENING {addr}");
        let conns = server.serve_connections(&mut listener, n).expect("accept workers");
        for conn in conns {
            conn.join().expect("connection thread panicked");
        }
        print_checksums(&server);
        println!("SERVER DONE after {rounds} rounds");
    }
}

fn print_checksums(server: &RefShardServer) {
    for (s, shard) in server.shards().iter().enumerate() {
        let w = shard.snapshot();
        println!("REF_CHECKSUM stage={s} {:#010x}", demo::weights_checksum(&w));
    }
}
