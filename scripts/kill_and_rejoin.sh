#!/usr/bin/env bash
# Kill-and-rejoin chaos smoke test for the fault-tolerant demo.
#
# Starts the fault-tolerant elastic_server plus two workers, SIGKILLs
# worker 1 mid-training, lets the survivor run degraded rounds while the
# server evicts the corpse, then restarts worker 1 with --rejoin and
# asserts:
#   * both workers finish all rounds and print `VERIFY OK ... mode=ft`
#   * the server counted at least one eviction and one rejoin
#   * the quorum is back to 2/2 and no round stalled (SERVER DONE prints)
#   * the server wrote reference checkpoints along the way
#
# Usage: scripts/kill_and_rejoin.sh [logdir]
#   SKIP_BUILD=1  reuse existing ./target/release/examples binaries

set -euo pipefail
cd "$(dirname "$0")/.."

LOGDIR="${1:-chaos-logs}"
ADDR="127.0.0.1:7272"
ROUNDS=12
CKPT="$LOGDIR/reference.ckpt"
mkdir -p "$LOGDIR"
rm -f "$LOGDIR"/*.log "$CKPT"

if [ -z "${SKIP_BUILD:-}" ]; then
  cargo build --release --example elastic_server --example elastic_worker
fi
SERVER=./target/release/examples/elastic_server
WORKER=./target/release/examples/elastic_worker

cleanup() {
  # No `kill 0` fallback: an unset pid must not signal the process group.
  for pid in "${SERVER_PID:-}" "${W0_PID:-}" "${W1_PID:-}" "${W1B_PID:-}"; do
    if [ -n "$pid" ]; then
      kill "$pid" 2>/dev/null || true
    fi
  done
}
trap cleanup EXIT

echo "== starting fault-tolerant server (lease 500ms, checkpointing) =="
"$SERVER" --addr "$ADDR" --fault-tolerant --lease-ms 500 \
  --checkpoint "$CKPT" --rounds "$ROUNDS" > "$LOGDIR/server.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 50); do
  grep -q LISTENING "$LOGDIR/server.log" && break
  sleep 0.2
done
grep -q LISTENING "$LOGDIR/server.log"

echo "== starting workers 0 and 1 =="
"$WORKER" --addr "$ADDR" --pipe 0 --tolerate-faults --target-rounds "$ROUNDS" \
  --round-delay-ms 300 > "$LOGDIR/worker0.log" 2>&1 &
W0_PID=$!
"$WORKER" --addr "$ADDR" --pipe 1 --tolerate-faults --target-rounds "$ROUNDS" \
  --round-delay-ms 300 > "$LOGDIR/worker1.log" 2>&1 &
W1_PID=$!

# Let a few full-quorum rounds land, then kill worker 1 the hard way.
sleep 1.5
echo "== SIGKILL worker 1 (pid $W1_PID) mid-training =="
kill -9 "$W1_PID"

# Survivor keeps going; the lease expires and the server evicts pipe 1.
sleep 1.2
echo "== restarting worker 1 with --rejoin =="
"$WORKER" --addr "$ADDR" --pipe 1 --tolerate-faults --rejoin \
  --target-rounds "$ROUNDS" --round-delay-ms 300 > "$LOGDIR/worker1_rejoined.log" 2>&1 &
W1B_PID=$!

wait "$W0_PID"
wait "$W1B_PID"
wait "$SERVER_PID"

echo "== logs =="
tail -n 5 "$LOGDIR/server.log" "$LOGDIR/worker0.log" "$LOGDIR/worker1_rejoined.log"

echo "== assertions =="
grep -q "VERIFY OK pipe=0 mode=ft" "$LOGDIR/worker0.log"
grep -q "REJOIN pipe=1" "$LOGDIR/worker1_rejoined.log"
grep -q "VERIFY OK pipe=1 mode=ft" "$LOGDIR/worker1_rejoined.log"
grep -Eq "METRICS evictions=[1-9][0-9]* rejoins=[1-9][0-9]*" "$LOGDIR/server.log"
grep -q "QUORUM live=2/2" "$LOGDIR/server.log"
grep -q "SERVER DONE after $ROUNDS rounds" "$LOGDIR/server.log"
test -f "$CKPT"
echo "KILL-AND-REJOIN OK"
