//! Transport-facing reference-shard server and the single-pipeline worker.
//!
//! [`RefShardServer`] puts the [`RefShard`](crate::RefShard) accumulators
//! behind an [`ea_comms::Listener`]: one service thread per accepted
//! connection, speaking the elastic-averaging wire protocol (`Hello`
//! handshake, `PullRequest`/`PullReply`, `SubmitDelta`/`Ack`,
//! `Heartbeat`/`HeartbeatAck`, `RoundInfoRequest`/`RoundInfoReply`).
//! Because submissions are idempotent on `(shard, round, pipe)` and pulls
//! are reads, the server composes with at-least-once clients —
//! retransmitted requests are answered again without double-counting.
//!
//! # Fault tolerance
//!
//! [`RefShardServer::with_fault_tolerance`] arms the membership machinery:
//!
//! * Every message from pipeline `p` renews `p`'s **lease**
//!   ([`Membership`]); idle workers send explicit heartbeats.
//! * A background *reaper* thread expires lapsed leases and evicts the
//!   dead pipeline from every shard quorum — a round stalled on the dead
//!   worker then completes in **degraded-quorum** mode
//!   (`w̃ ← w̃ + (1/k)·Σ Δ_i` over the `k` survivors).
//! * Reference pulls wait at most [`FtConfig::pull_wait`] — a stalled
//!   round cannot pin a connection thread; the client's retransmission
//!   doubles as lease renewal while the reaper completes the round.
//! * A message from an evicted pipeline *readmits* it at the next round
//!   boundary, so a restarted worker re-enters the quorum cleanly.
//! * The reaper periodically persists a round-tagged, checksummed
//!   [`RefCheckpoint`](crate::RefCheckpoint) (atomic write–rename);
//!   [`RefShardServer::from_checkpoint`] restores it on startup so a
//!   server crash resumes at the recorded round.
//!
//! Every connection failure is **counted and logged**
//! ([`ServerMetrics`]) — never silently swallowed.
//!
//! [`ElasticWorker`] is the process-per-pipeline counterpart of
//! [`ElasticTrainer`](crate::ElasticTrainer): one threaded pipeline whose
//! reference pulls and delta submissions go through a
//! [`ShardChannel`] — typically [`RemoteShards`](ea_comms::RemoteShards)
//! over TCP to a `RefShardServer` in another process.

use crate::checkpoint::RefCheckpoint;
use crate::elastic::{RefShard, SubmitOutcome};
use crate::membership::Membership;
use crate::metrics::{ServerMetrics, ServerMetricsSnapshot};
use crate::{Error, ThreadedPipeline};
use ea_autograd::Stage;
use ea_comms::{
    CommsError, FrameError, Listener, Message, QuorumInfo, ShardChannel, Transport, PROTO_VERSION,
};
use ea_data::Batch;
use ea_optim::Optimizer;
use ea_trace::{log_event, Category, Histogram, RateLimit, StaticName};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Fault-tolerance policy for [`RefShardServer::with_fault_tolerance`].
#[derive(Clone, Debug)]
pub struct FtConfig {
    /// Lease duration: a pipeline silent for longer is declared dead and
    /// evicted from the quorum.
    pub lease: Duration,
    /// How often the reaper thread checks for lapsed leases (and writes
    /// checkpoints). Should be a fraction of `lease`.
    pub reap_interval: Duration,
    /// Upper bound on how long a versioned pull may block server-side. On
    /// expiry no reply is sent; the client retransmits, which renews its
    /// lease while the reaper completes the stalled round.
    pub pull_wait: Duration,
    /// Periodic reference checkpointing: `(path, interval)`. The write is
    /// atomic (temp file + rename) and skipped whenever the shards are
    /// mid-round (inconsistent versions).
    pub checkpoint: Option<(PathBuf, Duration)>,
}

impl Default for FtConfig {
    fn default() -> Self {
        FtConfig {
            lease: Duration::from_secs(2),
            reap_interval: Duration::from_millis(500),
            pull_wait: Duration::from_millis(250),
            checkpoint: None,
        }
    }
}

/// A lease long enough to never expire in practice — membership is inert
/// until `with_fault_tolerance` replaces it.
const NO_LEASE: Duration = Duration::from_secs(365 * 24 * 3600);

/// Everything a connection thread (or reactor dispatcher) needs, shared
/// with the reaper.
pub(crate) struct ServerCtx {
    pub(crate) shards: Vec<Arc<RefShard>>,
    pub(crate) n_pipelines: usize,
    /// `Some` in fault-tolerant mode: bounded pull waits.
    pub(crate) pull_wait: Option<Duration>,
    pub(crate) membership: Membership,
    pub(crate) metrics: Arc<ServerMetrics>,
    /// Server-side time spent answering reference pulls (µs), including
    /// any wait for the round to complete.
    pub(crate) pull_us: Histogram,
    /// Server-side time spent folding delta submissions (µs).
    pub(crate) submit_us: Histogram,
}

impl ServerCtx {
    fn build(
        shards: Vec<Arc<RefShard>>,
        n_pipelines: usize,
        pull_wait: Option<Duration>,
        membership: Membership,
        metrics: Arc<ServerMetrics>,
    ) -> ServerCtx {
        let pull_us = metrics.registry().histogram("ea_server_pull_us");
        let submit_us = metrics.registry().histogram("ea_server_submit_us");
        ServerCtx { shards, n_pipelines, pull_wait, membership, metrics, pull_us, submit_us }
    }
}

/// Serves a set of reference shards to remote pipelines over any
/// transport backend.
pub struct RefShardServer {
    pub(crate) ctx: Arc<ServerCtx>,
    checkpoint: Option<(PathBuf, Duration)>,
    reaper_stop: Arc<AtomicBool>,
    reaper: Option<JoinHandle<()>>,
}

impl RefShardServer {
    /// Wraps existing shards (all must expect the same `n_pipelines`).
    pub fn new(shards: Vec<Arc<RefShard>>, n_pipelines: usize) -> Self {
        assert!(!shards.is_empty(), "a server needs at least one shard");
        for sh in &shards {
            assert_eq!(sh.n_pipelines(), n_pipelines, "shards disagree on pipeline count");
        }
        let metrics = Arc::new(ServerMetrics::new());
        for sh in &shards {
            sh.set_metrics(Arc::clone(&metrics));
        }
        RefShardServer {
            ctx: Arc::new(ServerCtx::build(
                shards,
                n_pipelines,
                None,
                Membership::new(n_pipelines, NO_LEASE),
                metrics,
            )),
            checkpoint: None,
            reaper_stop: Arc::new(AtomicBool::new(false)),
            reaper: None,
        }
    }

    /// Builds fresh shards from per-stage initial reference weights.
    pub fn from_initial_weights(stage_weights: Vec<Vec<f32>>, n_pipelines: usize) -> Self {
        let shards =
            stage_weights.into_iter().map(|w| Arc::new(RefShard::new(w, n_pipelines))).collect();
        Self::new(shards, n_pipelines)
    }

    /// Restores the shards from a reference checkpoint: every shard starts
    /// at the recorded round with the recorded weights, so training
    /// resumes where the crashed server left off instead of resetting.
    pub fn from_checkpoint(ckpt: &RefCheckpoint, n_pipelines: usize) -> Self {
        let shards = ckpt
            .shards
            .iter()
            .map(|w| Arc::new(RefShard::with_version(w.clone(), n_pipelines, ckpt.round)))
            .collect();
        let server = Self::new(shards, n_pipelines);
        server.ctx.metrics.inc_checkpoint_restores();
        server
    }

    /// Arms fault tolerance: lease-based membership, bounded pull waits,
    /// the reaper thread (degraded-quorum completion of stalled rounds),
    /// and optional periodic checkpointing. Call before serving.
    pub fn with_fault_tolerance(self, cfg: FtConfig) -> Self {
        let old = &self.ctx;
        let ctx = Arc::new(ServerCtx::build(
            old.shards.clone(),
            old.n_pipelines,
            Some(cfg.pull_wait),
            Membership::new(old.n_pipelines, cfg.lease),
            Arc::clone(&old.metrics),
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let reaper = {
            let ctx = Arc::clone(&ctx);
            let stop = Arc::clone(&stop);
            let checkpoint = cfg.checkpoint.clone();
            let interval = cfg.reap_interval;
            std::thread::Builder::new()
                .name("shard-reaper".into())
                .spawn(move || reaper_loop(&ctx, &stop, interval, checkpoint))
                .expect("spawn reaper thread")
        };
        RefShardServer { ctx, checkpoint: cfg.checkpoint, reaper_stop: stop, reaper: Some(reaper) }
    }

    /// The shards being served (e.g. to snapshot the final reference).
    pub fn shards(&self) -> &[Arc<RefShard>] {
        &self.ctx.shards
    }

    /// Point-in-time copy of the health/fault counters.
    pub fn metrics(&self) -> ServerMetricsSnapshot {
        self.ctx.metrics.snapshot()
    }

    /// One-shot Prometheus text exposition dump: this server's private
    /// counters and latency histograms, followed by the process-wide
    /// [`ea_trace::metrics::global`] registry (pool stats, log totals).
    pub fn render_prometheus(&self) -> String {
        let mut out = self.ctx.metrics.registry().render_prometheus();
        out.push_str(&ea_trace::metrics::global().render_prometheus());
        out
    }

    /// Live-membership count as seen by the lease tracker.
    pub fn live_count(&self) -> usize {
        self.ctx.membership.live_count()
    }

    /// Writes a consistent reference checkpoint now (all shards at the
    /// same version), if one is possible. Returns whether a file was
    /// written.
    pub fn checkpoint_now(&self, path: &std::path::Path) -> std::io::Result<bool> {
        match save_consistent_checkpoint(&self.ctx, path)? {
            true => {
                self.ctx.metrics.inc_checkpoints_saved();
                Ok(true)
            }
            false => Ok(false),
        }
    }

    /// Accepts exactly `n_conns` connections and serves each on its own
    /// thread. Returns the service-thread handles; each thread runs until
    /// its peer disconnects or violates the protocol.
    pub fn serve_connections(
        &self,
        listener: &mut dyn Listener,
        n_conns: usize,
    ) -> Result<Vec<JoinHandle<()>>, CommsError> {
        (0..n_conns).map(|_| Ok(self.spawn_conn(listener.accept()?))).collect()
    }

    /// Serves one already-established connection on a new thread.
    pub fn spawn_conn(&self, conn: Box<dyn Transport>) -> JoinHandle<()> {
        let ctx = Arc::clone(&self.ctx);
        std::thread::spawn(move || serve_conn(&ctx, conn))
    }

    /// Runs an accept loop on its own thread, serving every connection
    /// until the listener fails (e.g. is dropped/closed). Lets workers
    /// connect, crash, and reconnect in any order.
    pub fn serve_background(&self, mut listener: Box<dyn Listener>) -> JoinHandle<()> {
        let ctx = Arc::clone(&self.ctx);
        std::thread::spawn(move || {
            while let Ok(conn) = listener.accept() {
                let ctx = Arc::clone(&ctx);
                std::thread::spawn(move || serve_conn(&ctx, conn));
            }
        })
    }
}

impl Drop for RefShardServer {
    fn drop(&mut self) {
        self.reaper_stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.reaper.take() {
            let _ = h.join();
        }
        // Final checkpoint on clean shutdown, best effort.
        if let Some((path, _)) = self.checkpoint.take() {
            let _ = self.checkpoint_now(&path);
        }
    }
}

static EVICT_MARK: StaticName = StaticName::new("evict");
static REJOIN_MARK: StaticName = StaticName::new("rejoin");
static PULL_SPAN: StaticName = StaticName::new("pull");
static SUBMIT_SPAN: StaticName = StaticName::new("submit");
static WORKER_ROUND_SPAN: StaticName = StaticName::new("round");

/// Evictions are per-lease-expiry events: a flapping cluster can emit
/// them in storms, so the log line (not the counter, not the trace
/// event) is capped.
static EVICT_LOG_LIMIT: RateLimit = RateLimit::new(10);

/// The reaper: expires leases, evicts dead pipelines from the shard
/// quorums (completing stalled rounds degraded), and periodically
/// persists a consistent reference checkpoint.
fn reaper_loop(
    ctx: &ServerCtx,
    stop: &AtomicBool,
    interval: Duration,
    checkpoint: Option<(PathBuf, Duration)>,
) {
    // Pipelines whose eviction is pending — usually applied immediately,
    // but kept for retry when eviction would empty the quorum.
    let mut deferred: Vec<usize> = Vec::new();
    let mut last_save = Instant::now();
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(interval);
        deferred.extend(ctx.membership.reap(Instant::now()));
        deferred.retain(|&p| {
            if ctx.membership.is_live(p) {
                // Rejoined between reap and eviction; connection threads
                // already readmitted it.
                return false;
            }
            let mut evicted = false;
            let mut quorum_lost = false;
            for sh in &ctx.shards {
                match sh.evict(p) {
                    Ok(true) => evicted = true,
                    Ok(false) => {}
                    Err(Error::QuorumLost { live, round }) => {
                        quorum_lost = true;
                        log_event!(
                            Warn,
                            "refshard",
                            "refusing to evict pipe {p}: quorum would be lost \
                             ({live} live at round {round})"
                        );
                    }
                    Err(e) => log_event!(Error, "refshard", "evicting pipe {p}: {e}"),
                }
            }
            if evicted {
                ctx.metrics.inc_evictions();
                ea_trace::instant(&EVICT_MARK, Category::Runtime, p as u64);
                if EVICT_LOG_LIMIT.allow() {
                    log_event!(Warn, "refshard", "EVICTED pipe={p} (lease expired)");
                }
            }
            if quorum_lost {
                ctx.metrics.inc_quorum_lost();
            }
            quorum_lost // keep for retry only while the quorum blocks it
        });
        if let Some((path, every)) = &checkpoint {
            if last_save.elapsed() >= *every {
                last_save = Instant::now();
                match save_consistent_checkpoint(ctx, path) {
                    Ok(true) => ctx.metrics.inc_checkpoints_saved(),
                    Ok(false) => {} // mid-round; next tick will catch it
                    Err(e) => log_event!(Error, "refshard", "checkpoint write failed: {e}"),
                }
            }
        }
    }
}

/// Persists the shards iff they are at one consistent version (not
/// mid-round). Returns whether a file was written.
fn save_consistent_checkpoint(ctx: &ServerCtx, path: &std::path::Path) -> std::io::Result<bool> {
    let snaps: Vec<(u64, Vec<f32>)> = ctx.shards.iter().map(|sh| sh.versioned_snapshot()).collect();
    let round = snaps[0].0;
    if snaps.iter().any(|(v, _)| *v != round) {
        return Ok(false);
    }
    let shards: Vec<Vec<f32>> = snaps.into_iter().map(|(_, w)| w).collect();
    RefCheckpoint::capture(round, shards).save(path)?;
    Ok(true)
}

/// The pipeline id a message identifies itself with, if any.
pub(crate) fn msg_pipe(msg: &Message) -> Option<usize> {
    match msg {
        Message::Hello { pipe, .. }
        | Message::SubmitDelta { pipe, .. }
        | Message::Heartbeat { pipe, .. } => Some(*pipe as usize),
        _ => None,
    }
}

/// Lease renewal + readmission on any message from pipeline `p`. Shard
/// readmission runs even when the membership entry is already live, to
/// heal the (benign) race where the reaper evicted a pipe that rejoined
/// between the lease check and the eviction.
pub(crate) fn touch(ctx: &ServerCtx, p: usize) {
    let was_dead = ctx.membership.join(p);
    let mut readmitted = was_dead;
    // One join boundary for all shards: past the highest in-flight round,
    // so a rejoiner resyncing to the max shard version can never land
    // beyond a round some slower shard still requires it for.
    let joined_at = ctx.shards.iter().map(|s| s.version()).max().unwrap_or(0) + 1;
    for sh in &ctx.shards {
        if sh.readmit_at(p, joined_at) == Ok(true) {
            readmitted = true;
        }
    }
    if readmitted {
        ctx.metrics.inc_rejoins();
        ea_trace::instant(&REJOIN_MARK, Category::Runtime, p as u64);
        log_event!(Info, "refshard", "REJOIN pipe={p}");
    }
}

fn serve_conn(ctx: &ServerCtx, mut conn: Box<dyn Transport>) {
    // Learned from the first self-identifying message (Hello/Submit/
    // Heartbeat); every later message on the connection renews its lease.
    let mut pipe: Option<usize> = None;
    loop {
        let msg = match conn.recv() {
            Ok(msg) => msg,
            Err(CommsError::Closed) => {
                // Clean disconnect; in ft mode the lease decides whether
                // the pipeline is dead — a reconnect may be imminent.
                ctx.metrics.inc_disconnects();
                return;
            }
            Err(CommsError::Frame(FrameError::BadCrc { expected, got })) => {
                ctx.metrics.inc_crc_failures();
                log_event!(
                    Error,
                    "refshard",
                    "dropping conn (pipe {pipe:?}): frame CRC mismatch \
                     (expected {expected:#010x}, got {got:#010x})"
                );
                return;
            }
            Err(CommsError::Frame(e)) => {
                ctx.metrics.inc_protocol_violations();
                log_event!(Error, "refshard", "dropping conn (pipe {pipe:?}): bad frame: {e}");
                return;
            }
            Err(e) => {
                ctx.metrics.inc_io_errors();
                log_event!(Error, "refshard", "dropping conn (pipe {pipe:?}): receive failed: {e}");
                return;
            }
        };
        if let Some(p) = msg_pipe(&msg) {
            if p < ctx.n_pipelines {
                pipe = Some(p);
            }
        }
        if let Some(p) = pipe {
            touch(ctx, p);
        }
        match handle(ctx, msg) {
            Ok(Some(reply)) => {
                if conn.send(reply).is_err() {
                    ctx.metrics.inc_disconnects();
                    return;
                }
            }
            Ok(None) => {} // bounded pull expired: client will retransmit
            Err(e) => {
                // Protocol violation: close the connection. The shard
                // state is untouched (bad submissions are rejected
                // atomically).
                ctx.metrics.inc_protocol_violations();
                log_event!(Warn, "refshard", "dropping conn (pipe {pipe:?}): {e}");
                return;
            }
        }
    }
}

/// Computes the reply for one request. `Err` means the connection must be
/// closed; `Ok(None)` means no reply is owed (the peer retransmits).
pub(crate) fn handle(ctx: &ServerCtx, msg: Message) -> Result<Option<Message>, CommsError> {
    let shards = &ctx.shards;
    match msg {
        Message::Hello { proto, pipe: _ } => {
            if proto != PROTO_VERSION as u16 {
                return Err(CommsError::Protocol(format!(
                    "peer speaks protocol {proto}, server speaks {PROTO_VERSION}"
                )));
            }
            Ok(Some(Message::HelloAck {
                proto: PROTO_VERSION as u16,
                n_shards: shards.len() as u32,
                n_pipelines: ctx.n_pipelines as u32,
            }))
        }
        Message::PullRequest { shard, version } => {
            let _t = ctx.pull_us.start_timer();
            let _span = ea_trace::span_arg(&PULL_SPAN, Category::Comm, version);
            let sh = lookup(shards, shard)?;
            if version == u64::MAX {
                // Latest-snapshot sentinel: a rejoining worker asking
                // "where are we?" — never blocks.
                let (actual, weights) = sh.versioned_snapshot();
                return Ok(Some(Message::PullReply { shard, version: actual, weights }));
            }
            match ctx.pull_wait {
                // Fault-tolerant mode: wait boundedly. A round stalled on
                // a dead peer must not pin this thread — the reaper will
                // complete it degraded and the client's retransmission
                // (which renewed its lease) gets the weights.
                Some(timeout) => match sh.weights_within(version, timeout) {
                    Some((actual, weights)) => {
                        Ok(Some(Message::PullReply { shard, version: actual, weights }))
                    }
                    None => Ok(None),
                },
                None => {
                    // A retransmitted pull can arrive after its round was
                    // superseded; reply with the weights' *actual* version
                    // so the client can discard the stale answer instead
                    // of mistaking newer weights for older ones.
                    let (actual, weights) = sh.weights_at_least(version);
                    Ok(Some(Message::PullReply { shard, version: actual, weights }))
                }
            }
        }
        Message::SubmitDelta { shard, round, pipe, delta } => {
            let _t = ctx.submit_us.start_timer();
            let _span = ea_trace::span_arg(&SUBMIT_SPAN, Category::Comm, round);
            let sh = lookup(shards, shard)?;
            match sh.submit_at(round, pipe as usize, delta) {
                Ok(outcome) => Ok(Some(Message::Ack {
                    shard,
                    round,
                    pipe,
                    duplicate: outcome == SubmitOutcome::Duplicate,
                })),
                Err(e) => Err(CommsError::Protocol(e.to_string())),
            }
        }
        Message::Heartbeat { pipe, round: _ } => {
            if pipe as usize >= ctx.n_pipelines {
                return Err(CommsError::Protocol(format!(
                    "heartbeat from unknown pipe {pipe} (server has {})",
                    ctx.n_pipelines
                )));
            }
            ctx.metrics.inc_heartbeats();
            let round = shards.iter().map(|sh| sh.version()).max().unwrap_or(0);
            Ok(Some(Message::HeartbeatAck {
                pipe,
                round,
                quorum: ctx.membership.live_count() as u32,
                members: ctx.membership.mask(),
            }))
        }
        Message::RoundInfoRequest { shard, round } => {
            let sh = lookup(shards, shard)?;
            Ok(Some(match sh.round_record(round) {
                Some(rec) => Message::RoundInfoReply {
                    shard,
                    round,
                    quorum: rec.quorum,
                    members: rec.members,
                    known: true,
                },
                None => {
                    Message::RoundInfoReply { shard, round, quorum: 0, members: 0, known: false }
                }
            }))
        }
        Message::MetricsRequest => {
            Ok(Some(Message::MetricsReply { counters: ctx.metrics.snapshot().to_wire() }))
        }
        Message::SubscribeWeights { shard } => {
            // Read-only subscription (serving replicas): answer with the
            // current snapshot immediately. Deliberately *not* in
            // `msg_pipe`, so a subscriber never registers lease
            // membership and cannot stall a training quorum. Round-
            // boundary pushes are layered on by the reactor dispatch;
            // on the blocking path a subscriber re-requests to poll.
            let sh = lookup(shards, shard)?;
            let (version, weights) = sh.versioned_snapshot();
            Ok(Some(Message::WeightsUpdate { shard, version, weights }))
        }
        other => Err(CommsError::Protocol(format!("unexpected {} from peer", other.name()))),
    }
}

pub(crate) fn lookup(shards: &[Arc<RefShard>], shard: u32) -> Result<&Arc<RefShard>, CommsError> {
    shards.get(shard as usize).ok_or_else(|| CommsError::Protocol(format!("no shard {shard}")))
}

/// One pipeline of the elastic-averaging ensemble, driven standalone —
/// the worker half of the two-process deployment. Runs the same fused
/// Step ❶–❸ per round as [`ElasticTrainer`](crate::ElasticTrainer), with
/// the reference reached through a [`ShardChannel`].
pub struct ElasticWorker {
    pipeline: ThreadedPipeline,
    channel: Arc<dyn ShardChannel>,
    pipe: usize,
    n_shards: usize,
    alpha: f32,
    round: u64,
}

impl ElasticWorker {
    /// Spawns the pipeline. `alpha` is the elastic pull strength (use
    /// `1/N` to match the default trainer).
    pub fn new(
        stages: Vec<Stage>,
        opts: Vec<Box<dyn Optimizer>>,
        micros: usize,
        alpha: f32,
        pipe: usize,
        channel: Arc<dyn ShardChannel>,
    ) -> Self {
        let n_shards = channel.n_shards();
        assert_eq!(stages.len(), n_shards, "one reference shard per stage");
        ElasticWorker {
            pipeline: ThreadedPipeline::spawn(stages, opts, micros),
            channel,
            pipe,
            n_shards,
            alpha,
            round: 0,
        }
    }

    /// One elastic round on `batch`: pull the round-`r` reference for
    /// every stage, run the fused local-step/α-pull/delta pass, ship the
    /// deltas. Blocks (inside the pulls of the *next* round) until all
    /// peer pipelines finish the current one.
    pub fn round(&mut self, batch: &Batch) -> Result<f32, CommsError> {
        let round = self.round;
        let _round_span = ea_trace::span_arg(&WORKER_ROUND_SPAN, Category::Runtime, round);
        let references: Vec<Vec<f32>> = (0..self.n_shards)
            .map(|s| {
                let _s = ea_trace::span_arg(&PULL_SPAN, Category::Comm, round);
                self.channel.pull(self.pipe, s, round)
            })
            .collect::<Result<_, _>>()?;
        let (loss, deltas) = self.pipeline.step_elastic(batch, references, self.alpha);
        for (s, delta) in deltas.into_iter().enumerate() {
            let _s = ea_trace::span_arg(&SUBMIT_SPAN, Category::Comm, round);
            self.channel.submit(self.pipe, s, round, delta)?;
        }
        self.round += 1;
        Ok(loss)
    }

    /// One *local* training step — no reference pull, no delta shipped.
    /// The supervisor's degraded mode: keep making progress while the
    /// server is unreachable.
    pub fn local_step(&mut self, batch: &Batch) -> Result<f32, Error> {
        self.pipeline.try_step(batch)
    }

    /// Completed rounds.
    pub fn rounds_done(&self) -> u64 {
        self.round
    }

    /// The elastic pull strength.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// Changes the elastic pull strength (e.g. to `1/k` when the quorum
    /// degrades to `k` members).
    pub fn set_alpha(&mut self, alpha: f32) {
        self.alpha = alpha;
    }

    /// Swaps in a fresh channel (same shard topology) after a reconnect.
    pub fn reconnect(&mut self, channel: Arc<dyn ShardChannel>) {
        assert_eq!(channel.n_shards(), self.n_shards, "reconnect changed the shard topology");
        self.channel = channel;
    }

    /// Renews this worker's lease and returns the server's quorum view.
    pub fn heartbeat(&self) -> Result<QuorumInfo, CommsError> {
        self.channel.heartbeat(self.pipe, self.round)
    }

    /// Resynchronizes with the server after a restart or lost rounds:
    /// pulls every shard's *latest* reference, overwrites the replica
    /// parameters with it, and fast-forwards the round counter to the
    /// newest shard version. The next [`ElasticWorker::round`] then
    /// re-enters the quorum at the server's current round boundary.
    pub fn resync(&mut self) -> Result<u64, CommsError> {
        let mut newest = 0u64;
        for s in 0..self.n_shards {
            let (version, weights) = self.channel.pull_latest(self.pipe, s)?;
            newest = newest.max(version);
            self.pipeline.set_stage_params(s, weights);
        }
        self.round = newest;
        Ok(newest)
    }

    /// Reference weights of stage `s` as of the last completed round
    /// (blocks until every pipeline has finished it).
    pub fn pull_reference(&self, s: usize) -> Result<Vec<f32>, CommsError> {
        self.channel.pull(self.pipe, s, self.round)
    }

    /// This worker's replica parameters for stage `s`.
    pub fn stage_params(&self, s: usize) -> Vec<f32> {
        self.pipeline.stage_params(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_comms::{loopback_endpoint, RemoteShards, RetryConfig, ShardClient};

    fn serve_loopback(
        server: RefShardServer,
        n_conns: usize,
    ) -> (ea_comms::LoopbackHub, JoinHandle<Vec<JoinHandle<()>>>, Arc<RefShardServer>) {
        let (hub, mut listener) = loopback_endpoint();
        let server = Arc::new(server);
        let srv = Arc::clone(&server);
        let h = std::thread::spawn(move || {
            srv.serve_connections(&mut listener, n_conns).expect("accept failed")
        });
        (hub, h, server)
    }

    fn connect(hub: &ea_comms::LoopbackHub, pipe: usize) -> ShardClient {
        ShardClient::handshake(Box::new(hub.connect().unwrap()), pipe, RetryConfig::default())
            .unwrap()
    }

    #[test]
    fn handshake_reports_shard_topology() {
        let server = RefShardServer::from_initial_weights(vec![vec![0.0; 4], vec![0.0; 6]], 3);
        let (hub, h, _server) = serve_loopback(server, 1);
        let client = connect(&hub, 0);
        assert_eq!(client.server_info().n_shards, 2);
        assert_eq!(client.server_info().n_pipelines, 3);
        drop(client);
        for conn in h.join().unwrap() {
            conn.join().unwrap();
        }
    }

    #[test]
    fn two_clients_complete_a_round_through_the_server() {
        let server = RefShardServer::from_initial_weights(vec![vec![1.0, 1.0]], 2);
        let shards = server.shards().to_vec();
        let (hub, h, _server) = serve_loopback(server, 2);
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let workers: Vec<_> = (0..2)
            .map(|p| {
                let hub_conn = connect(&hub, p);
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    let mut c = hub_conn;
                    let w = c.pull(0, 0).unwrap();
                    assert_eq!(w, vec![1.0, 1.0]);
                    barrier.wait();
                    c.submit(0, 0, vec![2.0 * (p as f32 + 1.0); 2]).unwrap();
                    // Round 1 is observable by every client afterwards.
                    let w = c.pull(0, 1).unwrap();
                    assert_eq!(w, vec![4.0, 4.0]); // 1 + (2 + 4)/2
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(shards[0].try_weights_at(1), Some(vec![4.0, 4.0]));
        for conn in h.join().unwrap() {
            conn.join().unwrap();
        }
    }

    #[test]
    fn retransmitted_submit_is_acked_as_duplicate_and_not_double_counted() {
        let server = RefShardServer::from_initial_weights(vec![vec![0.0]], 1);
        let shards = server.shards().to_vec();
        let (hub, h, _server) = serve_loopback(server, 1);
        let mut raw = hub.connect().unwrap();
        let hello = Message::Hello { proto: PROTO_VERSION as u16, pipe: 0 };
        raw.send(hello).unwrap();
        assert!(matches!(raw.recv().unwrap(), Message::HelloAck { .. }));
        for expect_dup in [false, true, true] {
            raw.send(Message::SubmitDelta { shard: 0, round: 0, pipe: 0, delta: vec![5.0] })
                .unwrap();
            match raw.recv().unwrap() {
                Message::Ack { duplicate, .. } => assert_eq!(duplicate, expect_dup),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(shards[0].try_weights_at(1), Some(vec![5.0]), "applied exactly once");
        drop(raw);
        for conn in h.join().unwrap() {
            conn.join().unwrap();
        }
    }

    #[test]
    fn stale_pull_is_answered_with_the_actual_version() {
        let server = RefShardServer::from_initial_weights(vec![vec![0.0]], 1);
        let shards = server.shards().to_vec();
        shards[0].submit(0, vec![3.0]).unwrap();
        let (hub, h, _server) = serve_loopback(server, 1);
        let mut raw = hub.connect().unwrap();
        raw.send(Message::PullRequest { shard: 0, version: 0 }).unwrap();
        match raw.recv().unwrap() {
            Message::PullReply { version, weights, .. } => {
                assert_eq!(version, 1, "reply labeled with the real version");
                assert_eq!(weights, vec![3.0]);
            }
            other => panic!("unexpected {other:?}"),
        }
        drop(raw);
        for conn in h.join().unwrap() {
            conn.join().unwrap();
        }
    }

    #[test]
    fn protocol_violation_closes_the_connection_without_corrupting_state() {
        let server = RefShardServer::from_initial_weights(vec![vec![0.0]], 2);
        let shards = server.shards().to_vec();
        let (hub, h, server) = serve_loopback(server, 2);
        // A bad peer submits a wrong-length delta, then a future round.
        let mut bad = hub.connect().unwrap();
        bad.send(Message::SubmitDelta { shard: 0, round: 0, pipe: 0, delta: vec![1.0; 9] })
            .unwrap();
        assert!(matches!(bad.recv(), Err(CommsError::Closed)), "server dropped the bad peer");
        // A well-behaved peer on a fresh connection is unaffected.
        let mut good = connect(&hub, 0);
        assert_eq!(good.pull(0, 0).unwrap(), vec![0.0]);
        good.submit(0, 0, vec![4.0]).unwrap();
        shards[0].submit(1, vec![0.0]).unwrap();
        assert_eq!(good.pull(0, 1).unwrap(), vec![2.0]);
        drop(good);
        for conn in h.join().unwrap() {
            conn.join().unwrap();
        }
        // The violation was counted, not swallowed.
        assert!(server.metrics().protocol_violations >= 1);
    }

    #[test]
    fn heartbeat_round_info_and_latest_pull_are_served() {
        let server = RefShardServer::from_initial_weights(vec![vec![0.0]], 2);
        let shards = server.shards().to_vec();
        let (hub, h, server) = serve_loopback(server, 1);
        let mut c = connect(&hub, 0);
        // Full quorum reported before any round.
        let q = c.heartbeat(0).unwrap();
        assert_eq!(q, QuorumInfo { round: 0, quorum: 2, members: 0b11 });
        // Complete round 0 out-of-band, degraded to pipe 0 only.
        shards[0].submit_at(0, 0, vec![4.0]).unwrap();
        shards[0].evict(1).unwrap();
        // The latest-pull sentinel never blocks and reports the version.
        let (v, w) = c.pull_latest(0).unwrap();
        assert_eq!((v, w), (1, vec![4.0]));
        // The membership record of round 0 is queryable...
        let rec = c.round_info(0, 0).unwrap().unwrap();
        assert_eq!(rec, QuorumInfo { round: 0, quorum: 1, members: 0b01 });
        // ...and unknown rounds are reported as such, not invented.
        assert_eq!(c.round_info(0, 7).unwrap(), None);
        drop(c);
        for conn in h.join().unwrap() {
            conn.join().unwrap();
        }
        assert!(server.metrics().heartbeats >= 1);
    }

    #[test]
    fn ft_mode_bounded_pull_times_out_and_the_retransmission_succeeds() {
        let server = RefShardServer::from_initial_weights(vec![vec![0.0]], 2).with_fault_tolerance(
            FtConfig {
                lease: Duration::from_secs(60), // never expires in this test
                reap_interval: Duration::from_millis(10),
                pull_wait: Duration::from_millis(40),
                checkpoint: None,
            },
        );
        let shards = server.shards().to_vec();
        let (hub, h, _server) = serve_loopback(server, 1);
        let mut c = ShardClient::handshake(
            Box::new(hub.connect().unwrap()),
            0,
            RetryConfig { reply_timeout: Duration::from_millis(80), max_attempts: 20 },
        )
        .unwrap();
        // Ask for round 1 before it exists; complete it from another
        // thread after a few server-side pull timeouts have elapsed.
        let filler = {
            let shards = shards.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(150));
                shards[0].submit_at(0, 0, vec![2.0]).unwrap();
                shards[0].submit_at(0, 1, vec![4.0]).unwrap();
            })
        };
        let w = c.pull(0, 1).unwrap();
        assert_eq!(w, vec![3.0]);
        filler.join().unwrap();
        drop(c);
        for conn in h.join().unwrap() {
            conn.join().unwrap();
        }
    }

    #[test]
    fn lease_expiry_evicts_and_a_message_readmits() {
        let server = RefShardServer::from_initial_weights(vec![vec![0.0]], 2).with_fault_tolerance(
            FtConfig {
                lease: Duration::from_millis(60),
                reap_interval: Duration::from_millis(15),
                pull_wait: Duration::from_millis(30),
                checkpoint: None,
            },
        );
        let shards = server.shards().to_vec();
        let (hub, listener) = loopback_endpoint();
        let accept = server.serve_background(Box::new(listener));
        let mut c = connect(&hub, 0);
        // Pipe 0 stays chatty; pipe 1 never speaks and gets reaped.
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.live_count() > 1 {
            assert!(Instant::now() < deadline, "pipe 1 was never evicted");
            let _ = c.heartbeat(0).unwrap();
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(!shards[0].is_member(1));
        assert!(server.metrics().evictions >= 1);
        // A round completes degraded with just pipe 0...
        c.submit(0, 0, vec![6.0]).unwrap();
        assert_eq!(c.pull(0, 1).unwrap(), vec![6.0]);
        assert_eq!(shards[0].round_record(0).unwrap().quorum, 1);
        // ...and pipe 1 coming back readmits it into the next round.
        let mut back = connect(&hub, 1);
        let q = back.heartbeat(0).unwrap();
        assert_eq!(q.quorum, 2);
        assert!(shards[0].is_member(1));
        assert!(server.metrics().rejoins >= 1);
        drop(c);
        drop(back);
        drop(hub); // closes the listener; the accept loop exits
        accept.join().unwrap();
    }

    #[test]
    fn prometheus_dump_reflects_served_traffic() {
        let server = RefShardServer::from_initial_weights(vec![vec![0.0]], 2);
        let (hub, h, server) = serve_loopback(server, 1);
        let mut c = connect(&hub, 0);
        let _ = c.heartbeat(0).unwrap();
        c.submit(0, 0, vec![1.0]).unwrap();
        server.shards()[0].submit(1, vec![1.0]).unwrap();
        assert_eq!(c.pull(0, 1).unwrap(), vec![1.0]);
        drop(c);
        for conn in h.join().unwrap() {
            conn.join().unwrap();
        }
        let text = server.render_prometheus();
        assert!(text.contains("ea_server_heartbeats_total 1\n"), "dump:\n{text}");
        assert!(text.contains("# TYPE ea_server_pull_us summary\n"), "dump:\n{text}");
        assert!(text.contains("ea_server_submit_us_count"), "dump:\n{text}");
    }

    #[test]
    fn metrics_message_reads_the_live_snapshot_remotely() {
        let server = RefShardServer::from_initial_weights(vec![vec![0.0]], 2);
        let (hub, h, server) = serve_loopback(server, 1);
        let mut c = connect(&hub, 0);
        let _ = c.heartbeat(0).unwrap();
        let _ = c.heartbeat(1).unwrap();
        let remote = crate::ServerMetricsSnapshot::from_wire(c.metrics().unwrap());
        assert_eq!(remote, server.metrics());
        assert_eq!(remote.heartbeats, 2);
        drop(c);
        for conn in h.join().unwrap() {
            conn.join().unwrap();
        }
    }

    #[test]
    fn restart_from_checkpoint_resumes_at_the_recorded_round() {
        let dir = std::env::temp_dir().join("avgpipe_server_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ref.json");
        {
            let server = RefShardServer::from_initial_weights(vec![vec![0.0], vec![0.0]], 1);
            for sh in server.shards() {
                sh.submit(0, vec![5.0]).unwrap();
                sh.submit(0, vec![1.0]).unwrap();
            }
            assert!(server.checkpoint_now(&path).unwrap());
            assert_eq!(server.metrics().checkpoints_saved, 1);
        } // "crash"
        let ckpt = RefCheckpoint::load(&path).unwrap();
        assert_eq!(ckpt.round, 2);
        let server = RefShardServer::from_checkpoint(&ckpt, 1);
        assert_eq!(server.metrics().checkpoint_restores, 1);
        for sh in server.shards() {
            assert_eq!(sh.versioned_snapshot(), (2, vec![6.0]));
            // The quorum machinery resumes from the recorded round.
            sh.submit_at(2, 0, vec![1.0]).unwrap();
            assert_eq!(sh.try_weights_at(3), Some(vec![7.0]));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_round_checkpoint_is_skipped_not_torn() {
        let server = RefShardServer::from_initial_weights(vec![vec![0.0], vec![0.0]], 1);
        // Advance shard 0 only: versions now disagree (1 vs 0).
        server.shards()[0].submit(0, vec![1.0]).unwrap();
        let dir = std::env::temp_dir().join("avgpipe_server_skip_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ref.json");
        assert!(!server.checkpoint_now(&path).unwrap(), "inconsistent state must be skipped");
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn worker_trains_against_the_server_like_the_local_trainer() {
        use crate::ElasticTrainer;
        use ea_data::SyntheticTask;
        use ea_models::{gnmt_analogue, AnalogueConfig};
        use ea_optim::OptKind;
        use ea_tensor::TensorRng;

        const CFG: AnalogueConfig =
            AnalogueConfig { vocab: 16, seq: 4, hidden: 16, blocks: 2, stages: 2 };
        let seed = 77;
        let n = 2;
        let task = SyntheticTask::copy_translate(16, 4, 45);
        let make_stages = || gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(seed)).into_stages();
        let make_opts = || -> Vec<Box<dyn Optimizer>> {
            (0..CFG.stages).map(|_| OptKind::Adam { lr: 1e-2 }.build()).collect()
        };

        // Local baseline.
        let eval = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(seed));
        let mut local = ElasticTrainer::new(
            (0..n).map(|_| make_stages()).collect(),
            (0..n).map(|_| make_opts()).collect(),
            2,
            None,
            eval,
        );

        // Server + two workers over loopback.
        let init: Vec<Vec<f32>> = make_stages().iter().map(|s| s.params_flat()).collect();
        let server = RefShardServer::from_initial_weights(init, n);
        let shards = server.shards().to_vec();
        let (hub, h, _server) = serve_loopback(server, n);
        let rounds = 3u64;
        let workers: Vec<_> = (0..n)
            .map(|p| {
                let client = connect(&hub, p);
                let channel: Arc<dyn ShardChannel> =
                    Arc::new(RemoteShards::new(vec![client]).unwrap());
                let stages = make_stages();
                let opts = make_opts();
                let task = SyntheticTask::copy_translate(16, 4, 45);
                std::thread::spawn(move || {
                    let mut worker =
                        ElasticWorker::new(stages, opts, 2, 1.0 / n as f32, p, channel);
                    let mut losses = Vec::new();
                    for r in 0..rounds {
                        let batch = task.batch(4, r * n as u64 + p as u64);
                        losses.push(worker.round(&batch).unwrap());
                    }
                    losses
                })
            })
            .collect();
        let worker_losses: Vec<Vec<f32>> = workers.into_iter().map(|w| w.join().unwrap()).collect();

        let mut local_losses = Vec::new();
        for r in 0..rounds {
            let batches: Vec<_> = (0..n as u64).map(|i| task.batch(4, r * n as u64 + i)).collect();
            local_losses.push(local.round(&batches));
        }
        for r in 0..rounds as usize {
            let mean = worker_losses.iter().map(|l| l[r]).sum::<f32>() / n as f32;
            assert_eq!(mean, local_losses[r], "round {r} loss differs");
        }
        for (s, shard) in shards.iter().enumerate() {
            let remote = shard.try_weights_at(rounds).unwrap();
            assert_eq!(remote, local.reference(s), "stage {s} reference differs");
        }
        for conn in h.join().unwrap() {
            conn.join().unwrap();
        }
    }
}
