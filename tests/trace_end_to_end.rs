//! End-to-end tracing: a real threaded pipeline run recorded under
//! `EA_TRACE=spans` must export a well-formed Chrome trace with the
//! expected span vocabulary and carry non-zero φ(t) busy time into the
//! trace-driven profile.
//!
//! Kept in its own test binary: it flips the process-wide trace level
//! and drains the global span rings.

use avgpipe::TraceProfiler;
use ea_data::SyntheticTask;
use ea_models::{analogue_partition, analogue_spec, gnmt_analogue, AnalogueConfig};
use ea_optim::{OptKind, Optimizer};
use ea_runtime::ThreadedPipeline;
use ea_tensor::TensorRng;
use ea_trace::{chrome_trace_json, set_level, Level};

#[test]
fn traced_run_exports_chrome_json_and_a_busy_profile() {
    let cfg = AnalogueConfig { vocab: 16, seq: 4, hidden: 16, blocks: 2, stages: 2 };
    let (batch, m, batches) = (8usize, 2usize, 3usize);

    set_level(Level::Spans);
    let model = gnmt_analogue(cfg, &mut TensorRng::seed_from_u64(3));
    let opts: Vec<Box<dyn Optimizer>> =
        (0..cfg.stages).map(|_| OptKind::Adam { lr: 1e-2 }.build()).collect();
    let mut pipe = ThreadedPipeline::spawn(model.into_stages(), opts, m);
    let task = SyntheticTask::copy_translate(cfg.vocab, cfg.seq, 5);
    for b in 0..batches as u64 {
        assert!(pipe.step(&task.batch(batch, b)).is_finite());
    }
    drop(pipe); // quiesce the stage workers before draining
    set_level(Level::Off);

    let events = ea_trace::drain();
    // The span vocabulary of the instrumented hot path, on the named
    // stage worker threads.
    for name in ["fwd", "bwd", "opt", "xfer_fwd", "xfer_bwd"] {
        assert!(events.iter().any(|e| e.name == name), "no {name:?} event recorded");
    }
    for thread in ["stage0", "stage1"] {
        assert!(events.iter().any(|e| e.thread == thread), "no events from {thread}");
    }
    // Every batch forwards `m` micro-batches through each of the two
    // stages.
    let fwd_spans = events.iter().filter(|e| e.name == "fwd").count();
    assert_eq!(fwd_spans, batches * m * cfg.stages, "unexpected forward span count");
    // Transfer marks carry the boundary activation size in bytes.
    let boundary = (batch / m * cfg.seq * cfg.hidden * 4) as u64;
    assert!(
        events.iter().filter(|e| e.name == "xfer_fwd").all(|e| e.arg == boundary),
        "xfer_fwd bytes disagree with the stage boundary size"
    );

    // The trace-driven profile sees real, non-zero busy time on every
    // stage's φ(t).
    let profile = TraceProfiler::new(analogue_spec(cfg), analogue_partition(cfg), batch, 8, 100.0)
        .profile_events(&events, m, 1, batches, 0);
    for (k, d) in profile.per_device.iter().enumerate() {
        assert!(d.t_gpu_us > 0.0, "stage {k} busy time is zero");
        assert!(d.trace.integral() > 0.0, "stage {k} φ(t) integral is zero");
        assert!(d.horizon_us > 0.0);
    }

    // The export is well-formed JSON following the simulator's span
    // conventions (F{m}/B{m} labels, compute/comm categories).
    let json = chrome_trace_json(&events);
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("well-formed JSON");
    let arr = parsed["traceEvents"].as_array().expect("traceEvents array");
    assert!(!arr.is_empty());
    assert!(arr.iter().any(|e| e["name"] == "F0" && e["cat"] == "compute"));
    assert!(arr.iter().any(|e| e["name"] == "B0" && e["cat"] == "compute"));
    assert!(arr.iter().any(|e| e["name"] == "thread_name" && e["args"]["name"] == "stage1"));
}
