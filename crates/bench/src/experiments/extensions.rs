//! Extension experiments beyond the paper's figures:
//!
//! * **Chimera** (related work, §8): the bidirectional-pipeline baseline
//!   the paper discusses but does not measure, on both the paper's
//!   Ethernet cluster and an NVLink-class single node.
//! * **Activation recomputation**: the knob the paper's baselines disable
//!   — quantifying exactly what disabling it costs/saves.

use crate::experiments::common::workload_env;
use crate::EFFECTIVE_GPU_MEM;
use avgpipe::{run_baseline, BaselineKind};
use ea_models::Workload;
use ea_sched::{
    chimera_program, partition_model, pipeline_program, PipeStyle, PipelinePlan, RecomputePolicy,
};
use ea_sim::{ClusterConfig, Simulator};
use serde::Serialize;

/// One Chimera-vs-Dapple comparison.
#[derive(Clone, Debug, Serialize)]
pub struct ChimeraRow {
    /// Interconnect description.
    pub interconnect: String,
    /// Chimera seconds/batch.
    pub chimera_s: f64,
    /// Dapple (single 1F1B pipeline) seconds/batch.
    pub dapple_s: f64,
    /// Chimera peak memory (GiB).
    pub chimera_mem_gib: f64,
    /// Dapple peak memory (GiB).
    pub dapple_mem_gib: f64,
}

/// Chimera extension study on GNMT.
pub fn ext_chimera() -> Vec<ChimeraRow> {
    let spec = Workload::Gnmt.spec();
    let clusters = [
        ("1 Gbps Ethernet, 3 nodes".to_string(), ClusterConfig::paper_testbed()),
        (
            "NVLink-class single node".to_string(),
            ClusterConfig { nodes: 1, gpus_per_node: 6, ..ClusterConfig::paper_testbed() },
        ),
    ];
    clusters
        .into_iter()
        .map(|(name, cluster)| {
            let part = partition_model(&spec, 6);
            let plan = PipelinePlan::new(spec.clone(), cluster.clone(), part, 128, 16, 8);
            let sim = Simulator::new(cluster);
            let batches = 3;
            let chm = sim.run(&chimera_program(&plan, batches)).unwrap();
            let dap = sim.run(&pipeline_program(&plan, &PipeStyle::dapple(), batches)).unwrap();
            ChimeraRow {
                interconnect: name,
                chimera_s: chm.makespan_us * 1e-6 / batches as f64,
                dapple_s: dap.makespan_us * 1e-6 / batches as f64,
                chimera_mem_gib: chm.max_peak_mem() as f64 / (1u64 << 30) as f64,
                dapple_mem_gib: dap.max_peak_mem() as f64 / (1u64 << 30) as f64,
            }
        })
        .collect()
}

/// One recomputation ablation row.
#[derive(Clone, Debug, Serialize)]
pub struct RecomputeRow {
    /// Workload name.
    pub workload: String,
    /// GPipe seconds/batch without recomputation (the paper's setting).
    pub plain_s: f64,
    /// GPipe seconds/batch with full recomputation.
    pub recompute_s: f64,
    /// Peak memory without recomputation (GiB).
    pub plain_mem_gib: f64,
    /// Peak memory with recomputation (GiB).
    pub recompute_mem_gib: f64,
}

/// Activation-recomputation ablation: GPipe with and without
/// checkpointing on each workload.
pub fn ext_recompute() -> Vec<RecomputeRow> {
    Workload::all()
        .into_iter()
        .map(|w| {
            let env = workload_env(w);
            let plain = run_baseline(
                BaselineKind::GPipe,
                &env.spec,
                &env.cluster,
                env.batch,
                env.opt_state_per_param,
                EFFECTIVE_GPU_MEM,
            );
            let rc_spec = RecomputePolicy::Full.transform(&env.spec);
            let rc = run_baseline(
                BaselineKind::GPipe,
                &rc_spec,
                &env.cluster,
                env.batch,
                env.opt_state_per_param,
                EFFECTIVE_GPU_MEM,
            );
            RecomputeRow {
                workload: w.name().to_string(),
                plain_s: plain.time_per_batch_s,
                recompute_s: rc.time_per_batch_s,
                plain_mem_gib: plain.max_peak_mem as f64 / (1u64 << 30) as f64,
                recompute_mem_gib: rc.max_peak_mem as f64 / (1u64 << 30) as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chimera_wins_on_nvlink_loses_on_ethernet() {
        let rows = ext_chimera();
        let eth = &rows[0];
        let nvl = &rows[1];
        assert!(eth.chimera_s > eth.dapple_s, "Ethernet: {eth:?}");
        assert!(nvl.chimera_s < nvl.dapple_s, "NVLink: {nvl:?}");
        // Two replicas per device cost memory everywhere.
        assert!(eth.chimera_mem_gib > eth.dapple_mem_gib);
    }

    #[test]
    fn recomputation_saves_memory_costs_time() {
        for row in ext_recompute() {
            assert!(row.recompute_mem_gib < row.plain_mem_gib, "{}: {row:?}", row.workload);
            assert!(row.recompute_s >= row.plain_s * 0.99, "{}: {row:?}", row.workload);
        }
    }
}

/// One straggler-study row.
#[derive(Clone, Debug, Serialize)]
pub struct StragglerRow {
    /// Scenario description.
    pub scenario: String,
    /// GPipe seconds/batch.
    pub gpipe_s: f64,
}

/// Straggler extension: one GPU at 60% speed, with and without the
/// heterogeneity-aware partitioner (`partition_model_hetero`).
pub fn ext_straggler() -> Vec<StragglerRow> {
    use ea_sched::partition_model_hetero;
    let env = workload_env(Workload::Gnmt);
    let sim_time = |cluster: &ClusterConfig, part: ea_sched::Partition| -> f64 {
        let plan = PipelinePlan::new(
            env.spec.clone(),
            cluster.clone(),
            part,
            env.batch,
            16,
            env.opt_state_per_param,
        );
        let sim = Simulator::new(cluster.clone());
        let r = sim.run(&pipeline_program(&plan, &PipeStyle::gpipe(), 3)).unwrap();
        r.makespan_us * 1e-6 / 3.0
    };

    let uniform = env.cluster.clone();
    let straggler = env.cluster.clone().with_straggler(2, 0.6);
    let plain_part = partition_model(&env.spec, 6);
    let mut speeds = vec![1.0; 6];
    speeds[2] = 0.6;
    let aware_part = partition_model_hetero(&env.spec, &speeds);

    vec![
        StragglerRow {
            scenario: "homogeneous cluster".into(),
            gpipe_s: sim_time(&uniform, plain_part.clone()),
        },
        StragglerRow {
            scenario: "GPU 2 at 60%, speed-oblivious partition".into(),
            gpipe_s: sim_time(&straggler, plain_part),
        },
        StragglerRow {
            scenario: "GPU 2 at 60%, heterogeneity-aware partition".into(),
            gpipe_s: sim_time(&straggler, aware_part),
        },
    ]
}

#[cfg(test)]
mod straggler_tests {
    use super::*;

    #[test]
    fn hetero_partition_recovers_most_of_the_straggler_loss() {
        let rows = ext_straggler();
        let base = rows[0].gpipe_s;
        let hurt = rows[1].gpipe_s;
        let fixed = rows[2].gpipe_s;
        assert!(hurt > base * 1.05, "straggler must hurt: {base} -> {hurt}");
        assert!(fixed < hurt, "aware partition must help: {hurt} -> {fixed}");
    }
}

/// One elastic-averaging ablation row.
#[derive(Clone, Debug, Serialize)]
pub struct ElasticAblationRow {
    /// Configuration description.
    pub config: String,
    /// Epochs to the accuracy target (`None` = not reached).
    pub epochs: Option<f64>,
    /// Final held-out accuracy.
    pub final_accuracy: f64,
}

/// Elastic-averaging design ablations (real training on the GNMT
/// analogue): the pull strength α around the paper's 1/N default, the
/// pipeline count N, and the §3.1 comparison against the classic coupled
/// EASGD optimizer.
pub fn ext_elastic_ablation() -> Vec<ElasticAblationRow> {
    use ea_data::SyntheticTask;
    use ea_models::{gnmt_analogue, AnalogueConfig};
    use ea_optim::{Easgd, OptKind, Optimizer};
    use ea_runtime::{epochs_to_target, ElasticSemantic, Trainer};
    use ea_tensor::TensorRng;

    const CFG: AnalogueConfig =
        AnalogueConfig { vocab: 16, seq: 6, hidden: 24, blocks: 3, stages: 3 };
    let task = SyntheticTask::copy_translate(16, 6, 71);
    let (batch, per_epoch, max_epochs, target) = (4usize, 96usize, 30usize, 0.85f64);
    let build = || gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(11));
    let opts = |n: usize| {
        (0..n)
            .map(|_| {
                (0..CFG.stages)
                    .map(|_| OptKind::Adam { lr: 1e-2 }.build())
                    .collect::<Vec<Box<dyn Optimizer>>>()
            })
            .collect::<Vec<_>>()
    };
    let mut rows = Vec::new();
    let mut run = |config: String, trainer: &mut dyn Trainer| {
        let r = epochs_to_target(trainer, &task, batch, per_epoch, max_epochs, target, true, 4);
        rows.push(ElasticAblationRow {
            config,
            epochs: r.epochs,
            final_accuracy: r.final_eval.accuracy,
        });
    };

    // α sweep at N = 2 (paper default α = 1/N = 0.5).
    for alpha in [0.125f32, 0.25, 0.5, 0.9] {
        let replicas = (0..2).map(|_| build()).collect();
        let mut ea = ElasticSemantic::with_eval_replica(replicas, opts(2), 4, Some(alpha), build());
        run(format!("AvgPipe N=2, alpha={alpha}"), &mut ea);
    }
    // N sweep at α = 1/N.
    for n in [1usize, 2, 4] {
        let replicas = (0..n).map(|_| build()).collect();
        let mut ea = ElasticSemantic::with_eval_replica(replicas, opts(n), 4, None, build());
        run(format!("AvgPipe N={n}, alpha=1/N"), &mut ea);
    }

    // Classic coupled EASGD (§3.1's foil): SGD-only, symmetric elastic
    // force, run as two workers round-robin.
    struct EasgdTrainer {
        workers: Vec<ea_autograd::StagedModel>,
        center: Vec<Vec<f32>>,
        easgd: Easgd,
        eval: ea_autograd::StagedModel,
        step: u64,
    }
    impl Trainer for EasgdTrainer {
        fn step(&mut self, batch: &ea_data::Batch) -> f32 {
            let n = self.workers.len();
            let per = batch.batch_size / n;
            let parts = batch.split_micro(per);
            let mut total = 0.0;
            for (w, part) in self.workers.iter_mut().zip(&parts) {
                let ctx = ea_autograd::ForwardCtx::train(self.step, 0);
                w.zero_grads();
                let (logits, saves) = w.forward(&part.input, &ctx);
                let out = ea_autograd::cross_entropy_loss(&logits, &part.targets);
                total += out.loss;
                w.backward(&saves, &out.grad);
                for k in 0..w.num_stages() {
                    let grads = w.stage(k).grads_flat();
                    let mut params = w.stage(k).params_flat();
                    self.easgd.step_worker(&mut params, &mut self.center[k], &grads);
                    w.stage_mut(k).set_params_flat(&params);
                }
            }
            self.step += 1;
            total / parts.len() as f32
        }
        fn eval_model(&mut self) -> &ea_autograd::StagedModel {
            for k in 0..self.eval.num_stages() {
                self.eval.stage_mut(k).set_params_flat(&self.center[k]);
            }
            &self.eval
        }
        fn batches_per_step(&self) -> usize {
            self.workers.len()
        }
    }
    let workers: Vec<_> = (0..2).map(|_| build()).collect();
    let center = (0..CFG.stages).map(|k| workers[0].stage(k).params_flat()).collect();
    let mut easgd =
        EasgdTrainer { workers, center, easgd: Easgd::new(2.0, 0.1), eval: build(), step: 0 };
    run("classic EASGD (coupled SGD), N=2".into(), &mut easgd);

    rows
}

#[cfg(test)]
mod elastic_ablation_tests {
    use super::*;

    #[test]
    fn paper_alpha_choice_is_reasonable_and_framework_beats_easgd() {
        let rows = ext_elastic_ablation();
        let by = |name: &str| {
            rows.iter()
                .find(|r| r.config.contains(name))
                .unwrap_or_else(|| panic!("missing {name}"))
                .clone()
        };
        // The paper's default α = 0.5 at N = 2 reaches the target.
        assert!(by("alpha=0.5").epochs.is_some());
        // The decoupled framework with Adam beats coupled EASGD+SGD — the
        // §3.1 argument for building a framework instead of an optimizer.
        let avg = by("N=2, alpha=1/N");
        let easgd = by("classic EASGD");
        let avg_e = avg.epochs.unwrap_or(f64::INFINITY);
        let easgd_e = easgd.epochs.unwrap_or(f64::INFINITY);
        assert!(avg_e < easgd_e || easgd.epochs.is_none(), "AvgPipe {avg_e} vs EASGD {easgd_e}");
    }
}
