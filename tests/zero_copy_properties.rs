//! Property-based tests of the zero-copy hot path: every `_into` kernel
//! must produce bit-identical results to its allocating counterpart even
//! when handed a dirty, wrongly-shaped output tensor.

use ea_tensor::{
    log_softmax_rows, log_softmax_rows_into, matmul, matmul_a_bt, matmul_a_bt_into, matmul_at_b,
    matmul_at_b_into, matmul_into, softmax_rows, softmax_rows_into, transpose, transpose_into,
    Tensor,
};
use proptest::prelude::*;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(v, &[rows, cols]))
}

/// A deliberately hostile output tensor: wrong shape, poisoned contents.
/// `_into` kernels must fully overwrite it regardless of what it held.
fn dirty_out() -> Tensor {
    Tensor::from_vec(vec![f32::NAN; 7], &[7])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `matmul_into` is bit-identical to `matmul`, independent of the
    /// previous contents or shape of the output buffer.
    #[test]
    fn matmul_into_matches_allocating(a in tensor_strategy(4, 6), b in tensor_strategy(6, 3)) {
        let expect = matmul(&a, &b);
        let mut out = dirty_out();
        matmul_into(&a, &b, &mut out);
        prop_assert_eq!(out.dims(), expect.dims());
        prop_assert_eq!(out.data(), expect.data());
    }

    /// `matmul_a_bt_into` (the backward-dx kernel) is bit-identical to
    /// `matmul_a_bt`, which itself must stay bit-identical to multiplying
    /// by a materialized transpose.
    #[test]
    fn matmul_a_bt_into_matches_allocating(a in tensor_strategy(5, 4), b in tensor_strategy(3, 4)) {
        let expect = matmul_a_bt(&a, &b);
        let mut out = dirty_out();
        matmul_a_bt_into(&a, &b, &mut out);
        prop_assert_eq!(out.dims(), expect.dims());
        prop_assert_eq!(out.data(), expect.data());
        let via_transpose = matmul(&a, &transpose(&b));
        prop_assert_eq!(out.data(), via_transpose.data());
    }

    /// `matmul_at_b_into` (the weight-gradient kernel) is bit-identical
    /// to `matmul_at_b`.
    #[test]
    fn matmul_at_b_into_matches_allocating(a in tensor_strategy(4, 3), b in tensor_strategy(4, 5)) {
        let expect = matmul_at_b(&a, &b);
        let mut out = dirty_out();
        matmul_at_b_into(&a, &b, &mut out);
        prop_assert_eq!(out.dims(), expect.dims());
        prop_assert_eq!(out.data(), expect.data());
    }

    /// `transpose_into` is bit-identical to `transpose`.
    #[test]
    fn transpose_into_matches_allocating(a in tensor_strategy(3, 7)) {
        let expect = transpose(&a);
        let mut out = dirty_out();
        transpose_into(&a, &mut out);
        prop_assert_eq!(out.dims(), expect.dims());
        prop_assert_eq!(out.data(), expect.data());
    }

    /// `softmax_rows_into` and `log_softmax_rows_into` are bit-identical
    /// to their allocating forms.
    #[test]
    fn softmax_intos_match_allocating(a in tensor_strategy(4, 9)) {
        let expect = softmax_rows(&a);
        let mut out = dirty_out();
        softmax_rows_into(&a, &mut out);
        prop_assert_eq!(out.dims(), expect.dims());
        prop_assert_eq!(out.data(), expect.data());

        let expect = log_softmax_rows(&a);
        let mut out = dirty_out();
        log_softmax_rows_into(&a, &mut out);
        prop_assert_eq!(out.dims(), expect.dims());
        prop_assert_eq!(out.data(), expect.data());
    }

    /// `_into` kernels tolerate output aliasing the *shape* of the result
    /// without aliasing its memory: reusing the same output tensor across
    /// calls never lets stale values leak through.
    #[test]
    fn reused_output_never_leaks_stale_values(
        a in tensor_strategy(4, 6),
        b in tensor_strategy(6, 3),
        c in tensor_strategy(4, 6),
        d in tensor_strategy(6, 3),
    ) {
        let mut out = Tensor::zeros(&[0]);
        matmul_into(&a, &b, &mut out);
        matmul_into(&c, &d, &mut out);
        let expect = matmul(&c, &d);
        prop_assert_eq!(out.data(), expect.data());
    }
}
