//! Synthetic datasets standing in for WMT16, QQP and Penn Treebank.
//!
//! The paper's statistical-efficiency comparison (Figure 14) measures
//! *relative* epochs-to-target between training semantics — sequential
//! (PyTorch), multi-version stale (PipeDream), bounded-stale
//! (PipeDream-2BW) and elastic averaging (AvgPipe). The real corpora are
//! multi-gigabyte downloads, so each workload gets a synthetic task over
//! the same interface with a reachable target metric:
//!
//! * **Copy-translation** (GNMT stand-in): the target of token `t` is the
//!   *previous* token `x[t−1]` (`x[0]` for the first position) — solvable
//!   only by carrying state through the recurrence, so it genuinely
//!   exercises the LSTM stack, while staying learnable at analogue scale.
//! * **Masked-token denoising** (BERT stand-in): tokens are drawn from a
//!   sparse Markov chain and a fraction are replaced by `MASK`; the model
//!   reconstructs the originals from bidirectional context.
//! * **Next-token language modeling** (AWD stand-in): predict the Markov
//!   chain's next token.

mod metrics;

pub use metrics::{perplexity, top_k_accuracy};

use ea_tensor::{Tensor, TensorRng};

/// Reserved mask token id for the masked-denoising task.
pub const MASK_TOKEN: usize = 0;

/// One batch of token data, laid out batch-major (`row = b*seq + t`) as
/// the sequence layers expect.
#[derive(Clone, Debug)]
pub struct Batch {
    /// Token ids encoded as f32, shape `[batch*seq]`.
    pub input: Tensor,
    /// Per-row target class.
    pub targets: Vec<usize>,
    /// Samples in the batch.
    pub batch_size: usize,
    /// Sequence length.
    pub seq: usize,
}

impl Batch {
    /// Slices this batch into micro-batches of up to `micro` samples,
    /// preserving sample boundaries.
    pub fn split_micro(&self, micro: usize) -> Vec<Batch> {
        assert!(micro > 0, "micro-batch size must be positive");
        let mut out = Vec::new();
        let mut b0 = 0;
        while b0 < self.batch_size {
            let bs = micro.min(self.batch_size - b0);
            let rows = bs * self.seq;
            let r0 = b0 * self.seq;
            out.push(Batch {
                input: Tensor::from_vec(self.input.data()[r0..r0 + rows].to_vec(), &[rows]),
                targets: self.targets[r0..r0 + rows].to_vec(),
                batch_size: bs,
                seq: self.seq,
            });
            b0 += bs;
        }
        out
    }
}

/// The three task families.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskKind {
    /// Sequence transduction requiring recurrence (GNMT stand-in).
    CopyTranslate,
    /// Masked-token denoising (BERT stand-in).
    MaskedDenoise,
    /// Next-token prediction (AWD stand-in).
    NextToken,
}

/// A deterministic synthetic task.
///
/// Batches are pure functions of `(task seed, batch index)`, so every
/// training system under comparison sees byte-identical data streams, and
/// evaluation batches (negative index space) never overlap training.
pub struct SyntheticTask {
    kind: TaskKind,
    vocab: usize,
    seq: usize,
    seed: u64,
    mask_p: f64,
    /// Row-major `vocab × vocab` cumulative transition rows of a sparse
    /// Markov chain (used by MaskedDenoise and NextToken).
    chain: Vec<f32>,
}

impl SyntheticTask {
    /// Copy-translation task over `vocab` tokens (vocab ≥ 4).
    pub fn copy_translate(vocab: usize, seq: usize, seed: u64) -> Self {
        Self::new(TaskKind::CopyTranslate, vocab, seq, seed, 0.0)
    }

    /// Masked-denoising task; `mask_p` is the masking probability.
    pub fn masked_denoise(vocab: usize, seq: usize, mask_p: f64, seed: u64) -> Self {
        Self::new(TaskKind::MaskedDenoise, vocab, seq, seed, mask_p)
    }

    /// Next-token language-modeling task.
    pub fn next_token(vocab: usize, seq: usize, seed: u64) -> Self {
        Self::new(TaskKind::NextToken, vocab, seq, seed, 0.0)
    }

    fn new(kind: TaskKind, vocab: usize, seq: usize, seed: u64, mask_p: f64) -> Self {
        assert!(vocab >= 4, "vocab too small");
        assert!(seq >= 2, "sequence too short");
        let chain = Self::build_chain(vocab, seed);
        SyntheticTask { kind, vocab, seq, seed, mask_p, chain }
    }

    /// Sparse row-stochastic chain: each token has 4 likely successors.
    fn build_chain(vocab: usize, seed: u64) -> Vec<f32> {
        let mut rng = TensorRng::seed_from_u64(seed ^ 0xC0FF_EE00);
        let mut rows = vec![0.0f32; vocab * vocab];
        for v in 0..vocab {
            let row = &mut rows[v * vocab..(v + 1) * vocab];
            for _ in 0..4 {
                let succ = rng.below(vocab);
                row[succ] += 1.0 + rng.uniform(0.0, 1.0);
            }
            // Small smoothing so every transition is possible.
            let total: f32 = row.iter().sum::<f32>() + 0.04 * vocab as f32;
            let mut acc = 0.0f32;
            for x in row.iter_mut() {
                acc += (*x + 0.04) / total;
                *x = acc;
            }
            row[vocab - 1] = 1.0;
        }
        rows
    }

    fn sample_chain(&self, prev: usize, u: f32) -> usize {
        let row = &self.chain[prev * self.vocab..(prev + 1) * self.vocab];
        match row.iter().position(|&c| u < c) {
            Some(i) => i,
            None => self.vocab - 1,
        }
    }

    /// The vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Sequence length.
    pub fn seq(&self) -> usize {
        self.seq
    }

    /// Task kind.
    pub fn kind(&self) -> TaskKind {
        self.kind
    }

    /// Deterministically generates training batch number `index`.
    pub fn batch(&self, batch_size: usize, index: u64) -> Batch {
        self.gen(batch_size, index.wrapping_add(1) << 1)
    }

    /// Deterministically generates evaluation batch number `index`, from a
    /// stream disjoint with training batches.
    pub fn eval_batch(&self, batch_size: usize, index: u64) -> Batch {
        self.gen(batch_size, (index.wrapping_add(1) << 1) | 1)
    }

    fn gen(&self, batch_size: usize, stream: u64) -> Batch {
        let mut rng = TensorRng::seed_from_u64(self.seed ^ stream.wrapping_mul(0x9E37_79B9));
        let rows = batch_size * self.seq;
        let mut input = Vec::with_capacity(rows);
        let mut targets = Vec::with_capacity(rows);
        for _ in 0..batch_size {
            match self.kind {
                TaskKind::CopyTranslate => {
                    let mut prev: Option<usize> = None;
                    for _ in 0..self.seq {
                        let t = rng.below(self.vocab);
                        input.push(t as f32);
                        targets.push(prev.unwrap_or(t));
                        prev = Some(t);
                    }
                }
                TaskKind::MaskedDenoise => {
                    let mut cur = 1 + rng.below(self.vocab - 1);
                    let mut orig = Vec::with_capacity(self.seq);
                    for _ in 0..self.seq {
                        orig.push(cur);
                        cur = self.sample_chain(cur, rng.uniform(0.0, 1.0)).max(1);
                    }
                    for &t in &orig {
                        let masked = rng.coin(self.mask_p);
                        input.push(if masked { MASK_TOKEN as f32 } else { t as f32 });
                        targets.push(t);
                    }
                }
                TaskKind::NextToken => {
                    let mut cur = rng.below(self.vocab);
                    for _ in 0..self.seq {
                        let next = self.sample_chain(cur, rng.uniform(0.0, 1.0));
                        input.push(cur as f32);
                        targets.push(next);
                        cur = next;
                    }
                }
            }
        }
        Batch { input: Tensor::from_vec(input, &[rows]), targets, batch_size, seq: self.seq }
    }
}

/// Fraction of rows whose argmax prediction matches the target.
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> f64 {
    let preds = ea_tensor::argmax_rows(logits);
    assert_eq!(preds.len(), targets.len(), "prediction/target count mismatch");
    let hits = preds.iter().zip(targets).filter(|(p, t)| p == t).count();
    hits as f64 / targets.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_are_deterministic() {
        let t = SyntheticTask::next_token(16, 5, 42);
        let a = t.batch(4, 7);
        let b = t.batch(4, 7);
        assert_eq!(a.input, b.input);
        assert_eq!(a.targets, b.targets);
        let c = t.batch(4, 8);
        assert_ne!(a.input, c.input);
    }

    #[test]
    fn eval_stream_is_disjoint_from_training() {
        let t = SyntheticTask::next_token(16, 5, 42);
        let train = t.batch(4, 0);
        let eval = t.eval_batch(4, 0);
        assert_ne!(train.input, eval.input);
    }

    #[test]
    fn copy_translate_targets_are_lagged_inputs() {
        let t = SyntheticTask::copy_translate(10, 4, 1);
        let b = t.batch(3, 0);
        for s in 0..3 {
            assert_eq!(b.targets[s * 4], b.input.data()[s * 4] as usize);
            for i in 1..4 {
                assert_eq!(b.targets[s * 4 + i], b.input.data()[s * 4 + i - 1] as usize);
            }
        }
    }

    #[test]
    fn masked_denoise_masks_and_preserves_targets() {
        let t = SyntheticTask::masked_denoise(12, 50, 0.4, 3);
        let b = t.batch(8, 0);
        let masked = b.input.data().iter().filter(|&&v| v as usize == MASK_TOKEN).count();
        let frac = masked as f64 / b.input.numel() as f64;
        assert!((0.25..0.55).contains(&frac), "mask fraction {frac}");
        // Targets never contain the mask token (chain avoids 0).
        assert!(b.targets.iter().all(|&t| t != MASK_TOKEN));
    }

    #[test]
    fn next_token_targets_follow_input() {
        let t = SyntheticTask::next_token(8, 6, 5);
        let b = t.batch(2, 0);
        for s in 0..2 {
            for i in 0..5 {
                // target[i] becomes input[i+1].
                assert_eq!(b.targets[s * 6 + i], b.input.data()[s * 6 + i + 1] as usize);
            }
        }
    }

    #[test]
    fn chain_is_learnable_not_uniform() {
        // The Markov chain must be predictable above chance for LM tasks
        // to have a reachable target.
        let t = SyntheticTask::next_token(16, 200, 9);
        let b = t.batch(4, 0);
        // Best-successor baseline: predict the most common successor of
        // each token observed in the batch.
        let mut counts = vec![[0u32; 16]; 16];
        for s in 0..4 {
            for i in 0..199 {
                let cur = b.input.data()[s * 200 + i] as usize;
                counts[cur][b.targets[s * 200 + i]] += 1;
            }
        }
        let mut hits = 0u32;
        let mut total = 0u32;
        for s in 0..4 {
            for i in 0..199 {
                let cur = b.input.data()[s * 200 + i] as usize;
                let best = (0..16).max_by_key(|&j| counts[cur][j]).unwrap();
                hits += u32::from(best == b.targets[s * 200 + i]);
                total += 1;
            }
        }
        let acc = hits as f64 / total as f64;
        assert!(acc > 0.25, "chain accuracy {acc} barely above chance 1/16");
    }

    #[test]
    fn split_micro_preserves_content() {
        let t = SyntheticTask::copy_translate(10, 4, 1);
        let b = t.batch(5, 0);
        let micros = b.split_micro(2);
        assert_eq!(micros.len(), 3);
        assert_eq!(micros[0].batch_size, 2);
        assert_eq!(micros[2].batch_size, 1);
        let rejoined: Vec<f32> = micros.iter().flat_map(|m| m.input.data().to_vec()).collect();
        assert_eq!(rejoined, b.input.data());
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
        assert_eq!(accuracy(&logits, &[1, 1]), 0.5);
    }
}
