//! Figures 15, 18 and 19: batch-size scaling and tuning-method quality.

use crate::experiments::common::workload_env;
use crate::{EFFECTIVE_GPU_MEM, MAX_PIPELINES};
use avgpipe::{run_avgpipe, run_baseline, tune, BaselineKind, TuneMethod};
use ea_models::Workload;
use ea_sched::{partition_model, pipeline_program, PipeStyle, PipelinePlan};
use ea_sim::Simulator;
use serde::Serialize;

/// One batch-size point of Figure 15.
#[derive(Clone, Debug, Serialize)]
pub struct Fig15Row {
    /// Batch size.
    pub batch: usize,
    /// GPipe's per-epoch training time (hours).
    pub gpipe_epoch_h: f64,
    /// AvgPipe(G)'s per-epoch training time (hours).
    pub avgpipe_epoch_h: f64,
    /// AvgPipe's chosen `(M, N)`.
    pub m: usize,
    /// Chosen pipeline count.
    pub n: usize,
}

/// Figure 15: varying the GNMT batch size from 64 to 256.
#[derive(Clone, Debug, Serialize)]
pub struct Fig15 {
    /// One row per batch size.
    pub rows: Vec<Fig15Row>,
}

/// Regenerates Figure 15.
pub fn fig15_batch_sweep() -> Fig15 {
    let env = workload_env(Workload::Gnmt);
    let dataset_pairs = 4_500_000f64;
    let rows = [64usize, 128, 256]
        .into_iter()
        .map(|batch| {
            let gpipe = run_baseline(
                BaselineKind::GPipe,
                &env.spec,
                &env.cluster,
                batch,
                env.opt_state_per_param,
                EFFECTIVE_GPU_MEM,
            );
            // Ground-truth (traversal) tuning per batch size — this
            // figure studies batch-size scaling, not tuner quality.
            let avg = run_avgpipe(
                &env.spec,
                &env.cluster,
                batch,
                env.opt_state_per_param,
                (gpipe.max_peak_mem as f64 * 1.05) as u64,
                TuneMethod::Traversal,
                MAX_PIPELINES,
            );
            let batches = dataset_pairs / batch as f64;
            Fig15Row {
                batch,
                gpipe_epoch_h: gpipe.time_per_batch_s * batches / 3600.0,
                avgpipe_epoch_h: avg.time_per_batch_s * batches / 3600.0,
                m: avg.m,
                n: avg.n,
            }
        })
        .collect();
    Fig15 { rows }
}

/// One tuning method's outcome (Figures 18 and 19 combined).
#[derive(Clone, Debug, Serialize)]
pub struct TuningRow {
    /// Method name.
    pub method: String,
    /// Tuning cost in simulated cluster minutes (Figure 18).
    pub tuning_cost_min: f64,
    /// Chosen `(M, N)`.
    pub m: usize,
    /// Chosen pipeline count.
    pub n: usize,
    /// Measured per-batch time of the chosen setting, seconds (Fig. 19).
    pub time_per_batch_s: f64,
}

/// Regenerates Figures 18 and 19 for one workload.
pub fn fig18_19_tuning(w: Workload) -> Vec<TuningRow> {
    let env = workload_env(w);
    let part = partition_model(&env.spec, env.cluster.num_devices());
    let sim = Simulator::new(env.cluster.clone());
    let evaluate = |m: usize, n: usize| -> f64 {
        let plan = PipelinePlan::new(
            env.spec.clone(),
            env.cluster.clone(),
            part.clone(),
            env.batch,
            m,
            env.opt_state_per_param,
        );
        let kk = part.len();
        let prog = pipeline_program(&plan, &PipeStyle::avgpipe(n, kk - 1), 4);
        match sim.run(&prog) {
            Ok(r) => r.makespan_us * 1e-6 / (4.0 * n as f64),
            Err(_) => f64::INFINITY,
        }
    };
    [TuneMethod::Traversal, TuneMethod::MaxNum, TuneMethod::MaxSize, TuneMethod::ProfilingBased]
        .into_iter()
        .map(|method| {
            let o = tune(
                &env.spec,
                &env.cluster,
                &part,
                env.batch,
                env.opt_state_per_param,
                EFFECTIVE_GPU_MEM,
                method,
                MAX_PIPELINES,
            );
            TuningRow {
                method: method.name().to_string(),
                tuning_cost_min: o.tuning_cost_s / 60.0,
                m: o.m,
                n: o.n,
                time_per_batch_s: evaluate(o.m, o.n),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn awd_tuning_shapes() {
        let rows = fig18_19_tuning(Workload::Awd);
        let by = |n: &str| rows.iter().find(|r| r.method == n).unwrap().clone();
        let traversal = by("traversal");
        let profiling = by("profiling");
        let max_num = by("max-num");
        // Figure 18: profiling is far cheaper than traversal.
        assert!(profiling.tuning_cost_min * 3.0 < traversal.tuning_cost_min);
        // Figure 19: profiling is near traversal; max-num is much worse
        // on AWD.
        assert!(profiling.time_per_batch_s <= traversal.time_per_batch_s * 2.0);
        assert!(max_num.time_per_batch_s > traversal.time_per_batch_s * 2.0);
    }
}
