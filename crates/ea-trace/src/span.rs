//! Span guards: time a scope, record it on drop.
//!
//! ```
//! use ea_trace::{span, Category, StaticName};
//! static FWD: StaticName = StaticName::new("fwd");
//!
//! fn forward_one_micro(micro: u64) {
//!     let _span = span(&FWD, Category::Compute).with_arg(micro);
//!     // ... the work being timed ...
//! }
//! ```
//!
//! When tracing is off the guard is inert: construction is one relaxed
//! atomic load and drop does nothing.

use crate::clock;
use crate::level::spans_enabled;
use crate::name::StaticName;
use crate::ring::{self, Category, RawEvent};

/// An in-flight span; records itself into the thread ring when dropped.
#[must_use = "a span measures the scope it is bound to"]
pub struct SpanGuard {
    name: u32,
    cat: Category,
    arg: u64,
    t0: u64,
    active: bool,
}

impl SpanGuard {
    /// Attaches a site-defined argument (micro index, bytes, round …).
    pub fn with_arg(mut self, arg: u64) -> SpanGuard {
        self.arg = arg;
        self
    }

    /// Sets the argument on an already-bound guard.
    pub fn set_arg(&mut self, arg: u64) {
        self.arg = arg;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            let t1 = clock::now_us();
            ring::record(RawEvent {
                name: self.name,
                cat: self.cat as u8,
                t0_us: self.t0,
                t1_us: t1,
                arg: self.arg,
            });
        }
    }
}

/// Opens a span; the returned guard records `[now, drop]` when tracing
/// is at the `spans` level, and is inert otherwise.
#[inline]
pub fn span(name: &StaticName, cat: Category) -> SpanGuard {
    if !spans_enabled() {
        return SpanGuard { name: 0, cat, arg: 0, t0: 0, active: false };
    }
    SpanGuard { name: name.id(), cat, arg: 0, t0: clock::now_us(), active: true }
}

/// [`span`] with the argument set up front.
#[inline]
pub fn span_arg(name: &StaticName, cat: Category, arg: u64) -> SpanGuard {
    span(name, cat).with_arg(arg)
}

/// Records a zero-duration event at the current time.
#[inline]
pub fn instant(name: &StaticName, cat: Category, arg: u64) {
    if !spans_enabled() {
        return;
    }
    ring::record_instant(name.id(), cat, arg);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::{set_level, test_level_lock, Level};

    static TEST_SPAN: StaticName = StaticName::new("span-test-scope");
    static TEST_MARK: StaticName = StaticName::new("span-test-mark");

    #[test]
    fn spans_and_instants_reach_the_ring() {
        let _guard = test_level_lock();
        let before = crate::level::level();
        set_level(Level::Spans);
        {
            let _s = span_arg(&TEST_SPAN, Category::Compute, 42);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        instant(&TEST_MARK, Category::Runtime, 7);
        let events = ring::drain();
        let s = events.iter().find(|e| e.name == "span-test-scope").expect("span recorded");
        assert_eq!(s.arg, 42);
        assert_eq!(s.cat, Category::Compute);
        assert!(s.t1_us > s.t0_us, "sleep must give the span visible duration");
        let m = events.iter().find(|e| e.name == "span-test-mark").expect("instant recorded");
        assert_eq!(m.t0_us, m.t1_us);
        assert_eq!(m.arg, 7);
        set_level(before);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = test_level_lock();
        let before = crate::level::level();
        set_level(Level::Off);
        static OFF_SPAN: StaticName = StaticName::new("span-test-off");
        {
            let _s = span(&OFF_SPAN, Category::Compute);
        }
        instant(&OFF_SPAN, Category::Compute, 0);
        assert!(!ring::drain().iter().any(|e| e.name == "span-test-off"));
        set_level(before);
    }
}
