//! Token-embedding lookup layer.

use crate::{ForwardCtx, Layer, Param, Saved};
use ea_tensor::{uniform, Tensor, TensorRng};

/// Embedding table `[vocab, dim]`.
///
/// The input tensor carries token ids encoded as `f32` values (rounded to
/// the nearest integer). This keeps every stage boundary a plain `Tensor`,
/// which is what lets the pipeline runtime treat all stages uniformly; the
/// first stage of each analogue model starts with an `Embedding`.
pub struct Embedding {
    table: Param,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Creates an embedding table with small uniform initialization.
    pub fn new(vocab: usize, dim: usize, rng: &mut TensorRng) -> Self {
        let bound = (1.0 / dim as f32).sqrt();
        Embedding {
            table: Param::new("embedding.table", uniform(&[vocab, dim], -bound, bound, rng)),
            vocab,
            dim,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn ids(&self, x: &Tensor) -> Vec<usize> {
        x.data()
            .iter()
            .map(|&v| {
                let id = v.round();
                assert!(
                    id >= 0.0 && (id as usize) < self.vocab,
                    "token id {v} outside vocabulary of {}",
                    self.vocab
                );
                id as usize
            })
            .collect()
    }
}

impl Layer for Embedding {
    fn forward(&self, x: &Tensor, _ctx: &ForwardCtx) -> (Tensor, Saved) {
        let ids = self.ids(x);
        let mut out = ea_tensor::pool::take_cleared(ids.len() * self.dim);
        for &id in &ids {
            out.extend_from_slice(&self.table.value.data()[id * self.dim..(id + 1) * self.dim]);
        }
        let y = Tensor::from_vec(out, &[ids.len(), self.dim]);
        // Stash the ids (as the original input tensor) for backward.
        (y, Saved::new(vec![x.clone()]))
    }

    fn backward(&mut self, saved: &Saved, dy: &Tensor) -> Tensor {
        let x = saved.get(0);
        let ids = self.ids(x);
        let (rows, cols) = dy.shape().as_matrix();
        assert_eq!(rows, ids.len(), "embedding backward row mismatch");
        assert_eq!(cols, self.dim, "embedding backward width mismatch");
        let table_grad = self.table.grad.data_mut();
        for (r, &id) in ids.iter().enumerate() {
            let g = &dy.data()[r * self.dim..(r + 1) * self.dim];
            let dst = &mut table_grad[id * self.dim..(id + 1) * self.dim];
            for (d, &gv) in dst.iter_mut().zip(g) {
                *d += gv;
            }
        }
        // Token ids receive no gradient.
        Tensor::zeros(x.dims())
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.table);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.table);
    }

    fn name(&self) -> &'static str {
        "Embedding"
    }

    fn input_vocab(&self) -> Option<usize> {
        Some(self.vocab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_selects_rows() {
        let mut rng = TensorRng::seed_from_u64(0);
        let e = Embedding::new(5, 3, &mut rng);
        let x = Tensor::from_vec(vec![2.0, 0.0], &[2]);
        let (y, _) = e.forward(&x, &ForwardCtx::eval());
        assert_eq!(y.dims(), &[2, 3]);
        assert_eq!(y.row(0).data(), &e.table.value.data()[6..9]);
        assert_eq!(y.row(1).data(), &e.table.value.data()[0..3]);
    }

    #[test]
    fn backward_scatters_gradient_and_handles_repeats() {
        let mut rng = TensorRng::seed_from_u64(0);
        let mut e = Embedding::new(4, 2, &mut rng);
        let x = Tensor::from_vec(vec![1.0, 1.0, 3.0], &[3]);
        let (_, s) = e.forward(&x, &ForwardCtx::eval());
        let dy = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let dx = e.backward(&s, &dy);
        assert_eq!(dx.dims(), &[3]);
        assert_eq!(dx.sum(), 0.0);
        // Token 1 appears twice: gradients sum.
        assert_eq!(&e.table.grad.data()[2..4], &[1.0 + 3.0, 2.0 + 4.0]);
        assert_eq!(&e.table.grad.data()[6..8], &[5.0, 6.0]);
        assert_eq!(&e.table.grad.data()[0..2], &[0.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn out_of_vocab_id_panics() {
        let mut rng = TensorRng::seed_from_u64(0);
        let e = Embedding::new(4, 2, &mut rng);
        let x = Tensor::from_vec(vec![4.0], &[1]);
        e.forward(&x, &ForwardCtx::eval());
    }
}
