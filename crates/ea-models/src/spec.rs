//! Cost models of the paper's three workloads.

use serde::{Deserialize, Serialize};

/// The three evaluation workloads of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Workload {
    /// Google NMT (seq2seq LSTM), WMT16, Adam, batch 128.
    Gnmt,
    /// BERT-large on QQP, Adam, batch 32.
    Bert,
    /// AWD-LSTM on Penn Treebank, SGD/ASGD, batch 40.
    Awd,
}

impl Workload {
    /// The cost spec for this workload.
    pub fn spec(self) -> ModelSpec {
        match self {
            Workload::Gnmt => gnmt_spec(),
            Workload::Bert => bert_spec(),
            Workload::Awd => awd_spec(),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Gnmt => "GNMT",
            Workload::Bert => "BERT",
            Workload::Awd => "AWD",
        }
    }

    /// All three workloads, in paper order.
    pub fn all() -> [Workload; 3] {
        [Workload::Gnmt, Workload::Bert, Workload::Awd]
    }
}

/// First-order cost of one model layer, per *sample* (sequence).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LayerCost {
    /// Layer name for diagnostics.
    pub name: String,
    /// Parameter bytes (fp32).
    pub param_bytes: u64,
    /// Forward FLOPs per sample.
    pub fwd_flops: f64,
    /// Bytes stashed during forward for the backward pass, per sample.
    pub act_stash_bytes: u64,
    /// Bytes of the layer's output activation, per sample (what crosses a
    /// stage boundary placed after this layer).
    pub out_bytes: u64,
}

/// A complete workload cost model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Workload name.
    pub name: String,
    /// Per-layer costs, in network order.
    pub layers: Vec<LayerCost>,
    /// Backward/forward FLOP ratio (≈ 2 for dense nets).
    pub bwd_factor: f64,
    /// Micro-batch size at which a kernel reaches 50% of its achievable
    /// throughput — the arithmetic-intensity saturation constant. Small
    /// micro-batches of this model run far below peak, which is the
    /// paper's "low peak utilization" effect.
    pub demand_half: f64,
    /// The fraction of peak FLOPS this model's kernels can reach even at
    /// large micro-batches (recurrent kernels cap well below dense-GEMM
    /// peak). Parallel pipelines stack demand up to the device limit,
    /// which is how AvgPipe raises *peak* utilization (§2).
    pub demand_cap: f64,
    /// The batch size used in the paper's experiments.
    pub default_batch: usize,
    /// Per-sample input bytes entering stage 0.
    pub input_bytes: u64,
}

impl ModelSpec {
    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total parameter bytes.
    pub fn total_param_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.param_bytes).sum()
    }

    /// Total forward FLOPs per sample.
    pub fn total_fwd_flops(&self) -> f64 {
        self.layers.iter().map(|l| l.fwd_flops).sum()
    }

    /// Compute demand (fraction of peak a kernel can use) for a
    /// micro-batch of `micro` samples: `u = cap · micro / (micro + half)`,
    /// saturating toward `demand_cap`.
    pub fn demand(&self, micro: usize) -> f64 {
        let m = micro as f64;
        (self.demand_cap * m / (m + self.demand_half)).clamp(1e-3, 1.0)
    }

    /// Aggregate costs of a contiguous stage `[lo, hi)`:
    /// `(param_bytes, fwd_flops/sample, stash_bytes/sample, out_bytes/sample)`.
    pub fn stage_cost(&self, lo: usize, hi: usize) -> (u64, f64, u64, u64) {
        assert!(lo < hi && hi <= self.layers.len(), "bad stage range {lo}..{hi}");
        let params: u64 = self.layers[lo..hi].iter().map(|l| l.param_bytes).sum();
        let flops: f64 = self.layers[lo..hi].iter().map(|l| l.fwd_flops).sum();
        let stash: u64 = self.layers[lo..hi].iter().map(|l| l.act_stash_bytes).sum();
        let out = self.layers[hi - 1].out_bytes;
        (params, flops, stash, out)
    }

    /// Bytes of the activation entering layer `lo` (the input boundary of
    /// a stage starting at `lo`).
    pub fn boundary_bytes(&self, lo: usize) -> u64 {
        if lo == 0 {
            self.input_bytes
        } else {
            self.layers[lo - 1].out_bytes
        }
    }
}

/// GNMT: 8+8 LSTM layers of hidden 1024, vocab 32k, seq 50 — ≈ 210 M
/// parameters. Trained with Adam, batch 128 (paper §7).
pub fn gnmt_spec() -> ModelSpec {
    let h: u64 = 1024;
    let vocab: u64 = 32_000;
    let seq: u64 = 50;
    let act = seq * h * 4;
    let mut layers = vec![LayerCost {
        name: "embedding".into(),
        param_bytes: vocab * h * 4,
        fwd_flops: 2e7,
        act_stash_bytes: seq * 4,
        out_bytes: act,
    }];
    for i in 0..16 {
        layers.push(LayerCost {
            name: format!("lstm{i}"),
            param_bytes: 4 * h * (2 * h) * 4 + 4 * h * 4,
            // 2 × [4h × (in + h)] MACs per token, `seq` tokens.
            fwd_flops: (2 * seq * 4 * h * (2 * h)) as f64,
            // Training without recomputation stores every intermediate:
            // gates, cell/hidden states, attention queries/contexts,
            // residual and dropout buffers — ~24 hidden-widths per token
            // (calibrated so the memory ratios across schedules match
            // the paper's Figure 12; see DESIGN.md).
            act_stash_bytes: seq * 24 * h * 4,
            out_bytes: act,
        });
    }
    layers.push(LayerCost {
        name: "softmax-proj".into(),
        param_bytes: h * vocab * 4,
        fwd_flops: (2 * seq * h * vocab) as f64,
        act_stash_bytes: act,
        out_bytes: seq * vocab * 4,
    });
    ModelSpec {
        name: "GNMT".into(),
        layers,
        bwd_factor: 2.0,
        demand_half: 4.0,
        demand_cap: 0.3,
        default_batch: 128,
        input_bytes: seq * 4,
    }
}

/// BERT-large: 24 transformer layers, hidden 1024, 16 heads, seq 128,
/// vocab 30k — ≈ 340 M parameters. Adam, batch 32 (paper §7).
pub fn bert_spec() -> ModelSpec {
    let h: u64 = 1024;
    let vocab: u64 = 30_000;
    let seq: u64 = 128;
    let heads: u64 = 16;
    let act = seq * h * 4;
    let mut layers = vec![LayerCost {
        name: "embedding".into(),
        param_bytes: (vocab + 512) * h * 4,
        fwd_flops: 3e7,
        act_stash_bytes: seq * 4,
        out_bytes: act,
    }];
    for i in 0..24 {
        layers.push(LayerCost {
            name: format!("encoder{i}"),
            // QKVO (4h²) + FFN (8h²) weights.
            param_bytes: 12 * h * h * 4 + 13 * h * 4,
            // Projections: 2·seq·12h²; attention scores+context:
            // 2·2·seq²·h.
            fwd_flops: (2 * seq * 12 * h * h + 4 * seq * seq * h) as f64,
            // QKV, attention output, FFN intermediates, GELU inputs,
            // layer-norm stats and dropout buffers (≈ 40h per token),
            // plus softmax inputs/outputs/masks per head (calibrated to
            // the paper's Figure 12 ratios; see DESIGN.md).
            act_stash_bytes: seq * 40 * h * 4 + 3 * heads * seq * seq * 4,
            out_bytes: act,
        });
    }
    layers.push(LayerCost {
        name: "cls-head".into(),
        param_bytes: h * vocab * 4,
        fwd_flops: (2 * seq * h * vocab) as f64,
        act_stash_bytes: act,
        out_bytes: seq * vocab * 4,
    });
    ModelSpec {
        name: "BERT".into(),
        layers,
        bwd_factor: 2.0,
        demand_half: 6.0,
        demand_cap: 0.75,
        default_batch: 32,
        input_bytes: seq * 4,
    }
}

/// AWD-LSTM: 3 LSTM layers (1150 hidden, 400-dim embeddings), vocab 10k,
/// seq 70 — ≈ 24 M parameters. SGD/ASGD, batch 40 (paper §7).
pub fn awd_spec() -> ModelSpec {
    let emb: u64 = 400;
    let h: u64 = 1150;
    let vocab: u64 = 10_000;
    let seq: u64 = 70;
    let dims = [(emb, h), (h, h), (h, emb)];
    let mut layers = vec![LayerCost {
        name: "embedding".into(),
        param_bytes: vocab * emb * 4,
        fwd_flops: 1e6,
        act_stash_bytes: seq * 4,
        out_bytes: seq * emb * 4,
    }];
    for (i, (din, dout)) in dims.iter().enumerate() {
        layers.push(LayerCost {
            name: format!("lstm{i}"),
            param_bytes: 4 * dout * (din + dout) * 4 + 4 * dout * 4,
            fwd_flops: (2 * seq * 4 * dout * (din + dout)) as f64,
            // Gates, cell/hidden states, weight-drop masks and the
            // pre-dropout copies AWD-LSTM training keeps per token.
            act_stash_bytes: seq * 24 * dout * 4,
            out_bytes: seq * dout * 4,
        });
    }
    layers.push(LayerCost {
        name: "decoder".into(),
        param_bytes: emb * vocab * 4,
        fwd_flops: (2 * seq * emb * vocab) as f64,
        act_stash_bytes: seq * emb * 4,
        out_bytes: seq * vocab * 4,
    });
    ModelSpec {
        name: "AWD".into(),
        layers,
        bwd_factor: 2.0,
        // Small model: kernels need large micro-batches to approach even
        // their modest cap — this is why max-size wins on AWD (Fig. 19).
        demand_half: 16.0,
        demand_cap: 0.2,
        default_batch: 40,
        input_bytes: seq * 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnmt_parameter_count_in_range() {
        let s = gnmt_spec();
        let params = s.total_param_bytes() / 4;
        assert!((150_000_000..350_000_000).contains(&params), "GNMT params {params}");
    }

    #[test]
    fn bert_parameter_count_matches_bert_large() {
        let s = bert_spec();
        let params = s.total_param_bytes() / 4;
        assert!((280_000_000..420_000_000).contains(&params), "BERT params {params}");
    }

    #[test]
    fn awd_parameter_count_in_range() {
        let s = awd_spec();
        let params = s.total_param_bytes() / 4;
        assert!((15_000_000..40_000_000).contains(&params), "AWD params {params}");
    }

    #[test]
    fn demand_curve_saturates_at_cap() {
        let s = gnmt_spec();
        assert!(s.demand(1) < 0.2);
        assert!(s.demand(128) > 0.9 * s.demand_cap);
        assert!(s.demand(128) <= s.demand_cap);
        assert!(s.demand(6) > s.demand(3));
        assert!(s.demand(1_000_000) <= 1.0);
    }

    #[test]
    fn stage_cost_sums_layers() {
        let s = awd_spec();
        let (p, f, a, o) = s.stage_cost(0, s.num_layers());
        assert_eq!(p, s.total_param_bytes());
        assert!((f - s.total_fwd_flops()).abs() < 1.0);
        assert!(a > 0);
        assert_eq!(o, s.layers.last().unwrap().out_bytes);
    }

    #[test]
    fn boundary_bytes_align_with_layers() {
        let s = bert_spec();
        assert_eq!(s.boundary_bytes(0), s.input_bytes);
        assert_eq!(s.boundary_bytes(1), s.layers[0].out_bytes);
    }

    #[test]
    #[should_panic]
    fn stage_cost_rejects_empty_range() {
        gnmt_spec().stage_cost(3, 3);
    }

    #[test]
    fn workload_enum_roundtrip() {
        for w in Workload::all() {
            assert_eq!(w.spec().name, w.name());
        }
    }
}
