//! The predicting phase of the tuning method: Equations (1)–(8).
//!
//! Two deliberate refinements over the paper's formulas, both documented
//! in DESIGN.md:
//!
//! 1. The paper linearizes arithmetic intensity ("we assume the
//!    arithmetic intensity is m/m* of the original", §5.2.2). We know the
//!    workload's actual saturation curve `u(b)` (it is our own cost
//!    model), so the utilization rescaling uses `u(b*)/u(b)` instead of
//!    the linear `m/m*`; the two agree exactly in the unsaturated linear
//!    regime the paper profiles in.
//! 2. All predicted quantities are *per batch of data* (the throughput
//!    the tuner must rank): compute amortizes over `n*` concurrent
//!    pipelines until device saturation (the overflow integral of
//!    Figure 8), while the per-batch link time `𝕋ᵏ` is volume-bound and
//!    independent of `n*`.

use crate::Profile;

/// Predicted per-batch behaviour of a parallelism-degree setting.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Micro-batch count `M = m*`.
    pub m: usize,
    /// Pipeline count `N = n*`.
    pub n: usize,
    /// Predicted per-batch iteration time (µs): `max_k T^k`.
    pub t_us: f64,
    /// Per-device `T^k` decomposition `(T_gpu, T_com, T_bub)` in µs.
    pub per_device_t: Vec<(f64, f64, f64)>,
    /// Predicted per-device peak memory (bytes), Equation (8) with the
    /// schedule's live-stash bound.
    pub per_device_mem: Vec<u64>,
}

impl Prediction {
    /// True if every device fits under `limit` bytes.
    pub fn fits(&self, limit: u64) -> bool {
        self.per_device_mem.iter().all(|&m| m <= limit)
    }
}

/// Predicts the per-batch time and memory of setting `(m_star, n_star)`
/// from a profile of setting `(m, n)`.
pub fn predict(profile: &Profile, m_star: usize, n_star: usize) -> Prediction {
    let ms = m_star as f64;
    let ns = n_star as f64;
    let n = profile.n as f64;
    let kk = profile.per_device.len();

    // Utilization rescaling factor: how much denser the hypothetical
    // setting's kernels are than the profiled ones.
    let u_prof = profile.spec.demand(profile.batch / profile.m);
    let u_star = profile.spec.demand(profile.batch / m_star);
    let scale = (u_star / u_prof) * (ns / n);

    // Equation (2): per-batch computation time. The hypothetical curve is
    // scale·φ(t); area above 100% converts back into time.
    let t_gpu: Vec<f64> = profile
        .per_device
        .iter()
        .map(|d| {
            let overflow_per_batch = d.trace.overflow_integral(scale) / profile.batches as f64;
            (d.t_gpu_us + overflow_per_batch) / scale
        })
        .collect();

    // Equation (4), per-batch form: the link must carry one batch's
    // volume `𝕋ᵏ` regardless of `n*`; only the first micro-batch's share
    // is inherently unoverlapped, the rest blocks only when the link
    // outpaces the (amortized) compute.
    let t_com: Vec<f64> = (0..kk)
        .map(|k| {
            let tt = profile.per_device[k].t_comm_total_us;
            tt / ms + (ms - 1.0) / ms * (tt - t_gpu[k]).max(0.0)
        })
        .collect();

    // Equations (5)–(7): bubble time via the upstream/downstream
    // recursions over first/last micro-batch fill and drain.
    let mut t_up = vec![0.0f64; kk];
    for k in 1..kk {
        let prev = &profile.per_device[k - 1];
        t_up[k] = t_up[k - 1] + (prev.t_comm_total_us + t_gpu[k - 1]) / ms;
    }
    let mut t_down = vec![0.0f64; kk];
    for k in (0..kk.saturating_sub(1)).rev() {
        let next = &profile.per_device[k + 1];
        t_down[k] = t_down[k + 1] + (next.t_comm_total_us + t_gpu[k + 1]) / ms;
    }

    let per_device_t: Vec<(f64, f64, f64)> =
        (0..kk).map(|k| (t_gpu[k], t_com[k], t_up[k] + t_down[k])).collect();
    let t_us = per_device_t.iter().map(|(g, c, b)| g + c + b).fold(0.0f64, f64::max);

    // Equation (8): memory. F_mod scales with the replica count; F_dat
    // scales with micro-batch size, replica count, and the fraction of
    // micro-batches the 1F1B-floor schedule keeps live (the paper's
    // "dilute the extra memory footprints via slicing a batch into more
    // micro-batches"). The profile ran AFAB, which stashes all `m`.
    // The profiled F_dat is the full-batch stash (AFAB keeps all m
    // micro-batches live); a 1F1B-floor schedule keeps only
    // min(K−k, m*) of m* micro-batches live, each holding 1/m* of the
    // batch — so the live fraction replaces the paper's (m/m*) factor.
    let per_device_mem: Vec<u64> = profile
        .per_device
        .iter()
        .enumerate()
        .map(|(k, d)| {
            let f_mod = ns / n * d.f_mod as f64;
            let live = (kk - k).min(m_star) as f64;
            let f_dat = ns / n * d.f_dat as f64 * (live / ms).min(1.0);
            (f_mod + f_dat) as u64
        })
        .collect();

    Prediction { m: m_star, n: n_star, t_us, per_device_t, per_device_mem }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Profiler;
    use ea_models::{awd_spec, gnmt_spec};
    use ea_sched::partition_model;
    use ea_sim::ClusterConfig;

    fn gnmt_profile() -> Profile {
        let spec = gnmt_spec();
        let part = partition_model(&spec, 6);
        let prof = Profiler::new(spec, ClusterConfig::paper_testbed(), part, 128, 8);
        prof.profile(128, 1, 6)
    }

    fn awd_profile() -> Profile {
        let spec = awd_spec();
        let part = partition_model(&spec, 4);
        let prof = Profiler::new(spec, ClusterConfig::paper_testbed_two_nodes(), part, 40, 4);
        prof.profile(40, 1, 6)
    }

    #[test]
    fn self_prediction_reproduces_profile_components() {
        let p = gnmt_profile();
        let pred = predict(&p, p.m, p.n);
        for (k, d) in p.per_device.iter().enumerate() {
            let (tg, _, _) = pred.per_device_t[k];
            assert!(
                (tg - d.t_gpu_us).abs() < 1e-6 * d.t_gpu_us.max(1.0),
                "device {k}: T_gpu {tg} vs profile {}",
                d.t_gpu_us
            );
        }
    }

    #[test]
    fn fewer_micros_cost_more_memory_for_data() {
        let p = gnmt_profile();
        let small_m = predict(&p, 4, 1);
        let large_m = predict(&p, 128, 1);
        // Stage 0 stashes min(K, M) micro-batches; fewer, larger micros
        // cost more bytes.
        assert!(small_m.per_device_mem[0] > large_m.per_device_mem[0]);
    }

    #[test]
    fn more_pipelines_cost_more_memory() {
        let p = gnmt_profile();
        let one = predict(&p, 64, 1);
        let two = predict(&p, 64, 2);
        for k in 0..p.per_device.len() {
            assert!(two.per_device_mem[k] > one.per_device_mem[k]);
        }
    }

    #[test]
    fn pipelines_amortize_per_batch_compute_until_saturation() {
        let p = awd_profile();
        let one = predict(&p, 1, 1);
        let two = predict(&p, 1, 2);
        let eight = predict(&p, 1, 8);
        // AWD is compute-heavy: stacking a second pipeline nearly halves
        // the per-batch compute term.
        assert!(
            two.per_device_t[0].0 < 0.6 * one.per_device_t[0].0,
            "2 pipes {} vs 1 pipe {}",
            two.per_device_t[0].0,
            one.per_device_t[0].0
        );
        // Diminishing returns as the device saturates.
        let gain12 = one.per_device_t[0].0 / two.per_device_t[0].0;
        let gain48 = two.per_device_t[0].0 / eight.per_device_t[0].0 / 4.0;
        assert!(gain12 / 2.0 > gain48, "no diminishing returns: {gain12} vs {gain48}");
    }

    #[test]
    fn overflow_correction_kicks_in_when_saturated() {
        // AWD at micro = 40 has demand ≈ 0.25; eight pipelines stack to
        // ~2× the device — per-batch compute must exceed the ideal 1/8.
        let p = awd_profile();
        let one = predict(&p, 1, 1);
        let eight = predict(&p, 1, 8);
        let ideal = one.per_device_t[0].0 / 8.0;
        assert!(
            eight.per_device_t[0].0 > ideal * 1.05,
            "saturation correction missing: {} vs ideal {ideal}",
            eight.per_device_t[0].0
        );
    }

    #[test]
    fn demand_curve_beats_linear_extrapolation() {
        // The refinement: predicted compute time at micro=40 uses the
        // true saturation curve, not the 40× linear speedup.
        let p = awd_profile();
        let big_micro = predict(&p, 1, 1);
        let linear_guess = p.per_device[0].t_gpu_us / 40.0;
        assert!(
            big_micro.per_device_t[0].0 > 1.5 * linear_guess,
            "prediction {} should exceed naive linear {}",
            big_micro.per_device_t[0].0,
            linear_guess
        );
    }
}
