//! One worker thread per pipeline stage, channels as the interconnect.
//!
//! Failure containment: a stage worker whose peer (driver, neighbor
//! stage) has gone away stops cleanly instead of panicking, and the
//! driver-side [`ThreadedPipeline::try_step`] /
//! [`ThreadedPipeline::try_step_elastic`] report a dead pipeline as
//! [`Error::WorkerFailed`] so a supervisor can rebuild or degrade rather
//! than abort the process.

use crate::Error;
use crossbeam_channel::{bounded, unbounded, Receiver, Select, Sender};
use ea_autograd::{cross_entropy_loss, ForwardCtx, Stage, StageSaved};
use ea_data::Batch;
use ea_optim::{step_pull_delta, Optimizer};
use ea_tensor::{pool, Tensor};
use ea_trace::{Category, StaticName};
use std::collections::HashMap;
use std::thread::JoinHandle;

// Trace names shared by every stage worker. `fwd`/`bwd` spans carry the
// micro-batch index (rendering as `F{m}`/`B{m}` like the simulator);
// `xfer_*` instants carry the payload size in bytes, recorded on the
// *sending* thread right before the channel send.
static FWD_SPAN: StaticName = StaticName::new("fwd");
static BWD_SPAN: StaticName = StaticName::new("bwd");
static OPT_SPAN: StaticName = StaticName::new("opt");
static EA_SPAN: StaticName = StaticName::new("ea");
static XFER_FWD_MARK: StaticName = StaticName::new("xfer_fwd");
static XFER_BWD_MARK: StaticName = StaticName::new("xfer_bwd");

/// End-to-end pipeline step latency (µs) in the global registry.
fn step_hist() -> &'static ea_trace::Histogram {
    static H: std::sync::OnceLock<ea_trace::Histogram> = std::sync::OnceLock::new();
    H.get_or_init(|| ea_trace::metrics::global().histogram("ea_step_us"))
}

/// A micro-batch flowing forward: `(micro index, activation, targets)`.
/// Targets ride along so the last stage can compute the loss locally, as
/// in a real pipeline runtime.
type FwdMsg = (u64, Tensor, Vec<usize>, ForwardCtx);
/// A gradient flowing backward: `(micro index, grad)`.
type BwdMsg = (u64, Tensor);

enum Cmd {
    /// Apply the optimizer after `expect_bwd` backward micro-batches of
    /// the current batch, scaling accumulated grads by `scale`; reply when
    /// done.
    Opt { expect_bwd: u64, scale: f32, reply: Sender<()> },
    /// Send back the flat parameters.
    GetParams { reply: Sender<Vec<f32>> },
    /// Overwrite the flat parameters.
    SetParams { params: Vec<f32>, reply: Sender<()> },
    /// Elastic pull: `w ← (1−α)·w + α·reference`.
    Pull { reference: Vec<f32>, alpha: f32, reply: Sender<()> },
    /// Fused elastic round tail: after `expect_bwd` backward micro-batches,
    /// apply the optimizer (grads scaled by `scale`), pull toward
    /// `reference` with strength `alpha`, and reply with `(tag, Δ)` where
    /// `Δ = w_new − w_old` is the local update before the pull.
    OptPullDelta {
        expect_bwd: u64,
        scale: f32,
        reference: Vec<f32>,
        alpha: f32,
        tag: usize,
        reply: Sender<(usize, Vec<f32>)>,
    },
    /// Shut down.
    Stop,
}

fn worker_failed(what: &str) -> Error {
    Error::WorkerFailed { what: what.to_string() }
}

/// An optimizer application waiting for the batch's backward passes.
enum PendingOpt {
    Plain {
        expect: u64,
        scale: f32,
        reply: Sender<()>,
    },
    Fused {
        expect: u64,
        scale: f32,
        reference: Vec<f32>,
        alpha: f32,
        tag: usize,
        reply: Sender<(usize, Vec<f32>)>,
    },
}

impl PendingOpt {
    fn expect(&self) -> u64 {
        match self {
            PendingOpt::Plain { expect, .. } | PendingOpt::Fused { expect, .. } => *expect,
        }
    }
}

struct Worker {
    stage: Stage,
    opt: Box<dyn Optimizer>,
    fwd_in: Receiver<FwdMsg>,
    bwd_in: Option<Receiver<BwdMsg>>,
    fwd_out: Option<Sender<FwdMsg>>,
    bwd_out: Option<Sender<BwdMsg>>,
    cmd: Receiver<Cmd>,
    losses: Option<Sender<f32>>,
    stash: HashMap<u64, (StageSaved, Option<Vec<usize>>)>,
    bwd_seen: u64,
    pending_opt: Option<PendingOpt>,
    /// Flat scratch reused by every optimizer application, so steady-state
    /// steps allocate nothing.
    grads_scratch: Vec<f32>,
    params_scratch: Vec<f32>,
}

impl Worker {
    /// Handlers return `false` when a peer (driver or neighbor stage) has
    /// hung up; the worker then stops cleanly instead of panicking, so a
    /// crashed driver tears the whole pipeline down without aborting the
    /// process.
    fn handle_fwd(&mut self, (micro, x, targets, ctx): FwdMsg) -> bool {
        let (y, saved) = {
            let _s = ea_trace::span_arg(&FWD_SPAN, Category::Compute, micro);
            self.stage.forward(&x, &ctx)
        };
        match (&self.fwd_out, &self.losses) {
            (Some(next), _) => {
                self.stash.insert(micro, (saved, None));
                let bytes = y.numel() as u64 * 4;
                ea_trace::instant(&XFER_FWD_MARK, Category::Comm, bytes);
                next.send((micro, y, targets, ctx)).is_ok()
            }
            (None, Some(losses)) => {
                // Last stage: loss, immediate backward, grad upstream.
                let out = cross_entropy_loss(&y, &targets);
                if losses.send(out.loss).is_err() {
                    return false;
                }
                let dx = {
                    let _s = ea_trace::span_arg(&BWD_SPAN, Category::Compute, micro);
                    self.stage.backward(&saved, &out.grad)
                };
                if !self.after_bwd() {
                    return false;
                }
                match &self.bwd_out {
                    Some(prev) => {
                        let bytes = dx.numel() as u64 * 4;
                        ea_trace::instant(&XFER_BWD_MARK, Category::Comm, bytes);
                        prev.send((micro, dx)).is_ok()
                    }
                    None => true,
                }
            }
            _ => unreachable!("stage must have a successor or be last"),
        }
    }

    fn handle_bwd(&mut self, (micro, dy): BwdMsg) -> bool {
        let (saved, _) = self.stash.remove(&micro).expect("backward without stash");
        let dx = {
            let _s = ea_trace::span_arg(&BWD_SPAN, Category::Compute, micro);
            self.stage.backward(&saved, &dy)
        };
        if !self.after_bwd() {
            return false;
        }
        match &self.bwd_out {
            Some(prev) => {
                let bytes = dx.numel() as u64 * 4;
                ea_trace::instant(&XFER_BWD_MARK, Category::Comm, bytes);
                prev.send((micro, dx)).is_ok()
            }
            None => true,
        }
    }

    fn after_bwd(&mut self) -> bool {
        self.bwd_seen += 1;
        let ready = matches!(&self.pending_opt, Some(p) if self.bwd_seen >= p.expect());
        if ready {
            let pending = self.pending_opt.take().unwrap();
            self.run_pending(pending)
        } else {
            true
        }
    }

    fn run_pending(&mut self, pending: PendingOpt) -> bool {
        match pending {
            PendingOpt::Plain { scale, reply, .. } => {
                self.apply_opt(scale);
                reply.send(()).is_ok()
            }
            PendingOpt::Fused { scale, reference, alpha, tag, reply, .. } => {
                let delta = self.apply_opt_pull_delta(scale, &reference, alpha);
                pool::recycle(reference);
                reply.send((tag, delta)).is_ok()
            }
        }
    }

    fn apply_opt(&mut self, scale: f32) {
        let _s = ea_trace::span(&OPT_SPAN, Category::Compute);
        self.stage.grads_flat_scaled_into(scale, &mut self.grads_scratch);
        self.stage.params_flat_into(&mut self.params_scratch);
        self.opt.step(&mut self.params_scratch, &self.grads_scratch);
        self.stage.set_params_flat(&self.params_scratch);
        self.stage.zero_grads();
        self.bwd_seen = 0;
    }

    /// Fused Steps ❶–❸ on this stage; returns Δ in a pooled buffer.
    fn apply_opt_pull_delta(&mut self, scale: f32, reference: &[f32], alpha: f32) -> Vec<f32> {
        let _s = ea_trace::span(&EA_SPAN, Category::Compute);
        self.stage.grads_flat_scaled_into(scale, &mut self.grads_scratch);
        self.stage.params_flat_into(&mut self.params_scratch);
        let mut delta = pool::take_cleared(self.params_scratch.len());
        step_pull_delta(
            self.opt.as_mut(),
            &mut self.params_scratch,
            &self.grads_scratch,
            reference,
            alpha,
            &mut delta,
        );
        self.stage.set_params_flat(&self.params_scratch);
        self.stage.zero_grads();
        self.bwd_seen = 0;
        delta
    }

    fn handle_cmd(&mut self, cmd: Cmd) -> bool {
        match cmd {
            Cmd::Opt { expect_bwd, scale, reply } => {
                let pending = PendingOpt::Plain { expect: expect_bwd, scale, reply };
                if self.bwd_seen >= expect_bwd {
                    self.run_pending(pending)
                } else {
                    self.pending_opt = Some(pending);
                    true
                }
            }
            Cmd::OptPullDelta { expect_bwd, scale, reference, alpha, tag, reply } => {
                let pending =
                    PendingOpt::Fused { expect: expect_bwd, scale, reference, alpha, tag, reply };
                if self.bwd_seen >= expect_bwd {
                    self.run_pending(pending)
                } else {
                    self.pending_opt = Some(pending);
                    true
                }
            }
            Cmd::GetParams { reply } => reply.send(self.stage.params_flat()).is_ok(),
            Cmd::SetParams { params, reply } => {
                self.stage.set_params_flat(&params);
                reply.send(()).is_ok()
            }
            Cmd::Pull { reference, alpha, reply } => {
                // Reuse the worker's flat-params scratch and return the
                // reference buffer to the pool, like the fused round tail.
                self.stage.params_flat_into(&mut self.params_scratch);
                ea_optim::elastic_pull(&mut self.params_scratch, &reference, alpha);
                self.stage.set_params_flat(&self.params_scratch);
                pool::recycle(reference);
                reply.send(()).is_ok()
            }
            Cmd::Stop => false,
        }
    }

    fn run(mut self) {
        loop {
            let mut sel = Select::new();
            let fwd_idx = sel.recv(&self.fwd_in);
            let bwd_idx = self.bwd_in.as_ref().map(|r| sel.recv(r));
            let cmd_idx = sel.recv(&self.cmd);
            let op = sel.select();
            let idx = op.index();
            if idx == fwd_idx {
                match op.recv(&self.fwd_in) {
                    Ok(msg) => {
                        if !self.handle_fwd(msg) {
                            return;
                        }
                    }
                    Err(_) => return,
                }
            } else if Some(idx) == bwd_idx {
                let rx = self.bwd_in.as_ref().unwrap();
                match op.recv(rx) {
                    Ok(msg) => {
                        if !self.handle_bwd(msg) {
                            return;
                        }
                    }
                    Err(_) => return,
                }
            } else if idx == cmd_idx {
                match op.recv(&self.cmd) {
                    Ok(cmd) => {
                        if !self.handle_cmd(cmd) {
                            return;
                        }
                    }
                    Err(_) => return,
                }
            }
        }
    }
}

/// A running pipeline: K stage-worker threads executing real training.
///
/// Numerically identical to [`crate::train_step`] on the same stages
/// (verified by tests): forwards never mutate state, and each stage's
/// gradient accumulation happens in micro-batch order because channels
/// are FIFO and the downstream stage emits gradients in order.
pub struct ThreadedPipeline {
    fwd0: Sender<FwdMsg>,
    cmds: Vec<Sender<Cmd>>,
    losses: Receiver<f32>,
    handles: Vec<JoinHandle<()>>,
    micros: usize,
    step: u64,
    stages: usize,
}

impl ThreadedPipeline {
    /// Spawns one worker thread per stage.
    pub fn spawn(stages: Vec<Stage>, opts: Vec<Box<dyn Optimizer>>, micros: usize) -> Self {
        let k = stages.len();
        assert!(k >= 1);
        assert_eq!(opts.len(), k);
        assert!(micros >= 1);

        let mut fwd_txs = Vec::with_capacity(k);
        let mut fwd_rxs = Vec::with_capacity(k);
        for _ in 0..k {
            let (tx, rx) = unbounded::<FwdMsg>();
            fwd_txs.push(tx);
            fwd_rxs.push(rx);
        }
        let mut bwd_txs: Vec<Option<Sender<BwdMsg>>> = vec![None; k];
        let mut bwd_rxs: Vec<Option<Receiver<BwdMsg>>> = vec![None; k];
        for i in 0..k.saturating_sub(1) {
            let (tx, rx) = unbounded::<BwdMsg>();
            // Stage i+1 sends gradients back to stage i.
            bwd_txs[i + 1] = Some(tx);
            bwd_rxs[i] = Some(rx);
        }
        let (loss_tx, loss_rx) = unbounded::<f32>();
        let mut cmd_txs = Vec::with_capacity(k);
        let mut handles = Vec::with_capacity(k);

        let mut fwd_rxs = fwd_rxs.into_iter();
        let mut stages_it = stages.into_iter();
        let mut opts_it = opts.into_iter();
        for i in 0..k {
            let (cmd_tx, cmd_rx) = unbounded::<Cmd>();
            cmd_txs.push(cmd_tx);
            let worker = Worker {
                stage: stages_it.next().unwrap(),
                opt: opts_it.next().unwrap(),
                fwd_in: fwd_rxs.next().unwrap(),
                bwd_in: bwd_rxs[i].take(),
                fwd_out: if i + 1 < k { Some(fwd_txs[i + 1].clone()) } else { None },
                bwd_out: bwd_txs[i].take(),
                cmd: cmd_rx,
                losses: if i + 1 == k { Some(loss_tx.clone()) } else { None },
                stash: HashMap::new(),
                bwd_seen: 0,
                pending_opt: None,
                grads_scratch: Vec::new(),
                params_scratch: Vec::new(),
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("stage{i}"))
                    .spawn(move || worker.run())
                    .expect("spawn stage worker"),
            );
        }

        ThreadedPipeline {
            fwd0: fwd_txs[0].clone(),
            cmds: cmd_txs,
            losses: loss_rx,
            handles,
            micros,
            step: 0,
            stages: k,
        }
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages
    }

    /// Streams one batch through the pipeline and applies the optimizer;
    /// returns the mean micro-batch loss.
    ///
    /// Panics if a stage worker has died; use [`Self::try_step`] to get an
    /// [`Error::WorkerFailed`] instead.
    pub fn step(&mut self, batch: &Batch) -> f32 {
        self.try_step(batch).expect("pipeline stage died")
    }

    /// Fallible [`Self::step`]: a dead stage worker (panicked or torn down)
    /// surfaces as [`Error::WorkerFailed`] instead of a panic, so a
    /// supervisor can rebuild the pipeline.
    pub fn try_step(&mut self, batch: &Batch) -> Result<f32, Error> {
        let _t = step_hist().start_timer();
        let micro_size = batch.batch_size.div_ceil(self.micros);
        let parts = batch.split_micro(micro_size);
        let m = parts.len();
        for (mi, part) in parts.into_iter().enumerate() {
            let ctx = ForwardCtx::train(self.step, mi as u64);
            self.fwd0
                .send((mi as u64, part.input, part.targets, ctx))
                .map_err(|_| worker_failed("stage 0 hung up"))?;
        }
        let mut total = 0.0;
        for _ in 0..m {
            total += self.losses.recv().map_err(|_| worker_failed("pipeline died mid-batch"))?;
        }
        // One optimizer step per stage once its backwards are in.
        let (tx, rx) = bounded(self.stages);
        for cmd in &self.cmds {
            cmd.send(Cmd::Opt { expect_bwd: m as u64, scale: 1.0 / m as f32, reply: tx.clone() })
                .map_err(|_| worker_failed("stage hung up"))?;
        }
        for _ in 0..self.stages {
            rx.recv().map_err(|_| worker_failed("optimizer reply lost"))?;
        }
        self.step += 1;
        Ok(total / m as f32)
    }

    /// Streams one batch through the pipeline, then runs the fused
    /// optimizer-step + elastic-pull + Δ-extraction on every stage in a
    /// single worker-side pass (Steps ❶–❸ of the elastic round).
    ///
    /// `references[k]` holds stage `k`'s reference weights; the buffers are
    /// consumed and recycled by the workers. Returns the mean micro-batch
    /// loss and the per-stage local updates `Δ_k = w_new − w_old` (computed
    /// before the pull), in stage order, ready for the reference
    /// accumulator.
    pub fn step_elastic(
        &mut self,
        batch: &Batch,
        references: Vec<Vec<f32>>,
        alpha: f32,
    ) -> (f32, Vec<Vec<f32>>) {
        self.try_step_elastic(batch, references, alpha).expect("pipeline stage died")
    }

    /// Fallible [`Self::step_elastic`]: a dead stage worker surfaces as
    /// [`Error::WorkerFailed`] instead of a panic.
    pub fn try_step_elastic(
        &mut self,
        batch: &Batch,
        references: Vec<Vec<f32>>,
        alpha: f32,
    ) -> Result<(f32, Vec<Vec<f32>>), Error> {
        let _t = step_hist().start_timer();
        assert_eq!(references.len(), self.stages, "one reference per stage");
        let micro_size = batch.batch_size.div_ceil(self.micros);
        let parts = batch.split_micro(micro_size);
        let m = parts.len();
        for (mi, part) in parts.into_iter().enumerate() {
            let ctx = ForwardCtx::train(self.step, mi as u64);
            self.fwd0
                .send((mi as u64, part.input, part.targets, ctx))
                .map_err(|_| worker_failed("stage 0 hung up"))?;
        }
        let mut total = 0.0;
        for _ in 0..m {
            total += self.losses.recv().map_err(|_| worker_failed("pipeline died mid-batch"))?;
        }
        let (tx, rx) = bounded(self.stages);
        for (k, (cmd, reference)) in self.cmds.iter().zip(references).enumerate() {
            cmd.send(Cmd::OptPullDelta {
                expect_bwd: m as u64,
                scale: 1.0 / m as f32,
                reference,
                alpha,
                tag: k,
                reply: tx.clone(),
            })
            .map_err(|_| worker_failed("stage hung up"))?;
        }
        let mut deltas: Vec<Vec<f32>> = (0..self.stages).map(|_| Vec::new()).collect();
        for _ in 0..self.stages {
            let (tag, delta) = rx.recv().map_err(|_| worker_failed("elastic round reply lost"))?;
            deltas[tag] = delta;
        }
        self.step += 1;
        Ok((total / m as f32, deltas))
    }

    /// Reads stage `k`'s flat parameters.
    pub fn stage_params(&self, k: usize) -> Vec<f32> {
        let (tx, rx) = bounded(1);
        self.cmds[k].send(Cmd::GetParams { reply: tx }).expect("stage hung up");
        rx.recv().expect("params reply lost")
    }

    /// Overwrites stage `k`'s flat parameters.
    pub fn set_stage_params(&self, k: usize, params: Vec<f32>) {
        let (tx, rx) = bounded(1);
        self.cmds[k].send(Cmd::SetParams { params, reply: tx }).expect("stage hung up");
        rx.recv().expect("set reply lost");
    }

    /// Applies the elastic pull on stage `k`.
    pub fn pull_stage(&self, k: usize, reference: Vec<f32>, alpha: f32) {
        let (tx, rx) = bounded(1);
        self.cmds[k].send(Cmd::Pull { reference, alpha, reply: tx }).expect("stage hung up");
        rx.recv().expect("pull reply lost");
    }
}

impl Drop for ThreadedPipeline {
    fn drop(&mut self) {
        for cmd in &self.cmds {
            let _ = cmd.send(Cmd::Stop);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train_step;
    use ea_data::SyntheticTask;
    use ea_models::{gnmt_analogue, AnalogueConfig};
    use ea_optim::OptKind;
    use ea_tensor::TensorRng;

    fn build(seed: u64, stages: usize) -> (Vec<Stage>, Vec<Box<dyn Optimizer>>) {
        let cfg = AnalogueConfig { vocab: 16, seq: 4, hidden: 16, blocks: 2, stages };
        let model = gnmt_analogue(cfg, &mut TensorRng::seed_from_u64(seed));
        let opts = (0..stages).map(|_| OptKind::Adam { lr: 1e-2 }.build()).collect();
        (model.into_stages(), opts)
    }

    #[test]
    fn threaded_matches_single_threaded_exactly() {
        let task = SyntheticTask::copy_translate(16, 4, 31);
        // Single-threaded reference.
        let cfg = AnalogueConfig { vocab: 16, seq: 4, hidden: 16, blocks: 2, stages: 3 };
        let mut ref_model = gnmt_analogue(cfg, &mut TensorRng::seed_from_u64(77));
        let mut ref_opts: Vec<Box<dyn Optimizer>> =
            (0..3).map(|_| OptKind::Adam { lr: 1e-2 }.build()).collect();
        // Threaded run on identically-seeded stages.
        let (stages, opts) = build(77, 3);
        let mut pipe = ThreadedPipeline::spawn(stages, opts, 4);
        for b in 0..5 {
            let batch = task.batch(8, b);
            let l_ref = train_step(&mut ref_model, &mut ref_opts, &batch, 4, b);
            let l_thr = pipe.step(&batch);
            assert!((l_ref - l_thr).abs() < 1e-6, "batch {b}: losses {l_ref} vs {l_thr}");
        }
        for k in 0..3 {
            let a = ref_model.stage(k).params_flat();
            let b = pipe.stage_params(k);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() <= 1e-6, "stage {k}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn loss_decreases_through_threaded_pipeline() {
        let (stages, opts) = build(5, 2);
        let mut pipe = ThreadedPipeline::spawn(stages, opts, 2);
        let task = SyntheticTask::copy_translate(16, 4, 32);
        let first = pipe.step(&task.batch(8, 0));
        let mut last = first;
        for b in 1..100 {
            last = pipe.step(&task.batch(8, b));
        }
        assert!(last < first * 0.8, "loss {first} → {last}");
    }

    #[test]
    fn get_set_params_roundtrip() {
        let (stages, opts) = build(6, 2);
        let pipe = ThreadedPipeline::spawn(stages, opts, 1);
        let p = pipe.stage_params(0);
        let doubled: Vec<f32> = p.iter().map(|v| v * 2.0).collect();
        pipe.set_stage_params(0, doubled.clone());
        assert_eq!(pipe.stage_params(0), doubled);
    }

    #[test]
    fn pull_moves_halfway() {
        let (stages, opts) = build(7, 2);
        let pipe = ThreadedPipeline::spawn(stages, opts, 1);
        let p = pipe.stage_params(1);
        let zero = vec![0.0f32; p.len()];
        pipe.pull_stage(1, zero, 0.5);
        let after = pipe.stage_params(1);
        for (a, b) in after.iter().zip(&p) {
            assert!((a - b * 0.5).abs() < 1e-7);
        }
    }
}

#[cfg(test)]
mod robustness_tests {
    use super::*;
    use ea_models::{gnmt_analogue, AnalogueConfig};
    use ea_optim::OptKind;
    use ea_tensor::TensorRng;

    const CFG: AnalogueConfig =
        AnalogueConfig { vocab: 16, seq: 4, hidden: 8, blocks: 2, stages: 2 };

    fn pipe(micros: usize) -> ThreadedPipeline {
        let model = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(0));
        let opts = (0..2).map(|_| OptKind::Sgd { lr: 0.1 }.build()).collect();
        ThreadedPipeline::spawn(model.into_stages(), opts, micros)
    }

    #[test]
    fn dropping_an_idle_pipeline_joins_cleanly() {
        let p = pipe(2);
        drop(p); // must not hang: Stop is delivered through the cmd channel
    }

    #[test]
    fn dropping_after_work_joins_cleanly() {
        let mut p = pipe(2);
        let task = ea_data::SyntheticTask::copy_translate(16, 4, 1);
        p.step(&task.batch(4, 0));
        drop(p);
    }

    #[test]
    fn pipeline_survives_many_rapid_batches() {
        let mut p = pipe(4);
        let task = ea_data::SyntheticTask::copy_translate(16, 4, 2);
        for b in 0..50 {
            let loss = p.step(&task.batch(8, b));
            assert!(loss.is_finite(), "batch {b} produced {loss}");
        }
    }

    #[test]
    fn dead_stage_surfaces_as_worker_failed_not_a_panic() {
        let mut p = pipe(2);
        let task = ea_data::SyntheticTask::copy_translate(16, 4, 4);
        p.step(&task.batch(4, 0));
        // Kill stage 0 out from under the driver; the next step must
        // report the failure instead of aborting the process.
        p.cmds[0].send(Cmd::Stop).unwrap();
        // Give the worker a moment to exit and drop its channels.
        std::thread::sleep(std::time::Duration::from_millis(50));
        match p.try_step(&task.batch(4, 1)) {
            Err(Error::WorkerFailed { .. }) => {}
            other => panic!("expected WorkerFailed, got {other:?}"),
        }
    }

    #[test]
    fn odd_batch_sizes_split_into_uneven_micros() {
        let mut p = pipe(4);
        let task = ea_data::SyntheticTask::copy_translate(16, 4, 3);
        // 7 samples into 4 micro-batches: 2+2+2+1.
        let loss = p.step(&task.batch(7, 0));
        assert!(loss.is_finite());
    }
}
