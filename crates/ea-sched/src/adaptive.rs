//! Algorithm 1: the adaptive advance-forward-propagation controller.

/// Runtime controller that decides how many micro-batches to forward in
/// advance, following the paper's Algorithm 1: start at the 1F1B depth
/// (`K−1`), then after each iteration increase the depth while training
/// keeps getting faster *and* memory headroom remains; freeze otherwise.
#[derive(Clone, Debug)]
pub struct AdvanceController {
    advance: usize,
    max_advance: usize,
    mem_limit: u64,
    last_time_us: Option<f64>,
    frozen: bool,
}

impl AdvanceController {
    /// Controller for `k` stages and `m` micro-batches under `mem_limit`
    /// bytes of per-device memory.
    pub fn new(k: usize, m: usize, mem_limit: u64) -> Self {
        assert!(k >= 1);
        AdvanceController {
            advance: k - 1,         // Line 1: equivalent to 1F1B.
            max_advance: m + k - 1, // Full AFAB depth.
            mem_limit,
            last_time_us: None,
            frozen: false,
        }
    }

    /// The current advance depth `a` (warmup of stage 0).
    pub fn advance(&self) -> usize {
        self.advance
    }

    /// True once the controller has stopped increasing the depth.
    pub fn frozen(&self) -> bool {
        self.frozen
    }

    /// Reports the measured `(iteration time, peak memory)` of the last
    /// iteration; returns the depth to use for the next one (Lines 9–10).
    pub fn observe(&mut self, time_us: f64, peak_mem: u64) -> usize {
        if self.frozen {
            return self.advance;
        }
        let is_faster = match self.last_time_us {
            None => true, // First observation: always try one deeper.
            Some(prev) => time_us < prev,
        };
        // Conservative headroom estimate: growing the depth by one adds at
        // most one more stashed micro-batch; require 2% headroom.
        let over_limit = peak_mem > self.mem_limit;
        let mem_available = (peak_mem as f64) < self.mem_limit as f64 * 0.98;
        if is_faster && mem_available && self.advance < self.max_advance {
            self.last_time_us = Some(time_us);
            self.advance += 1;
        } else {
            // Settle on the last depth that helped. If the *current*
            // depth overflowed the budget, back out of it regardless of
            // whether it was faster.
            if (over_limit || !is_faster) && self.advance > 0 {
                self.advance -= 1;
            }
            self.frozen = true;
        }
        self.advance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_1f1b_depth() {
        let c = AdvanceController::new(6, 16, 1 << 30);
        assert_eq!(c.advance(), 5);
    }

    #[test]
    fn grows_while_faster_then_freezes() {
        let mut c = AdvanceController::new(4, 8, 1 << 30);
        // Iteration times keep improving for 3 rounds then regress.
        let times = [100.0, 90.0, 80.0, 85.0];
        let mut depths = vec![c.advance()];
        for t in times {
            depths.push(c.observe(t, 100));
        }
        // 3 → 4 → 5 → 6, then regression steps back to 5 and freezes.
        assert_eq!(depths, vec![3, 4, 5, 6, 5]);
        assert!(c.frozen());
        assert_eq!(c.observe(1.0, 0), 5, "frozen controller never moves");
    }

    #[test]
    fn memory_limit_stops_growth() {
        let mut c = AdvanceController::new(4, 8, 1000);
        let d = c.observe(100.0, 999);
        assert_eq!(d, 3, "no headroom: keep 1F1B depth");
        assert!(c.frozen());
    }

    #[test]
    fn never_exceeds_afab_depth() {
        let mut c = AdvanceController::new(2, 4, u64::MAX);
        let mut t = 1000.0;
        for _ in 0..20 {
            c.observe(t, 0);
            t *= 0.9;
        }
        assert!(c.advance() <= 4 + 2 - 1);
    }
}
