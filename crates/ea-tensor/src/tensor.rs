//! The dense tensor type.

use crate::{pool, simd, Shape};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Shared empty buffer used to detach a tensor from its `Arc` without
/// allocating (see [`Tensor::into_vec`]).
fn empty_arc() -> Arc<Vec<f32>> {
    static EMPTY: OnceLock<Arc<Vec<f32>>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(Vec::new())).clone()
}

/// A dense, contiguous, row-major `f32` tensor.
///
/// All operations that combine two tensors require identical shapes (there
/// is no implicit broadcasting; the NN modules use explicit row-broadcast
/// helpers such as [`Tensor::add_row_broadcast`]).
///
/// The buffer is copy-on-write: `clone()` and [`Tensor::reshape`] share it
/// in O(1), and [`Tensor::data_mut`] copies only when it is actually
/// shared. Buffers are drawn from and returned to the global
/// [`pool`](crate::pool), so steady-state training reuses a fixed working
/// set instead of allocating.
pub struct Tensor {
    shape: Shape,
    data: Arc<Vec<f32>>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        Tensor { shape: self.shape.clone(), data: Arc::clone(&self.data) }
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && *self.data == *other.data
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        // Last owner returns the buffer to the pool instead of freeing it.
        if let Some(buf) = Arc::get_mut(&mut self.data) {
            pool::recycle(std::mem::take(buf));
        }
    }
}

impl Tensor {
    /// Creates a tensor from a flat buffer; `data.len()` must equal the
    /// shape's element count.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.numel(),
            "buffer length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor { shape, data: Arc::new(data) }
    }

    /// All-zeros tensor.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor { shape, data: Arc::new(pool::take_zeroed(n)) }
    }

    /// A tensor over a pooled buffer with **unspecified contents**; every
    /// element must be written before it is read. Internal building block
    /// for the `_into` kernels and other full-overwrite producers.
    pub(crate) fn uninit(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor { shape, data: Arc::new(pool::take_buf(n)) }
    }

    /// All-ones tensor.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let mut t = Tensor::uninit(dims);
        t.buf_mut().fill(value);
        t
    }

    /// Rank-0 scalar.
    pub fn scalar(value: f32) -> Self {
        Tensor { shape: Shape::new(&[]), data: Arc::new(vec![value]) }
    }

    /// The shape of this tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the flat buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to a buffer known to be uniquely owned (fresh
    /// tensors). Panics if the buffer is shared.
    fn buf_mut(&mut self) -> &mut [f32] {
        Arc::get_mut(&mut self.data).expect("buf_mut on shared tensor")
    }

    /// Mutable view of the flat buffer (copy-on-write: clones the buffer
    /// first if it is shared with other tensors).
    pub fn data_mut(&mut self) -> &mut [f32] {
        if Arc::get_mut(&mut self.data).is_none() {
            let mut copy = pool::take_buf(self.data.len());
            copy.copy_from_slice(&self.data);
            self.data = Arc::new(copy);
        }
        Arc::get_mut(&mut self.data).expect("just made unique")
    }

    /// Consumes the tensor, returning the flat buffer (copies if the
    /// buffer is shared with other tensors).
    pub fn into_vec(mut self) -> Vec<f32> {
        let arc = std::mem::replace(&mut self.data, empty_arc());
        match Arc::try_unwrap(arc) {
            Ok(buf) => buf,
            Err(shared) => {
                let mut copy = pool::take_buf(shared.len());
                copy.copy_from_slice(&shared);
                copy
            }
        }
    }

    /// Reuses `self`'s buffer for an output of `dims` if it is uniquely
    /// owned and the right size; otherwise swaps in a pooled buffer
    /// (recycling the old one when unshared). Contents are **unspecified**
    /// either way — the caller must overwrite every element. Backbone of
    /// the `*_into` kernels; public so downstream crates can write their
    /// own buffer-reusing kernels.
    pub fn prepare_out(&mut self, dims: &[usize]) {
        let shape = Shape::new(dims);
        let n = shape.numel();
        let reusable = matches!(Arc::get_mut(&mut self.data), Some(buf) if buf.len() == n);
        if !reusable {
            // Dropping the old Arc recycles the buffer when unshared.
            let old = std::mem::replace(&mut self.data, Arc::new(pool::take_buf(n)));
            if let Ok(mut buf) = Arc::try_unwrap(old) {
                pool::recycle(std::mem::take(&mut buf));
            }
        }
        self.shape = shape;
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-dimensional index.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data_mut()[off] = value;
    }

    /// Returns a tensor sharing this buffer re-interpreted under a new
    /// shape with the same element count (O(1), no copy).
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(shape.numel(), self.numel(), "reshape must preserve numel");
        Tensor { shape, data: Arc::clone(&self.data) }
    }

    /// Applies a function to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut out = Tensor::uninit(self.dims());
        for (o, &x) in out.buf_mut().iter_mut().zip(self.data.iter()) {
            *o = f(x);
        }
        out
    }

    /// In-place variant of [`Tensor::map`].
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in self.data_mut() {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors element-wise.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip requires identical shapes");
        let mut out = Tensor::uninit(self.dims());
        for ((o, &a), &b) in out.buf_mut().iter_mut().zip(self.data.iter()).zip(other.data.iter()) {
            *o = f(a, b);
        }
        out
    }

    /// Element-wise sum.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "add requires identical shapes");
        let mut out = Tensor::uninit(self.dims());
        simd::add_slices(out.buf_mut(), &self.data, &other.data);
        out
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "sub requires identical shapes");
        let mut out = Tensor::uninit(self.dims());
        simd::sub_slices(out.buf_mut(), &self.data, &other.data);
        out
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "mul requires identical shapes");
        let mut out = Tensor::uninit(self.dims());
        simd::mul_slices(out.buf_mut(), &self.data, &other.data);
        out
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        let mut out = Tensor::uninit(self.dims());
        out.buf_mut().copy_from_slice(&self.data);
        simd::scale(out.buf_mut(), s);
        out
    }

    /// `self += other` in place.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign requires identical shapes");
        simd::add_assign(self.data_mut(), &other.data);
    }

    /// `self += s * other` in place (axpy).
    pub fn axpy(&mut self, s: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy requires identical shapes");
        simd::axpy(self.data_mut(), s, &other.data);
    }

    /// In-place variant of [`Tensor::add_row_broadcast`].
    pub fn add_row_broadcast_assign(&mut self, row: &Tensor) {
        let (r, c) = self.shape.as_matrix();
        assert_eq!(row.numel(), c, "broadcast row length must equal columns");
        let buf = self.data_mut();
        for i in 0..r {
            simd::add_assign(&mut buf[i * c..(i + 1) * c], &row.data);
        }
    }

    /// Adds a length-`cols` row vector to every row of a matrix-viewed
    /// tensor (bias addition).
    pub fn add_row_broadcast(&self, row: &Tensor) -> Tensor {
        let (r, c) = self.shape.as_matrix();
        assert_eq!(row.numel(), c, "broadcast row length must equal columns");
        let mut out = Tensor::uninit(self.dims());
        let buf = out.buf_mut();
        for i in 0..r {
            simd::add_slices(
                &mut buf[i * c..(i + 1) * c],
                &self.data[i * c..(i + 1) * c],
                &row.data,
            );
        }
        out
    }

    /// Sum of all elements (fixed left-to-right order for determinism).
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Euclidean norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Largest absolute element.
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, x| m.max(x.abs()))
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Row `i` of the matrix view, as a new rank-1 tensor.
    pub fn row(&self, i: usize) -> Tensor {
        let (r, c) = self.shape.as_matrix();
        assert!(i < r, "row {i} out of bounds for {r} rows");
        let mut out = Tensor::uninit(&[c]);
        out.buf_mut().copy_from_slice(&self.data[i * c..(i + 1) * c]);
        out
    }

    /// Stacks rank-1 tensors of equal length into a matrix.
    pub fn stack_rows(rows: &[Tensor]) -> Tensor {
        assert!(!rows.is_empty(), "cannot stack zero rows");
        let c = rows[0].numel();
        let mut data = pool::take_cleared(rows.len() * c);
        for row in rows {
            assert_eq!(row.numel(), c, "all stacked rows must have equal length");
            data.extend_from_slice(&row.data);
        }
        Tensor::from_vec(data, &[rows.len(), c])
    }

    /// Splits the matrix view into contiguous row chunks of `chunk_rows`
    /// rows each (last chunk may be smaller). Used to slice batches into
    /// micro-batches.
    pub fn split_rows(&self, chunk_rows: usize) -> Vec<Tensor> {
        assert!(chunk_rows > 0, "chunk_rows must be positive");
        let (r, c) = self.shape.as_matrix();
        let mut out = Vec::new();
        let mut start = 0;
        while start < r {
            let rows = chunk_rows.min(r - start);
            let mut part = Tensor::uninit(&[rows, c]);
            part.buf_mut().copy_from_slice(&self.data[start * c..(start + rows) * c]);
            out.push(part);
            start += rows;
        }
        out
    }

    /// Concatenates matrix-viewed tensors along rows.
    pub fn concat_rows(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "cannot concat zero tensors");
        let (_, c) = parts[0].shape.as_matrix();
        let total: usize = parts.iter().map(|p| p.shape.as_matrix().0).sum();
        let mut data = pool::take_cleared(total * c);
        let mut rows = 0;
        for p in parts {
            let (r, pc) = p.shape.as_matrix();
            assert_eq!(pc, c, "all concatenated parts must share column count");
            rows += r;
            data.extend_from_slice(&p.data);
        }
        Tensor::from_vec(data, &[rows, c])
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({:?}, ", self.shape)?;
        if self.numel() <= 8 {
            write!(f, "{:?})", self.data)
        } else {
            write!(f, "[{} elements, norm {:.4}])", self.numel(), self.norm())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.at(&[0, 2]), 3.0);
        assert_eq!(t.at(&[1, 0]), 4.0);
        let mut t = t;
        t.set(&[1, 1], 9.0);
        assert_eq!(t.at(&[1, 1]), 9.0);
    }

    #[test]
    #[should_panic]
    fn from_vec_rejects_bad_length() {
        Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn elementwise_math() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        assert_eq!(a.add(&b).data(), &[11.0, 22.0]);
        assert_eq!(b.sub(&a).data(), &[9.0, 18.0]);
        assert_eq!(a.mul(&b).data(), &[10.0, 40.0]);
        assert_eq!(a.scale(3.0).data(), &[3.0, 6.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        let g = Tensor::from_vec(vec![2.0, 4.0], &[2]);
        a.axpy(-0.5, &g);
        assert_eq!(a.data(), &[0.0, -1.0]);
    }

    #[test]
    fn row_broadcast_adds_bias() {
        let x = Tensor::from_vec(vec![0.0; 6], &[2, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert_eq!(t.sum(), 7.0);
        assert_eq!(t.mean(), 3.5);
        assert_eq!(t.norm(), 5.0);
        assert_eq!(t.abs_max(), 4.0);
        assert!(!t.has_non_finite());
        assert!(Tensor::from_vec(vec![f32::NAN], &[1]).has_non_finite());
    }

    #[test]
    fn split_and_concat_roundtrip() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[6, 2]);
        let parts = t.split_rows(4);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].dims(), &[4, 2]);
        assert_eq!(parts[1].dims(), &[2, 2]);
        let back = Tensor::concat_rows(&parts);
        assert_eq!(back, t);
    }

    #[test]
    fn stack_rows_builds_matrix() {
        let r0 = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let r1 = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        let m = Tensor::stack_rows(&[r0, r1]);
        assert_eq!(m.dims(), &[2, 2]);
        assert_eq!(m.at(&[1, 0]), 3.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let r = t.reshape(&[4]);
        assert_eq!(r.dims(), &[4]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn clone_is_shared_until_written() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let mut b = a.clone();
        assert_eq!(a.data().as_ptr(), b.data().as_ptr(), "clone shares the buffer");
        b.data_mut()[0] = 9.0;
        assert_ne!(a.data().as_ptr(), b.data().as_ptr(), "write detaches the clone");
        assert_eq!(a.data(), &[1.0, 2.0, 3.0]);
        assert_eq!(b.data(), &[9.0, 2.0, 3.0]);
    }

    #[test]
    fn reshape_shares_and_cow_detaches() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let mut r = a.reshape(&[4]);
        assert_eq!(a.data().as_ptr(), r.data().as_ptr());
        r.set(&[0], 7.0);
        assert_eq!(a.at(&[0, 0]), 1.0, "original untouched after CoW write");
        assert_eq!(r.at(&[0]), 7.0);
    }

    #[test]
    fn into_vec_on_shared_buffer_copies() {
        let a = Tensor::from_vec(vec![5.0, 6.0], &[2]);
        let b = a.clone();
        let v = b.into_vec();
        assert_eq!(v, vec![5.0, 6.0]);
        assert_eq!(a.data(), &[5.0, 6.0]);
    }

    #[test]
    fn drop_recycles_into_pool() {
        let n = 16411; // pool-sized, unique to this test
        let t = Tensor::zeros(&[n]);
        let ptr = t.data().as_ptr();
        drop(t);
        let again = Tensor::zeros(&[n]);
        assert_eq!(again.data().as_ptr(), ptr, "dropped buffer should be reused");
    }
}
