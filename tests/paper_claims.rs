//! Headline qualitative claims of the paper, asserted against the
//! simulated cluster. These are the "shape" checks of the reproduction:
//! who wins, in which direction, and under which constraint.

use avgpipe::{predict, run_avgpipe, run_baseline, tune, BaselineKind, Profiler, TuneMethod};
use ea_models::{bert_spec, gnmt_spec, Workload};
use ea_sched::partition_model;
use ea_sim::ClusterConfig;

const GIB: u64 = 1 << 30;
const CAP: u64 = 16 * GIB;

#[test]
fn pipeline_parallelism_beats_data_parallelism_on_slow_ethernet() {
    // §7.1.1: "data parallelism has to synchronize the model across
    // nodes, resulting in overwhelming network communication overhead."
    let spec = gnmt_spec();
    let cluster = ClusterConfig::paper_testbed();
    let ddp = run_baseline(BaselineKind::DataParallel, &spec, &cluster, 128, 8, CAP);
    let gpipe = run_baseline(BaselineKind::GPipe, &spec, &cluster, 128, 8, CAP);
    assert!(ddp.time_per_batch_s > 3.0 * gpipe.time_per_batch_s);
}

#[test]
fn avgpipe_beats_every_fitting_baseline_on_gnmt_within_its_memory() {
    let spec = gnmt_spec();
    let cluster = ClusterConfig::paper_testbed();
    for kind in [BaselineKind::GPipe, BaselineKind::PipeDream2Bw, BaselineKind::Dapple] {
        let base = run_baseline(kind, &spec, &cluster, 128, 8, CAP);
        assert!(!base.oom, "{} unexpectedly OOMed", base.name);
        let budget = (base.max_peak_mem as f64 * 1.05) as u64;
        let avg = run_avgpipe(&spec, &cluster, 128, 8, budget, TuneMethod::ProfilingBased, 4);
        assert!(!avg.oom, "AvgPipe vs {} OOMed", base.name);
        assert!(
            avg.time_per_batch_s < base.time_per_batch_s * 1.02,
            "AvgPipe {} s/batch vs {} {} s/batch",
            avg.time_per_batch_s,
            base.name,
            base.time_per_batch_s
        );
    }
}

#[test]
fn pipedream_ooms_on_bert_but_2bw_does_not() {
    // §7.1.1: "PipeDream has to maintain six versions of model weights to
    // mitigate bubbles, causing the out-of-memory event. In contrast,
    // PipeDream-2BW achieves the lowest memory footprint."
    let spec = bert_spec();
    let cluster = ClusterConfig::paper_testbed();
    let pd = run_baseline(BaselineKind::PipeDream, &spec, &cluster, 32, 8, CAP);
    assert!(pd.oom, "PipeDream should exceed the 16 GiB budget on BERT");
    let bw = run_baseline(BaselineKind::PipeDream2Bw, &spec, &cluster, 32, 8, CAP);
    assert!(!bw.oom, "PipeDream-2BW must fit");
    // And the in-flight stash shows the K−k staircase on PipeDream.
    assert!(pd.peak_mem[0] > pd.peak_mem[4]);
}

#[test]
fn avgpipe_raises_gpu_utilization_on_bert() {
    // Figure 13: parallel pipelines raise utilization.
    let spec = bert_spec();
    let cluster = ClusterConfig::paper_testbed();
    let gpipe = run_baseline(BaselineKind::GPipe, &spec, &cluster, 32, 8, CAP);
    let avg = run_avgpipe(&spec, &cluster, 32, 8, CAP, TuneMethod::ProfilingBased, 4);
    assert!(avg.n >= 2, "AvgPipe should choose parallel pipelines, chose N={}", avg.n);
    assert!(
        avg.mean_util > gpipe.mean_util,
        "AvgPipe util {} vs GPipe {}",
        avg.mean_util,
        gpipe.mean_util
    );
}

#[test]
fn profiling_tuner_is_cheap_and_good_on_every_workload() {
    // Figures 18/19 shape, all three workloads.
    for w in Workload::all() {
        let spec = w.spec();
        let cluster = if w == Workload::Awd {
            ClusterConfig::paper_testbed_two_nodes()
        } else {
            ClusterConfig::paper_testbed()
        };
        let part = partition_model(&spec, cluster.num_devices());
        let batch = spec.default_batch;
        let opt = if w == Workload::Awd { 4 } else { 8 };
        let prof = tune(&spec, &cluster, &part, batch, opt, CAP, TuneMethod::ProfilingBased, 4);
        let trav = tune(&spec, &cluster, &part, batch, opt, CAP, TuneMethod::Traversal, 4);
        assert!(
            prof.tuning_cost_s * 3.0 < trav.tuning_cost_s,
            "{}: profiling {} s vs traversal {} s",
            w.name(),
            prof.tuning_cost_s,
            trav.tuning_cost_s
        );
    }
}

#[test]
fn predictor_self_consistency_on_all_workloads() {
    // Predicting the profiled setting itself must reproduce the measured
    // compute time exactly and the measured memory exactly.
    for w in Workload::all() {
        let spec = w.spec();
        let cluster = if w == Workload::Awd {
            ClusterConfig::paper_testbed_two_nodes()
        } else {
            ClusterConfig::paper_testbed()
        };
        let part = partition_model(&spec, cluster.num_devices());
        let batch = spec.default_batch;
        let profiler = Profiler::new(spec, cluster, part, batch, 8);
        let p = profiler.profile(batch, 1, 4);
        let pred = predict(&p, batch, 1);
        for (k, d) in p.per_device.iter().enumerate() {
            let (tg, _, _) = pred.per_device_t[k];
            assert!(
                (tg - d.t_gpu_us).abs() <= 1e-6 * d.t_gpu_us.max(1.0),
                "{} device {k}: {tg} vs {}",
                w.name(),
                d.t_gpu_us
            );
        }
    }
}

#[test]
fn avgpipe_chooses_workload_appropriate_degrees() {
    // Figure 19's insight: many micro-batches for GNMT (bubble-bound),
    // huge micro-batches for AWD (arithmetic-intensity-bound).
    let gnmt = run_avgpipe(
        &gnmt_spec(),
        &ClusterConfig::paper_testbed(),
        128,
        8,
        CAP,
        TuneMethod::Traversal,
        4,
    );
    assert!(gnmt.m >= 8, "GNMT wants many micro-batches, got M={}", gnmt.m);
    let awd = run_avgpipe(
        &Workload::Awd.spec(),
        &ClusterConfig::paper_testbed_two_nodes(),
        40,
        4,
        CAP,
        TuneMethod::Traversal,
        4,
    );
    assert!(awd.m <= 5, "AWD wants large micro-batches (small M), got M={}", awd.m);
}
