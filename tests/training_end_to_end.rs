//! End-to-end training integration tests across the numeric crates:
//! data generation → analogue models → (threaded) runtime → metrics.

use ea_data::SyntheticTask;
use ea_models::{awd_analogue, bert_analogue, gnmt_analogue, AnalogueConfig};
use ea_optim::{OptKind, Optimizer};
use ea_runtime::{
    epochs_to_target, evaluate, ElasticSemantic, ElasticTrainer, SyncTrainer, ThreadedPipeline,
    Trainer,
};
use ea_tensor::TensorRng;

fn adam(stages: usize, lr: f32) -> Vec<Box<dyn Optimizer>> {
    (0..stages).map(|_| OptKind::Adam { lr }.build()).collect()
}

#[test]
fn gnmt_analogue_reaches_target_accuracy() {
    let cfg = AnalogueConfig { vocab: 16, seq: 6, hidden: 24, blocks: 3, stages: 3 };
    let model = gnmt_analogue(cfg, &mut TensorRng::seed_from_u64(1));
    let mut t = SyncTrainer::new(model, adam(3, 1e-2), 4);
    let task = SyntheticTask::copy_translate(16, 6, 2);
    let r = epochs_to_target(&mut t, &task, 8, 40, 25, 0.9, true, 4);
    assert!(r.epochs.is_some(), "GNMT analogue never hit 90%: {:?}", r.final_eval);
}

#[test]
fn bert_analogue_learns_masked_denoising() {
    let cfg = AnalogueConfig { vocab: 24, seq: 8, hidden: 24, blocks: 2, stages: 2 };
    let model = bert_analogue(cfg, &mut TensorRng::seed_from_u64(3));
    let mut t = SyncTrainer::new(model, adam(2, 5e-3), 2);
    let task = SyntheticTask::masked_denoise(24, 8, 0.3, 4);
    let before = evaluate(&mut t, &task, 8, 4);
    for b in 0..150u64 {
        t.step(&task.batch(8, b));
    }
    let after = evaluate(&mut t, &task, 8, 4);
    assert!(
        after.accuracy > before.accuracy + 0.2,
        "no learning: {:.3} -> {:.3}",
        before.accuracy,
        after.accuracy
    );
}

#[test]
fn awd_analogue_approaches_chain_entropy() {
    let cfg = AnalogueConfig { vocab: 16, seq: 10, hidden: 24, blocks: 2, stages: 2 };
    let model = awd_analogue(cfg, &mut TensorRng::seed_from_u64(5));
    let opts: Vec<Box<dyn Optimizer>> =
        (0..2).map(|_| OptKind::Momentum { lr: 0.2, beta: 0.9 }.build()).collect();
    let mut t = SyncTrainer::new(model, opts, 2);
    let task = SyntheticTask::next_token(16, 10, 6);
    let before = evaluate(&mut t, &task, 8, 4);
    for b in 0..400u64 {
        t.step(&task.batch(8, b));
    }
    let after = evaluate(&mut t, &task, 8, 4);
    // Uniform guessing gives ln(16) ≈ 2.77; the sparse Markov chain is
    // predictable well below 2.0.
    assert!(before.loss > 2.5);
    assert!(after.loss < 2.1, "LM loss stuck at {:.3}", after.loss);
}

#[test]
fn threaded_pipeline_trains_identically_to_reference_across_depths() {
    for stages in [2usize, 4] {
        let cfg = AnalogueConfig { vocab: 16, seq: 4, hidden: 16, blocks: 3, stages };
        let task = SyntheticTask::copy_translate(16, 4, 9);
        let mut reference = SyncTrainer::new(
            gnmt_analogue(cfg, &mut TensorRng::seed_from_u64(13)),
            adam(stages, 1e-2),
            4,
        );
        let mut pipe = ThreadedPipeline::spawn(
            gnmt_analogue(cfg, &mut TensorRng::seed_from_u64(13)).into_stages(),
            adam(stages, 1e-2),
            4,
        );
        for b in 0..6 {
            let batch = task.batch(8, b);
            let lr = reference.step(&batch);
            let lt = pipe.step(&batch);
            assert!((lr - lt).abs() < 1e-6, "K={stages} batch {b}: {lr} vs {lt}");
        }
    }
}

#[test]
fn elastic_trainer_scales_to_three_pipelines_and_matches_semantics() {
    let n = 3;
    let cfg = AnalogueConfig { vocab: 16, seq: 4, hidden: 16, blocks: 2, stages: 2 };
    let task = SyntheticTask::copy_translate(16, 4, 21);
    let seed = 33;

    let stages = (0..n)
        .map(|_| gnmt_analogue(cfg, &mut TensorRng::seed_from_u64(seed)).into_stages())
        .collect();
    let opts = (0..n).map(|_| adam(2, 1e-2)).collect();
    let eval = gnmt_analogue(cfg, &mut TensorRng::seed_from_u64(seed));
    let mut threaded = ElasticTrainer::new(stages, opts, 2, None, eval);

    let sem_models =
        (0..n).map(|_| gnmt_analogue(cfg, &mut TensorRng::seed_from_u64(seed))).collect();
    let sem_opts = (0..n).map(|_| adam(2, 1e-2)).collect();
    let sem_eval = gnmt_analogue(cfg, &mut TensorRng::seed_from_u64(seed));
    let mut semantic = ElasticSemantic::with_eval_replica(sem_models, sem_opts, 2, None, sem_eval);

    for r in 0..3u64 {
        let batches: Vec<_> = (0..n as u64).map(|i| task.batch(4, r * 3 + i)).collect();
        let lt = threaded.round(&batches);
        let ls = semantic.round(&batches);
        assert!((lt - ls).abs() < 1e-6, "round {r}: {lt} vs {ls}");
    }
    for s in 0..2 {
        let tw = threaded.reference(s);
        let sw = semantic.reference(s);
        assert!(tw.iter().zip(sw).all(|(a, b)| (a - b).abs() < 1e-6));
    }
}

#[test]
fn elastic_averaging_with_asgd_optimizer() {
    // The framework is optimizer-agnostic (§3.2): swap Adam for ASGD.
    let cfg = AnalogueConfig { vocab: 16, seq: 4, hidden: 16, blocks: 2, stages: 2 };
    let task = SyntheticTask::copy_translate(16, 4, 22);
    let n = 2;
    let models = (0..n).map(|_| gnmt_analogue(cfg, &mut TensorRng::seed_from_u64(7))).collect();
    let opts = (0..n)
        .map(|_| {
            (0..2).map(|_| OptKind::Asgd { lr: 5.0 }.build()).collect::<Vec<Box<dyn Optimizer>>>()
        })
        .collect();
    let eval = gnmt_analogue(cfg, &mut TensorRng::seed_from_u64(7));
    let mut ea = ElasticSemantic::with_eval_replica(models, opts, 2, None, eval);
    let first = ea.round(&[task.batch(8, 0), task.batch(8, 1)]);
    let mut last = first;
    for r in 1..100u64 {
        last = ea.round(&[task.batch(8, 2 * r), task.batch(8, 2 * r + 1)]);
    }
    assert!(last < first * 0.8, "ASGD elastic training stalled: {first} -> {last}");
}

#[test]
fn gru_stack_trains_on_the_copy_task() {
    use ea_autograd::{Embedding, GruSeq, Linear, Stage, StagedModel};

    let (vocab, seq, hidden) = (16usize, 4usize, 24usize);
    let mut rng = TensorRng::seed_from_u64(41);
    let model = StagedModel::new(vec![
        Stage::new(vec![
            Box::new(Embedding::new(vocab, hidden, &mut rng)),
            Box::new(GruSeq::new(seq, hidden, hidden, &mut rng)),
        ]),
        Stage::new(vec![
            Box::new(GruSeq::new(seq, hidden, hidden, &mut rng)),
            Box::new(Linear::new(hidden, vocab, &mut rng)),
        ]),
    ]);
    let mut t = SyncTrainer::new(model, adam(2, 1e-2), 2);
    let task = SyntheticTask::copy_translate(vocab, seq, 44);
    let first = t.step(&task.batch(8, 0));
    let mut last = first;
    for b in 1..120 {
        last = t.step(&task.batch(8, b));
    }
    assert!(last < first * 0.6, "GRU stack stalled: {first} -> {last}");
}

#[test]
fn warmup_scheduled_adam_trains_the_bert_analogue() {
    use ea_optim::{LrSchedule, Scheduled};

    let cfg = AnalogueConfig { vocab: 24, seq: 8, hidden: 24, blocks: 2, stages: 2 };
    let model = bert_analogue(cfg, &mut TensorRng::seed_from_u64(51));
    // The BERT recipe: linear warmup then decay, wrapped around Adam.
    let opts: Vec<Box<dyn Optimizer>> = (0..2)
        .map(|_| {
            Box::new(Scheduled::new(
                OptKind::Adam { lr: 5e-3 }.build(),
                LrSchedule::WarmupLinearDecay { warmup: 20, total: 200 },
            )) as Box<dyn Optimizer>
        })
        .collect();
    let mut t = SyncTrainer::new(model, opts, 2);
    let task = SyntheticTask::masked_denoise(24, 8, 0.3, 52);
    let before = evaluate(&mut t, &task, 8, 4);
    for b in 0..150u64 {
        t.step(&task.batch(8, b));
    }
    let after = evaluate(&mut t, &task, 8, 4);
    assert!(
        after.accuracy > before.accuracy + 0.15,
        "scheduled training stalled: {:.3} -> {:.3}",
        before.accuracy,
        after.accuracy
    );
}
