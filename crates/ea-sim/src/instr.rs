//! The instruction set executed by the simulator.

use serde::{Deserialize, Serialize};

/// Index of a GPU in the cluster.
pub type DeviceId = usize;
/// Index of a machine.
pub type NodeId = usize;
/// Index of an instruction stream (a "process" on a GPU).
pub type StreamId = usize;

/// What a compute instruction represents — carried through to the
/// utilization traces and per-phase accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CLabel {
    /// Forward propagation of a micro-batch.
    Fwd { micro: u32 },
    /// Backward propagation of a micro-batch.
    Bwd { micro: u32 },
    /// Local optimizer step.
    Opt,
    /// Elastic-averaging pull / reference update work.
    EaUpdate,
    /// Gradient reduction work (data parallelism).
    AllReduce,
    /// Anything else.
    Other,
}

/// One instruction of a stream. Streams execute their instructions
/// strictly in order; `Compute` and `Recv` block the stream, `Send`,
/// `Alloc` and `Free` do not.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Instr {
    /// Occupy the device with `flops` of work at arithmetic-intensity
    /// demand `demand ∈ (0, 1]`.
    Compute {
        /// Work volume in floating-point operations.
        flops: f64,
        /// Fraction of the device this kernel can use when alone.
        demand: f64,
        /// Classification for traces and stats.
        label: CLabel,
    },
    /// Asynchronously send `bytes` to another stream. Delivery order
    /// between a fixed (sender, receiver) pair is FIFO.
    Send {
        /// Destination stream.
        to: StreamId,
        /// Payload size.
        bytes: u64,
        /// Tag checked against the matching `Recv` (schedule validation).
        tag: u32,
    },
    /// Block until the next FIFO message from `from` arrives; its tag must
    /// equal `tag`.
    Recv {
        /// Source stream.
        from: StreamId,
        /// Expected tag.
        tag: u32,
    },
    /// Claim `bytes` of device memory under `(stream, tag)`.
    Alloc {
        /// Bytes claimed.
        bytes: u64,
        /// Allocation tag, unique per live allocation within the stream.
        tag: u64,
    },
    /// Release the allocation `(stream, tag)`.
    Free {
        /// Tag previously passed to `Alloc`.
        tag: u64,
    },
}

/// An instruction stream pinned to a device — one simulated process.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Stream {
    /// Device the stream runs on.
    pub device: DeviceId,
    /// Debug name (e.g. `"pipe0/stage2"` or `"ref/stage2"`).
    pub name: String,
    /// The instructions, executed in order.
    pub instrs: Vec<Instr>,
}

impl Stream {
    /// Creates an empty stream on `device`.
    pub fn new(device: DeviceId, name: impl Into<String>) -> Self {
        Stream { device, name: name.into(), instrs: Vec::new() }
    }

    /// Appends an instruction (builder style).
    pub fn push(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }
}

/// A complete program: all streams of one training iteration (or several).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Program {
    /// The streams; `StreamId` indexes into this vector.
    pub streams: Vec<Stream>,
}

impl Program {
    /// Empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Adds a stream, returning its id.
    pub fn add_stream(&mut self, s: Stream) -> StreamId {
        self.streams.push(s);
        self.streams.len() - 1
    }

    /// Total instruction count, for diagnostics.
    pub fn num_instrs(&self) -> usize {
        self.streams.iter().map(|s| s.instrs.len()).sum()
    }

    /// Basic static validation: every `Recv` has a plausible `Send`
    /// counterpart count per (from, to) pair, and tags are consistent in
    /// FIFO order. Returns a description of the first mismatch.
    pub fn validate_channels(&self) -> Result<(), String> {
        use std::collections::HashMap;
        let mut sends: HashMap<(StreamId, StreamId), Vec<u32>> = HashMap::new();
        let mut recvs: HashMap<(StreamId, StreamId), Vec<u32>> = HashMap::new();
        for (sid, s) in self.streams.iter().enumerate() {
            for i in &s.instrs {
                match *i {
                    Instr::Send { to, tag, .. } => {
                        if to >= self.streams.len() {
                            return Err(format!("stream {sid} sends to invalid stream {to}"));
                        }
                        sends.entry((sid, to)).or_default().push(tag);
                    }
                    Instr::Recv { from, tag } => {
                        if from >= self.streams.len() {
                            return Err(format!("stream {sid} recvs from invalid stream {from}"));
                        }
                        recvs.entry((from, sid)).or_default().push(tag);
                    }
                    _ => {}
                }
            }
        }
        for (pair, sent) in &sends {
            let got = recvs.get(pair).cloned().unwrap_or_default();
            if sent != &got {
                return Err(format!(
                    "channel {}→{}: send tags {:?} != recv tags {:?}",
                    pair.0, pair.1, sent, got
                ));
            }
        }
        for (pair, got) in &recvs {
            if !sends.contains_key(pair) {
                return Err(format!(
                    "channel {}→{}: recv tags {:?} with no sends",
                    pair.0, pair.1, got
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_validation_accepts_matched_tags() {
        let mut p = Program::new();
        let mut a = Stream::new(0, "a");
        a.push(Instr::Send { to: 1, bytes: 10, tag: 7 });
        let mut b = Stream::new(1, "b");
        b.push(Instr::Recv { from: 0, tag: 7 });
        p.add_stream(a);
        p.add_stream(b);
        assert!(p.validate_channels().is_ok());
    }

    #[test]
    fn channel_validation_rejects_tag_mismatch() {
        let mut p = Program::new();
        let mut a = Stream::new(0, "a");
        a.push(Instr::Send { to: 1, bytes: 10, tag: 7 });
        let mut b = Stream::new(1, "b");
        b.push(Instr::Recv { from: 0, tag: 8 });
        p.add_stream(a);
        p.add_stream(b);
        assert!(p.validate_channels().is_err());
    }

    #[test]
    fn channel_validation_rejects_unmatched_recv() {
        let mut p = Program::new();
        p.add_stream(Stream::new(0, "a"));
        let mut b = Stream::new(1, "b");
        b.push(Instr::Recv { from: 0, tag: 0 });
        p.add_stream(b);
        assert!(p.validate_channels().is_err());
    }
}
