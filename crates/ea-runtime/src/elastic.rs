//! The threaded elastic-averaging trainer: N pipelines + reference shards.

use crate::{Error, ThreadedPipeline};
use ea_autograd::{Stage, StagedModel};
use ea_comms::{CommsError, ShardChannel};
use ea_data::Batch;
use ea_optim::Optimizer;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

struct ShardState {
    /// Completed elastic-averaging rounds.
    version: u64,
    /// Reference weights (Step ❹'s target).
    weights: Vec<f32>,
    /// One pending local update per pipeline for the current round.
    pending: Vec<Option<Vec<f32>>>,
}

/// Whether a submission changed shard state or was a recognized
/// retransmission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// First delivery: the update was recorded (and possibly the round
    /// applied).
    Applied,
    /// `(round, pipe)` was already recorded or already folded into the
    /// reference — the retransmission was dropped.
    Duplicate,
}

/// A reference-model shard: the per-GPU process of the paper's Figure 6
/// that owns one stage of the reference model, accumulates the local
/// updates of all N pipelines and applies the normalized sum.
pub struct RefShard {
    state: Mutex<ShardState>,
    cv: Condvar,
    n: usize,
}

impl RefShard {
    /// Creates the shard with initial reference weights.
    pub fn new(init: Vec<f32>, n_pipelines: usize) -> Self {
        RefShard {
            state: Mutex::new(ShardState {
                version: 0,
                weights: init,
                pending: vec![None; n_pipelines],
            }),
            cv: Condvar::new(),
            n: n_pipelines,
        }
    }

    /// Number of pipelines feeding this shard.
    pub fn n_pipelines(&self) -> usize {
        self.n
    }

    /// Step ❹ for in-process callers: pipeline `pipe` submits its local
    /// update for the *current* round. A second submission by the same
    /// pipeline within one round is an error (in-process callers are
    /// exactly-once; retransmission-tolerant peers use
    /// [`RefShard::submit_at`]).
    pub fn submit(&self, pipe: usize, delta: Vec<f32>) -> Result<(), Error> {
        let mut st = self.state.lock();
        let round = st.version;
        match self.submit_locked(&mut st, round, pipe, delta)? {
            SubmitOutcome::Applied => Ok(()),
            SubmitOutcome::Duplicate => Err(Error::DuplicateSubmit { pipe, round }),
        }
    }

    /// Step ❹ for transport peers: idempotent, round-addressed
    /// submission. The `(round, pipe)` pair is the idempotency key:
    ///
    /// * `round == version`, first delivery → recorded
    ///   ([`SubmitOutcome::Applied`]; when all N have reported, Step ❺
    ///   applies the normalized sum in fixed pipeline order and bumps the
    ///   version).
    /// * `round < version`, or already recorded this round → the delta is
    ///   discarded and the caller acknowledged
    ///   ([`SubmitOutcome::Duplicate`]), so at-least-once retry never
    ///   double-counts an update.
    /// * `round > version` → [`Error::RoundAhead`]: a correct peer pulls
    ///   round `r` before submitting round `r`, so this means a protocol
    ///   violation.
    pub fn submit_at(
        &self,
        round: u64,
        pipe: usize,
        delta: Vec<f32>,
    ) -> Result<SubmitOutcome, Error> {
        let mut st = self.state.lock();
        self.submit_locked(&mut st, round, pipe, delta)
    }

    fn submit_locked(
        &self,
        st: &mut ShardState,
        round: u64,
        pipe: usize,
        delta: Vec<f32>,
    ) -> Result<SubmitOutcome, Error> {
        if pipe >= self.n {
            ea_tensor::pool::recycle(delta);
            return Err(Error::IndexOutOfRange { what: "pipeline", index: pipe, len: self.n });
        }
        if delta.len() != st.weights.len() {
            let got = delta.len();
            ea_tensor::pool::recycle(delta);
            return Err(Error::LengthMismatch {
                what: format!("pipeline {pipe} delta"),
                expected: st.weights.len(),
                got,
            });
        }
        if round < st.version {
            // The round this update belongs to has already been applied;
            // the original delivery made it. Drop the retransmission.
            ea_tensor::pool::recycle(delta);
            return Ok(SubmitOutcome::Duplicate);
        }
        if round > st.version {
            ea_tensor::pool::recycle(delta);
            return Err(Error::RoundAhead { round, version: st.version });
        }
        if st.pending[pipe].is_some() {
            ea_tensor::pool::recycle(delta);
            return Ok(SubmitOutcome::Duplicate);
        }
        st.pending[pipe] = Some(delta);
        if st.pending.iter().all(Option::is_some) {
            let inv = 1.0 / self.n as f32;
            for i in 0..self.n {
                let delta = st.pending[i].take().unwrap();
                for (w, d) in st.weights.iter_mut().zip(&delta) {
                    *w += d * inv;
                }
                // Deltas arrive in pooled buffers; return them for reuse.
                ea_tensor::pool::recycle(delta);
            }
            st.version += 1;
            self.cv.notify_all();
        }
        Ok(SubmitOutcome::Applied)
    }

    /// Step ❷ support: returns the reference weights as of exactly
    /// `version` completed rounds (blocks until reached). Because every
    /// pipeline pulls for round `r` before submitting round `r`, the
    /// version cannot advance past `r` while any pull is outstanding —
    /// all pipelines observe identical reference weights.
    pub fn weights_at(&self, version: u64) -> Vec<f32> {
        let mut st = self.state.lock();
        while st.version < version {
            self.cv.wait(&mut st);
        }
        assert_eq!(st.version, version, "reference advanced past the pull point");
        st.weights.clone()
    }

    /// Transport-facing variant of [`RefShard::weights_at`]: waits until
    /// at least `version` rounds are complete and returns the weights
    /// *with the version they actually correspond to*. Retransmitted pull
    /// requests can arrive after their round was superseded; the caller
    /// matches on the returned version and discards stale replies instead
    /// of panicking.
    pub fn weights_at_least(&self, version: u64) -> (u64, Vec<f32>) {
        let mut st = self.state.lock();
        while st.version < version {
            self.cv.wait(&mut st);
        }
        (st.version, st.weights.clone())
    }

    /// Non-blocking read of the reference weights at exactly `version`
    /// completed rounds: `None` if the shard is at any other version or a
    /// round is mid-application. Evaluation paths use this so they can
    /// never observe mid-round weights.
    pub fn try_weights_at(&self, version: u64) -> Option<Vec<f32>> {
        let st = self.state.lock();
        (st.version == version).then(|| st.weights.clone())
    }

    /// Current reference weights (for evaluation; racy only with active
    /// training — prefer [`RefShard::try_weights_at`] when the expected
    /// round is known).
    pub fn snapshot(&self) -> Vec<f32> {
        self.state.lock().weights.clone()
    }
}

/// The in-process [`ShardChannel`]: calls the shard accumulators
/// directly, no serialization, no copies beyond the protocol-mandated
/// clone of the reference weights.
pub struct LocalShards {
    shards: Vec<Arc<RefShard>>,
}

impl LocalShards {
    /// Wraps the given shards.
    pub fn new(shards: Vec<Arc<RefShard>>) -> Self {
        LocalShards { shards }
    }

    /// The underlying shards.
    pub fn shards(&self) -> &[Arc<RefShard>] {
        &self.shards
    }
}

impl ShardChannel for LocalShards {
    fn n_shards(&self) -> usize {
        self.shards.len()
    }

    fn pull(&self, _pipe: usize, shard: usize, version: u64) -> Result<Vec<f32>, CommsError> {
        let sh = self
            .shards
            .get(shard)
            .ok_or_else(|| CommsError::Protocol(format!("no shard {shard}")))?;
        Ok(sh.weights_at(version))
    }

    fn submit(
        &self,
        pipe: usize,
        shard: usize,
        round: u64,
        delta: Vec<f32>,
    ) -> Result<(), CommsError> {
        let sh = self
            .shards
            .get(shard)
            .ok_or_else(|| CommsError::Protocol(format!("no shard {shard}")))?;
        sh.submit_at(round, pipe, delta)
            .map(|_| ())
            .map_err(|e| CommsError::Protocol(e.to_string()))
    }
}

/// N parallel threaded pipelines training replicas under elastic
/// averaging. The reference shards live behind a [`ShardChannel`]: the
/// default constructor wires the in-process [`LocalShards`] backend, and
/// [`ElasticTrainer::with_channel`] runs the identical training loop over
/// any transport (loopback, TCP, fault-injected) instead.
pub struct ElasticTrainer {
    pipelines: Vec<ThreadedPipeline>,
    channel: Arc<dyn ShardChannel>,
    /// Present in local mode only: direct shard handles for evaluation
    /// reads that must never block or observe mid-round state.
    local: Option<Vec<Arc<RefShard>>>,
    n_shards: usize,
    alpha: f32,
    round: u64,
    eval_replica: StagedModel,
}

impl ElasticTrainer {
    /// Builds the trainer with in-process reference shards (all replicas
    /// must start from identical weights for the reference initialization
    /// to be meaningful). `alpha = None` uses 1/N.
    pub fn new(
        replica_stages: Vec<Vec<Stage>>,
        replica_opts: Vec<Vec<Box<dyn Optimizer>>>,
        micros: usize,
        alpha: Option<f32>,
        eval_replica: StagedModel,
    ) -> Self {
        let n = replica_stages.len();
        assert!(n >= 1);
        let k = replica_stages[0].len();
        let shards: Vec<Arc<RefShard>> = (0..k)
            .map(|s| Arc::new(RefShard::new(replica_stages[0][s].params_flat(), n)))
            .collect();
        let channel: Arc<dyn ShardChannel> = Arc::new(LocalShards::new(shards.clone()));
        Self::build(
            replica_stages,
            replica_opts,
            micros,
            alpha,
            eval_replica,
            channel,
            Some(shards),
        )
    }

    /// Builds the trainer against an arbitrary shard backend — the
    /// loopback or TCP transport, optionally fault-wrapped. The channel's
    /// server must hold reference weights identical to the replicas'
    /// initial weights.
    pub fn with_channel(
        replica_stages: Vec<Vec<Stage>>,
        replica_opts: Vec<Vec<Box<dyn Optimizer>>>,
        micros: usize,
        alpha: Option<f32>,
        eval_replica: StagedModel,
        channel: Arc<dyn ShardChannel>,
    ) -> Self {
        Self::build(replica_stages, replica_opts, micros, alpha, eval_replica, channel, None)
    }

    fn build(
        replica_stages: Vec<Vec<Stage>>,
        replica_opts: Vec<Vec<Box<dyn Optimizer>>>,
        micros: usize,
        alpha: Option<f32>,
        eval_replica: StagedModel,
        channel: Arc<dyn ShardChannel>,
        local: Option<Vec<Arc<RefShard>>>,
    ) -> Self {
        let n = replica_stages.len();
        assert!(n >= 1);
        assert_eq!(replica_opts.len(), n);
        let k = replica_stages[0].len();
        assert_eq!(channel.n_shards(), k, "one reference shard per stage");
        let pipelines = replica_stages
            .into_iter()
            .zip(replica_opts)
            .map(|(stages, opts)| ThreadedPipeline::spawn(stages, opts, micros))
            .collect();
        ElasticTrainer {
            pipelines,
            channel,
            local,
            n_shards: k,
            alpha: alpha.unwrap_or(1.0 / n as f32),
            round: 0,
            eval_replica,
        }
    }

    /// Number of pipelines N.
    pub fn n_pipelines(&self) -> usize {
        self.pipelines.len()
    }

    /// One elastic-averaging round: each pipeline trains on its own batch
    /// concurrently (scoped threads — one driver per pipeline), then pulls
    /// toward the round-`r` reference and submits its update. Returns the
    /// mean loss across pipelines.
    pub fn round(&mut self, batches: &[Batch]) -> f32 {
        assert_eq!(batches.len(), self.pipelines.len(), "one batch per pipeline");
        let k = self.n_shards;
        let round = self.round;
        let alpha = self.alpha;
        let channel = &self.channel;
        let losses: Vec<f32> = std::thread::scope(|scope| {
            let mut joins = Vec::new();
            for (p, (pipe, batch)) in self.pipelines.iter_mut().zip(batches.iter()).enumerate() {
                joins.push(scope.spawn(move || {
                    // Fetch the round-r reference up front: the version
                    // cannot advance past r until this pipeline submits,
                    // so this observes exactly the pre-round weights.
                    let references: Vec<Vec<f32>> = (0..k)
                        .map(|s| channel.pull(p, s, round).expect("reference pull failed"))
                        .collect();
                    // Steps ❶–❷ run worker-side in one fused pass; Δ comes
                    // back per stage for Step ❸.
                    let (loss, deltas) = pipe.step_elastic(batch, references, alpha);
                    for (s, delta) in deltas.into_iter().enumerate() {
                        channel.submit(p, s, round, delta).expect("delta submit failed");
                    }
                    loss
                }));
            }
            joins.into_iter().map(|j| j.join().expect("pipeline driver panicked")).collect()
        });
        self.round += 1;
        losses.iter().sum::<f32>() / losses.len() as f32
    }

    /// Materializes the reference model into the evaluation replica.
    ///
    /// Reads the reference at exactly `self.round` completed rounds —
    /// never a mid-round state. (`&mut self` excludes a concurrent
    /// [`ElasticTrainer::round`], so the read cannot block either.)
    pub fn eval_model(&mut self) -> &StagedModel {
        for s in 0..self.n_shards {
            let w = self.reference(s);
            self.eval_replica.stage_mut(s).set_params_flat(&w);
            ea_tensor::pool::recycle(w);
        }
        &self.eval_replica
    }

    /// Reference weights of stage `s` as of the last completed round.
    pub fn reference(&self, s: usize) -> Vec<f32> {
        match &self.local {
            Some(shards) => shards[s]
                .try_weights_at(self.round)
                .expect("evaluation must not race an active round"),
            None => {
                self.channel.pull(0, s, self.round).expect("reference pull for evaluation failed")
            }
        }
    }

    /// Replica parameters of pipeline `p`, stage `s`.
    pub fn replica_params(&self, p: usize, s: usize) -> Vec<f32> {
        self.pipelines[p].stage_params(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantic::ElasticSemantic;
    use ea_data::SyntheticTask;
    use ea_models::{gnmt_analogue, AnalogueConfig};
    use ea_optim::OptKind;
    use ea_tensor::TensorRng;

    const CFG: AnalogueConfig =
        AnalogueConfig { vocab: 16, seq: 4, hidden: 16, blocks: 2, stages: 2 };

    fn replicas(n: usize, seed: u64) -> (Vec<Vec<Stage>>, Vec<Vec<Box<dyn Optimizer>>>) {
        let stages = (0..n)
            .map(|_| gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(seed)).into_stages())
            .collect();
        let opts = (0..n)
            .map(|_| {
                (0..CFG.stages).map(|_| OptKind::Adam { lr: 1e-2 }.build()).collect::<Vec<_>>()
            })
            .collect();
        (stages, opts)
    }

    #[test]
    fn threaded_elastic_matches_semantic_reference() {
        let seed = 55;
        let task = SyntheticTask::copy_translate(16, 4, 41);
        let n = 2;

        let (stages, opts) = replicas(n, seed);
        let eval = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(seed));
        let mut threaded = ElasticTrainer::new(stages, opts, 2, None, eval);

        let sem_replicas: Vec<StagedModel> =
            (0..n).map(|_| gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(seed))).collect();
        let sem_opts = (0..n)
            .map(|_| {
                (0..CFG.stages).map(|_| OptKind::Adam { lr: 1e-2 }.build()).collect::<Vec<_>>()
            })
            .collect();
        let sem_eval = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(seed));
        let mut semantic =
            ElasticSemantic::with_eval_replica(sem_replicas, sem_opts, 2, None, sem_eval);

        for r in 0..4 {
            let batches: Vec<_> = (0..n as u64).map(|i| task.batch(4, r * 2 + i)).collect();
            let lt = threaded.round(&batches);
            let ls = semantic.round(&batches);
            assert!((lt - ls).abs() < 1e-6, "round {r}: {lt} vs {ls}");
        }
        for s in 0..CFG.stages {
            let tw = threaded.reference(s);
            let sw = semantic.reference(s);
            for (a, b) in tw.iter().zip(sw) {
                assert!((a - b).abs() < 1e-6, "reference mismatch: {a} vs {b}");
            }
            for p in 0..n {
                let tp = threaded.replica_params(p, s);
                let sp = semantic.replica(p).stage(s).params_flat();
                for (a, b) in tp.iter().zip(&sp) {
                    assert!((a - b).abs() < 1e-6, "replica {p} mismatch: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn reference_stays_centered_between_replicas() {
        let (stages, opts) = replicas(2, 99);
        let eval = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(99));
        let mut t = ElasticTrainer::new(stages, opts, 2, None, eval);
        let task = SyntheticTask::copy_translate(16, 4, 43);
        for r in 0..6 {
            let batches: Vec<_> = (0..2u64).map(|i| task.batch(4, r * 2 + i)).collect();
            t.round(&batches);
        }
        // ‖ref − replica‖ should be smaller than ‖replica0 − replica1‖
        // scaled distance — the reference sits between the replicas.
        let r0 = t.replica_params(0, 0);
        let r1 = t.replica_params(1, 0);
        let rf = t.reference(0);
        let d01: f32 = r0.iter().zip(&r1).map(|(a, b)| (a - b) * (a - b)).sum::<f32>().sqrt();
        let dr0: f32 = rf.iter().zip(&r0).map(|(a, b)| (a - b) * (a - b)).sum::<f32>().sqrt();
        assert!(dr0 < d01 * 2.0 + 1e-3, "reference far from replicas: {dr0} vs {d01}");
    }

    #[test]
    fn shard_applies_in_pipeline_order() {
        let shard = RefShard::new(vec![0.0; 2], 2);
        shard.submit(1, vec![2.0, 2.0]).unwrap();
        // Round not complete yet.
        assert_eq!(shard.weights_at(0), vec![0.0, 0.0]);
        shard.submit(0, vec![0.0, 4.0]).unwrap();
        assert_eq!(shard.weights_at(1), vec![1.0, 3.0]);
    }

    #[test]
    fn double_submit_is_an_error_not_a_panic() {
        let shard = RefShard::new(vec![0.0; 1], 2);
        shard.submit(0, vec![1.0]).unwrap();
        assert_eq!(shard.submit(0, vec![1.0]), Err(Error::DuplicateSubmit { pipe: 0, round: 0 }));
        // The pending update survives the rejected duplicate.
        shard.submit(1, vec![3.0]).unwrap();
        assert_eq!(shard.weights_at(1), vec![2.0]);
    }

    #[test]
    fn wrong_length_delta_is_rejected_without_corrupting_state() {
        let shard = RefShard::new(vec![0.0; 3], 1);
        assert!(matches!(shard.submit(0, vec![1.0; 2]), Err(Error::LengthMismatch { .. })));
        assert!(matches!(shard.submit_at(0, 0, vec![1.0; 7]), Err(Error::LengthMismatch { .. })));
        // A well-formed submission still works afterwards.
        shard.submit(0, vec![1.0; 3]).unwrap();
        assert_eq!(shard.weights_at(1), vec![1.0; 3]);
    }

    #[test]
    fn out_of_range_pipe_is_rejected() {
        let shard = RefShard::new(vec![0.0; 1], 2);
        assert!(matches!(shard.submit_at(0, 5, vec![1.0]), Err(Error::IndexOutOfRange { .. })));
    }

    #[test]
    fn submit_at_is_idempotent_per_round_and_pipe() {
        let shard = RefShard::new(vec![0.0; 1], 2);
        assert_eq!(shard.submit_at(0, 0, vec![2.0]), Ok(SubmitOutcome::Applied));
        // Same (round, pipe) again: duplicate, not double-counted.
        assert_eq!(shard.submit_at(0, 0, vec![2.0]), Ok(SubmitOutcome::Duplicate));
        assert_eq!(shard.submit_at(0, 1, vec![4.0]), Ok(SubmitOutcome::Applied));
        assert_eq!(shard.weights_at(1), vec![3.0]);
        // Late retransmission of the applied round: still a duplicate.
        assert_eq!(shard.submit_at(0, 1, vec![4.0]), Ok(SubmitOutcome::Duplicate));
        assert_eq!(shard.try_weights_at(1), Some(vec![3.0]));
    }

    #[test]
    fn submit_for_a_future_round_is_rejected() {
        let shard = RefShard::new(vec![0.0; 1], 1);
        assert_eq!(
            shard.submit_at(3, 0, vec![1.0]),
            Err(Error::RoundAhead { round: 3, version: 0 })
        );
    }

    #[test]
    fn try_weights_at_only_serves_the_exact_version() {
        let shard = RefShard::new(vec![5.0; 1], 1);
        assert_eq!(shard.try_weights_at(0), Some(vec![5.0]));
        assert_eq!(shard.try_weights_at(1), None);
        shard.submit(0, vec![1.0]).unwrap();
        assert_eq!(shard.try_weights_at(0), None);
        assert_eq!(shard.try_weights_at(1), Some(vec![6.0]));
    }

    #[test]
    fn weights_at_least_reports_the_actual_version() {
        let shard = RefShard::new(vec![0.0; 1], 1);
        shard.submit(0, vec![2.0]).unwrap();
        shard.submit(0, vec![2.0]).unwrap();
        let (v, w) = shard.weights_at_least(1);
        assert_eq!(v, 2);
        assert_eq!(w, vec![4.0]);
    }

    #[test]
    fn local_channel_matches_direct_shard_access() {
        let seed = 61;
        let task = SyntheticTask::copy_translate(16, 4, 44);
        let n = 2;
        // Trainer built through the explicit LocalShards channel.
        let (stages, opts) = replicas(n, seed);
        let k = stages[0].len();
        let shards: Vec<Arc<RefShard>> =
            (0..k).map(|s| Arc::new(RefShard::new(stages[0][s].params_flat(), n))).collect();
        let eval = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(seed));
        let mut via_channel = ElasticTrainer::with_channel(
            stages,
            opts,
            2,
            None,
            eval,
            Arc::new(LocalShards::new(shards)),
        );
        // Default-constructed trainer.
        let (stages2, opts2) = replicas(n, seed);
        let eval2 = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(seed));
        let mut direct = ElasticTrainer::new(stages2, opts2, 2, None, eval2);
        for r in 0..3 {
            let batches: Vec<_> = (0..n as u64).map(|i| task.batch(4, r * 2 + i)).collect();
            let a = via_channel.round(&batches);
            let b = direct.round(&batches);
            assert_eq!(a, b, "round {r}");
        }
        for s in 0..k {
            assert_eq!(via_channel.reference(s), direct.reference(s), "stage {s}");
        }
    }
}
