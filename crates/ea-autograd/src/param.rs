//! Trainable parameters.

use ea_tensor::Tensor;

/// A named trainable parameter with its gradient accumulator.
///
/// `grad` always has the same shape as `value`; `backward` passes add into
/// it and the optimizer consumes and clears it once per local step.
#[derive(Clone, Debug)]
pub struct Param {
    /// Human-readable name, unique within a stage (used in tests and dumps).
    pub name: String,
    /// Current weight values.
    pub value: Tensor,
    /// Accumulated gradient of the current batch.
    pub grad: Tensor,
}

impl Param {
    /// Creates a parameter with a zeroed gradient.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Param { name: name.into(), value, grad }
    }

    /// Number of scalar weights.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }

    /// Clears the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().fill(0.0);
    }

    /// Adds `g` into the gradient accumulator.
    pub fn accumulate_grad(&mut self, g: &Tensor) {
        self.grad.add_assign(g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grad_starts_zero_and_accumulates() {
        let mut p = Param::new("w", Tensor::ones(&[2, 2]));
        assert_eq!(p.grad.sum(), 0.0);
        p.accumulate_grad(&Tensor::full(&[2, 2], 0.5));
        p.accumulate_grad(&Tensor::full(&[2, 2], 0.25));
        assert_eq!(p.grad.sum(), 3.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }

    #[test]
    #[should_panic]
    fn accumulate_rejects_shape_mismatch() {
        let mut p = Param::new("w", Tensor::ones(&[2, 2]));
        p.accumulate_grad(&Tensor::ones(&[4]));
    }
}
