//! Criterion benchmarks of the cluster simulator executing each system's
//! schedule — one benchmark per Figure 11 row family, measuring *our*
//! simulator's throughput (instructions simulated per second), which
//! bounds how fast the figure harness and the traversal tuner can run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ea_models::Workload;
use ea_sched::{data_parallel_program, partition_model, pipeline_program, PipeStyle, PipelinePlan};
use ea_sim::{ClusterConfig, Simulator};

fn plan_for(w: Workload, micros: usize) -> (PipelinePlan, Simulator) {
    let spec = w.spec();
    let cluster = if w == Workload::Awd {
        ClusterConfig::paper_testbed_two_nodes()
    } else {
        ClusterConfig::paper_testbed()
    };
    let partition = partition_model(&spec, cluster.num_devices());
    let batch = spec.default_batch;
    let plan = PipelinePlan::new(spec, cluster.clone(), partition, batch, micros, 8);
    (plan, Simulator::new(cluster))
}

fn bench_pipeline_styles(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    for w in Workload::all() {
        let micros = if w == Workload::Awd { 4 } else { 16 };
        let (plan, sim) = plan_for(w, micros);
        for (name, style) in [
            ("gpipe", PipeStyle::gpipe()),
            ("dapple", PipeStyle::dapple()),
            ("pipedream2bw", PipeStyle::pipedream_2bw()),
            ("avgpipe_n2", PipeStyle::avgpipe(2, plan.stages() + 3)),
        ] {
            let prog = pipeline_program(&plan, &style, 2);
            group.bench_with_input(BenchmarkId::new(name, w.name()), &prog, |b, prog| {
                b.iter(|| sim.run(std::hint::black_box(prog)).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_data_parallel(c: &mut Criterion) {
    let spec = Workload::Gnmt.spec();
    let cluster = ClusterConfig::paper_testbed();
    let prog = data_parallel_program(&spec, &cluster, 128, 2, 8);
    let sim = Simulator::new(cluster);
    c.bench_function("simulate/ddp/GNMT", |b| {
        b.iter(|| sim.run(std::hint::black_box(&prog)).unwrap())
    });
}

criterion_group!(benches, bench_pipeline_styles, bench_data_parallel);
criterion_main!(benches);
