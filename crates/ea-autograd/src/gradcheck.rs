//! Finite-difference gradient checking, used across the test-suites.

use crate::{ForwardCtx, Layer, Saved};
use ea_tensor::{Tensor, TensorRng};

/// Scalar objective used by the checks: `L = Σ y² / 2`, whose gradient
/// w.r.t. `y` is simply `y`.
fn objective(y: &Tensor) -> f32 {
    y.data().iter().map(|v| v * v).sum::<f32>() / 2.0
}

fn objective_grad(y: &Tensor) -> Tensor {
    y.clone()
}

/// Computes the analytic parameter gradients of `layer` on a random input
/// of shape `dims`, and compares each against a central finite difference.
/// Also checks the input gradient `dx`. Panics with a diagnostic if any
/// component deviates by more than `tol` (relative).
///
/// The layer is exercised in eval mode so that dropout does not interfere;
/// dropout has its own dedicated check.
pub fn gradcheck_layer<L: Layer>(mut layer: L, dims: &[usize], tol: f32, seed: u64) {
    let mut rng = TensorRng::seed_from_u64(seed);
    let x = ea_tensor::uniform(dims, -1.0, 1.0, &mut rng);
    let ctx = ForwardCtx::eval();

    // Analytic pass.
    layer.visit_params_mut(&mut |p| p.zero_grad());
    let (y, saved): (Tensor, Saved) = layer.forward(&x, &ctx);
    let dy = objective_grad(&y);
    let dx = layer.backward(&saved, &dy);

    // Input gradient check.
    let eps = 1e-2f32;
    for i in (0..x.numel()).step_by((x.numel() / 24).max(1)) {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let (yp, _) = layer.forward(&xp, &ctx);
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        let (ym, _) = layer.forward(&xm, &ctx);
        let fd = (objective(&yp) - objective(&ym)) / (2.0 * eps);
        let an = dx.data()[i];
        assert!(
            (fd - an).abs() <= tol * (1.0 + fd.abs().max(an.abs())),
            "{}: dx[{i}] analytic {an} vs finite-diff {fd}",
            layer.name()
        );
    }

    // Parameter gradient check. Collect analytic grads first.
    let mut analytic: Vec<(String, Vec<f32>)> = Vec::new();
    layer.visit_params(&mut |p| analytic.push((p.name.clone(), p.grad.data().to_vec())));

    for (pi, (pname, agrad)) in analytic.iter().enumerate() {
        let n = agrad.len();
        for i in (0..n).step_by((n / 16).max(1)) {
            let fd = finite_diff_param_grad(&mut layer, &x, pi, i, eps);
            let an = agrad[i];
            assert!(
                (fd - an).abs() <= tol * (1.0 + fd.abs().max(an.abs())),
                "{}: d{}[{i}] analytic {an} vs finite-diff {fd}",
                layer.name(),
                pname
            );
        }
    }
}

/// Central finite difference of the test objective w.r.t. scalar `i` of
/// parameter number `pi` of `layer`.
pub fn finite_diff_param_grad<L: Layer>(
    layer: &mut L,
    x: &Tensor,
    pi: usize,
    i: usize,
    eps: f32,
) -> f32 {
    let ctx = ForwardCtx::eval();
    let mut eval_with = |delta: f32| -> f32 {
        let mut idx = 0;
        layer.visit_params_mut(&mut |p| {
            if idx == pi {
                p.value.data_mut()[i] += delta;
            }
            idx += 1;
        });
        let (y, _) = layer.forward(x, &ctx);
        let mut idx = 0;
        layer.visit_params_mut(&mut |p| {
            if idx == pi {
                p.value.data_mut()[i] -= delta;
            }
            idx += 1;
        });
        objective(&y)
    };
    let lp = eval_with(eps);
    let lm = eval_with(-eps);
    (lp - lm) / (2.0 * eps)
}
