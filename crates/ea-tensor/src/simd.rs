//! Portable SIMD layer: 8-lane `f32` kernels with runtime dispatch.
//!
//! Every hot loop in the workspace (matmul microkernels, softmax,
//! optimizer steps, the elastic pull) routes through this module. A
//! kernel is written once, generically, against the [`V`] lane
//! abstraction and instantiated three ways:
//!
//! * **AVX2+FMA** (`x86_64`, detected at runtime) — one `__m256` per
//!   lane group.
//! * **NEON** (`aarch64`, always present) — a pair of `float32x4_t`.
//! * **Scalar** — a plain `[f32; 8]` block the autovectorizer may (or
//!   may not) lower to the baseline ISA; also the reference
//!   implementation the property tests compare against.
//!
//! # Bit-exactness contract
//!
//! Kernels vectorize across *independent output elements* (matmul output
//! columns, per-parameter optimizer lanes), so each element sees exactly
//! the scalar sequence of IEEE-754 operations in exactly the scalar
//! order. Multiplies and adds are kept as separate instructions — FMA is
//! *detected* (the AVX2 level requires it) but never used to contract
//! `a*b + c`, because contraction changes rounding and would break the
//! byte-identical-loss guarantee of the e2e tests. Division and square
//! root are IEEE-exact in both AVX and NEON, so the Adam kernel is also
//! bit-identical. The only kernels that reassociate are the horizontal
//! reductions [`sum_f32`] / [`sum_squares`]; those use a *fixed* 8-lane
//! tree that every level implements identically, so they are
//! deterministic and level-independent — but differ from a sequential
//! left-to-right sum (see DESIGN.md §13 for where each is allowed).
//! [`max_value`] reassociates too, which is value-preserving for
//! non-NaN data (max is associative); rows containing NaN have
//! unspecified results on every level, as before.
//!
//! # Switches
//!
//! `EA_SIMD=off` (or `0` / `scalar`) forces the scalar path;
//! `EA_SIMD=avx2` / `EA_SIMD=neon` force a level (falling back to
//! scalar with a warning when unavailable). Benchmarks and tests use
//! [`force_level`] to compare levels in-process.

use std::sync::atomic::{AtomicU8, Ordering::Relaxed};
use std::sync::OnceLock;

/// Lane width of the portable vector type.
pub const LANES: usize = 8;

/// A SIMD dispatch level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// Plain Rust loops (also the `EA_SIMD=off` fallback).
    Scalar,
    /// AVX2 + FMA on x86_64.
    Avx2,
    /// NEON on aarch64.
    Neon,
}

/// Human-readable level name (used by benches and BENCH_3.json).
pub fn level_name(level: Level) -> &'static str {
    match level {
        Level::Scalar => "scalar",
        Level::Avx2 => "avx2",
        Level::Neon => "neon",
    }
}

fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn neon_available() -> bool {
    cfg!(target_arch = "aarch64")
}

/// Clamps a requested level to what the host actually supports.
fn clamp_available(level: Level) -> Level {
    match level {
        Level::Avx2 if avx2_available() => Level::Avx2,
        Level::Neon if neon_available() => Level::Neon,
        Level::Scalar => Level::Scalar,
        _ => Level::Scalar,
    }
}

/// The level chosen from CPU detection and the `EA_SIMD` environment
/// variable, parsed and logged once per process.
pub fn detected_level() -> Level {
    static DETECTED: OnceLock<Level> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        let auto = if avx2_available() {
            Level::Avx2
        } else if neon_available() {
            Level::Neon
        } else {
            Level::Scalar
        };
        match std::env::var("EA_SIMD") {
            Ok(v) => {
                let v = v.to_ascii_lowercase();
                let requested = match v.as_str() {
                    "off" | "0" | "scalar" => Level::Scalar,
                    "avx2" => Level::Avx2,
                    "neon" => Level::Neon,
                    "" | "on" | "auto" => auto,
                    other => {
                        eprintln!("[ea-tensor] EA_SIMD={other:?} not recognized; using auto");
                        auto
                    }
                };
                let level = clamp_available(requested);
                if level != requested {
                    eprintln!(
                        "[ea-tensor] EA_SIMD requested {} but it is unavailable; using {}",
                        level_name(requested),
                        level_name(level)
                    );
                } else {
                    eprintln!("[ea-tensor] EA_SIMD={v}: simd level {}", level_name(level));
                }
                level
            }
            Err(_) => auto,
        }
    })
}

/// Process-global level override: 0 = none, else Level as u8 + 1.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Forces a dispatch level process-wide (benchmarks and property tests
/// use this to compare levels in one process). `None` restores
/// detection. Requests for an unavailable level clamp to scalar.
pub fn force_level(level: Option<Level>) {
    let code = match level.map(clamp_available) {
        None => 0,
        Some(Level::Scalar) => 1,
        Some(Level::Avx2) => 2,
        Some(Level::Neon) => 3,
    };
    FORCED.store(code, Relaxed);
}

/// The level kernels dispatch on right now.
pub fn active_level() -> Level {
    match FORCED.load(Relaxed) {
        1 => Level::Scalar,
        2 => Level::Avx2,
        3 => Level::Neon,
        _ => detected_level(),
    }
}

// ---------------------------------------------------------------------
// The lane abstraction.
// ---------------------------------------------------------------------

/// An 8-lane `f32` vector. All operations are per-lane IEEE-754 —
/// correctly rounded and therefore identical across implementations.
///
/// Methods are `unsafe` because the ISA implementations are only sound
/// when dispatch has verified the feature is present, and `load`/`store`
/// trust the caller for bounds.
#[allow(clippy::missing_safety_doc)]
pub(crate) trait V: Copy {
    unsafe fn zero() -> Self;
    unsafe fn splat(x: f32) -> Self;
    unsafe fn load(p: *const f32) -> Self;
    unsafe fn store(self, p: *mut f32);
    unsafe fn add(self, o: Self) -> Self;
    unsafe fn sub(self, o: Self) -> Self;
    unsafe fn mul(self, o: Self) -> Self;
    unsafe fn div(self, o: Self) -> Self;
    unsafe fn vsqrt(self) -> Self;
    unsafe fn vmax(self, o: Self) -> Self;
    unsafe fn vmin(self, o: Self) -> Self;
    /// Per-lane `floor`. Correctly rounded on every level.
    unsafe fn vfloor(self) -> Self;
    /// Per-lane `2^n` for lanes holding exact integers in `[-126, 127]`,
    /// built by placing `n + 127` in the exponent field. Exact, so
    /// identical across levels.
    unsafe fn pow2i(self) -> Self;
    /// Writes the lanes to an array (for the shared horizontal reducers).
    unsafe fn to_array(self) -> [f32; LANES];
}

/// Horizontal max over lanes. Association-free for non-NaN values.
#[inline(always)]
fn hmax(lanes: [f32; LANES]) -> f32 {
    lanes.iter().copied().fold(f32::NEG_INFINITY, f32::max)
}

/// Fixed-shape horizontal sum: the same tree on every level, so lane
/// reductions are deterministic and level-independent.
#[inline(always)]
fn hsum_tree(l: [f32; LANES]) -> f32 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

/// Scalar reference lanes: a plain block of eight `f32`.
#[derive(Clone, Copy)]
pub(crate) struct S8([f32; LANES]);

impl S8 {
    #[inline(always)]
    fn map2(self, o: Self, f: impl Fn(f32, f32) -> f32) -> Self {
        let mut out = [0.0; LANES];
        for (dst, (a, b)) in out.iter_mut().zip(self.0.iter().zip(&o.0)) {
            *dst = f(*a, *b);
        }
        S8(out)
    }
}

#[allow(clippy::missing_safety_doc)]
impl V for S8 {
    #[inline(always)]
    unsafe fn zero() -> Self {
        S8([0.0; LANES])
    }
    #[inline(always)]
    unsafe fn splat(x: f32) -> Self {
        S8([x; LANES])
    }
    #[inline(always)]
    unsafe fn load(p: *const f32) -> Self {
        let mut out = [0.0; LANES];
        std::ptr::copy_nonoverlapping(p, out.as_mut_ptr(), LANES);
        S8(out)
    }
    #[inline(always)]
    unsafe fn store(self, p: *mut f32) {
        std::ptr::copy_nonoverlapping(self.0.as_ptr(), p, LANES);
    }
    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        self.map2(o, |a, b| a + b)
    }
    #[inline(always)]
    unsafe fn sub(self, o: Self) -> Self {
        self.map2(o, |a, b| a - b)
    }
    #[inline(always)]
    unsafe fn mul(self, o: Self) -> Self {
        self.map2(o, |a, b| a * b)
    }
    #[inline(always)]
    unsafe fn div(self, o: Self) -> Self {
        self.map2(o, |a, b| a / b)
    }
    #[inline(always)]
    unsafe fn vsqrt(self) -> Self {
        let mut out = [0.0; LANES];
        for (dst, a) in out.iter_mut().zip(&self.0) {
            *dst = a.sqrt();
        }
        S8(out)
    }
    #[inline(always)]
    unsafe fn vmax(self, o: Self) -> Self {
        self.map2(o, f32::max)
    }
    #[inline(always)]
    unsafe fn vmin(self, o: Self) -> Self {
        self.map2(o, f32::min)
    }
    #[inline(always)]
    unsafe fn vfloor(self) -> Self {
        let mut out = [0.0; LANES];
        for (dst, a) in out.iter_mut().zip(&self.0) {
            *dst = a.floor();
        }
        S8(out)
    }
    #[inline(always)]
    unsafe fn pow2i(self) -> Self {
        let mut out = [0.0; LANES];
        for (dst, a) in out.iter_mut().zip(&self.0) {
            *dst = pow2i_scalar(*a);
        }
        S8(out)
    }
    #[inline(always)]
    unsafe fn to_array(self) -> [f32; LANES] {
        self.0
    }
}

/// AVX2 lanes: one `__m256`.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{LANES, V};
    use std::arch::x86_64::*;

    #[derive(Clone, Copy)]
    pub(crate) struct A8(__m256);

    #[allow(clippy::missing_safety_doc)]
    impl V for A8 {
        #[inline(always)]
        unsafe fn zero() -> Self {
            A8(_mm256_setzero_ps())
        }
        #[inline(always)]
        unsafe fn splat(x: f32) -> Self {
            A8(_mm256_set1_ps(x))
        }
        #[inline(always)]
        unsafe fn load(p: *const f32) -> Self {
            A8(_mm256_loadu_ps(p))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f32) {
            _mm256_storeu_ps(p, self.0)
        }
        #[inline(always)]
        unsafe fn add(self, o: Self) -> Self {
            A8(_mm256_add_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn sub(self, o: Self) -> Self {
            A8(_mm256_sub_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn mul(self, o: Self) -> Self {
            A8(_mm256_mul_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn div(self, o: Self) -> Self {
            A8(_mm256_div_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn vsqrt(self) -> Self {
            A8(_mm256_sqrt_ps(self.0))
        }
        #[inline(always)]
        unsafe fn vmax(self, o: Self) -> Self {
            A8(_mm256_max_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn vmin(self, o: Self) -> Self {
            A8(_mm256_min_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn vfloor(self) -> Self {
            A8(_mm256_floor_ps(self.0))
        }
        #[inline(always)]
        unsafe fn pow2i(self) -> Self {
            let n = _mm256_cvtps_epi32(self.0);
            let e = _mm256_slli_epi32::<23>(_mm256_add_epi32(n, _mm256_set1_epi32(127)));
            A8(_mm256_castsi256_ps(e))
        }
        #[inline(always)]
        unsafe fn to_array(self) -> [f32; LANES] {
            let mut out = [0.0; LANES];
            _mm256_storeu_ps(out.as_mut_ptr(), self.0);
            out
        }
    }
}
#[cfg(target_arch = "x86_64")]
pub(crate) use avx2::A8;

/// NEON lanes: a pair of `float32x4_t`.
#[cfg(target_arch = "aarch64")]
mod neon {
    use super::{LANES, V};
    use std::arch::aarch64::*;

    #[derive(Clone, Copy)]
    pub(crate) struct N8(float32x4_t, float32x4_t);

    #[allow(clippy::missing_safety_doc)]
    impl V for N8 {
        #[inline(always)]
        unsafe fn zero() -> Self {
            N8(vdupq_n_f32(0.0), vdupq_n_f32(0.0))
        }
        #[inline(always)]
        unsafe fn splat(x: f32) -> Self {
            N8(vdupq_n_f32(x), vdupq_n_f32(x))
        }
        #[inline(always)]
        unsafe fn load(p: *const f32) -> Self {
            N8(vld1q_f32(p), vld1q_f32(p.add(4)))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f32) {
            vst1q_f32(p, self.0);
            vst1q_f32(p.add(4), self.1);
        }
        #[inline(always)]
        unsafe fn add(self, o: Self) -> Self {
            N8(vaddq_f32(self.0, o.0), vaddq_f32(self.1, o.1))
        }
        #[inline(always)]
        unsafe fn sub(self, o: Self) -> Self {
            N8(vsubq_f32(self.0, o.0), vsubq_f32(self.1, o.1))
        }
        #[inline(always)]
        unsafe fn mul(self, o: Self) -> Self {
            N8(vmulq_f32(self.0, o.0), vmulq_f32(self.1, o.1))
        }
        #[inline(always)]
        unsafe fn div(self, o: Self) -> Self {
            N8(vdivq_f32(self.0, o.0), vdivq_f32(self.1, o.1))
        }
        #[inline(always)]
        unsafe fn vsqrt(self) -> Self {
            N8(vsqrtq_f32(self.0), vsqrtq_f32(self.1))
        }
        #[inline(always)]
        unsafe fn vmax(self, o: Self) -> Self {
            N8(vmaxq_f32(self.0, o.0), vmaxq_f32(self.1, o.1))
        }
        #[inline(always)]
        unsafe fn vmin(self, o: Self) -> Self {
            N8(vminq_f32(self.0, o.0), vminq_f32(self.1, o.1))
        }
        #[inline(always)]
        unsafe fn vfloor(self) -> Self {
            N8(vrndmq_f32(self.0), vrndmq_f32(self.1))
        }
        #[inline(always)]
        unsafe fn pow2i(self) -> Self {
            // vcvtq truncates, which is exact for the integer-valued input.
            let bias = vdupq_n_s32(127);
            let lo = vshlq_n_s32::<23>(vaddq_s32(vcvtq_s32_f32(self.0), bias));
            let hi = vshlq_n_s32::<23>(vaddq_s32(vcvtq_s32_f32(self.1), bias));
            N8(vreinterpretq_f32_s32(lo), vreinterpretq_f32_s32(hi))
        }
        #[inline(always)]
        unsafe fn to_array(self) -> [f32; LANES] {
            let mut out = [0.0; LANES];
            vst1q_f32(out.as_mut_ptr(), self.0);
            vst1q_f32(out.as_mut_ptr().add(4), self.1);
            out
        }
    }
}
#[cfg(target_arch = "aarch64")]
pub(crate) use neon::N8;

/// Generates the `#[target_feature]` trampolines that monomorphize a
/// generic kernel for each ISA. The feature attribute propagates into
/// the `#[inline(always)]` generic body, so the whole kernel compiles
/// with AVX2/NEON codegen enabled.
macro_rules! trampolines {
    ($imp:ident / $avx:ident / $neon:ident ($($arg:ident : $ty:ty),*) $(-> $ret:ty)?) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2,fma")]
        #[allow(clippy::too_many_arguments)]
        unsafe fn $avx($($arg: $ty),*) $(-> $ret)? {
            $imp::<A8>($($arg),*)
        }
        #[cfg(target_arch = "aarch64")]
        #[target_feature(enable = "neon")]
        #[allow(clippy::too_many_arguments)]
        unsafe fn $neon($($arg: $ty),*) $(-> $ret)? {
            $imp::<N8>($($arg),*)
        }
    };
}
pub(crate) use trampolines;

/// Dispatches a kernel call on [`active_level`]. Unavailable levels
/// (e.g. `Neon` on x86) fall through to the scalar instantiation.
macro_rules! dispatch_call {
    ($imp:ident / $avx:ident / $neon:ident ($($arg:expr),*)) => {{
        match $crate::simd::active_level() {
            #[cfg(target_arch = "x86_64")]
            $crate::simd::Level::Avx2 => unsafe { $avx($($arg),*) },
            #[cfg(target_arch = "aarch64")]
            $crate::simd::Level::Neon => unsafe { $neon($($arg),*) },
            _ => unsafe { $imp::<$crate::simd::S8>($($arg),*) },
        }
    }};
}
pub(crate) use dispatch_call;

// ---------------------------------------------------------------------
// Element-wise kernels. Each preserves the scalar per-element operation
// order exactly; the tail loop is the literal scalar expression.
// ---------------------------------------------------------------------

/// `x[i] *= s`.
pub fn scale(x: &mut [f32], s: f32) {
    dispatch_call!(scale_impl / scale_avx2 / scale_neon(x, s))
}
#[inline(always)]
unsafe fn scale_impl<Vv: V>(x: &mut [f32], s: f32) {
    let n = x.len();
    let main = n - n % LANES;
    let sv = Vv::splat(s);
    let p = x.as_mut_ptr();
    let mut i = 0;
    while i < main {
        Vv::load(p.add(i)).mul(sv).store(p.add(i));
        i += LANES;
    }
    for v in &mut x[main..] {
        *v *= s;
    }
}
trampolines!(scale_impl / scale_avx2 / scale_neon(x: &mut [f32], s: f32));

/// `y[i] += s * x[i]` (axpy).
pub fn axpy(y: &mut [f32], s: f32, x: &[f32]) {
    assert_eq!(y.len(), x.len(), "axpy length mismatch");
    dispatch_call!(axpy_impl / axpy_avx2 / axpy_neon(y, s, x))
}
#[inline(always)]
unsafe fn axpy_impl<Vv: V>(y: &mut [f32], s: f32, x: &[f32]) {
    let n = y.len();
    let main = n - n % LANES;
    let sv = Vv::splat(s);
    let yp = y.as_mut_ptr();
    let xp = x.as_ptr();
    let mut i = 0;
    while i < main {
        Vv::load(yp.add(i)).add(sv.mul(Vv::load(xp.add(i)))).store(yp.add(i));
        i += LANES;
    }
    for i in main..n {
        y[i] += s * x[i];
    }
}
trampolines!(axpy_impl / axpy_avx2 / axpy_neon(y: &mut [f32], s: f32, x: &[f32]));

/// `y[i] += x[i]`.
pub fn add_assign(y: &mut [f32], x: &[f32]) {
    assert_eq!(y.len(), x.len(), "add_assign length mismatch");
    dispatch_call!(add_assign_impl / add_assign_avx2 / add_assign_neon(y, x))
}
#[inline(always)]
unsafe fn add_assign_impl<Vv: V>(y: &mut [f32], x: &[f32]) {
    let n = y.len();
    let main = n - n % LANES;
    let yp = y.as_mut_ptr();
    let xp = x.as_ptr();
    let mut i = 0;
    while i < main {
        Vv::load(yp.add(i)).add(Vv::load(xp.add(i))).store(yp.add(i));
        i += LANES;
    }
    for i in main..n {
        y[i] += x[i];
    }
}
trampolines!(add_assign_impl / add_assign_avx2 / add_assign_neon(y: &mut [f32], x: &[f32]));

/// `out[i] = a[i] + b[i]`.
pub fn add_slices(out: &mut [f32], a: &[f32], b: &[f32]) {
    assert_eq!(out.len(), a.len());
    assert_eq!(out.len(), b.len());
    dispatch_call!(add_slices_impl / add_slices_avx2 / add_slices_neon(out, a, b))
}
#[inline(always)]
unsafe fn add_slices_impl<Vv: V>(out: &mut [f32], a: &[f32], b: &[f32]) {
    let n = out.len();
    let main = n - n % LANES;
    let op = out.as_mut_ptr();
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut i = 0;
    while i < main {
        Vv::load(ap.add(i)).add(Vv::load(bp.add(i))).store(op.add(i));
        i += LANES;
    }
    for i in main..n {
        out[i] = a[i] + b[i];
    }
}
trampolines!(add_slices_impl / add_slices_avx2 / add_slices_neon(out: &mut [f32], a: &[f32], b: &[f32]));

/// `out[i] = a[i] - b[i]`.
pub fn sub_slices(out: &mut [f32], a: &[f32], b: &[f32]) {
    assert_eq!(out.len(), a.len());
    assert_eq!(out.len(), b.len());
    dispatch_call!(sub_slices_impl / sub_slices_avx2 / sub_slices_neon(out, a, b))
}
#[inline(always)]
unsafe fn sub_slices_impl<Vv: V>(out: &mut [f32], a: &[f32], b: &[f32]) {
    let n = out.len();
    let main = n - n % LANES;
    let op = out.as_mut_ptr();
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut i = 0;
    while i < main {
        Vv::load(ap.add(i)).sub(Vv::load(bp.add(i))).store(op.add(i));
        i += LANES;
    }
    for i in main..n {
        out[i] = a[i] - b[i];
    }
}
trampolines!(sub_slices_impl / sub_slices_avx2 / sub_slices_neon(out: &mut [f32], a: &[f32], b: &[f32]));

/// `out[i] = a[i] * b[i]` (Hadamard).
pub fn mul_slices(out: &mut [f32], a: &[f32], b: &[f32]) {
    assert_eq!(out.len(), a.len());
    assert_eq!(out.len(), b.len());
    dispatch_call!(mul_slices_impl / mul_slices_avx2 / mul_slices_neon(out, a, b))
}
#[inline(always)]
unsafe fn mul_slices_impl<Vv: V>(out: &mut [f32], a: &[f32], b: &[f32]) {
    let n = out.len();
    let main = n - n % LANES;
    let op = out.as_mut_ptr();
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut i = 0;
    while i < main {
        Vv::load(ap.add(i)).mul(Vv::load(bp.add(i))).store(op.add(i));
        i += LANES;
    }
    for i in main..n {
        out[i] = a[i] * b[i];
    }
}
trampolines!(mul_slices_impl / mul_slices_avx2 / mul_slices_neon(out: &mut [f32], a: &[f32], b: &[f32]));

/// `x[i] -= c` (log-softmax normalization).
pub fn sub_scalar(x: &mut [f32], c: f32) {
    dispatch_call!(sub_scalar_impl / sub_scalar_avx2 / sub_scalar_neon(x, c))
}
#[inline(always)]
unsafe fn sub_scalar_impl<Vv: V>(x: &mut [f32], c: f32) {
    let n = x.len();
    let main = n - n % LANES;
    let cv = Vv::splat(c);
    let p = x.as_mut_ptr();
    let mut i = 0;
    while i < main {
        Vv::load(p.add(i)).sub(cv).store(p.add(i));
        i += LANES;
    }
    for v in &mut x[main..] {
        *v -= c;
    }
}
trampolines!(sub_scalar_impl / sub_scalar_avx2 / sub_scalar_neon(x: &mut [f32], c: f32));

// ---------------------------------------------------------------------
// Reductions.
// ---------------------------------------------------------------------

/// Maximum element (`NEG_INFINITY` for an empty slice). Equal to the
/// sequential fold for non-NaN data; rows containing NaN are
/// unspecified (as they already were for the downstream softmax).
pub fn max_value(x: &[f32]) -> f32 {
    dispatch_call!(max_value_impl / max_value_avx2 / max_value_neon(x))
}
#[inline(always)]
unsafe fn max_value_impl<Vv: V>(x: &[f32]) -> f32 {
    let n = x.len();
    let main = n - n % LANES;
    let mut m = f32::NEG_INFINITY;
    if main > 0 {
        let p = x.as_ptr();
        let mut acc = Vv::load(p);
        let mut i = LANES;
        while i < main {
            acc = acc.vmax(Vv::load(p.add(i)));
            i += LANES;
        }
        m = hmax(acc.to_array());
    }
    for &v in &x[main..] {
        m = m.max(v);
    }
    m
}
trampolines!(max_value_impl / max_value_avx2 / max_value_neon(x: &[f32]) -> f32);

/// Lane-blocked sum: eight independent accumulators combined by a fixed
/// tree, then the tail added sequentially. Deterministic and identical
/// on every level, but *not* equal to a sequential left-to-right sum —
/// only used where DESIGN.md §13 allows reassociation.
pub fn sum_f32(x: &[f32]) -> f32 {
    dispatch_call!(sum_f32_impl / sum_f32_avx2 / sum_f32_neon(x))
}
#[inline(always)]
unsafe fn sum_f32_impl<Vv: V>(x: &[f32]) -> f32 {
    let n = x.len();
    let main = n - n % LANES;
    let p = x.as_ptr();
    let mut acc = Vv::zero();
    let mut i = 0;
    while i < main {
        acc = acc.add(Vv::load(p.add(i)));
        i += LANES;
    }
    let mut sum = hsum_tree(acc.to_array());
    for &v in &x[main..] {
        sum += v;
    }
    sum
}
trampolines!(sum_f32_impl / sum_f32_avx2 / sum_f32_neon(x: &[f32]) -> f32);

/// Lane-blocked sum of squares (gradient-norm kernel). Same reduction
/// shape caveats as [`sum_f32`].
pub fn sum_squares(x: &[f32]) -> f32 {
    dispatch_call!(sum_squares_impl / sum_squares_avx2 / sum_squares_neon(x))
}
#[inline(always)]
unsafe fn sum_squares_impl<Vv: V>(x: &[f32]) -> f32 {
    let n = x.len();
    let main = n - n % LANES;
    let p = x.as_ptr();
    let mut acc = Vv::zero();
    let mut i = 0;
    while i < main {
        let v = Vv::load(p.add(i));
        acc = acc.add(v.mul(v));
        i += LANES;
    }
    let mut sum = hsum_tree(acc.to_array());
    for &v in &x[main..] {
        sum += v * v;
    }
    sum
}
trampolines!(sum_squares_impl / sum_squares_avx2 / sum_squares_neon(x: &[f32]) -> f32);

// ---------------------------------------------------------------------
// Softmax: vectorized exp with level-independent bits.
// ---------------------------------------------------------------------
//
// `exp` is approximated by the classic Cephes range reduction
// (x = n·ln2 + r, |r| ≤ ln2/2) with a degree-5 polynomial in r and an
// exponent-field rebuild for 2^n — about 2 ulps of relative error.
// Every operation (mul, add, sub, max, floor, int-convert, shift) is
// correctly rounded or exact, and multiplies/adds are never contracted
// to FMA, so the vector lanes compute *bit-identical* results to
// [`exp_lane`], which the scalar level and all tail loops use. The
// softmax sum then uses the same fixed 8-lane tree as [`sum_f32`]:
// deterministic and identical on every level.

/// Lower clamp: ln(2^-126), the last input whose `2^n` stays a normal
/// float. Softmax feeds `x - max ≤ 0`, so no upper clamp is needed; the
/// kernel clamps anyway to keep `exp_lane` total.
const EXP_LO: f32 = -87.336_54;
/// Upper clamp: ln(2^127), the largest input whose `2^n` factor fits
/// the exponent-field rebuild. Softmax inputs are ≤ 0; the clamp only
/// keeps `exp_lane` total for out-of-range callers.
const EXP_HI: f32 = 88.029_69;
const EXP_LOG2E: f32 = std::f32::consts::LOG2_E;
/// ln2 split into a high part exact in f32 (355/512) and a low
/// correction, so `x - n*C1 - n*C2` loses no bits for |n| ≤ 127.
#[allow(clippy::excessive_precision)]
const EXP_C1: f32 = 0.693_359_375;
const EXP_C2: f32 = -2.121_944_4e-4;
const EXP_P0: f32 = 1.987_569_2e-4;
const EXP_P1: f32 = 1.398_199_9e-3;
const EXP_P2: f32 = 8.333_452e-3;
const EXP_P3: f32 = 4.166_579_6e-2;
const EXP_P4: f32 = 1.666_666_5e-1;
const EXP_P5: f32 = 5.000_000_4e-1;

/// `2^n` for an exact integer-valued `n` in `[-126, 127]`.
#[inline(always)]
fn pow2i_scalar(n: f32) -> f32 {
    f32::from_bits((((n as i32) + 127) << 23) as u32)
}

/// Scalar `exp` with exactly the lane operation sequence of [`vexp`]:
/// the tail loop and the scalar dispatch level both call this, so all
/// levels produce the same bits.
#[inline(always)]
pub(crate) fn exp_lane(x: f32) -> f32 {
    // max-then-min (not `clamp`): must mirror the vector lane ops,
    // which have max/min NaN semantics, not clamp's.
    #[allow(clippy::manual_clamp)]
    let x = x.max(EXP_LO).min(EXP_HI);
    let n = (x * EXP_LOG2E + 0.5).floor();
    let r = x - n * EXP_C1;
    let r = r - n * EXP_C2;
    let z = r * r;
    let mut y = EXP_P0;
    y = y * r + EXP_P1;
    y = y * r + EXP_P2;
    y = y * r + EXP_P3;
    y = y * r + EXP_P4;
    y = y * r + EXP_P5;
    (y * z + r + 1.0) * pow2i_scalar(n)
}

/// Eight [`exp_lane`]s at once. Per-lane bit-identical to the scalar
/// form: every step is a correctly-rounded IEEE operation in the same
/// order (no FMA contraction — see the module docs).
#[inline(always)]
unsafe fn vexp<Vv: V>(x: Vv) -> Vv {
    let x = x.vmax(Vv::splat(EXP_LO)).vmin(Vv::splat(EXP_HI));
    let n = x.mul(Vv::splat(EXP_LOG2E)).add(Vv::splat(0.5)).vfloor();
    let r = x.sub(n.mul(Vv::splat(EXP_C1)));
    let r = r.sub(n.mul(Vv::splat(EXP_C2)));
    let z = r.mul(r);
    let mut y = Vv::splat(EXP_P0);
    y = y.mul(r).add(Vv::splat(EXP_P1));
    y = y.mul(r).add(Vv::splat(EXP_P2));
    y = y.mul(r).add(Vv::splat(EXP_P3));
    y = y.mul(r).add(Vv::splat(EXP_P4));
    y = y.mul(r).add(Vv::splat(EXP_P5));
    y.mul(z).add(r).add(Vv::splat(1.0)).mul(n.pow2i())
}

/// Numerically-stable in-place softmax of one row: subtract the row max,
/// exponentiate, normalize. Identical bits on every dispatch level (the
/// reduction uses the fixed [`sum_f32`] tree; see DESIGN.md §13).
pub fn softmax_row(row: &mut [f32]) {
    dispatch_call!(softmax_row_impl / softmax_row_avx2 / softmax_row_neon(row))
}
#[inline(always)]
unsafe fn softmax_row_impl<Vv: V>(row: &mut [f32]) {
    let max = max_value_impl::<Vv>(row);
    let n = row.len();
    let main = n - n % LANES;
    let p = row.as_mut_ptr();
    let maxv = Vv::splat(max);
    let mut acc = Vv::zero();
    let mut i = 0;
    while i < main {
        let e = vexp::<Vv>(Vv::load(p.add(i)).sub(maxv));
        e.store(p.add(i));
        acc = acc.add(e);
        i += LANES;
    }
    let mut sum = hsum_tree(acc.to_array());
    for x in &mut row[main..] {
        let e = exp_lane(*x - max);
        *x = e;
        sum += e;
    }
    scale_impl::<Vv>(row, 1.0 / sum);
}
trampolines!(softmax_row_impl / softmax_row_avx2 / softmax_row_neon(row: &mut [f32]));

/// Numerically-stable in-place log-softmax of one row:
/// `x_i ← x_i − (max + ln Σ exp(x_j − max))`. The exp-sum uses the same
/// [`vexp`]/[`exp_lane`] lanes and fixed 8-lane tree as
/// [`softmax_row`] — without storing the exponentials, since the logits
/// themselves survive into the subtraction — and the single `ln` is one
/// scalar libm call on a value that is already identical across levels.
/// Identical bits on every dispatch level (DESIGN.md §13).
pub fn log_softmax_row(row: &mut [f32]) {
    dispatch_call!(log_softmax_row_impl / log_softmax_row_avx2 / log_softmax_row_neon(row))
}
#[inline(always)]
unsafe fn log_softmax_row_impl<Vv: V>(row: &mut [f32]) {
    let max = max_value_impl::<Vv>(row);
    let n = row.len();
    let main = n - n % LANES;
    let p = row.as_ptr();
    let maxv = Vv::splat(max);
    let mut acc = Vv::zero();
    let mut i = 0;
    while i < main {
        acc = acc.add(vexp::<Vv>(Vv::load(p.add(i)).sub(maxv)));
        i += LANES;
    }
    let mut sum = hsum_tree(acc.to_array());
    for &x in &row[main..] {
        sum += exp_lane(x - max);
    }
    sub_scalar_impl::<Vv>(row, sum.ln() + max);
}
trampolines!(log_softmax_row_impl / log_softmax_row_avx2 / log_softmax_row_neon(row: &mut [f32]));

// ---------------------------------------------------------------------
// Optimizer / elastic-averaging kernels. Per-parameter lanes are fully
// independent, so these are bit-identical to the scalar loops they
// replace (see the module docs for the div/sqrt argument).
// ---------------------------------------------------------------------

/// SGD: `p[i] -= lr * g[i]`.
pub fn sgd_step(p: &mut [f32], g: &[f32], lr: f32) {
    assert_eq!(p.len(), g.len());
    dispatch_call!(sgd_impl / sgd_avx2 / sgd_neon(p, g, lr))
}
#[inline(always)]
unsafe fn sgd_impl<Vv: V>(p: &mut [f32], g: &[f32], lr: f32) {
    let n = p.len();
    let main = n - n % LANES;
    let lrv = Vv::splat(lr);
    let pp = p.as_mut_ptr();
    let gp = g.as_ptr();
    let mut i = 0;
    while i < main {
        Vv::load(pp.add(i)).sub(lrv.mul(Vv::load(gp.add(i)))).store(pp.add(i));
        i += LANES;
    }
    for i in main..n {
        p[i] -= lr * g[i];
    }
}
trampolines!(sgd_impl / sgd_avx2 / sgd_neon(p: &mut [f32], g: &[f32], lr: f32));

/// Momentum: `v = beta*v + g; p -= lr*v`.
pub fn momentum_step(p: &mut [f32], v: &mut [f32], g: &[f32], lr: f32, beta: f32) {
    assert_eq!(p.len(), g.len());
    assert_eq!(p.len(), v.len());
    dispatch_call!(momentum_impl / momentum_avx2 / momentum_neon(p, v, g, lr, beta))
}
#[inline(always)]
unsafe fn momentum_impl<Vv: V>(p: &mut [f32], v: &mut [f32], g: &[f32], lr: f32, beta: f32) {
    let n = p.len();
    let main = n - n % LANES;
    let lrv = Vv::splat(lr);
    let betav = Vv::splat(beta);
    let pp = p.as_mut_ptr();
    let vp = v.as_mut_ptr();
    let gp = g.as_ptr();
    let mut i = 0;
    while i < main {
        let vel = betav.mul(Vv::load(vp.add(i))).add(Vv::load(gp.add(i)));
        vel.store(vp.add(i));
        Vv::load(pp.add(i)).sub(lrv.mul(vel)).store(pp.add(i));
        i += LANES;
    }
    for i in main..n {
        v[i] = beta * v[i] + g[i];
        p[i] -= lr * v[i];
    }
}
trampolines!(momentum_impl / momentum_avx2 / momentum_neon(p: &mut [f32], v: &mut [f32], g: &[f32], lr: f32, beta: f32));

/// Adam inner loop with precomputed bias corrections `bc1`/`bc2`:
/// `m = b1*m + (1-b1)*g; v = b2*v + ((1-b2)*g)*g;`
/// `p -= lr*(m/bc1) / (sqrt(v/bc2) + eps)` — the exact scalar
/// expression order, including the left-associated `(1-b2)*g*g`.
#[allow(clippy::too_many_arguments)]
pub fn adam_step(
    p: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    g: &[f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    bc1: f32,
    bc2: f32,
) {
    assert_eq!(p.len(), g.len());
    assert_eq!(p.len(), m.len());
    assert_eq!(p.len(), v.len());
    dispatch_call!(adam_impl / adam_avx2 / adam_neon(p, m, v, g, lr, beta1, beta2, eps, bc1, bc2))
}
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn adam_impl<Vv: V>(
    p: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    g: &[f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    bc1: f32,
    bc2: f32,
) {
    let n = p.len();
    let main = n - n % LANES;
    let (c1, c2) = (1.0 - beta1, 1.0 - beta2);
    let b1v = Vv::splat(beta1);
    let b2v = Vv::splat(beta2);
    let c1v = Vv::splat(c1);
    let c2v = Vv::splat(c2);
    let lrv = Vv::splat(lr);
    let epsv = Vv::splat(eps);
    let bc1v = Vv::splat(bc1);
    let bc2v = Vv::splat(bc2);
    let pp = p.as_mut_ptr();
    let mp = m.as_mut_ptr();
    let vp = v.as_mut_ptr();
    let gp = g.as_ptr();
    let mut i = 0;
    while i < main {
        let gv = Vv::load(gp.add(i));
        let mv = b1v.mul(Vv::load(mp.add(i))).add(c1v.mul(gv));
        mv.store(mp.add(i));
        let vv = b2v.mul(Vv::load(vp.add(i))).add(c2v.mul(gv).mul(gv));
        vv.store(vp.add(i));
        let mhat = mv.div(bc1v);
        let vhat = vv.div(bc2v);
        let step = lrv.mul(mhat).div(vhat.vsqrt().add(epsv));
        Vv::load(pp.add(i)).sub(step).store(pp.add(i));
        i += LANES;
    }
    for i in main..n {
        let gi = g[i];
        m[i] = beta1 * m[i] + c1 * gi;
        v[i] = beta2 * v[i] + c2 * gi * gi;
        let mhat = m[i] / bc1;
        let vhat = v[i] / bc2;
        p[i] -= lr * mhat / (vhat.sqrt() + eps);
    }
}
trampolines!(adam_impl / adam_avx2 / adam_neon(p: &mut [f32], m: &mut [f32], v: &mut [f32], g: &[f32], lr: f32, beta1: f32, beta2: f32, eps: f32, bc1: f32, bc2: f32));

/// Polyak averaging: `avg[i] += w * (p[i] - avg[i])`.
pub fn asgd_avg_update(avg: &mut [f32], p: &[f32], w: f32) {
    assert_eq!(avg.len(), p.len());
    dispatch_call!(asgd_avg_impl / asgd_avg_avx2 / asgd_avg_neon(avg, p, w))
}
#[inline(always)]
unsafe fn asgd_avg_impl<Vv: V>(avg: &mut [f32], p: &[f32], w: f32) {
    let n = avg.len();
    let main = n - n % LANES;
    let wv = Vv::splat(w);
    let ap = avg.as_mut_ptr();
    let pp = p.as_ptr();
    let mut i = 0;
    while i < main {
        let av = Vv::load(ap.add(i));
        av.add(wv.mul(Vv::load(pp.add(i)).sub(av))).store(ap.add(i));
        i += LANES;
    }
    for i in main..n {
        avg[i] += w * (p[i] - avg[i]);
    }
}
trampolines!(asgd_avg_impl / asgd_avg_avx2 / asgd_avg_neon(avg: &mut [f32], p: &[f32], w: f32));

/// Elastic pull (paper Step ❷): `w = (1-alpha)*w + alpha*r`.
pub fn elastic_pull(w: &mut [f32], r: &[f32], alpha: f32) {
    assert_eq!(w.len(), r.len());
    dispatch_call!(pull_impl / pull_avx2 / pull_neon(w, r, alpha))
}
#[inline(always)]
unsafe fn pull_impl<Vv: V>(w: &mut [f32], r: &[f32], alpha: f32) {
    let n = w.len();
    let main = n - n % LANES;
    let keep = 1.0 - alpha;
    let keepv = Vv::splat(keep);
    let alphav = Vv::splat(alpha);
    let wp = w.as_mut_ptr();
    let rp = r.as_ptr();
    let mut i = 0;
    while i < main {
        keepv.mul(Vv::load(wp.add(i))).add(alphav.mul(Vv::load(rp.add(i)))).store(wp.add(i));
        i += LANES;
    }
    for i in main..n {
        w[i] = keep * w[i] + alpha * r[i];
    }
}
trampolines!(pull_impl / pull_avx2 / pull_neon(w: &mut [f32], r: &[f32], alpha: f32));

/// The fused round tail (paper Steps ❷–❸ after the optimizer step):
/// `d = w - d` (Δ against the pre-step snapshot held in `d`) and
/// `w = (1-alpha)*w + alpha*r`, in one pass.
pub fn delta_pull(w: &mut [f32], d: &mut [f32], r: &[f32], alpha: f32) {
    assert_eq!(w.len(), d.len());
    assert_eq!(w.len(), r.len());
    dispatch_call!(delta_pull_impl / delta_pull_avx2 / delta_pull_neon(w, d, r, alpha))
}
#[inline(always)]
unsafe fn delta_pull_impl<Vv: V>(w: &mut [f32], d: &mut [f32], r: &[f32], alpha: f32) {
    let n = w.len();
    let main = n - n % LANES;
    let keep = 1.0 - alpha;
    let keepv = Vv::splat(keep);
    let alphav = Vv::splat(alpha);
    let wp = w.as_mut_ptr();
    let dp = d.as_mut_ptr();
    let rp = r.as_ptr();
    let mut i = 0;
    while i < main {
        let wv = Vv::load(wp.add(i));
        wv.sub(Vv::load(dp.add(i))).store(dp.add(i));
        keepv.mul(wv).add(alphav.mul(Vv::load(rp.add(i)))).store(wp.add(i));
        i += LANES;
    }
    for i in main..n {
        let w_new = w[i];
        d[i] = w_new - d[i];
        w[i] = keep * w_new + alpha * r[i];
    }
}
trampolines!(delta_pull_impl / delta_pull_avx2 / delta_pull_neon(w: &mut [f32], d: &mut [f32], r: &[f32], alpha: f32));

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `f` once forced-scalar and once on the detected level,
    /// returning both results. On hosts without SIMD the two coincide
    /// and the comparison is trivially true.
    fn on_both<R>(f: impl Fn() -> R) -> (R, R) {
        force_level(Some(Level::Scalar));
        let a = f();
        force_level(None);
        let b = f();
        force_level(None);
        (a, b)
    }

    fn data(n: usize, seed: f32) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * 0.37 + seed).sin() * 1.7).collect()
    }

    #[test]
    fn levels_are_clamped_to_availability() {
        force_level(Some(Level::Avx2));
        let l = active_level();
        assert!(l == Level::Avx2 && avx2_available() || l == Level::Scalar);
        force_level(None);
        assert_eq!(active_level(), detected_level());
    }

    #[test]
    fn elementwise_kernels_match_across_levels() {
        // Lengths straddling the lane width, incl. 0 and a tail-only case.
        for n in [0usize, 1, 7, 8, 9, 64, 137] {
            let (a, b) = on_both(|| {
                let mut x = data(n, 0.1);
                let y = data(n, 0.5);
                scale(&mut x, 1.25);
                axpy(&mut x, -0.5, &y);
                add_assign(&mut x, &y);
                sub_scalar(&mut x, 0.75);
                let mut out = vec![0.0; n];
                add_slices(&mut out, &x, &y);
                sub_slices(&mut out, &x, &y);
                mul_slices(&mut out, &x, &y);
                (x, out)
            });
            assert_eq!(bits(&a.0), bits(&b.0), "n={n}");
            assert_eq!(bits(&a.1), bits(&b.1), "n={n}");
        }
    }

    #[test]
    fn reductions_match_across_levels() {
        for n in [0usize, 1, 5, 8, 13, 256] {
            let (a, b) = on_both(|| {
                let x = data(n, 0.3);
                (max_value(&x), sum_f32(&x), sum_squares(&x))
            });
            assert_eq!(a.0.to_bits(), b.0.to_bits(), "max n={n}");
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "sum n={n}");
            assert_eq!(a.2.to_bits(), b.2.to_bits(), "sumsq n={n}");
        }
    }

    #[test]
    fn max_value_matches_sequential_fold() {
        let x = data(117, 0.9);
        let seq = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert_eq!(max_value(&x).to_bits(), seq.to_bits());
        assert_eq!(max_value(&[]), f32::NEG_INFINITY);
    }

    #[test]
    fn optimizer_kernels_match_across_levels() {
        for n in [3usize, 8, 67] {
            let (a, b) = on_both(|| {
                let g = data(n, 0.2);
                let mut p = data(n, 0.4);
                let mut vel = vec![0.0; n];
                let mut m = vec![0.0; n];
                let mut v = vec![0.0; n];
                let mut avg = data(n, 0.6);
                sgd_step(&mut p, &g, 0.1);
                momentum_step(&mut p, &mut vel, &g, 0.05, 0.9);
                adam_step(&mut p, &mut m, &mut v, &g, 1e-3, 0.9, 0.999, 1e-8, 0.1, 0.001);
                asgd_avg_update(&mut avg, &p, 0.25);
                let mut d = data(n, 0.7);
                let r = data(n, 0.8);
                elastic_pull(&mut p, &r, 0.25);
                delta_pull(&mut p, &mut d, &r, 0.25);
                (p, m, v, avg, d)
            });
            assert_eq!(bits(&a.0), bits(&b.0), "p n={n}");
            assert_eq!(bits(&a.1), bits(&b.1), "m n={n}");
            assert_eq!(bits(&a.2), bits(&b.2), "v n={n}");
            assert_eq!(bits(&a.3), bits(&b.3), "avg n={n}");
            assert_eq!(bits(&a.4), bits(&b.4), "d n={n}");
        }
    }

    #[test]
    fn exp_lane_tracks_libm_exp() {
        // ~2 ulps of relative error across the softmax input range, and
        // exact at 0 (the row-max element must map to exactly 1.0).
        assert_eq!(exp_lane(0.0).to_bits(), 1.0f32.to_bits());
        for i in 0..2000 {
            let x = -90.0 + (i as f32) * 0.05;
            let got = exp_lane(x);
            let want = x.exp();
            let tol = (want * 1e-6).max(f32::MIN_POSITIVE);
            assert!((got - want).abs() <= tol, "exp({x}): {got} vs {want}");
        }
        // Clamped tails stay finite and monotone-safe.
        assert!(exp_lane(-1000.0) > 0.0);
        assert!(exp_lane(1000.0).is_finite());
    }

    #[test]
    fn softmax_row_matches_across_levels_bitwise() {
        for n in [1usize, 3, 7, 8, 9, 64, 137, 512] {
            let (a, b) = on_both(|| {
                let mut x = data(n, 0.8);
                // Widen the dynamic range to exercise the range reduction.
                for (i, v) in x.iter_mut().enumerate() {
                    *v *= 1.0 + (i % 11) as f32;
                }
                softmax_row(&mut x);
                x
            });
            assert_eq!(bits(&a), bits(&b), "n={n}");
            let sum: f32 = b.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "n={n} sum={sum}");
            assert!(b.iter().all(|v| *v >= 0.0 && v.is_finite()), "n={n}");
        }
    }

    #[test]
    fn log_softmax_row_matches_across_levels_bitwise() {
        for n in [1usize, 3, 7, 8, 9, 64, 137, 512] {
            let (a, b) = on_both(|| {
                let mut x = data(n, 0.8);
                // Widen the dynamic range to exercise the range reduction.
                for (i, v) in x.iter_mut().enumerate() {
                    *v *= 1.0 + (i % 11) as f32;
                }
                log_softmax_row(&mut x);
                x
            });
            assert_eq!(bits(&a), bits(&b), "n={n}");
            // logsumexp of a log-softmax row is 0 by construction.
            let lse: f32 = b.iter().map(|v| v.exp()).sum::<f32>().ln();
            assert!(lse.abs() < 1e-5, "n={n} lse={lse}");
            assert!(b.iter().all(|v| *v <= 0.0 + 1e-6 && v.is_finite()), "n={n}");
        }
    }

    #[test]
    fn log_softmax_row_tracks_log_of_softmax() {
        let mut lsm = data(137, 0.45);
        let mut sm = lsm.clone();
        log_softmax_row(&mut lsm);
        softmax_row(&mut sm);
        for (i, (l, s)) in lsm.iter().zip(&sm).enumerate() {
            assert!((l - s.ln()).abs() < 1e-5, "element {i}: {l} vs ln {}", s.ln());
        }
    }

    fn bits(x: &[f32]) -> Vec<u32> {
        x.iter().map(|v| v.to_bits()).collect()
    }
}
