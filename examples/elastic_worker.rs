//! One worker pipeline of the two-process elastic-averaging demo.
//!
//! Connects to a running `elastic_server`, performs the version handshake
//! and trains its pipeline for the demo's fixed number of rounds, pulling
//! the reference and shipping deltas over TCP. Afterwards it prints the
//! final reference checksums (matching the server's) and, with
//! `--verify-local`, replays the identical workload on the in-process
//! trainer and asserts the losses and reference weights agree bit for bit
//! — printing `VERIFY OK`, which the CI smoke test greps for.
//!
//! `--faults` wraps the connection in the fault-injection shim (10% drop,
//! 10% delay, 10% duplicate): training must still converge to the same
//! bytes, because requests are retried and submissions are idempotent.
//!
//! Fault-tolerance flags (for a `--fault-tolerant` server):
//!
//! * `--tolerate-faults` wraps the pipeline in [`SupervisedWorker`]:
//!   comms failures are retried with backoff through reconnect + resync,
//!   and past the retry budget the worker degrades to local-only steps.
//! * `--rejoin` resyncs to the server's current reference and round
//!   before training — how a restarted worker re-enters the quorum.
//! * `--crash-at-round K` aborts the process the moment round `K`
//!   completes (the kill half of the kill-and-rejoin script).
//! * `--target-rounds R` / `--round-delay-ms MS` control how far and how
//!   fast the worker runs; the delay leaves the chaos script time to kill
//!   and restart peers mid-training.
//!
//! ```text
//! cargo run --release --example elastic_worker -- --addr 127.0.0.1:7070 --pipe 0 --verify-local
//! ```

use avgpipe_suite::demo;
use ea_comms::{
    CommsError, FaultConfig, FaultyTransport, RemoteShards, RetryConfig, ShardChannel, ShardClient,
    TcpConfig, TcpTransport, Transport,
};
use ea_runtime::{ElasticWorker, SupervisedWorker, SupervisorConfig, WorkerMode};
use std::sync::Arc;
use std::time::Duration;

fn connect_channel(
    addr: &str,
    pipe: usize,
    faults: bool,
    retry: RetryConfig,
) -> Result<Arc<dyn ShardChannel>, CommsError> {
    let tcp = TcpTransport::connect(addr, TcpConfig::default())?;
    let conn: Box<dyn Transport> = if faults {
        // Seed per pipeline so the two workers inject different faults.
        Box::new(FaultyTransport::new(tcp, FaultConfig::lossy_10(), 0xFA17 + pipe as u64))
    } else {
        Box::new(tcp)
    };
    let client = ShardClient::handshake(conn, pipe, retry)?;
    Ok(Arc::new(RemoteShards::new(vec![client])?))
}

fn main() {
    let mut addr = "127.0.0.1:7070".to_string();
    let mut pipe: Option<usize> = None;
    let mut verify_local = false;
    let mut faults = false;
    let mut tolerate_faults = false;
    let mut rejoin = false;
    let mut target_rounds: u64 = demo::ROUNDS;
    let mut round_delay = Duration::ZERO;
    let mut crash_at_round: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().expect("--addr needs a value"),
            "--pipe" => {
                pipe = Some(
                    args.next().expect("--pipe needs a value").parse().expect("--pipe: integer"),
                )
            }
            "--verify-local" => verify_local = true,
            "--faults" => faults = true,
            "--tolerate-faults" => tolerate_faults = true,
            "--rejoin" => rejoin = true,
            "--target-rounds" => {
                target_rounds = args
                    .next()
                    .expect("--target-rounds needs a value")
                    .parse()
                    .expect("--target-rounds: integer")
            }
            "--round-delay-ms" => {
                round_delay = Duration::from_millis(
                    args.next()
                        .expect("--round-delay-ms needs a value")
                        .parse()
                        .expect("--round-delay-ms: integer milliseconds"),
                )
            }
            "--crash-at-round" => {
                crash_at_round = Some(
                    args.next()
                        .expect("--crash-at-round needs a value")
                        .parse()
                        .expect("--crash-at-round: integer"),
                )
            }
            "--help" | "-h" => {
                println!(
                    "usage: elastic_worker --pipe N [--addr HOST:PORT] [--verify-local] \
                     [--faults] [--tolerate-faults] [--rejoin] [--target-rounds R] \
                     [--round-delay-ms MS] [--crash-at-round K]"
                );
                return;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    let pipe = pipe.expect("--pipe is required (0-based pipeline id)");
    assert!(pipe < demo::N_PIPELINES, "pipe out of range");

    // A fault-tolerant server answers pulls within its bounded wait and
    // relies on client retransmission, so give the retry budget headroom.
    let retry = if tolerate_faults {
        RetryConfig { reply_timeout: Duration::from_millis(200), max_attempts: 50 }
    } else {
        RetryConfig::default()
    };
    let channel = connect_channel(&addr, pipe, faults, retry).expect("connect to server");

    let task = demo::task();
    let mut worker = ElasticWorker::new(
        demo::model_stages(),
        demo::optimizers(),
        demo::MICROS,
        demo::alpha(),
        pipe,
        channel,
    );
    if rejoin {
        // Re-enter the quorum: adopt the server's current reference and
        // round so our next submit lands at the live round boundary.
        let round = worker.resync().expect("resync with server");
        println!("REJOIN pipe={pipe} round={round}");
    }

    if tolerate_faults {
        let factory_addr = addr.clone();
        let mut sup = SupervisedWorker::new(
            worker,
            Box::new(move || connect_channel(&factory_addr, pipe, faults, retry)),
            SupervisorConfig::default(),
        );
        let mut last_loss = f32::NAN;
        while sup.rounds_done() < target_rounds {
            let r = sup.rounds_done();
            let batch = demo::worker_batch(&task, r, pipe);
            let report = sup.round(&batch).expect("supervised round failed");
            last_loss = report.loss;
            println!(
                "pipe {pipe} round {r}: loss {:.6} mode={:?} retries={}",
                report.loss, report.mode, report.retries
            );
            if report.mode == WorkerMode::LocalOnly {
                // The demo wants quorum behavior, not a silent solo run.
                panic!("pipe {pipe} lost the server past its retry budget");
            }
            if crash_at_round == Some(r) {
                println!("CRASHING pipe={pipe} at round {r}");
                // Simulate a hard crash: no destructors, no goodbyes.
                std::process::abort();
            }
            if !round_delay.is_zero() {
                std::thread::sleep(round_delay);
            }
        }
        println!("FINAL_LOSS pipe={pipe} {last_loss:.6}");
        // Degraded rounds renormalize over survivors, so byte-exactness
        // versus the fault-free baseline no longer holds; finishing all
        // rounds with finite losses while staying elastic is the check.
        assert!(last_loss.is_finite(), "loss diverged");
        println!("VERIFY OK pipe={pipe} mode=ft");
        return;
    }

    let mut losses = Vec::new();
    for r in 0..target_rounds {
        let batch = demo::worker_batch(&task, r, pipe);
        let loss = worker.round(&batch).expect("round failed");
        println!("pipe {pipe} round {r}: loss {loss:.6}");
        losses.push(loss);
        if crash_at_round == Some(r) {
            println!("CRASHING pipe={pipe} at round {r}");
            std::process::abort();
        }
        if !round_delay.is_zero() {
            std::thread::sleep(round_delay);
        }
    }
    println!("FINAL_LOSS pipe={pipe} {:.6}", losses.last().unwrap());

    // Pull the post-training reference and print the same checksums the
    // server prints.
    let final_refs: Vec<Vec<f32>> = (0..demo::CFG.stages)
        .map(|s| worker.pull_reference(s).expect("final reference pull"))
        .collect();
    for (s, w) in final_refs.iter().enumerate() {
        println!("REF_CHECKSUM stage={s} {:#010x}", demo::weights_checksum(w));
    }

    if verify_local {
        let (local_losses, local_refs) = demo::run_local_baseline();
        // This worker saw its own per-pipeline losses; the baseline
        // reports the mean — compare the reference weights (bit-exact)
        // and this pipeline's replica parameters instead.
        for s in 0..demo::CFG.stages {
            assert_eq!(
                final_refs[s], local_refs[s],
                "stage {s}: remote reference differs from the in-process trainer"
            );
        }
        assert!(local_losses.iter().all(|l| l.is_finite()), "local baseline diverged");
        println!("VERIFY OK pipe={pipe}");
    }
}
