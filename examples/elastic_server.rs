//! Reference-shard server for the two-process elastic-averaging demo.
//!
//! Hosts the per-stage reference shards behind the TCP transport and
//! serves the configured number of worker pipelines until they finish and
//! disconnect, then prints a bit-exact checksum of the final reference
//! weights for each stage (the workers print the same checksums, so a
//! byte-level comparison across processes is a `grep` away).
//!
//! ```text
//! cargo run --release --example elastic_server -- --addr 127.0.0.1:7070
//! cargo run --release --example elastic_worker -- --addr 127.0.0.1:7070 --pipe 0 &
//! cargo run --release --example elastic_worker -- --addr 127.0.0.1:7070 --pipe 1
//! ```

use avgpipe_suite::demo;
use ea_comms::{TcpConfig, TcpServer};
use ea_runtime::RefShardServer;

fn main() {
    let mut addr = "127.0.0.1:7070".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().expect("--addr needs a value"),
            "--help" | "-h" => {
                println!("usage: elastic_server [--addr HOST:PORT]");
                return;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    let n = demo::N_PIPELINES;
    let server = RefShardServer::from_initial_weights(demo::initial_reference(), n);
    let mut listener = TcpServer::bind(&addr, TcpConfig::default()).expect("bind the demo address");
    let addr = listener.local_addr().expect("local addr");
    // The workers (and the CI smoke test) wait for this line.
    println!("LISTENING {addr}");

    let conns = server.serve_connections(&mut listener, n).expect("accept workers");
    for conn in conns {
        conn.join().expect("connection thread panicked");
    }

    for (s, shard) in server.shards().iter().enumerate() {
        let w = shard.snapshot();
        println!("REF_CHECKSUM stage={s} {:#010x}", demo::weights_checksum(&w));
    }
    println!("SERVER DONE after {} rounds", demo::ROUNDS);
}
