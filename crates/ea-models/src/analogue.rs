//! Scaled-down runnable analogues of GNMT, BERT and AWD-LSTM.
//!
//! These train for real on the synthetic tasks in `ea-data`. The layer
//! *types* match the originals (LSTM stacks, transformer encoder blocks,
//! weight-dropped LSTM LM) so the update semantics being compared in the
//! statistical-efficiency experiments exercise the genuine architectures,
//! just at laptop scale.

use crate::spec::{LayerCost, ModelSpec};
use ea_autograd::{
    Activation, ActivationKind, Dropout, Embedding, Layer, LayerNorm, Linear, LstmSeq, Residual,
    SelfAttention, Stage, StagedModel,
};
use ea_tensor::TensorRng;

/// Size configuration for an analogue model.
#[derive(Clone, Copy, Debug)]
pub struct AnalogueConfig {
    /// Vocabulary size of the synthetic task.
    pub vocab: usize,
    /// Sequence length.
    pub seq: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Number of recurrent/encoder blocks.
    pub blocks: usize,
    /// Number of pipeline stages to partition into.
    pub stages: usize,
}

impl AnalogueConfig {
    /// A small default suitable for convergence tests.
    pub fn small(stages: usize) -> Self {
        AnalogueConfig { vocab: 32, seq: 8, hidden: 32, blocks: 4, stages }
    }
}

/// Splits a flat layer list into `k` contiguous stages with balanced layer
/// counts (earlier stages take the remainder).
fn split_stages(mut layers: Vec<Box<dyn Layer>>, k: usize) -> StagedModel {
    assert!(k >= 1, "need at least one stage");
    assert!(layers.len() >= k, "cannot split {} layers into {k} stages", layers.len());
    let n = layers.len();
    let base = n / k;
    let extra = n % k;
    let mut stages = Vec::with_capacity(k);
    for s in 0..k {
        let take = base + usize::from(s < extra);
        let rest = layers.split_off(take);
        stages.push(Stage::new(layers));
        layers = rest;
    }
    StagedModel::new(stages)
}

/// Cost-model twin of [`gnmt_analogue`]: a [`ModelSpec`] whose layer list
/// matches the runnable analogue layer for layer, with per-layer costs
/// computed by the same formulas as [`crate::spec::gnmt_spec`] at the
/// analogue's scale (parameter bytes match the runnable stages exactly,
/// bias terms included). A *real* traced run of the analogue and a
/// *simulated* run of this spec then describe the same model, which is
/// what lets the trace-driven profile be validated against the
/// simulator-driven one.
pub fn analogue_spec(cfg: AnalogueConfig) -> ModelSpec {
    let h = cfg.hidden as u64;
    let vocab = cfg.vocab as u64;
    let seq = cfg.seq as u64;
    let act = seq * h * 4;
    let mut layers = vec![LayerCost {
        name: "embedding".into(),
        param_bytes: vocab * h * 4,
        // Table lookup: one read per token, no MACs worth modeling.
        fwd_flops: (seq * h) as f64,
        act_stash_bytes: seq * 4,
        out_bytes: act,
    }];
    for i in 0..cfg.blocks {
        layers.push(LayerCost {
            name: format!("lstm{i}"),
            param_bytes: (4 * h * (2 * h) + 4 * h) * 4,
            // 2 × [4h × (in + h)] MACs per token, `seq` tokens.
            fwd_flops: (2 * seq * 4 * h * (2 * h)) as f64,
            act_stash_bytes: seq * 24 * h * 4,
            out_bytes: act,
        });
    }
    layers.push(LayerCost {
        name: "proj".into(),
        param_bytes: (h * vocab + vocab) * 4,
        fwd_flops: (2 * seq * h * vocab) as f64,
        act_stash_bytes: act,
        out_bytes: seq * vocab * 4,
    });
    ModelSpec {
        name: format!("GNMT-analogue-{}x{}", cfg.blocks, cfg.hidden),
        layers,
        bwd_factor: 2.0,
        // The analogue runs on CPU threads, but the saturation curve keeps
        // GNMT's shape: recurrent kernels far below peak at small micros.
        demand_half: 4.0,
        demand_cap: 0.3,
        default_batch: 16,
        input_bytes: seq * 4,
    }
}

/// The stage ranges the analogues' balanced splitter produces for
/// [`gnmt_analogue`]'s `cfg.blocks + 2` layers: `cfg.stages` contiguous
/// `(lo, hi)` ranges with earlier stages taking the remainder — the same
/// split [`split_stages`] applies to the runnable model, expressed over
/// [`analogue_spec`]'s layer indices.
pub fn analogue_partition(cfg: AnalogueConfig) -> Vec<(usize, usize)> {
    let n = cfg.blocks + 2;
    let k = cfg.stages;
    assert!(k >= 1, "need at least one stage");
    assert!(n >= k, "cannot split {n} layers into {k} stages");
    let base = n / k;
    let extra = n % k;
    let mut out = Vec::with_capacity(k);
    let mut lo = 0;
    for s in 0..k {
        let take = base + usize::from(s < extra);
        out.push((lo, lo + take));
        lo += take;
    }
    out
}

/// GNMT analogue: embedding → stacked LSTMs → vocabulary projection,
/// trained as a sequence transduction (copy-translation) task.
pub fn gnmt_analogue(cfg: AnalogueConfig, rng: &mut TensorRng) -> StagedModel {
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    layers.push(Box::new(Embedding::new(cfg.vocab, cfg.hidden, rng)));
    for _ in 0..cfg.blocks {
        layers.push(Box::new(LstmSeq::new(cfg.seq, cfg.hidden, cfg.hidden, rng)));
    }
    layers.push(Box::new(Linear::new(cfg.hidden, cfg.vocab, rng)));
    split_stages(layers, cfg.stages)
}

/// BERT analogue: embedding → transformer encoder blocks (pre-LN residual
/// attention + feed-forward) → token classification head, trained on a
/// masked-token denoising task.
pub fn bert_analogue(cfg: AnalogueConfig, rng: &mut TensorRng) -> StagedModel {
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    layers.push(Box::new(Embedding::new(cfg.vocab, cfg.hidden, rng)));
    let heads = if cfg.hidden.is_multiple_of(4) { 4 } else { 1 };
    for b in 0..cfg.blocks {
        layers.push(Box::new(Residual::new(vec![
            Box::new(LayerNorm::new(cfg.hidden)),
            Box::new(SelfAttention::new(cfg.seq, cfg.hidden, heads, rng)),
        ])));
        layers.push(Box::new(Residual::new(vec![
            Box::new(LayerNorm::new(cfg.hidden)),
            Box::new(Linear::new(cfg.hidden, 2 * cfg.hidden, rng)),
            Box::new(Activation::new(ActivationKind::Gelu)),
            Box::new(Linear::new(2 * cfg.hidden, cfg.hidden, rng)),
        ])));
        let _ = b;
    }
    layers.push(Box::new(LayerNorm::new(cfg.hidden)));
    layers.push(Box::new(Linear::new(cfg.hidden, cfg.vocab, rng)));
    split_stages(layers, cfg.stages)
}

/// AWD-LSTM analogue: embedding → dropout-regularized LSTM stack →
/// decoder, trained as next-token language modeling.
pub fn awd_analogue(cfg: AnalogueConfig, rng: &mut TensorRng) -> StagedModel {
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    layers.push(Box::new(Embedding::new(cfg.vocab, cfg.hidden, rng)));
    layers.push(Box::new(Dropout::new(0.1, 17)));
    for b in 0..cfg.blocks {
        layers.push(Box::new(LstmSeq::new(cfg.seq, cfg.hidden, cfg.hidden, rng)));
        layers.push(Box::new(Dropout::new(0.1, 100 + b as u64)));
    }
    layers.push(Box::new(Linear::new(cfg.hidden, cfg.vocab, rng)));
    split_stages(layers, cfg.stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_autograd::ForwardCtx;
    use ea_tensor::Tensor;

    fn token_input(cfg: &AnalogueConfig, batch: usize) -> Tensor {
        let n = batch * cfg.seq;
        Tensor::from_vec((0..n).map(|i| (i % cfg.vocab) as f32).collect(), &[n])
    }

    #[test]
    fn gnmt_analogue_runs_end_to_end() {
        let cfg = AnalogueConfig::small(3);
        let mut rng = TensorRng::seed_from_u64(0);
        let mut m = gnmt_analogue(cfg, &mut rng);
        assert_eq!(m.num_stages(), 3);
        let x = token_input(&cfg, 2);
        let (y, saves) = m.forward(&x, &ForwardCtx::eval());
        assert_eq!(y.dims(), &[2 * cfg.seq, cfg.vocab]);
        let dy = Tensor::full(y.dims(), 0.01);
        m.backward(&saves, &dy);
    }

    #[test]
    fn bert_analogue_runs_end_to_end() {
        let cfg = AnalogueConfig { vocab: 16, seq: 4, hidden: 16, blocks: 2, stages: 2 };
        let mut rng = TensorRng::seed_from_u64(1);
        let mut m = bert_analogue(cfg, &mut rng);
        let x = token_input(&cfg, 3);
        let (y, saves) = m.forward(&x, &ForwardCtx::train(0, 0));
        assert_eq!(y.dims(), &[3 * cfg.seq, cfg.vocab]);
        let dy = Tensor::full(y.dims(), 0.01);
        let dx = m.backward(&saves, &dy);
        assert_eq!(dx.numel(), x.numel());
    }

    #[test]
    fn awd_analogue_runs_end_to_end() {
        let cfg = AnalogueConfig { vocab: 20, seq: 6, hidden: 12, blocks: 3, stages: 4 };
        let mut rng = TensorRng::seed_from_u64(2);
        let m = awd_analogue(cfg, &mut rng);
        assert_eq!(m.num_stages(), 4);
        let x = token_input(&cfg, 2);
        let y = m.forward_eval(&x);
        assert_eq!(y.dims(), &[2 * cfg.seq, cfg.vocab]);
    }

    #[test]
    fn stage_split_is_balanced() {
        let cfg = AnalogueConfig::small(2);
        let mut rng = TensorRng::seed_from_u64(3);
        let m = gnmt_analogue(cfg, &mut rng);
        // 6 layers into 2 stages → 3 + 3.
        assert_eq!(m.stage(0).num_layers(), 3);
        assert_eq!(m.stage(1).num_layers(), 3);
    }

    #[test]
    fn same_seed_same_model() {
        let cfg = AnalogueConfig::small(2);
        let mut r1 = TensorRng::seed_from_u64(9);
        let mut r2 = TensorRng::seed_from_u64(9);
        let a = gnmt_analogue(cfg, &mut r1);
        let b = gnmt_analogue(cfg, &mut r2);
        assert_eq!(a.stage(0).params_flat(), b.stage(0).params_flat());
    }

    #[test]
    #[should_panic]
    fn too_many_stages_panics() {
        let cfg = AnalogueConfig { vocab: 8, seq: 2, hidden: 4, blocks: 1, stages: 10 };
        let mut rng = TensorRng::seed_from_u64(4);
        gnmt_analogue(cfg, &mut rng);
    }

    #[test]
    fn analogue_spec_matches_runnable_params_exactly() {
        let cfg = AnalogueConfig { vocab: 32, seq: 8, hidden: 32, blocks: 4, stages: 3 };
        let spec = analogue_spec(cfg);
        assert_eq!(spec.num_layers(), cfg.blocks + 2);
        let mut rng = TensorRng::seed_from_u64(12);
        let model = gnmt_analogue(cfg, &mut rng);
        for (k, &(lo, hi)) in analogue_partition(cfg).iter().enumerate() {
            let (param_bytes, flops, stash, _) = spec.stage_cost(lo, hi);
            assert_eq!(
                param_bytes,
                model.stage(k).num_params() as u64 * 4,
                "stage {k} ({lo}..{hi}) parameter bytes diverge from the runnable stage"
            );
            assert!(flops > 0.0 && stash > 0);
        }
    }

    #[test]
    fn analogue_partition_is_balanced_and_contiguous() {
        let cfg = AnalogueConfig { vocab: 8, seq: 2, hidden: 4, blocks: 5, stages: 3 };
        // 7 layers into 3 stages → 3 + 2 + 2.
        let part = analogue_partition(cfg);
        assert_eq!(part, vec![(0, 3), (3, 5), (5, 7)]);
        let one = analogue_partition(AnalogueConfig { stages: 1, ..cfg });
        assert_eq!(one, vec![(0, 7)]);
    }
}
