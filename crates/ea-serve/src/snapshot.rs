//! Double-buffered served model with atomic hot swap.
//!
//! Serving must satisfy two properties the training path never needed:
//!
//! 1. **Readers never block on a swap.** A forward pass can take
//!    milliseconds; holding a lock across it would stall every other
//!    request and the weight-update path alike. Readers therefore grab
//!    an `Arc` to an immutable [`ServedSnapshot`] (one brief lock to
//!    clone the pointer) and compute entirely outside any lock.
//! 2. **No mixed-version outputs.** The reference weights arrive one
//!    *shard* (pipeline stage) at a time over the wire. A batch must
//!    never see stage 0 at version `v+1` and stage 1 at version `v` —
//!    that composite model exists nowhere in training. Incoming shard
//!    payloads are therefore *staged* per version and swapped into the
//!    served snapshot only once **every** shard has reported the same
//!    version — which is exactly an elastic round boundary, since
//!    `RefShardServer` advances all shards' versions at round
//!    completion.
//!
//! The buffer rotation is hand-rolled (no `arc-swap` in the tree):
//! `active` holds the serving snapshot; `free` holds idle model
//! instances; swapped-out snapshots park in `retired` until the last
//! in-flight reader drops its `Arc`, at which point the instance is
//! reclaimed into `free`. With two model instances (the constructor's
//! contract) a swap is always possible as long as no reader holds a
//! snapshot older than the previous swap — and if one does, the swap
//! simply *defers*: the staged weights are kept and retried on the next
//! [`publish_stage`](SnapshotStore::publish_stage) or
//! [`try_swap`](SnapshotStore::try_swap) call. Readers are wait-free;
//! the writer is at worst late, never wrong.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ea_autograd::StagedModel;

/// An immutable (version, model) pair handed to readers.
pub struct ServedSnapshot {
    /// Reference-weight version this model's parameters correspond to.
    pub version: u64,
    /// Forward-only model; one stage per reference shard.
    pub model: StagedModel,
}

/// Rotating double buffer of [`ServedSnapshot`]s with per-shard staging.
pub struct SnapshotStore {
    shards: usize,
    active: Mutex<Arc<ServedSnapshot>>,
    /// Cache of `active`'s version, readable without the lock.
    version: AtomicU64,
    /// Model instances available for the next swap.
    free: Mutex<Vec<StagedModel>>,
    /// Swapped-out snapshots still (possibly) held by readers.
    retired: Mutex<Vec<Arc<ServedSnapshot>>>,
    /// version → per-shard staged weights (`None` until that shard
    /// reports). BTreeMap so the *newest* fully-staged version wins.
    staged: Mutex<BTreeMap<u64, Vec<Option<Vec<f32>>>>>,
    swaps: AtomicU64,
}

impl SnapshotStore {
    /// A store serving `active` at `version`, with `spare` as the swap
    /// target. Both models must have the same shape: one stage per
    /// shard, equal parameter counts (they are the same architecture
    /// instantiated twice).
    pub fn new(active: StagedModel, spare: StagedModel, version: u64) -> SnapshotStore {
        assert_eq!(
            active.num_stages(),
            spare.num_stages(),
            "active and spare must have the same stage count"
        );
        assert_eq!(
            active.num_params(),
            spare.num_params(),
            "active and spare must have the same parameter count"
        );
        let shards = active.num_stages();
        SnapshotStore {
            shards,
            version: AtomicU64::new(version),
            active: Mutex::new(Arc::new(ServedSnapshot { version, model: active })),
            free: Mutex::new(vec![spare]),
            retired: Mutex::new(Vec::new()),
            staged: Mutex::new(BTreeMap::new()),
            swaps: AtomicU64::new(0),
        }
    }

    /// Number of shards (stages) a full version requires.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The currently served snapshot. One pointer clone under a brief
    /// lock; the forward pass runs entirely outside it.
    pub fn current(&self) -> Arc<ServedSnapshot> {
        Arc::clone(&self.active.lock().expect("active snapshot poisoned"))
    }

    /// Version of the currently served snapshot (lock-free).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Completed swaps since construction.
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Stages `weights` for `(shard, version)` and attempts a swap.
    /// Returns `true` if the served snapshot advanced (to `version` or
    /// any newer fully-staged one). Stale versions (≤ current) are
    /// discarded outright.
    pub fn publish_stage(&self, shard: usize, version: u64, weights: Vec<f32>) -> bool {
        assert!(shard < self.shards, "shard {shard} out of range ({})", self.shards);
        if version <= self.version() {
            return false;
        }
        {
            let mut staged = self.staged.lock().expect("staged map poisoned");
            let slots = staged.entry(version).or_insert_with(|| vec![None; self.shards]);
            slots[shard] = Some(weights);
        }
        self.try_swap()
    }

    /// Swaps in the newest version for which **all** shards are staged,
    /// if a free model instance is available (reclaiming retired
    /// snapshots no reader holds). Returns whether a swap happened.
    /// Cheap no-op when nothing is fully staged.
    pub fn try_swap(&self) -> bool {
        let mut staged = self.staged.lock().expect("staged map poisoned");
        let current = self.version();
        // Newest fully-staged version strictly ahead of what's served.
        let Some(target) = staged
            .iter()
            .rev()
            .find(|(v, slots)| **v > current && slots.iter().all(Option::is_some))
            .map(|(v, _)| *v)
        else {
            return false;
        };
        self.reclaim_retired();
        let Some(mut model) = self.free.lock().expect("free list poisoned").pop() else {
            // Every instance is pinned by a reader: defer. The staged
            // weights stay; the next publish/try_swap retries.
            return false;
        };
        let slots = staged.remove(&target).expect("target version vanished");
        for (stage, weights) in slots.into_iter().enumerate() {
            model.stage_mut(stage).set_params_flat(&weights.expect("fully staged"));
        }
        // Everything at or below the swapped-in version is now stale.
        staged.retain(|v, _| *v > target);
        drop(staged);

        let fresh = Arc::new(ServedSnapshot { version: target, model });
        let old = {
            let mut active = self.active.lock().expect("active snapshot poisoned");
            std::mem::replace(&mut *active, fresh)
        };
        self.version.store(target, Ordering::Release);
        self.retired.lock().expect("retired list poisoned").push(old);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        // Opportunistically reclaim: the old snapshot is often already
        // unreferenced (no request mid-flight).
        self.reclaim_retired();
        true
    }

    /// Moves retired snapshots no reader references back into `free`.
    fn reclaim_retired(&self) {
        let mut retired = self.retired.lock().expect("retired list poisoned");
        let mut free = self.free.lock().expect("free list poisoned");
        retired.retain_mut(|snap| {
            if Arc::strong_count(snap) > 1 {
                return true;
            }
            // Sole owner: recover the model instance.
            // (A reader cannot appear between the count check and the
            // unwrap — new readers only see `active`.)
            match Arc::try_unwrap(std::mem::replace(
                snap,
                Arc::new(ServedSnapshot { version: 0, model: StagedModel::new(vec![]) }),
            )) {
                Ok(s) => {
                    free.push(s.model);
                    false
                }
                Err(original) => {
                    *snap = original;
                    true
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_autograd::{Layer, Linear, Stage};
    use ea_tensor::TensorRng;

    fn tiny_model(seed: u64) -> StagedModel {
        let mut rng = TensorRng::seed_from_u64(seed);
        let stages = (0..2)
            .map(|_| {
                let layers: Vec<Box<dyn Layer>> = vec![Box::new(Linear::new(2, 2, &mut rng))];
                Stage::new(layers)
            })
            .collect();
        StagedModel::new(stages)
    }

    fn store() -> SnapshotStore {
        SnapshotStore::new(tiny_model(1), tiny_model(2), 0)
    }

    #[test]
    fn partial_staging_never_swaps() {
        let s = store();
        assert!(!s.publish_stage(0, 1, vec![1.0; 6]));
        assert_eq!(s.version(), 0);
        // Completing the version swaps atomically.
        assert!(s.publish_stage(1, 1, vec![2.0; 6]));
        assert_eq!(s.version(), 1);
        let snap = s.current();
        assert_eq!(snap.version, 1);
        assert_eq!(snap.model.stage(0).params_flat(), vec![1.0; 6]);
        assert_eq!(snap.model.stage(1).params_flat(), vec![2.0; 6]);
    }

    #[test]
    fn swap_defers_while_a_reader_pins_the_old_snapshot() {
        let s = store();
        let pinned = s.current(); // reader holds version 0
        assert!(!s.publish_stage(0, 1, vec![1.0; 6]));
        assert!(s.publish_stage(1, 1, vec![2.0; 6]));
        assert_eq!(s.version(), 1);
        // Both instances are now accounted for: one serving v1, one
        // pinned by `pinned`. Staging v2 fully cannot swap yet.
        assert!(!s.publish_stage(0, 2, vec![3.0; 6]));
        assert!(!s.publish_stage(1, 2, vec![4.0; 6]));
        assert_eq!(s.version(), 1);
        // Reader finishes → deferred swap lands on the next attempt.
        drop(pinned);
        assert!(s.try_swap());
        assert_eq!(s.version(), 2);
        assert_eq!(s.current().model.stage(1).params_flat(), vec![4.0; 6]);
    }

    #[test]
    fn newest_fully_staged_version_wins_and_stale_versions_are_dropped() {
        let s = store();
        // v1 only half-staged; v2 fully staged.
        assert!(!s.publish_stage(0, 1, vec![1.0; 6]));
        assert!(!s.publish_stage(0, 2, vec![5.0; 6]));
        assert!(s.publish_stage(1, 2, vec![6.0; 6]));
        assert_eq!(s.version(), 2);
        // Finishing v1 later is a no-op: it is older than what's served.
        assert!(!s.publish_stage(1, 1, vec![9.0; 6]));
        assert_eq!(s.version(), 2);
        assert_eq!(s.swap_count(), 1);
    }

    #[test]
    fn readers_see_old_then_new_but_never_a_mix() {
        let s = Arc::new(store());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let snap = s.current();
                        let v = snap.version;
                        let p0 = snap.model.stage(0).params_flat();
                        let p1 = snap.model.stage(1).params_flat();
                        if v > 0 {
                            // Version v was staged as (v, v+0.5) per stage.
                            assert_eq!(p0, vec![v as f32; 6], "stage 0 torn at v{v}");
                            assert_eq!(p1, vec![v as f32 + 0.5; 6], "stage 1 torn at v{v}");
                        }
                    }
                })
            })
            .collect();
        for v in 1..=50u64 {
            s.publish_stage(0, v, vec![v as f32; 6]);
            s.publish_stage(1, v, vec![v as f32 + 0.5; 6]);
            // Retry deferred swaps until this version (or newer) serves.
            while s.version() < v {
                if !s.try_swap() {
                    std::thread::yield_now();
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(s.version(), 50);
    }
}
