//! The discrete-event execution engine.

use crate::{
    CLabel, ClusterConfig, DeviceStats, Instr, MemLedger, OomEvent, Program, SimResult, Span,
    SpanKind, StreamId, UtilTrace,
};
use std::collections::{HashMap, VecDeque};

const EPS: f64 = 1e-9;

/// Errors surfaced by [`Simulator::run`].
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// No stream can make progress but some are not finished. Lists
    /// `(stream name, instruction pointer, what it waits on)`.
    Deadlock {
        /// Simulation time at which progress stopped.
        time_us: f64,
        /// One entry per blocked stream.
        blocked: Vec<String>,
    },
    /// The program referenced an invalid device or stream, or mismatched
    /// channel tags at runtime.
    BadProgram(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { time_us, blocked } => {
                write!(f, "deadlock at t={time_us}µs; blocked: {}", blocked.join("; "))
            }
            SimError::BadProgram(msg) => write!(f, "bad program: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Clone, Copy, Debug, PartialEq)]
enum StreamState {
    Ready,
    WaitCompute,
    WaitRecv { from: StreamId, tag: u32 },
    Done,
}

struct ActiveTask {
    stream: StreamId,
    remaining_flops: f64,
    demand: f64,
    label: CLabel,
    start_us: f64,
}

struct Transfer {
    finish_us: f64,
    from: StreamId,
    to: StreamId,
    tag: u32,
    bytes: u64,
    service_us: f64,
}

/// Queueing resource of a transfer. Inter-node transfers serialize on the
/// *sending node's* NIC egress queue — one 1 Gbps pipe per machine — so
/// forward activations and backward gradients leaving the same node
/// contend, which is exactly the communication interference the paper
/// attributes to 1F1B (§4.1). Intra-node transfers serialize per device
/// pair (PCIe lane), local handoffs per device.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum LinkKey {
    Inter(usize),
    Intra(usize, usize),
    Local(usize),
}

/// Executes [`Program`]s against a [`ClusterConfig`].
pub struct Simulator {
    cfg: ClusterConfig,
}

impl Simulator {
    /// A simulator for the given cluster.
    pub fn new(cfg: ClusterConfig) -> Self {
        Simulator { cfg }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Runs the program to completion, returning timing, utilization and
    /// memory accounting. Fails on deadlock or malformed programs.
    pub fn run(&self, program: &Program) -> Result<SimResult, SimError> {
        self.run_inner(program, None)
    }

    /// Like [`Simulator::run`], additionally collecting one [`Span`] per
    /// compute task and per transfer for timeline visualization (see
    /// [`crate::chrome_trace_json`]).
    pub fn run_traced(&self, program: &Program) -> Result<(SimResult, Vec<Span>), SimError> {
        let mut spans = Vec::new();
        let result = self.run_inner(program, Some(&mut spans))?;
        spans.sort_by(|a, b| a.t0.total_cmp(&b.t0));
        Ok((result, spans))
    }

    fn run_inner(
        &self,
        program: &Program,
        mut spans: Option<&mut Vec<Span>>,
    ) -> Result<SimResult, SimError> {
        let n_dev = self.cfg.num_devices();
        for (sid, s) in program.streams.iter().enumerate() {
            if s.device >= n_dev {
                return Err(SimError::BadProgram(format!(
                    "stream {sid} ({}) pinned to invalid device {}",
                    s.name, s.device
                )));
            }
        }

        let n_streams = program.streams.len();
        let mut ip = vec![0usize; n_streams];
        let mut state = vec![StreamState::Ready; n_streams];
        let mut active: Vec<Vec<ActiveTask>> = (0..n_dev).map(|_| Vec::new()).collect();
        let mut inbox: HashMap<(StreamId, StreamId), VecDeque<u32>> = HashMap::new();
        let mut link_busy: HashMap<LinkKey, f64> = HashMap::new();
        let mut transfers: Vec<Transfer> = Vec::new();
        let mut ledgers: Vec<MemLedger> =
            (0..n_dev).map(|_| MemLedger::new(self.cfg.gpu_mem_bytes)).collect();
        let mut stats: Vec<DeviceStats> = (0..n_dev).map(|_| DeviceStats::default()).collect();
        let mut traces: Vec<UtilTrace> = (0..n_dev).map(|_| UtilTrace::new()).collect();
        let mut oom: Option<OomEvent> = None;
        let mut now = 0.0f64;

        loop {
            // --- Dispatch phase: run every ready stream until it blocks.
            let mut progressed = true;
            while progressed {
                progressed = false;
                for sid in 0..n_streams {
                    while state[sid] == StreamState::Ready {
                        let s = &program.streams[sid];
                        if ip[sid] >= s.instrs.len() {
                            state[sid] = StreamState::Done;
                            break;
                        }
                        match s.instrs[ip[sid]] {
                            Instr::Compute { flops, demand, label } => {
                                if !(demand > 0.0 && demand <= 1.0) {
                                    return Err(SimError::BadProgram(format!(
                                        "stream {sid}: demand {demand} outside (0,1]"
                                    )));
                                }
                                active[s.device].push(ActiveTask {
                                    stream: sid,
                                    remaining_flops: flops.max(0.0),
                                    demand,
                                    label,
                                    start_us: now,
                                });
                                ip[sid] += 1;
                                state[sid] = StreamState::WaitCompute;
                                progressed = true;
                            }
                            Instr::Send { to, bytes, tag } => {
                                let from_dev = s.device;
                                let to_dev = program.streams[to].device;
                                let class = self.cfg.link_class(from_dev, to_dev);
                                let key = match class {
                                    crate::LinkClass::Local => LinkKey::Local(from_dev),
                                    crate::LinkClass::IntraNode => LinkKey::Intra(from_dev, to_dev),
                                    crate::LinkClass::InterNode => {
                                        LinkKey::Inter(self.cfg.node_of(from_dev))
                                    }
                                };
                                let service = self.cfg.transfer_us(class, bytes);
                                let busy = link_busy.entry(key).or_insert(0.0);
                                let start = busy.max(now);
                                let finish = start + service;
                                *busy = finish;
                                transfers.push(Transfer {
                                    finish_us: finish,
                                    from: sid,
                                    to,
                                    tag,
                                    bytes,
                                    service_us: service,
                                });
                                ip[sid] += 1;
                                progressed = true;
                            }
                            Instr::Recv { from, tag } => {
                                let q = inbox.entry((from, sid)).or_default();
                                if let Some(&got) = q.front() {
                                    if got != tag {
                                        return Err(SimError::BadProgram(format!(
                                            "stream {sid} ({}) expected tag {tag} from {from}, got {got}",
                                            s.name
                                        )));
                                    }
                                    q.pop_front();
                                    ip[sid] += 1;
                                    progressed = true;
                                } else {
                                    state[sid] = StreamState::WaitRecv { from, tag };
                                }
                            }
                            Instr::Alloc { bytes, tag } => {
                                if ledgers[s.device].alloc(sid, tag, bytes).is_err()
                                    && oom.is_none()
                                {
                                    oom = Some(OomEvent {
                                        device: s.device,
                                        time_us: now,
                                        requested: bytes,
                                        in_use: ledgers[s.device].current(),
                                        capacity: ledgers[s.device].capacity(),
                                    });
                                }
                                ip[sid] += 1;
                                progressed = true;
                            }
                            Instr::Free { tag } => {
                                ledgers[s.device].free(sid, tag);
                                ip[sid] += 1;
                                progressed = true;
                            }
                        }
                    }
                }
            }

            // --- Find the next completion.
            let mut next_dt = f64::INFINITY;
            for (dev, tasks) in active.iter().enumerate() {
                if tasks.is_empty() {
                    continue;
                }
                let total: f64 = tasks.iter().map(|t| t.demand).sum();
                let scale = if total > 1.0 { 1.0 / total } else { 1.0 };
                let flops_per_us = self.cfg.gpu_flops * self.cfg.speed_of(dev) * 1e-6;
                for t in tasks {
                    let rate = t.demand * scale * flops_per_us;
                    let dt = if t.remaining_flops <= EPS { 0.0 } else { t.remaining_flops / rate };
                    next_dt = next_dt.min(dt);
                }
            }
            for tr in &transfers {
                next_dt = next_dt.min((tr.finish_us - now).max(0.0));
            }

            if next_dt.is_infinite() {
                // Nothing in flight: either all streams done, or deadlock.
                let blocked: Vec<String> = (0..n_streams)
                    .filter(|&sid| state[sid] != StreamState::Done)
                    .map(|sid| {
                        format!("{} (ip {} / {:?})", program.streams[sid].name, ip[sid], state[sid])
                    })
                    .collect();
                if blocked.is_empty() {
                    break;
                }
                return Err(SimError::Deadlock { time_us: now, blocked });
            }

            // --- Advance time, serving compute fluidly and recording φ(t).
            let dt = next_dt;
            for (dev, tasks) in active.iter_mut().enumerate() {
                let total: f64 = tasks.iter().map(|t| t.demand).sum();
                let util = total.min(1.0);
                if dt > 0.0 {
                    if !tasks.is_empty() {
                        traces[dev].push(now, now + dt, util);
                        stats[dev].busy_us += dt;
                    } else {
                        traces[dev].push(now, now + dt, 0.0);
                        // Device idle: communication-blocked only if some
                        // local stream waits on a receive whose transfer
                        // is actually in flight; waiting for work that
                        // has not been produced yet is bubble time.
                        let comm_waiting = (0..n_streams).any(|sid| {
                            program.streams[sid].device == dev
                                && match state[sid] {
                                    StreamState::WaitRecv { from, .. } => {
                                        transfers.iter().any(|t| t.from == from && t.to == sid)
                                    }
                                    _ => false,
                                }
                        });
                        if comm_waiting {
                            stats[dev].comm_blocked_us += dt;
                        } else {
                            stats[dev].idle_us += dt;
                        }
                    }
                }
                if tasks.is_empty() {
                    continue;
                }
                let scale = if total > 1.0 { 1.0 / total } else { 1.0 };
                let flops_per_us = self.cfg.gpu_flops * self.cfg.speed_of(dev) * 1e-6;
                for t in tasks.iter_mut() {
                    t.remaining_flops -= t.demand * scale * flops_per_us * dt;
                }
            }
            now += dt;

            // --- Complete finished compute tasks.
            for tasks in active.iter_mut() {
                let mut i = 0;
                while i < tasks.len() {
                    if tasks[i].remaining_flops <= EPS {
                        let t = tasks.remove(i);
                        debug_assert_eq!(state[t.stream], StreamState::WaitCompute);
                        state[t.stream] = StreamState::Ready;
                        if let Some(spans) = spans.as_deref_mut() {
                            spans.push(Span {
                                stream: t.stream,
                                t0: t.start_us,
                                t1: now,
                                kind: SpanKind::Compute(t.label),
                            });
                        }
                    } else {
                        i += 1;
                    }
                }
            }

            // --- Deliver finished transfers.
            let mut i = 0;
            while i < transfers.len() {
                if transfers[i].finish_us <= now + EPS {
                    let tr = transfers.remove(i);
                    inbox.entry((tr.from, tr.to)).or_default().push_back(tr.tag);
                    let to_dev = program.streams[tr.to].device;
                    stats[to_dev].total_comm_us += tr.service_us;
                    if let Some(spans) = spans.as_deref_mut() {
                        spans.push(Span {
                            stream: tr.from,
                            t0: tr.finish_us - tr.service_us,
                            t1: tr.finish_us,
                            kind: SpanKind::Transfer { to: tr.to, bytes: tr.bytes },
                        });
                    }
                    if let StreamState::WaitRecv { from, .. } = state[tr.to] {
                        if from == tr.from {
                            state[tr.to] = StreamState::Ready;
                        }
                    }
                } else {
                    i += 1;
                }
            }
        }

        // Attach traces and memory peaks.
        for dev in 0..n_dev {
            stats[dev].peak_mem = ledgers[dev].peak();
            stats[dev].trace = std::mem::take(&mut traces[dev]);
        }
        Ok(SimResult { makespan_us: now, devices: stats, oom })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Instr::*, Stream};

    fn tiny_cluster() -> ClusterConfig {
        ClusterConfig {
            nodes: 2,
            gpus_per_node: 1,
            gpu_flops: 1e6, // 1 flop/µs at full utilization
            gpu_mem_bytes: 1000,
            inter_bw: 1e6, // 1 byte/µs
            inter_lat_us: 10.0,
            intra_bw: 1e9,
            intra_lat_us: 1.0,
            device_speed: Vec::new(),
        }
    }

    #[test]
    fn single_compute_takes_flops_over_rate() {
        let sim = Simulator::new(tiny_cluster());
        let mut p = Program::new();
        let mut s = Stream::new(0, "s");
        s.push(Compute { flops: 500.0, demand: 0.5, label: CLabel::Other });
        p.add_stream(s);
        let r = sim.run(&p).unwrap();
        // 500 flops at 0.5 × 1 flop/µs = 1000 µs.
        assert!((r.makespan_us - 1000.0).abs() < 1e-6);
        assert!((r.devices[0].busy_us - 1000.0).abs() < 1e-6);
        assert!((r.devices[0].trace.mean_over(r.makespan_us) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn two_streams_share_device_proportionally() {
        let sim = Simulator::new(tiny_cluster());
        let mut p = Program::new();
        for name in ["a", "b"] {
            let mut s = Stream::new(0, name);
            s.push(Compute { flops: 600.0, demand: 0.8, label: CLabel::Other });
            p.add_stream(s);
        }
        let r = sim.run(&p).unwrap();
        // Total demand 1.6 → each runs at 0.5 flop/µs → 1200 µs, φ = 1.
        assert!((r.makespan_us - 1200.0).abs() < 1e-6);
        assert!((r.devices[0].trace.mean_over(r.makespan_us) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn undersubscribed_streams_run_concurrently_at_own_demand() {
        let sim = Simulator::new(tiny_cluster());
        let mut p = Program::new();
        for name in ["a", "b"] {
            let mut s = Stream::new(0, name);
            s.push(Compute { flops: 400.0, demand: 0.4, label: CLabel::Other });
            p.add_stream(s);
        }
        let r = sim.run(&p).unwrap();
        // Demand sums to 0.8 ≤ 1 → both at 0.4 flop/µs → 1000 µs.
        assert!((r.makespan_us - 1000.0).abs() < 1e-6);
        assert!((r.devices[0].trace.mean_over(r.makespan_us) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn send_recv_transfers_data_and_blocks_receiver() {
        let sim = Simulator::new(tiny_cluster());
        let mut p = Program::new();
        let mut a = Stream::new(0, "sender");
        a.push(Compute { flops: 100.0, demand: 1.0, label: CLabel::Other });
        a.push(Send { to: 1, bytes: 90, tag: 1 });
        let mut b = Stream::new(1, "receiver");
        b.push(Recv { from: 0, tag: 1 });
        b.push(Compute { flops: 50.0, demand: 1.0, label: CLabel::Other });
        p.add_stream(a);
        p.add_stream(b);
        let r = sim.run(&p).unwrap();
        // 100 µs compute + (10 lat + 90 bytes/1Bpµs) transfer + 50 compute.
        assert!((r.makespan_us - 250.0).abs() < 1e-6, "makespan {}", r.makespan_us);
        // Receiver device: bubble while the sender computes (100 µs),
        // comm-blocked while the transfer is in flight (100 µs).
        assert!((r.devices[1].idle_us - 100.0).abs() < 1e-6);
        assert!((r.devices[1].comm_blocked_us - 100.0).abs() < 1e-6);
        assert!((r.devices[1].total_comm_us - 100.0).abs() < 1e-6);
    }

    #[test]
    fn link_serializes_concurrent_transfers() {
        let sim = Simulator::new(tiny_cluster());
        let mut p = Program::new();
        let mut a = Stream::new(0, "a");
        a.push(Send { to: 2, bytes: 90, tag: 1 });
        let mut b = Stream::new(0, "b");
        b.push(Send { to: 3, bytes: 90, tag: 2 });
        let mut c = Stream::new(1, "c");
        c.push(Recv { from: 0, tag: 1 });
        let mut d = Stream::new(1, "d");
        d.push(Recv { from: 1, tag: 2 });
        p.add_stream(a);
        p.add_stream(b);
        p.add_stream(c);
        p.add_stream(d);
        let r = sim.run(&p).unwrap();
        // Two 100 µs transfers share the node0→node1 link: 200 µs total.
        assert!((r.makespan_us - 200.0).abs() < 1e-6, "makespan {}", r.makespan_us);
    }

    #[test]
    fn fifo_order_preserved_per_channel() {
        let sim = Simulator::new(tiny_cluster());
        let mut p = Program::new();
        let mut a = Stream::new(0, "a");
        a.push(Send { to: 1, bytes: 10, tag: 1 });
        a.push(Send { to: 1, bytes: 10, tag: 2 });
        let mut b = Stream::new(1, "b");
        b.push(Recv { from: 0, tag: 1 });
        b.push(Recv { from: 0, tag: 2 });
        p.add_stream(a);
        p.add_stream(b);
        assert!(sim.run(&p).is_ok());
    }

    #[test]
    fn tag_mismatch_is_bad_program() {
        let sim = Simulator::new(tiny_cluster());
        let mut p = Program::new();
        let mut a = Stream::new(0, "a");
        a.push(Send { to: 1, bytes: 10, tag: 1 });
        let mut b = Stream::new(1, "b");
        b.push(Recv { from: 0, tag: 99 });
        p.add_stream(a);
        p.add_stream(b);
        match sim.run(&p) {
            Err(SimError::BadProgram(_)) => {}
            other => panic!("expected BadProgram, got {other:?}"),
        }
    }

    #[test]
    fn deadlock_detected() {
        let sim = Simulator::new(tiny_cluster());
        let mut p = Program::new();
        let mut a = Stream::new(0, "waits-forever");
        a.push(Recv { from: 1, tag: 0 });
        let mut b = Stream::new(1, "also-waits");
        b.push(Recv { from: 0, tag: 0 });
        p.add_stream(a);
        p.add_stream(b);
        match sim.run(&p) {
            Err(SimError::Deadlock { blocked, .. }) => assert_eq!(blocked.len(), 2),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn memory_peak_and_oom() {
        let sim = Simulator::new(tiny_cluster());
        let mut p = Program::new();
        let mut s = Stream::new(0, "hog");
        s.push(Alloc { bytes: 600, tag: 1 });
        s.push(Alloc { bytes: 600, tag: 2 });
        s.push(Free { tag: 1 });
        s.push(Free { tag: 2 });
        p.add_stream(s);
        let r = sim.run(&p).unwrap();
        assert!(r.is_oom());
        let oom = r.oom.unwrap();
        assert_eq!(oom.device, 0);
        assert_eq!(r.devices[0].peak_mem, 1200);
    }

    #[test]
    fn bubble_vs_comm_accounting() {
        // Device 1 waits for device 0's long compute: bubble while the
        // producer computes, comm only once the transfer is in flight.
        let sim = Simulator::new(tiny_cluster());
        let mut p = Program::new();
        let mut a = Stream::new(0, "producer");
        a.push(Compute { flops: 1000.0, demand: 1.0, label: CLabel::Other });
        a.push(Send { to: 1, bytes: 1, tag: 0 });
        let mut b = Stream::new(1, "consumer");
        b.push(Recv { from: 0, tag: 0 });
        p.add_stream(a);
        p.add_stream(b);
        let r = sim.run(&p).unwrap();
        let d1 = &r.devices[1];
        assert!((d1.idle_us - 1000.0).abs() < 1e-6, "idle {}", d1.idle_us);
        assert!((d1.comm_blocked_us - 11.0).abs() < 1e-6, "comm {}", d1.comm_blocked_us);
        assert!(d1.busy_us == 0.0);
    }

    #[test]
    fn zero_flops_compute_completes_immediately() {
        let sim = Simulator::new(tiny_cluster());
        let mut p = Program::new();
        let mut s = Stream::new(0, "noop");
        s.push(Compute { flops: 0.0, demand: 1.0, label: CLabel::Other });
        s.push(Compute { flops: 100.0, demand: 1.0, label: CLabel::Other });
        p.add_stream(s);
        let r = sim.run(&p).unwrap();
        assert!((r.makespan_us - 100.0).abs() < 1e-6);
    }

    #[test]
    fn utilization_integral_equals_work_volume() {
        // Conservation: ∫φ dt × peak = total flops executed.
        let sim = Simulator::new(tiny_cluster());
        let mut p = Program::new();
        for (i, f) in [300.0, 500.0].iter().enumerate() {
            let mut s = Stream::new(0, format!("s{i}"));
            s.push(Compute { flops: *f, demand: 0.7, label: CLabel::Other });
            p.add_stream(s);
        }
        let r = sim.run(&p).unwrap();
        let served = r.devices[0].trace.integral() * 1e6 * 1e-6; // µs × flop/µs
        assert!((served - 800.0).abs() < 1e-3, "served {served}");
    }
}

#[cfg(test)]
mod egress_tests {
    use super::*;
    use crate::{CLabel, Instr::*, Stream};

    #[test]
    fn egress_shared_across_destinations() {
        let cfg = ClusterConfig {
            nodes: 3,
            gpus_per_node: 1,
            gpu_flops: 1e6,
            gpu_mem_bytes: 1000,
            inter_bw: 1e6,
            inter_lat_us: 10.0,
            intra_bw: 1e9,
            intra_lat_us: 1.0,
            device_speed: Vec::new(),
        };
        let sim = Simulator::new(cfg);
        let mut p = Program::new();
        let mut a = Stream::new(0, "a");
        a.push(Send { to: 2, bytes: 90, tag: 1 });
        let mut b = Stream::new(0, "b");
        b.push(Send { to: 3, bytes: 90, tag: 2 });
        let mut c = Stream::new(1, "c");
        c.push(Recv { from: 0, tag: 1 });
        let mut d = Stream::new(2, "d");
        d.push(Recv { from: 1, tag: 2 });
        p.add_stream(a);
        p.add_stream(b);
        p.add_stream(c);
        p.add_stream(d);
        let r = sim.run(&p).unwrap();
        let _ = CLabel::Other;
        // Both leave node 0: one NIC, transfers serialize → 200 µs.
        assert!((r.makespan_us - 200.0).abs() < 1e-6, "makespan {}", r.makespan_us);
    }
}

#[cfg(test)]
mod heterogeneity_tests {
    use super::*;
    use crate::{CLabel, Instr::*, Stream};

    #[test]
    fn slow_device_takes_proportionally_longer() {
        let mut cfg = ClusterConfig {
            nodes: 2,
            gpus_per_node: 1,
            gpu_flops: 1e6,
            gpu_mem_bytes: 1000,
            inter_bw: 1e6,
            inter_lat_us: 10.0,
            intra_bw: 1e9,
            intra_lat_us: 1.0,
            device_speed: Vec::new(),
        };
        cfg = cfg.with_straggler(1, 0.25);
        let sim = Simulator::new(cfg);
        let mut p = Program::new();
        for dev in 0..2 {
            let mut s = Stream::new(dev, format!("d{dev}"));
            s.push(Compute { flops: 100.0, demand: 1.0, label: CLabel::Other });
            p.add_stream(s);
        }
        let r = sim.run(&p).unwrap();
        // Fast device finishes in 100 µs; straggler needs 400 µs.
        assert!((r.makespan_us - 400.0).abs() < 1e-6, "makespan {}", r.makespan_us);
        assert!((r.devices[0].busy_us - 100.0).abs() < 1e-6);
        assert!((r.devices[1].busy_us - 400.0).abs() < 1e-6);
    }
}
