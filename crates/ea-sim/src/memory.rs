//! Byte-accurate per-device memory ledger.

use crate::StreamId;
use std::collections::HashMap;

/// Record of the first out-of-memory event on a device.
#[derive(Clone, Debug, PartialEq)]
pub struct OomEvent {
    /// Device that overflowed.
    pub device: usize,
    /// Simulation time of the overflow (µs).
    pub time_us: f64,
    /// Bytes requested by the failing allocation.
    pub requested: u64,
    /// Bytes in use at that moment.
    pub in_use: u64,
    /// Device capacity.
    pub capacity: u64,
}

/// Error returned by [`MemLedger::alloc`] when the claim pushes the
/// device over its capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OomError;

impl std::fmt::Display for OomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "allocation exceeds device memory capacity")
    }
}

impl std::error::Error for OomError {}

/// Tracks live allocations and the peak footprint of one device.
#[derive(Clone, Debug)]
pub struct MemLedger {
    capacity: u64,
    current: u64,
    peak: u64,
    live: HashMap<(StreamId, u64), u64>,
}

impl MemLedger {
    /// Ledger for a device with `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        MemLedger { capacity, current: 0, peak: 0, live: HashMap::new() }
    }

    /// Claims `bytes` under `(stream, tag)`. Returns `Err(OomError)` on
    /// OOM (the allocation is still recorded so execution can continue
    /// and report a complete peak figure).
    pub fn alloc(&mut self, stream: StreamId, tag: u64, bytes: u64) -> Result<(), OomError> {
        let prev = self.live.insert((stream, tag), bytes);
        assert!(prev.is_none(), "allocation tag ({stream}, {tag}) reused while live");
        self.current += bytes;
        self.peak = self.peak.max(self.current);
        if self.current > self.capacity {
            Err(OomError)
        } else {
            Ok(())
        }
    }

    /// Releases `(stream, tag)`.
    pub fn free(&mut self, stream: StreamId, tag: u64) {
        let bytes = self
            .live
            .remove(&(stream, tag))
            .unwrap_or_else(|| panic!("freeing unknown allocation ({stream}, {tag})"));
        self.current -= bytes;
    }

    /// Bytes currently in use.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// Peak bytes ever in use.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Device capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of live allocations (leak checking in tests).
    pub fn live_count(&self) -> usize {
        self.live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_watermark() {
        let mut m = MemLedger::new(100);
        m.alloc(0, 1, 40).unwrap();
        m.alloc(0, 2, 40).unwrap();
        m.free(0, 1);
        m.alloc(0, 3, 10).unwrap();
        assert_eq!(m.current(), 50);
        assert_eq!(m.peak(), 80);
    }

    #[test]
    fn oom_is_reported_but_recorded() {
        let mut m = MemLedger::new(50);
        assert!(m.alloc(0, 1, 30).is_ok());
        assert!(m.alloc(0, 2, 30).is_err());
        assert_eq!(m.peak(), 60);
        m.free(0, 2);
        assert_eq!(m.current(), 30);
    }

    #[test]
    #[should_panic]
    fn duplicate_live_tag_panics() {
        let mut m = MemLedger::new(100);
        m.alloc(0, 1, 10).unwrap();
        let _ = m.alloc(0, 1, 10);
    }

    #[test]
    #[should_panic]
    fn free_unknown_tag_panics() {
        let mut m = MemLedger::new(100);
        m.free(0, 9);
    }

    #[test]
    fn tags_are_per_stream() {
        let mut m = MemLedger::new(100);
        m.alloc(0, 1, 10).unwrap();
        m.alloc(1, 1, 10).unwrap();
        m.free(0, 1);
        m.free(1, 1);
        assert_eq!(m.live_count(), 0);
    }
}
