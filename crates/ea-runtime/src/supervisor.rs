//! Worker-side supervision: bounded retry, reconnection, and graceful
//! degradation around an [`ElasticWorker`].
//!
//! The supervisor is the client half of the failure model (DESIGN.md
//! §14): the server evicts unresponsive workers and completes rounds
//! degraded; the supervisor keeps a *live* worker useful when it is the
//! one observing failures —
//!
//! * **Transient comms failures** (server restarting, network blip):
//!   exponential backoff, reconnect through the channel factory, and
//!   [`ElasticWorker::resync`] to re-enter the quorum at the server's
//!   current round boundary.
//! * **Persistent failures** (budget exhausted): escalate to
//!   [`WorkerMode::LocalOnly`] — plain local SGD steps, no reference
//!   traffic — rather than stalling forever.
//! * **Panics** inside the training round are captured and surfaced as
//!   [`Error::WorkerFailed`]; the worker is poisoned and every later call
//!   fails fast instead of touching a half-updated pipeline.

use crate::server::ElasticWorker;
use crate::Error;
use ea_comms::{CommsError, QuorumInfo, ShardChannel};
use ea_data::Batch;
use ea_trace::{log_event, Category, StaticName};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

static RETRY_MARK: StaticName = StaticName::new("retry");
static RESYNC_MARK: StaticName = StaticName::new("resync");

/// Builds a fresh [`ShardChannel`] after a connection loss (typically:
/// dial the server, re-handshake, wrap in `RemoteShards`).
pub type ChannelFactory = Box<dyn FnMut() -> Result<Arc<dyn ShardChannel>, CommsError> + Send>;

/// Retry/backoff/degradation policy for [`SupervisedWorker`].
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Consecutive failed communication attempts tolerated before the
    /// worker falls back to local-only training.
    pub max_comms_failures: u32,
    /// First backoff delay; doubles per consecutive failure.
    pub backoff: Duration,
    /// Upper bound on the backoff delay.
    pub max_backoff: Duration,
    /// Re-derive `α = 1/quorum` from the heartbeat after each round, so a
    /// degraded ensemble keeps the paper's `α = 1/N` coupling with the
    /// *effective* N.
    pub adapt_alpha: bool,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_comms_failures: 5,
            backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            adapt_alpha: false,
        }
    }
}

/// How the supervised worker is currently training.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerMode {
    /// Participating in elastic-averaging rounds.
    Elastic,
    /// Comms budget exhausted: plain local steps, no reference traffic.
    LocalOnly,
}

/// What one supervised round did.
#[derive(Clone, Copy, Debug)]
pub struct RoundReport {
    /// Mean micro-batch loss of the step that was taken.
    pub loss: f32,
    /// Mode the step ran in.
    pub mode: WorkerMode,
    /// Server quorum view after the round (elastic mode with
    /// `adapt_alpha` only).
    pub quorum: Option<QuorumInfo>,
    /// Comms failures absorbed while completing this round.
    pub retries: u32,
}

/// An [`ElasticWorker`] wrapped in crash/retry supervision.
pub struct SupervisedWorker {
    worker: ElasticWorker,
    factory: ChannelFactory,
    cfg: SupervisorConfig,
    mode: WorkerMode,
    failures: u32,
    poisoned: bool,
}

impl SupervisedWorker {
    /// Wraps `worker`; `factory` produces replacement channels on
    /// reconnect.
    pub fn new(worker: ElasticWorker, factory: ChannelFactory, cfg: SupervisorConfig) -> Self {
        SupervisedWorker {
            worker,
            factory,
            cfg,
            mode: WorkerMode::Elastic,
            failures: 0,
            poisoned: false,
        }
    }

    /// Current training mode.
    pub fn mode(&self) -> WorkerMode {
        self.mode
    }

    /// The wrapped worker (e.g. for parameter inspection).
    pub fn worker(&self) -> &ElasticWorker {
        &self.worker
    }

    /// Completed elastic rounds of the wrapped worker.
    pub fn rounds_done(&self) -> u64 {
        self.worker.rounds_done()
    }

    /// One supervised training round on `batch`. In elastic mode this is
    /// [`ElasticWorker::round`] with retry/reconnect/resync on comms
    /// failure; past the failure budget it degrades to local-only steps.
    /// A panic inside the round poisons the worker permanently.
    pub fn round(&mut self, batch: &Batch) -> Result<RoundReport, Error> {
        if self.poisoned {
            return Err(Error::WorkerFailed {
                what: "worker is poisoned by an earlier panic".into(),
            });
        }
        if self.mode == WorkerMode::LocalOnly {
            let loss = self.local_round(batch)?;
            return Ok(RoundReport { loss, mode: WorkerMode::LocalOnly, quorum: None, retries: 0 });
        }
        let mut retries = 0u32;
        loop {
            let attempt = catch_unwind(AssertUnwindSafe(|| self.worker.round(batch)));
            match attempt {
                Err(panic) => {
                    self.poisoned = true;
                    return Err(Error::WorkerFailed { what: panic_what(panic.as_ref()) });
                }
                Ok(Ok(loss)) => {
                    self.failures = 0;
                    let quorum = if self.cfg.adapt_alpha {
                        let q = self.worker.heartbeat().ok();
                        if let Some(q) = q {
                            if q.quorum >= 1 {
                                self.worker.set_alpha(1.0 / q.quorum as f32);
                            }
                        }
                        q
                    } else {
                        None
                    };
                    return Ok(RoundReport { loss, mode: WorkerMode::Elastic, quorum, retries });
                }
                Ok(Err(e)) => {
                    self.failures += 1;
                    retries += 1;
                    ea_trace::instant(&RETRY_MARK, Category::Comm, self.failures as u64);
                    log_event!(
                        Warn,
                        "worker",
                        "round {} failed ({} consecutive): {e}",
                        self.worker.rounds_done(),
                        self.failures
                    );
                    if self.failures > self.cfg.max_comms_failures {
                        log_event!(
                            Error,
                            "worker",
                            "comms budget exhausted after {} failures; \
                             falling back to LOCAL-ONLY training",
                            self.failures
                        );
                        self.mode = WorkerMode::LocalOnly;
                        let loss = self.local_round(batch)?;
                        return Ok(RoundReport {
                            loss,
                            mode: WorkerMode::LocalOnly,
                            quorum: None,
                            retries,
                        });
                    }
                    std::thread::sleep(self.backoff_delay());
                    // Fresh connection + resync: the server may have
                    // completed rounds without us while we were away.
                    match (self.factory)() {
                        Ok(channel) => {
                            self.worker.reconnect(channel);
                            match self.worker.resync() {
                                Ok(round) => {
                                    ea_trace::instant(&RESYNC_MARK, Category::Comm, round);
                                    log_event!(
                                        Info,
                                        "worker",
                                        "reconnected; resynced to round {round}"
                                    )
                                }
                                Err(e) => log_event!(Warn, "worker", "resync failed: {e}"),
                            }
                        }
                        Err(e) => log_event!(Warn, "worker", "reconnect failed: {e}"),
                    }
                }
            }
        }
    }

    fn local_round(&mut self, batch: &Batch) -> Result<f32, Error> {
        match catch_unwind(AssertUnwindSafe(|| self.worker.local_step(batch))) {
            Ok(result) => result,
            Err(panic) => {
                self.poisoned = true;
                Err(Error::WorkerFailed { what: panic_what(panic.as_ref()) })
            }
        }
    }

    fn backoff_delay(&self) -> Duration {
        let exp = self.failures.saturating_sub(1).min(16);
        let delay = self.cfg.backoff.saturating_mul(1u32 << exp);
        delay.min(self.cfg.max_backoff)
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_what(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("worker panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("worker panicked: {s}")
    } else {
        "worker panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elastic::{LocalShards, RefShard};
    use ea_autograd::Stage;
    use ea_models::{gnmt_analogue, AnalogueConfig};
    use ea_optim::{OptKind, Optimizer};
    use ea_tensor::TensorRng;

    const CFG: AnalogueConfig =
        AnalogueConfig { vocab: 16, seq: 4, hidden: 8, blocks: 2, stages: 2 };

    fn stages(seed: u64) -> Vec<Stage> {
        gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(seed)).into_stages()
    }

    fn opts() -> Vec<Box<dyn Optimizer>> {
        (0..CFG.stages).map(|_| OptKind::Sgd { lr: 0.1 }.build()).collect()
    }

    fn fast_cfg(max_failures: u32) -> SupervisorConfig {
        SupervisorConfig {
            max_comms_failures: max_failures,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            adapt_alpha: false,
        }
    }

    /// A channel that fails every operation — an unreachable server.
    struct DeadChannel {
        n_shards: usize,
    }

    impl ShardChannel for DeadChannel {
        fn n_shards(&self) -> usize {
            self.n_shards
        }
        fn pull(&self, _: usize, _: usize, _: u64) -> Result<Vec<f32>, CommsError> {
            Err(CommsError::Closed)
        }
        fn submit(&self, _: usize, _: usize, _: u64, _: Vec<f32>) -> Result<(), CommsError> {
            Err(CommsError::Closed)
        }
        fn pull_latest(&self, _: usize, _: usize) -> Result<(u64, Vec<f32>), CommsError> {
            Err(CommsError::Closed)
        }
        fn heartbeat(&self, _: usize, _: u64) -> Result<QuorumInfo, CommsError> {
            Err(CommsError::Closed)
        }
    }

    /// A channel whose pull panics — simulates an internal worker bug.
    struct PanicChannel {
        n_shards: usize,
    }

    impl ShardChannel for PanicChannel {
        fn n_shards(&self) -> usize {
            self.n_shards
        }
        fn pull(&self, _: usize, _: usize, _: u64) -> Result<Vec<f32>, CommsError> {
            panic!("injected pull panic");
        }
        fn submit(&self, _: usize, _: usize, _: u64, _: Vec<f32>) -> Result<(), CommsError> {
            unreachable!()
        }
        fn pull_latest(&self, _: usize, _: usize) -> Result<(u64, Vec<f32>), CommsError> {
            unreachable!()
        }
        fn heartbeat(&self, _: usize, _: u64) -> Result<QuorumInfo, CommsError> {
            unreachable!()
        }
    }

    fn local_channel(seed: u64, n: usize) -> Arc<dyn ShardChannel> {
        let shards: Vec<Arc<RefShard>> =
            stages(seed).iter().map(|s| Arc::new(RefShard::new(s.params_flat(), n))).collect();
        Arc::new(LocalShards::new(shards))
    }

    #[test]
    fn healthy_worker_stays_elastic_and_reports_the_quorum() {
        let task = ea_data::SyntheticTask::copy_translate(16, 4, 9);
        let channel = local_channel(3, 1);
        let worker = ElasticWorker::new(stages(3), opts(), 2, 1.0, 0, channel.clone());
        let factory: ChannelFactory = Box::new(move || Ok(channel.clone()));
        let mut sup = SupervisedWorker::new(
            worker,
            factory,
            SupervisorConfig { adapt_alpha: true, ..fast_cfg(3) },
        );
        for r in 0..3 {
            let report = sup.round(&task.batch(4, r)).unwrap();
            assert_eq!(report.mode, WorkerMode::Elastic);
            assert_eq!(report.retries, 0);
            let q = report.quorum.unwrap();
            assert_eq!(q.quorum, 1);
            assert!(report.loss.is_finite());
        }
        assert_eq!(sup.rounds_done(), 3);
        assert_eq!(sup.worker().alpha(), 1.0, "adapt_alpha kept α = 1/quorum = 1");
    }

    #[test]
    fn unreachable_server_degrades_to_local_only_training() {
        let task = ea_data::SyntheticTask::copy_translate(16, 4, 10);
        let dead: Arc<dyn ShardChannel> = Arc::new(DeadChannel { n_shards: CFG.stages });
        let worker = ElasticWorker::new(stages(4), opts(), 2, 1.0, 0, dead.clone());
        let factory: ChannelFactory = Box::new(move || Ok(dead.clone()));
        let mut sup = SupervisedWorker::new(worker, factory, fast_cfg(2));
        let report = sup.round(&task.batch(4, 0)).unwrap();
        assert_eq!(report.mode, WorkerMode::LocalOnly, "budget exhausted → local fallback");
        assert!(report.retries >= 2);
        assert!(report.loss.is_finite());
        assert_eq!(sup.mode(), WorkerMode::LocalOnly);
        // Later rounds stay local and never touch the dead channel.
        let report = sup.round(&task.batch(4, 1)).unwrap();
        assert_eq!(report.mode, WorkerMode::LocalOnly);
        assert_eq!(report.retries, 0);
        assert_eq!(sup.rounds_done(), 0, "no elastic round ever completed");
    }

    #[test]
    fn panic_in_a_round_poisons_the_worker() {
        let task = ea_data::SyntheticTask::copy_translate(16, 4, 11);
        let panicky: Arc<dyn ShardChannel> = Arc::new(PanicChannel { n_shards: CFG.stages });
        let worker = ElasticWorker::new(stages(5), opts(), 2, 1.0, 0, panicky);
        let healthy = local_channel(5, 1);
        let factory: ChannelFactory = Box::new(move || Ok(healthy.clone()));
        let mut sup = SupervisedWorker::new(worker, factory, fast_cfg(3));
        match sup.round(&task.batch(4, 0)) {
            Err(Error::WorkerFailed { what }) => assert!(what.contains("injected pull panic")),
            other => panic!("expected WorkerFailed, got {other:?}"),
        }
        // Poisoned: fails fast forever after.
        match sup.round(&task.batch(4, 1)) {
            Err(Error::WorkerFailed { what }) => assert!(what.contains("poisoned")),
            other => panic!("expected poisoned WorkerFailed, got {other:?}"),
        }
    }

    #[test]
    fn transient_failure_recovers_through_reconnect_and_resync() {
        let task = ea_data::SyntheticTask::copy_translate(16, 4, 12);
        let healthy = local_channel(6, 1);
        // Start on a dead channel; the factory hands out the healthy one.
        let dead: Arc<dyn ShardChannel> = Arc::new(DeadChannel { n_shards: CFG.stages });
        let worker = ElasticWorker::new(stages(6), opts(), 2, 1.0, 0, dead);
        let factory: ChannelFactory = Box::new(move || Ok(healthy.clone()));
        let mut sup = SupervisedWorker::new(worker, factory, fast_cfg(5));
        let report = sup.round(&task.batch(4, 0)).unwrap();
        assert_eq!(report.mode, WorkerMode::Elastic, "reconnect recovered the round");
        assert_eq!(report.retries, 1);
        assert_eq!(sup.rounds_done(), 1);
    }
}
