//! Workspace-level integration surface: re-exports used by the integration tests and examples.
pub use avgpipe;

pub mod demo;
