//! Lock-free per-thread span rings and the process-wide drain.
//!
//! Each recording thread owns one fixed-capacity [`RawEvent`] ring; only
//! the owner writes, so pushes are wait-free (no CAS, no lock). Readers
//! drain concurrently through a per-slot sequence lock: a slot's
//! sequence number is odd while the owner rewrites it, and a reader
//! retries or skips any slot whose sequence changed under it. When the
//! ring wraps, the oldest events are overwritten — tracing favours
//! recency over completeness, like every flight recorder.
//!
//! Rings register themselves in a global registry on first use and stay
//! registered after their thread exits, so a pipeline's stage workers
//! can be drained after the pipeline is dropped.

use crate::clock;
use crate::level::spans_enabled;
use crate::name;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Events per thread ring. Power of two; at 48 B per slot a ring costs
/// ~400 KiB, and 8192 events cover several thousand micro-batches.
pub const RING_CAPACITY: usize = 8192;

/// What a span or event was doing, mapped onto the Chrome trace
/// categories used by `ea-sim` (`compute` / `comm`) plus `runtime` for
/// control-plane activity (rounds, leases, logging).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Category {
    /// Forward/backward/optimizer work on a device.
    Compute = 0,
    /// Bytes moving between stages or over the wire.
    Comm = 1,
    /// Control plane: round lifecycle, leases, logs.
    Runtime = 2,
}

impl Category {
    /// The Chrome trace `cat` string.
    pub fn as_str(self) -> &'static str {
        match self {
            Category::Compute => "compute",
            Category::Comm => "comm",
            Category::Runtime => "runtime",
        }
    }

    fn from_u8(v: u8) -> Category {
        match v {
            0 => Category::Compute,
            1 => Category::Comm,
            _ => Category::Runtime,
        }
    }
}

/// The fixed-size record a ring slot holds.
#[derive(Clone, Copy, Debug, Default)]
pub struct RawEvent {
    /// Interned name id ([`crate::name`]).
    pub name: u32,
    /// [`Category`] as a byte.
    pub cat: u8,
    /// Start (µs since the trace epoch).
    pub t0_us: u64,
    /// End (µs); equal to `t0_us` for instant events.
    pub t1_us: u64,
    /// Site-defined argument (micro index, byte count, round, …).
    pub arg: u64,
}

/// A decoded event from a drain, ready for export.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Span name.
    pub name: &'static str,
    /// Category.
    pub cat: Category,
    /// Name of the thread that recorded it.
    pub thread: String,
    /// Stable per-ring ordinal (Chrome `tid`).
    pub tid: u32,
    /// Start (µs since the trace epoch).
    pub t0_us: u64,
    /// End (µs).
    pub t1_us: u64,
    /// Site-defined argument.
    pub arg: u64,
}

impl TraceEvent {
    /// Duration in µs (zero for instant events).
    pub fn dur_us(&self) -> u64 {
        self.t1_us.saturating_sub(self.t0_us)
    }
}

struct Slot {
    /// Even = stable generation, odd = being written.
    seq: AtomicU32,
    ev: UnsafeCell<RawEvent>,
}

/// One thread's ring. Only the owning thread calls [`ThreadRing::push`];
/// any thread may snapshot.
pub struct ThreadRing {
    slots: Box<[Slot]>,
    /// Total events ever pushed; the write cursor is `head % capacity`.
    head: AtomicU64,
    thread: String,
    tid: u32,
}

// The UnsafeCell is protected by the per-slot seqlock.
unsafe impl Sync for ThreadRing {}
unsafe impl Send for ThreadRing {}

impl ThreadRing {
    fn new(thread: String, tid: u32) -> Self {
        let slots = (0..RING_CAPACITY)
            .map(|_| Slot { seq: AtomicU32::new(0), ev: UnsafeCell::new(RawEvent::default()) })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ThreadRing { slots, head: AtomicU64::new(0), thread, tid }
    }

    /// Records one event. Owner thread only.
    fn push(&self, ev: RawEvent) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h as usize) & (RING_CAPACITY - 1)];
        let seq = slot.seq.load(Ordering::Relaxed);
        // Mark the slot unstable, publish the write, mark it stable.
        slot.seq.store(seq.wrapping_add(1), Ordering::Release);
        unsafe { std::ptr::write(slot.ev.get(), ev) };
        slot.seq.store(seq.wrapping_add(2), Ordering::Release);
        self.head.store(h + 1, Ordering::Release);
    }

    /// Snapshots the ring's currently stable events, oldest first.
    /// Events overwritten or mid-write during the snapshot are skipped.
    fn snapshot(&self) -> Vec<RawEvent> {
        let head = self.head.load(Ordering::Acquire);
        let n = head.min(RING_CAPACITY as u64) as usize;
        let start = head - n as u64;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let slot = &self.slots[((start + i as u64) as usize) & (RING_CAPACITY - 1)];
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                continue; // being rewritten right now
            }
            let ev = unsafe { std::ptr::read_volatile(slot.ev.get()) };
            let s2 = slot.seq.load(Ordering::Acquire);
            if s1 == s2 {
                out.push(ev);
            }
        }
        out
    }
}

static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadRing>>>> = OnceLock::new();

fn registry() -> &'static Mutex<Vec<Arc<ThreadRing>>> {
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static RING: std::cell::OnceCell<Arc<ThreadRing>> = const { std::cell::OnceCell::new() };
}

fn with_ring(f: impl FnOnce(&ThreadRing)) {
    RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
            let tid = reg.len() as u32;
            let thread = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("thread{tid}"));
            let ring = Arc::new(ThreadRing::new(thread, tid));
            reg.push(ring.clone());
            ring
        });
        f(ring);
    });
}

/// Records an event into the calling thread's ring (no-op unless
/// `EA_TRACE=spans`).
#[inline]
pub fn record(ev: RawEvent) {
    if !spans_enabled() {
        return;
    }
    with_ring(|r| r.push(ev));
}

/// Drains every thread's ring into one decoded, time-sorted event list.
/// Concurrent recording is tolerated (torn slots are skipped); for an
/// exact cut, drain after the traced threads have quiesced.
pub fn drain() -> Vec<TraceEvent> {
    let rings: Vec<Arc<ThreadRing>> = registry().lock().unwrap_or_else(|e| e.into_inner()).clone();
    let mut out = Vec::new();
    for ring in rings {
        for ev in ring.snapshot() {
            out.push(TraceEvent {
                name: name::name_of(ev.name),
                cat: Category::from_u8(ev.cat),
                thread: ring.thread.clone(),
                tid: ring.tid,
                t0_us: ev.t0_us,
                t1_us: ev.t1_us,
                arg: ev.arg,
            });
        }
    }
    out.sort_by(|a, b| a.t0_us.cmp(&b.t0_us).then(a.tid.cmp(&b.tid)));
    out
}

/// Drops all recorded events (ring allocations are kept). Only sound
/// while no traced thread is mid-push; meant for test isolation and for
/// resetting between profiling windows.
pub fn clear() {
    let rings: Vec<Arc<ThreadRing>> = registry().lock().unwrap_or_else(|e| e.into_inner()).clone();
    for ring in rings {
        ring.head.store(0, Ordering::Release);
        for slot in ring.slots.iter() {
            slot.seq.store(0, Ordering::Release);
            unsafe { std::ptr::write(slot.ev.get(), RawEvent::default()) };
        }
    }
}

/// Records an instant event with the current timestamp.
pub fn record_instant(name_id: u32, cat: Category, arg: u64) {
    if !spans_enabled() {
        return;
    }
    let t = clock::now_us();
    record(RawEvent { name: name_id, cat: cat as u8, t0_us: t, t1_us: t, arg });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::{set_level, Level};
    use crate::name::intern;

    fn ev(name: u32, t: u64) -> RawEvent {
        RawEvent { name, cat: 0, t0_us: t, t1_us: t + 1, arg: t }
    }

    #[test]
    fn ring_returns_events_in_order() {
        let ring = ThreadRing::new("t".into(), 0);
        for i in 0..10 {
            ring.push(ev(1, i));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 10);
        for (i, e) in snap.iter().enumerate() {
            assert_eq!(e.t0_us, i as u64);
        }
    }

    #[test]
    fn wraparound_keeps_the_newest_events() {
        let ring = ThreadRing::new("t".into(), 0);
        let total = RING_CAPACITY as u64 + 100;
        for i in 0..total {
            ring.push(ev(1, i));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), RING_CAPACITY);
        // The oldest surviving event is `total - capacity`.
        assert_eq!(snap.first().unwrap().t0_us, total - RING_CAPACITY as u64);
        assert_eq!(snap.last().unwrap().t0_us, total - 1);
        // Order is preserved across the wrap.
        for w in snap.windows(2) {
            assert_eq!(w[1].t0_us, w[0].t0_us + 1);
        }
    }

    #[test]
    fn concurrent_drain_never_sees_torn_events() {
        let ring = Arc::new(ThreadRing::new("t".into(), 0));
        let writer = {
            let ring = ring.clone();
            std::thread::spawn(move || {
                for i in 0..200_000u64 {
                    // arg mirrors t0 so tearing is detectable.
                    ring.push(RawEvent { name: 7, cat: 0, t0_us: i, t1_us: i, arg: i });
                }
            })
        };
        for _ in 0..50 {
            for e in ring.snapshot() {
                assert_eq!(e.t0_us, e.arg, "torn slot observed");
                assert_eq!(e.name, 7);
            }
        }
        writer.join().unwrap();
    }

    #[test]
    fn record_respects_the_level_gate() {
        let _guard = crate::level::test_level_lock();
        let before = crate::level::level();
        set_level(Level::Off);
        let id = intern("gated-event");
        record(ev(id, 1));
        assert!(!drain().iter().any(|e| e.name == "gated-event"));
        set_level(Level::Spans);
        record(ev(id, 2));
        assert!(drain().iter().any(|e| e.name == "gated-event"));
        set_level(before);
    }
}
