//! Shape arithmetic for contiguous row-major tensors.

use std::fmt;

/// The dimensions of a tensor. Always row-major and contiguous.
///
/// A `Shape` owns a small vector of dimension sizes. Rank 0 (scalar) is
/// represented by an empty dimension list and has one element.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a dimension slice.
    pub fn new(dims: &[usize]) -> Self {
        Shape { dims: dims.to_vec() }
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of dimensions; 1 for scalars).
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Size of dimension `i`. Panics if out of range.
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }

    /// Interprets the shape as a matrix `[rows, cols]`, collapsing leading
    /// dimensions into rows. A rank-1 shape `[n]` is viewed as `[1, n]`.
    ///
    /// This is how every 2-D kernel in this crate accepts batched inputs:
    /// a `[batch, seq, hidden]` activation multiplies a `[hidden, out]`
    /// weight as a `[batch*seq, hidden]` matrix.
    pub fn as_matrix(&self) -> (usize, usize) {
        match self.dims.len() {
            0 => (1, 1),
            1 => (1, self.dims[0]),
            _ => {
                let cols = *self.dims.last().unwrap();
                if cols == 0 {
                    // `numel() / cols` is undefined here, but the row count
                    // is still the product of the leading dims — so a
                    // `[16, 0]` operand stays a 16-row, 0-column matrix
                    // instead of collapsing to (0, 0) and tripping the
                    // matmul inner-dimension check.
                    (self.dims[..self.dims.len() - 1].iter().product(), 0)
                } else {
                    (self.numel() / cols, cols)
                }
            }
        }
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0; self.dims.len()];
        let mut acc = 1;
        for (s, d) in strides.iter_mut().zip(self.dims.iter()).rev() {
            *s = acc;
            acc *= d;
        }
        strides
    }

    /// Flat offset of a multi-dimensional index. Panics on rank mismatch or
    /// out-of-bounds coordinates in debug builds.
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.dims.len(), "index rank mismatch");
        let mut off = 0;
        let mut acc = 1;
        for (i, d) in index.iter().zip(self.dims.iter()).rev() {
            debug_assert!(i < d, "index {i} out of bounds for dim {d}");
            off += i * acc;
            acc *= d;
        }
        off
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.numel(), 24);
        assert_eq!(Shape::new(&[]).numel(), 1);
    }

    #[test]
    fn as_matrix_collapses_leading_dims() {
        assert_eq!(Shape::new(&[2, 3, 4]).as_matrix(), (6, 4));
        assert_eq!(Shape::new(&[5, 7]).as_matrix(), (5, 7));
        assert_eq!(Shape::new(&[9]).as_matrix(), (1, 9));
        assert_eq!(Shape::new(&[]).as_matrix(), (1, 1));
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[6]).strides(), vec![1]);
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn offset_panics_on_rank_mismatch() {
        Shape::new(&[2, 3]).offset(&[1]);
    }
}
