//! Cluster hardware description.

use serde::{Deserialize, Serialize};

/// Which physical link a transfer crosses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkClass {
    /// Same device: stream-to-stream handoff, effectively free.
    Local,
    /// Same node, different GPU (PCIe/NVLink class).
    IntraNode,
    /// Different nodes (Ethernet class).
    InterNode,
}

/// Static description of the simulated cluster.
///
/// The default mirrors the paper's testbed: 3 nodes × 2 V100-SXM2 (32 GB),
/// 1 Gbps Ethernet between nodes. Peak FLOPS is scaled to represent
/// *achievable* mixed-precision-free FP32 throughput rather than the
/// marketing number.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of machines.
    pub nodes: usize,
    /// GPUs per machine.
    pub gpus_per_node: usize,
    /// Peak per-GPU throughput in FLOP/s.
    pub gpu_flops: f64,
    /// GPU memory capacity in bytes.
    pub gpu_mem_bytes: u64,
    /// Inter-node bandwidth in bytes/s (1 Gbps Ethernet ≈ 125 MB/s).
    pub inter_bw: f64,
    /// Inter-node latency in microseconds.
    pub inter_lat_us: f64,
    /// Intra-node bandwidth in bytes/s (PCIe class).
    pub intra_bw: f64,
    /// Intra-node latency in microseconds.
    pub intra_lat_us: f64,
    /// Optional per-device speed multipliers (empty = homogeneous). A
    /// value of 0.5 halves that device's throughput — used for straggler
    /// and heterogeneous-cluster studies.
    #[serde(default)]
    pub device_speed: Vec<f64>,
}

impl ClusterConfig {
    /// The paper's testbed: 3 nodes × 2 × V100 (32 GB), 1 Gbps Ethernet.
    pub fn paper_testbed() -> Self {
        ClusterConfig {
            nodes: 3,
            gpus_per_node: 2,
            gpu_flops: 14.0e12,
            gpu_mem_bytes: 32 * (1 << 30),
            inter_bw: 125.0e6,
            inter_lat_us: 100.0,
            intra_bw: 12.0e9,
            intra_lat_us: 10.0,
            device_speed: Vec::new(),
        }
    }

    /// The AWD setting: two nodes, four GPUs.
    pub fn paper_testbed_two_nodes() -> Self {
        ClusterConfig { nodes: 2, ..Self::paper_testbed() }
    }

    /// Total GPU count.
    pub fn num_devices(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// Node hosting a device.
    pub fn node_of(&self, device: usize) -> usize {
        device / self.gpus_per_node
    }

    /// Effective speed multiplier of a device (1.0 when unspecified).
    pub fn speed_of(&self, device: usize) -> f64 {
        self.device_speed.get(device).copied().unwrap_or(1.0)
    }

    /// Returns a copy with one device slowed to `factor` of its peak.
    pub fn with_straggler(mut self, device: usize, factor: f64) -> Self {
        assert!(factor > 0.0, "straggler factor must be positive");
        let n = self.num_devices();
        assert!(device < n, "device {device} out of range");
        if self.device_speed.len() < n {
            self.device_speed.resize(n, 1.0);
        }
        self.device_speed[device] = factor;
        self
    }

    /// Link class between two devices.
    pub fn link_class(&self, from: usize, to: usize) -> LinkClass {
        if from == to {
            LinkClass::Local
        } else if self.node_of(from) == self.node_of(to) {
            LinkClass::IntraNode
        } else {
            LinkClass::InterNode
        }
    }

    /// Transfer duration in microseconds for `bytes` over the given class
    /// (excluding queueing).
    pub fn transfer_us(&self, class: LinkClass, bytes: u64) -> f64 {
        match class {
            LinkClass::Local => 1.0,
            LinkClass::IntraNode => self.intra_lat_us + bytes as f64 / self.intra_bw * 1e6,
            LinkClass::InterNode => self.inter_lat_us + bytes as f64 / self.inter_bw * 1e6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_topology() {
        let c = ClusterConfig::paper_testbed();
        assert_eq!(c.num_devices(), 6);
        assert_eq!(c.node_of(0), 0);
        assert_eq!(c.node_of(1), 0);
        assert_eq!(c.node_of(2), 1);
        assert_eq!(c.link_class(0, 1), LinkClass::IntraNode);
        assert_eq!(c.link_class(1, 2), LinkClass::InterNode);
        assert_eq!(c.link_class(3, 3), LinkClass::Local);
    }

    #[test]
    fn ethernet_is_much_slower_than_pcie() {
        let c = ClusterConfig::paper_testbed();
        let bytes = 100 << 20; // 100 MB
        let eth = c.transfer_us(LinkClass::InterNode, bytes);
        let pcie = c.transfer_us(LinkClass::IntraNode, bytes);
        assert!(eth > 50.0 * pcie, "eth {eth} pcie {pcie}");
        // 100 MB over 125 MB/s ≈ 0.8 s.
        assert!((eth * 1e-6 - 0.839).abs() < 0.05, "eth seconds {}", eth * 1e-6);
    }
}

#[cfg(test)]
mod straggler_tests {
    use super::*;

    #[test]
    fn straggler_builder_sets_speed() {
        let c = ClusterConfig::paper_testbed().with_straggler(2, 0.5);
        assert_eq!(c.speed_of(2), 0.5);
        assert_eq!(c.speed_of(0), 1.0);
        assert_eq!(c.speed_of(5), 1.0);
    }

    #[test]
    #[should_panic]
    fn straggler_out_of_range_panics() {
        let _ = ClusterConfig::paper_testbed().with_straggler(99, 0.5);
    }
}
