//! `ea-comms`: the pluggable transport layer for multi-process elastic
//! averaging.
//!
//! The paper's Figure 6 runs each parallel pipeline and the reference
//! model in *separate processes*, shipping local updates asynchronously.
//! This crate supplies the missing communication substrate:
//!
//! * [`Transport`] / [`Listener`] — one ordered, message-framed,
//!   bidirectional connection per pipeline, behind a trait so backends are
//!   configuration, not architecture.
//! * [`loopback`] — in-process channels, zero serialization: messages move
//!   buffers by ownership, preserving the `ea_tensor::pool` zero-copy
//!   discipline end to end.
//! * [`tcp`] — length-prefixed binary frames (versioned header, CRC32
//!   payload check) over `std::net`, with connect/read timeouts, bounded
//!   exponential-backoff connect retry, and per-connection
//!   send/recv/retry/byte counters.
//! * [`wire`] — the elastic-averaging protocol: `Hello`/`HelloAck`
//!   version handshake, `PullRequest`/`PullReply` (Step ❷),
//!   `SubmitDelta`/`Ack` (Steps ❸–❹) with `(shard, round, pipe)`
//!   idempotency keys.
//! * [`fault`] — a seeded drop/delay/duplicate wrapper proving the
//!   retry + idempotency design keeps training byte-identical under loss,
//!   plus a round-scheduled chaos harness ([`ChaosConfig`]: crash, stall,
//!   partition) for the fault-tolerance tests.
//! * [`reactor`] — the nonblocking server core: an epoll event loop
//!   multiplexing every accepted connection across a small set of
//!   threads, with incremental zero-copy frame assembly into pooled
//!   buffers, write-side backpressure with slow-consumer eviction, and
//!   idle-timeout reaping. The client side is untouched — the reactor
//!   speaks the same `frame` + `wire` protocol.
//! * [`client`] — [`ShardClient`] (request/reply with bounded retry) and
//!   the [`ShardChannel`] abstraction the trainer runs against;
//!   `ea-runtime` provides the in-process implementation
//!   (`LocalShards`) and the `RefShardServer` that serves these messages.

pub(crate) mod bytepool;
pub mod client;
#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
pub(crate) mod conn;
pub mod fault;
pub mod frame;
pub mod loopback;
pub mod reactor;
#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
pub(crate) mod sys;
pub mod tcp;
pub(crate) mod trace;
pub mod transport;
pub mod wire;

pub use client::{QuorumInfo, RemoteShards, RetryConfig, ServerInfo, ShardChannel, ShardClient};
pub use fault::{ChaosConfig, FaultConfig, FaultStats, FaultyTransport};
pub use frame::{crc32, FrameError, PROTO_VERSION};
pub use loopback::{
    loopback_endpoint, loopback_pair, LoopbackHub, LoopbackListener, LoopbackTransport,
};
pub use reactor::{
    ConnId, DisconnectReason, Outbox, Reactor, ReactorConfig, ReactorHandler, ReactorWaker,
};
pub use tcp::{TcpConfig, TcpServer, TcpTransport};
pub use transport::{CommsError, Listener, Transport, TransportStats};
pub use wire::Message;
