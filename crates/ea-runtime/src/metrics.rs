//! Evaluation and epochs-to-target measurement (Figure 14).

use crate::Trainer;
use ea_autograd::cross_entropy_loss;
use ea_data::{accuracy, SyntheticTask};

/// Held-out evaluation of a trainer's model.
#[derive(Clone, Copy, Debug)]
pub struct EvalResult {
    /// Mean cross-entropy on held-out batches.
    pub loss: f64,
    /// Mean token accuracy.
    pub accuracy: f64,
}

/// Evaluates a model on `n_batches` held-out batches.
pub fn evaluate(
    trainer: &mut dyn Trainer,
    task: &SyntheticTask,
    batch_size: usize,
    n_batches: usize,
) -> EvalResult {
    let model = trainer.eval_model();
    let mut loss = 0.0;
    let mut acc = 0.0;
    for i in 0..n_batches {
        let b = task.eval_batch(batch_size, i as u64);
        let logits = model.forward_eval(&b.input);
        loss += cross_entropy_loss(&logits, &b.targets).loss as f64;
        acc += accuracy(&logits, &b.targets);
    }
    EvalResult { loss: loss / n_batches as f64, accuracy: acc / n_batches as f64 }
}

/// Result of an epochs-to-target run.
#[derive(Clone, Copy, Debug)]
pub struct EpochsToTarget {
    /// Epochs consumed before the target was met (fractional granularity
    /// of one evaluation interval), or `None` if never reached.
    pub epochs: Option<f64>,
    /// Final evaluation at stop time.
    pub final_eval: EvalResult,
    /// Total optimizer steps taken.
    pub steps: u64,
}

/// Trains until the held-out metric crosses `target` (accuracy ≥ target
/// if `by_accuracy`, else loss ≤ target), up to `max_epochs`.
///
/// One "epoch" is `batches_per_epoch` *consumed* batches — elastic
/// averaging consumes N per round, so a round advances the epoch counter
/// N times as fast, exactly like the paper's accounting (each parallel
/// pipeline sees its own data).
#[allow(clippy::too_many_arguments)]
pub fn epochs_to_target(
    trainer: &mut dyn Trainer,
    task: &SyntheticTask,
    batch_size: usize,
    batches_per_epoch: usize,
    max_epochs: usize,
    target: f64,
    by_accuracy: bool,
    eval_batches: usize,
) -> EpochsToTarget {
    let per_step = trainer.batches_per_step();
    let mut consumed = 0usize;
    let mut steps = 0u64;
    let mut next_data_index = 0u64;
    let total = batches_per_epoch * max_epochs;
    let eval_every = (batches_per_epoch / 4).max(per_step);
    let mut last = EvalResult { loss: f64::INFINITY, accuracy: 0.0 };
    let mut next_eval = eval_every;
    while consumed < total {
        let batch = task.batch(batch_size * per_step, next_data_index);
        next_data_index += 1;
        trainer.step(&batch);
        consumed += per_step;
        steps += 1;
        if consumed >= next_eval {
            next_eval += eval_every;
            last = evaluate(trainer, task, batch_size, eval_batches);
            let met = if by_accuracy { last.accuracy >= target } else { last.loss <= target };
            if met {
                return EpochsToTarget {
                    epochs: Some(consumed as f64 / batches_per_epoch as f64),
                    final_eval: last,
                    steps,
                };
            }
        }
    }
    EpochsToTarget { epochs: None, final_eval: last, steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyncTrainer;
    use ea_models::{gnmt_analogue, AnalogueConfig};
    use ea_optim::{OptKind, Optimizer};
    use ea_tensor::TensorRng;

    fn trainer(seed: u64) -> SyncTrainer {
        let cfg = AnalogueConfig { vocab: 16, seq: 4, hidden: 16, blocks: 2, stages: 2 };
        let model = gnmt_analogue(cfg, &mut TensorRng::seed_from_u64(seed));
        let opts: Vec<Box<dyn Optimizer>> =
            (0..2).map(|_| OptKind::Adam { lr: 2e-2 }.build()).collect();
        SyncTrainer::new(model, opts, 2)
    }

    #[test]
    fn untrained_model_scores_near_chance() {
        let mut t = trainer(1);
        let task = SyntheticTask::copy_translate(16, 4, 51);
        let e = evaluate(&mut t, &task, 8, 4);
        assert!(e.accuracy < 0.3, "untrained accuracy {}", e.accuracy);
        assert!(e.loss > 2.0, "untrained loss {}", e.loss);
    }

    #[test]
    fn reaches_accuracy_target_on_copy_task() {
        let mut t = trainer(2);
        let task = SyntheticTask::copy_translate(16, 4, 52);
        let r = epochs_to_target(&mut t, &task, 8, 40, 20, 0.9, true, 4);
        assert!(r.epochs.is_some(), "never reached target: {:?}", r.final_eval);
        assert!(r.final_eval.accuracy >= 0.9);
    }

    #[test]
    fn impossible_target_returns_none() {
        let mut t = trainer(3);
        let task = SyntheticTask::copy_translate(16, 4, 53);
        let r = epochs_to_target(&mut t, &task, 8, 10, 1, 0.0, false, 2);
        assert!(r.epochs.is_none());
        assert!(r.steps > 0);
    }
}
