//! End-to-end hot weight swap under live inference traffic.
//!
//! One reactor listener serves both protocols: a trainer drives elastic
//! rounds through `ShardClient` while inference clients hammer `Infer`
//! over the same port and a `WeightsSubscriber` (connected to that same
//! port) feeds round-boundary pushes into the engine. The assertions
//! are the serving system's core guarantees:
//!
//! * **Bit-exactness per version** — every reply must be bit-identical
//!   to a fresh forward pass through a reference model reconstructed
//!   from that version's reference-shard weights. Pre-swap replies
//!   match the initial weights; post-swap replies match the weights
//!   the elastic round actually produced.
//! * **Atomicity** — a reply claiming version `v` must match version
//!   `v`'s model *exactly*; a torn swap (stage 0 new, stage 1 old)
//!   would match neither version and fail the bitwise check. The
//!   background hammer thread keeps traffic in flight *during* the
//!   swap to give a torn read every chance to happen.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ea_comms::reactor::ReactorConfig;
use ea_comms::tcp::{TcpConfig, TcpTransport};
use ea_comms::{RetryConfig, ShardClient};
use ea_models::{gnmt_analogue, AnalogueConfig};
use ea_runtime::RefShardServer;
use ea_serve::{spawn_serving, InferClient, ServeConfig, ServeEngine, WeightsSubscriber};
use ea_tensor::{Tensor, TensorRng};

const CFG: AnalogueConfig = AnalogueConfig { vocab: 16, seq: 6, hidden: 8, blocks: 2, stages: 2 };
const SEED: u64 = 41;

fn model() -> ea_autograd::StagedModel {
    let mut rng = TensorRng::seed_from_u64(SEED);
    gnmt_analogue(CFG, &mut rng)
}

/// Token-id input for request `i`.
fn request_input(i: u64) -> Vec<f32> {
    (0..CFG.seq).map(|j| ((i as usize * 5 + j * 3) % CFG.vocab) as f32).collect()
}

/// Forward `input` through a model carrying `weights` (one flat vector
/// per stage), returning the logits.
fn reference_forward(weights: &[Vec<f32>], input: &[f32]) -> Vec<f32> {
    let mut m = model();
    for (k, w) in weights.iter().enumerate() {
        m.stage_mut(k).set_params_flat(w);
    }
    m.forward_eval(&Tensor::from_vec(input.to_vec(), &[input.len()])).into_vec()
}

fn assert_bits_eq(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{what}: element {i} differs ({g} vs {w})");
    }
}

#[test]
fn mid_traffic_hot_swap_is_atomic_and_bit_exact() {
    // The model being trained and served: two stages, one shard each.
    let trained = model();
    let init: Vec<Vec<f32>> =
        (0..trained.num_stages()).map(|k| trained.stage(k).params_flat()).collect();

    // Trainer-side reference shards, one pipeline (rounds complete on a
    // single submission per shard).
    let server = RefShardServer::from_initial_weights(init.clone(), 1);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();

    // Serving engine: double buffer of the same architecture + weights.
    let engine = ServeEngine::start(
        model(),
        model(),
        0,
        &ea_models::analogue_spec(CFG),
        ServeConfig {
            input_len: CFG.seq,
            max_coalesce_delay: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    );
    let reactor = spawn_serving(
        listener,
        ReactorConfig { threads: 2, ..ReactorConfig::default() },
        Arc::clone(&engine),
        &server,
    )
    .unwrap();
    let addr = reactor.local_addr();

    // The hot-swap feed subscribes over the same listener.
    let subscriber = WeightsSubscriber::spawn(addr, TcpConfig::default(), Arc::clone(&engine));

    // Background hammer: keeps requests in flight across the swap, and
    // records (version, input-id, output) for post-hoc verification.
    let stop = Arc::new(AtomicBool::new(false));
    let hammer = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = InferClient::connect(addr, TcpConfig::default()).unwrap();
            let mut log: Vec<(u64, u64, Vec<f32>)> = Vec::new();
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let outcome = client.infer(request_input(i)).unwrap();
                if !outcome.shed {
                    log.push((outcome.version, i, outcome.output));
                }
                i += 1;
            }
            log
        })
    };

    // Phase 1: the served version is 0; replies must match the initial
    // weights bitwise.
    let mut client = InferClient::connect(addr, TcpConfig::default()).unwrap();
    for i in 100..108u64 {
        let outcome = client.infer(request_input(i)).unwrap();
        assert!(!outcome.shed, "unloaded server must not shed");
        assert_eq!(outcome.version, 0);
        assert_bits_eq(
            &outcome.output,
            &reference_forward(&init, &request_input(i)),
            "pre-swap reply",
        );
    }

    // Phase 2: complete one elastic round — the trainer submits a delta
    // per shard, advancing every shard to version 1.
    {
        let conn = TcpTransport::connect(addr, TcpConfig::default()).unwrap();
        let retry = RetryConfig { reply_timeout: Duration::from_secs(5), max_attempts: 10 };
        let mut trainer = ShardClient::handshake(Box::new(conn), 0, retry).unwrap();
        for (shard, w) in init.iter().enumerate() {
            let delta: Vec<f32> = (0..w.len()).map(|j| 0.01 + (j % 7) as f32 * 1e-3).collect();
            trainer.pull(shard, 0).unwrap();
            trainer.submit(shard, 0, delta).unwrap();
        }
    }

    // The push propagates: subscriber → engine → snapshot swap.
    let deadline = Instant::now() + Duration::from_secs(10);
    while engine.served_version() < 1 {
        assert!(Instant::now() < deadline, "hot swap did not land");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Phase 3: post-swap replies must match the *trained* reference
    // weights — fresh forward through a model rebuilt from the shards.
    let new_weights: Vec<Vec<f32>> =
        server.shards().iter().map(|sh| sh.versioned_snapshot().1).collect();
    assert_ne!(new_weights[0], init[0], "round must have changed the reference");
    for i in 200..208u64 {
        let outcome = client.infer(request_input(i)).unwrap();
        assert!(!outcome.shed);
        assert_eq!(outcome.version, 1, "post-swap replies must serve version 1");
        assert_bits_eq(
            &outcome.output,
            &reference_forward(&new_weights, &request_input(i)),
            "post-swap reply",
        );
    }

    // The hammer ran across the swap: every logged reply must match its
    // claimed version's model exactly — a torn (mixed-stage) snapshot
    // matches neither and fails here.
    stop.store(true, Ordering::Relaxed);
    let log = hammer.join().unwrap();
    let mut versions_seen = std::collections::BTreeSet::new();
    for (version, i, output) in &log {
        versions_seen.insert(*version);
        let weights = match version {
            0 => &init,
            1 => &new_weights,
            v => panic!("reply claims unknown version {v}"),
        };
        assert_bits_eq(
            output,
            &reference_forward(weights, &request_input(*i)),
            &format!("hammer reply v{version} (request {i})"),
        );
    }
    assert!(!log.is_empty(), "hammer produced no traffic");
    assert!(versions_seen.contains(&1), "hammer never observed the swap");

    assert_eq!(engine.slo().swaps, 1);
    let m = server.metrics();
    assert_eq!(m.protocol_violations, 0);
    assert_eq!(m.crc_failures, 0);

    subscriber.stop();
    reactor.shutdown_graceful(Duration::from_secs(5));
    engine.shutdown();
}

/// Regression test: a remote `Infer` frame carrying values the model
/// cannot consume (out-of-vocabulary token ids, NaN, infinities) must be
/// answered with a `shed` reply — not panic the executor thread, which
/// would leave every later accepted request blocking forever and make
/// shutdown propagate the panic.
#[test]
fn malformed_remote_infer_is_shed_and_serving_survives() {
    let trained = model();
    let init: Vec<Vec<f32>> =
        (0..trained.num_stages()).map(|k| trained.stage(k).params_flat()).collect();
    let server = RefShardServer::from_initial_weights(init.clone(), 1);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let engine = ServeEngine::start(
        model(),
        model(),
        0,
        &ea_models::analogue_spec(CFG),
        ServeConfig {
            input_len: CFG.seq,
            max_coalesce_delay: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    );
    let reactor =
        spawn_serving(listener, ReactorConfig::default(), Arc::clone(&engine), &server).unwrap();
    let mut client = InferClient::connect(reactor.local_addr(), TcpConfig::default()).unwrap();

    // Every malformed shape the wire can carry: wrong length, token id
    // at/above vocab, negative id, NaN, infinity.
    let vocab = CFG.vocab as f32;
    let malformed: Vec<Vec<f32>> = vec![
        vec![0.0; CFG.seq - 1],
        {
            let mut v = request_input(0);
            v[0] = vocab;
            v
        },
        {
            let mut v = request_input(1);
            v[2] = -1.0;
            v
        },
        {
            let mut v = request_input(2);
            v[1] = f32::NAN;
            v
        },
        {
            let mut v = request_input(3);
            v[3] = f32::INFINITY;
            v
        },
    ];
    for (n, input) in malformed.into_iter().enumerate() {
        let outcome = client.infer(input).unwrap();
        assert!(outcome.shed, "malformed request {n} must be shed, not served");
        assert!(outcome.output.is_empty());
    }
    assert_eq!(engine.slo().shed, 5);

    // The executor survived: valid traffic on the same connection is
    // still served bit-exactly.
    for i in 0..4u64 {
        let outcome = client.infer(request_input(i)).unwrap();
        assert!(!outcome.shed, "valid request {i} shed after malformed traffic");
        assert_bits_eq(
            &outcome.output,
            &reference_forward(&init, &request_input(i)),
            "post-malformed reply",
        );
    }

    // Pre-fix this join panicked with "serving executor panicked".
    reactor.shutdown_graceful(Duration::from_secs(5));
    engine.shutdown();
}
