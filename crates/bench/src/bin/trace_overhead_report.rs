//! Overhead report for the ea-trace instrumentation: times the disabled
//! span gate directly, then real `train_step`s under `EA_TRACE` levels
//! off / counters / spans, and writes `BENCH_4.json`.
//!
//! Exits nonzero if the disabled gate costs more than a few nanoseconds
//! per site or if disabling tracing is measurably *slower* than running
//! with it on — the "near-zero overhead when disabled" contract of
//! DESIGN.md §15.
//!
//! ```text
//! cargo run -p bench --release --bin trace_overhead_report
//! cargo run -p bench --release --bin trace_overhead_report -- --steps 40
//! ```

use ea_data::SyntheticTask;
use ea_models::{gnmt_analogue, AnalogueConfig};
use ea_optim::{OptKind, Optimizer};
use ea_runtime::train_step;
use ea_tensor::TensorRng;
use ea_trace::{set_level, Category, Level, StaticName};
use std::time::Instant;

const CFG: AnalogueConfig = AnalogueConfig { vocab: 32, seq: 8, hidden: 32, blocks: 3, stages: 3 };

/// Ceiling for the disabled span site: one relaxed atomic load plus a
/// branch, with a wide margin for noisy shared CI runners.
const MAX_DISABLED_GATE_NS: f64 = 25.0;

/// Nanoseconds per call of a span site while recording is off.
fn disabled_gate_ns() -> f64 {
    static GATE: StaticName = StaticName::new("overhead-probe");
    set_level(Level::Off);
    let calls = 10_000_000u64;
    // Warm the level cache.
    for _ in 0..1000 {
        let _s = ea_trace::span(&GATE, Category::Compute);
    }
    let t0 = Instant::now();
    for _ in 0..calls {
        let _s = std::hint::black_box(ea_trace::span(&GATE, Category::Compute));
    }
    t0.elapsed().as_secs_f64() / calls as f64 * 1e9
}

/// Median per-step seconds of `steps` training steps at a trace level.
fn train_step_secs(level: Level, steps: usize) -> f64 {
    set_level(level);
    let mut model = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(0));
    let mut opts: Vec<Box<dyn Optimizer>> =
        (0..CFG.stages).map(|_| OptKind::Adam { lr: 1e-2 }.build()).collect();
    let task = SyntheticTask::copy_translate(32, 8, 1);
    let batch = task.batch(16, 0);
    let mut samples = Vec::with_capacity(steps);
    for step in 1..=steps as u64 {
        let t0 = Instant::now();
        std::hint::black_box(train_step(&mut model, &mut opts, &batch, 4, step));
        samples.push(t0.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let mut steps = 60usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--steps" => steps = args.next().expect("--steps value").parse().expect("integer"),
            other => panic!("unknown argument {other:?}"),
        }
    }

    println!("== ea-trace overhead report ==");
    let gate_ns = disabled_gate_ns();
    println!("  disabled span gate: {gate_ns:.2} ns/site");

    // Interleave level order so drift on a shared runner does not bias
    // one level; warm one run first to populate the buffer pool.
    train_step_secs(Level::Off, steps.min(10));
    let off = train_step_secs(Level::Off, steps);
    let counters = train_step_secs(Level::Counters, steps);
    let spans = train_step_secs(Level::Spans, steps);
    let off2 = train_step_secs(Level::Off, steps);
    set_level(Level::Off);
    let off_best = off.min(off2);
    println!(
        "  train_step  off {:.3} ms  counters {:.3} ms  spans {:.3} ms",
        off_best * 1e3,
        counters * 1e3,
        spans * 1e3
    );

    let json = format!(
        "{{\n  \"bench\": \"trace_overhead\",\n  \"steps\": {steps},\n  \"disabled_gate_ns\": {gate_ns:.3},\n  \"train_step_ms\": {{\"off\": {:.4}, \"counters\": {:.4}, \"spans\": {:.4}}},\n  \"spans_over_off\": {:.3}\n}}\n",
        off_best * 1e3,
        counters * 1e3,
        spans * 1e3,
        spans / off_best,
    );
    std::fs::write("BENCH_4.json", &json).expect("write BENCH_4.json");
    println!("  [saved BENCH_4.json]");

    let mut failed = false;
    if gate_ns > MAX_DISABLED_GATE_NS {
        eprintln!(
            "FAIL: disabled span gate costs {gate_ns:.2} ns/site (limit {MAX_DISABLED_GATE_NS})"
        );
        failed = true;
    }
    // Off must never lose to full span recording: with tracing disabled
    // the step should be at least as fast as with rings being written
    // (10% tolerance for runner noise).
    if off_best > spans * 1.10 {
        eprintln!(
            "FAIL: EA_TRACE=off train_step ({:.3} ms) is slower than EA_TRACE=spans ({:.3} ms)",
            off_best * 1e3,
            spans * 1e3
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
