//! Reactor-backed serving path for [`RefShardServer`]: the same protocol
//! logic as the thread-per-connection `serve_conn` loop, dispatched from
//! the `ea-comms` epoll event loop.
//!
//! Everything flows through the *same* [`handle`] function the blocking
//! server uses, so the two paths cannot drift: idempotency keys, version
//! echoes, membership touches, and error-to-metric mapping are shared
//! code. The one behavior the event loop cannot reuse is the *blocking*
//! reference pull (`weights_at_least` / `weights_within` park the calling
//! thread until the round completes — deadly on a reactor thread that
//! owns hundreds of other sockets). Those pulls are intercepted and
//! **parked**: the request is recorded, the callback returns, and the
//! reply is sent the moment a delta submission completes the round
//! (checked inline after every submit, so no polling latency lands on the
//! training critical path). In fault-tolerant mode a parked pull expires
//! after `FtConfig::pull_wait`, exactly like the blocking server's
//! `Ok(None)` — the client retransmits.
//!
//! Byte-exactness: arrival *order* of deltas never affects results —
//! [`RefShard`](crate::RefShard) folds a round's deltas in pipe order at
//! completion time — so multiplexing thousands of workers onto a few
//! event-loop threads yields bit-identical reference weights to the
//! thread-per-connection server and to a single-process run.

use std::collections::HashMap;
use std::io;
use std::net::TcpListener;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ea_comms::reactor::{ConnId, DisconnectReason, Outbox, Reactor, ReactorConfig, ReactorHandler};
use ea_comms::wire::Message;
use ea_comms::FrameError;
use ea_trace::log_event;

use crate::server::{handle, lookup, msg_pipe, touch, RefShardServer, ServerCtx};

/// A blocking pull deferred until its round completes (or expires).
struct Parked {
    conn: ConnId,
    shard: u32,
    version: u64,
    /// `Some` in fault-tolerant mode (`pull_wait` bound); `None` parks
    /// until satisfied, matching the blocking `weights_at_least`.
    deadline: Option<Instant>,
    /// Arrival time, for the `ea_server_pull_us` histogram.
    t0: Instant,
}

/// [`ReactorHandler`] adapter around [`RefShardServer`]'s shared state.
pub struct ReactorDispatch {
    ctx: Arc<ServerCtx>,
    /// Last self-identified pipeline per connection (lease renewal).
    pipes: Mutex<HashMap<ConnId, usize>>,
    parked: Mutex<Vec<Parked>>,
    /// Lock-free fast path: `has_deferred` and the post-submit check skip
    /// the `parked` lock entirely while nothing is parked.
    parked_count: AtomicUsize,
    /// Read-only weight subscribers (serving replicas): connection →
    /// shard → last published version. Entirely outside the lease
    /// machinery — a subscriber coming or going never affects quorum.
    subs: Mutex<HashMap<ConnId, HashMap<u32, u64>>>,
    /// Lock-free fast path mirroring `parked_count`, counting
    /// subscribed connections.
    subs_count: AtomicUsize,
}

impl ReactorDispatch {
    pub(crate) fn new(ctx: Arc<ServerCtx>) -> ReactorDispatch {
        ReactorDispatch {
            ctx,
            pipes: Mutex::new(HashMap::new()),
            parked: Mutex::new(Vec::new()),
            parked_count: AtomicUsize::new(0),
            subs: Mutex::new(HashMap::new()),
            subs_count: AtomicUsize::new(0),
        }
    }

    /// Whether a pull for `(shard, version)` can be answered without
    /// blocking (round already complete, or the latest-snapshot sentinel).
    fn pull_ready(&self, shard: u32, version: u64) -> bool {
        version == u64::MAX
            || lookup(&self.ctx.shards, shard).map_or(true, |sh| sh.version() >= version)
    }

    /// Sends replies for every parked pull whose round has since
    /// completed; expires overdue ones silently (client retransmits).
    fn complete_parked(&self, out: &mut Outbox) {
        if self.parked_count.load(Ordering::Acquire) == 0 {
            return;
        }
        let mut parked = self.parked.lock().expect("parked list poisoned");
        let now = Instant::now();
        parked.retain(|p| {
            let Ok(sh) = lookup(&self.ctx.shards, p.shard) else {
                return false;
            };
            if sh.version() >= p.version {
                let (actual, weights) = sh.weights_at_least(p.version);
                self.ctx.pull_us.record(p.t0.elapsed().as_micros() as u64);
                out.send(p.conn, Message::PullReply { shard: p.shard, version: actual, weights });
                false
            } else if p.deadline.is_some_and(|d| now >= d) {
                // Bounded wait expired: drop the request, exactly the
                // blocking server's `Ok(None)` — no reply is owed and the
                // client's retry (which renewed its lease) asks again.
                self.ctx.pull_us.record(p.t0.elapsed().as_micros() as u64);
                false
            } else {
                true
            }
        });
        self.parked_count.store(parked.len(), Ordering::Release);
    }

    /// Pushes a `WeightsUpdate` to every subscriber whose shard advanced
    /// past its last published version — the round-boundary hot-swap
    /// signal for serving replicas. Cheap when nothing advanced: one
    /// atomic load, then per-shard version compares under the subs lock.
    ///
    /// This runs on the reactor callback that completes a round, so it
    /// keeps the expensive part off the lock: each advanced shard is
    /// snapshotted **once** per call and shared across subscribers, and
    /// the per-subscriber weight copies happen outside the subs lock.
    fn publish_updates(&self, out: &mut Outbox) {
        if self.subs_count.load(Ordering::Acquire) == 0 {
            return;
        }
        // Pass 1 (subs lock, no copying): which subscribers lag which
        // shard?
        let lagging: Vec<(ConnId, u32)> = {
            let subs = self.subs.lock().expect("subs map poisoned");
            let mut lagging = Vec::new();
            for (shard_idx, sh) in self.ctx.shards.iter().enumerate() {
                let shard = shard_idx as u32;
                let current = sh.version();
                for (conn, per_shard) in subs.iter() {
                    if per_shard.get(&shard).is_some_and(|&last| last < current) {
                        lagging.push((*conn, shard));
                    }
                }
            }
            lagging
        };
        if lagging.is_empty() {
            return;
        }
        // One consistent snapshot per advanced shard, shared by every
        // lagging subscriber of that shard.
        let mut snaps: HashMap<u32, (u64, Vec<f32>)> = HashMap::new();
        for &(_, shard) in &lagging {
            snaps
                .entry(shard)
                .or_insert_with(|| self.ctx.shards[shard as usize].versioned_snapshot());
        }
        let mut sent = Vec::with_capacity(lagging.len());
        for (conn, shard) in lagging {
            let (version, weights) = &snaps[&shard];
            out.send(
                conn,
                Message::WeightsUpdate { shard, version: *version, weights: weights.clone() },
            );
            sent.push((conn, shard, *version));
        }
        // Record what was sent. A concurrent publish from another
        // reactor thread may have pushed (and recorded) a newer version
        // meanwhile — keep the max; a stale push is harmless because the
        // subscriber discards versions at or below what it serves.
        let mut subs = self.subs.lock().expect("subs map poisoned");
        for (conn, shard, version) in sent {
            if let Some(last) = subs.get_mut(&conn).and_then(|m| m.get_mut(&shard)) {
                *last = (*last).max(version);
            }
        }
    }
}

impl ReactorHandler for ReactorDispatch {
    fn on_message(&self, conn: ConnId, msg: Message, out: &mut Outbox) {
        let ctx = &self.ctx;
        // Lease renewal, identical to the per-connection loop: the first
        // self-identifying message names the pipe; every later message on
        // the connection renews that pipe's lease.
        let pipe = {
            let mut pipes = self.pipes.lock().expect("pipe map poisoned");
            if let Some(p) = msg_pipe(&msg) {
                if p < ctx.n_pipelines {
                    pipes.insert(conn, p);
                }
            }
            pipes.get(&conn).copied()
        };
        if let Some(p) = pipe {
            touch(ctx, p);
        }

        // Park pulls that would block the event loop.
        if let Message::PullRequest { shard, version } = msg {
            if !self.pull_ready(shard, version) {
                let deadline = ctx.pull_wait.map(|w| Instant::now() + w);
                let mut parked = self.parked.lock().expect("parked list poisoned");
                parked.push(Parked { conn, shard, version, deadline, t0: Instant::now() });
                self.parked_count.store(parked.len(), Ordering::Release);
                return;
            }
        }

        let was_submit = matches!(msg, Message::SubmitDelta { .. });
        let sub_shard =
            if let Message::SubscribeWeights { shard } = msg { Some(shard) } else { None };
        match handle(ctx, msg) {
            Ok(Some(reply)) => {
                // A subscription's immediate snapshot also registers the
                // connection for round-boundary pushes, seeded with the
                // version just sent so the next round triggers a push.
                if let (Some(shard), Message::WeightsUpdate { version, .. }) = (sub_shard, &reply) {
                    let mut subs = self.subs.lock().expect("subs map poisoned");
                    subs.entry(conn).or_default().insert(shard, *version);
                    self.subs_count.store(subs.len(), Ordering::Release);
                }
                out.send(conn, reply);
            }
            Ok(None) => {} // bounded pull expired inside handle()
            Err(e) => {
                ctx.metrics.inc_protocol_violations();
                log_event!(Warn, "refshard", "dropping conn (pipe {pipe:?}): {e}");
                out.close(conn, e.to_string());
                return;
            }
        }
        // A recorded submission may have completed a round: satisfy
        // parked pulls *now*, on the same callback, so round latency
        // never includes a poll interval — and push the new reference
        // snapshot to serving subscribers at the same boundary.
        if was_submit {
            self.complete_parked(out);
            self.publish_updates(out);
        }
    }

    fn on_disconnect(&self, conn: ConnId, reason: &DisconnectReason) {
        self.pipes.lock().expect("pipe map poisoned").remove(&conn);
        if self.parked_count.load(Ordering::Acquire) > 0 {
            let mut parked = self.parked.lock().expect("parked list poisoned");
            parked.retain(|p| p.conn != conn);
            self.parked_count.store(parked.len(), Ordering::Release);
        }
        if self.subs_count.load(Ordering::Acquire) > 0 {
            let mut subs = self.subs.lock().expect("subs map poisoned");
            subs.remove(&conn);
            self.subs_count.store(subs.len(), Ordering::Release);
        }
        // Same error→counter mapping as the blocking `serve_conn` loop.
        let m = &self.ctx.metrics;
        match reason {
            DisconnectReason::PeerClosed => m.inc_disconnects(),
            DisconnectReason::Frame(FrameError::BadCrc { .. }) => m.inc_crc_failures(),
            DisconnectReason::Frame(e) => {
                m.inc_protocol_violations();
                log_event!(Error, "refshard", "dropping conn: bad frame: {e}");
            }
            DisconnectReason::Io(e) => {
                m.inc_io_errors();
                log_event!(Error, "refshard", "dropping conn: receive failed: {e}");
            }
            DisconnectReason::SlowConsumer { queued_bytes } => {
                m.inc_slow_consumer_evictions();
                log_event!(
                    Warn,
                    "refshard",
                    "evicting slow consumer ({queued_bytes} bytes queued)"
                );
            }
            DisconnectReason::IdleTimeout => m.inc_idle_timeouts(),
            // Counted when the close was requested / initiated.
            DisconnectReason::HandlerClosed(_) | DisconnectReason::Shutdown => {}
        }
    }

    fn poll(&self, out: &mut Outbox) {
        // Covers rounds completed by the *reaper* (degraded quorum) and
        // pull_wait expiry — neither arrives via on_message. Subscribers
        // likewise need reaper-completed rounds pushed.
        self.complete_parked(out);
        self.publish_updates(out);
    }

    fn has_deferred(&self) -> bool {
        self.parked_count.load(Ordering::Acquire) > 0 || self.subs_count.load(Ordering::Acquire) > 0
    }

    fn on_shutdown(&self, out: &mut Outbox) {
        // Answer every parked pull whose round is ready; the rest are
        // dropped — no reply is owed and a surviving client's retry
        // logic treats it like a bounded-wait expiry.
        self.complete_parked(out);
        let mut parked = self.parked.lock().expect("parked list poisoned");
        parked.clear();
        self.parked_count.store(0, Ordering::Release);
        // Give subscribers one final consistent snapshot if a round
        // landed since their last push.
        drop(parked);
        self.publish_updates(out);
    }
}

impl RefShardServer {
    /// Serves `listener` on the `ea-comms` reactor: all connections
    /// multiplexed over `cfg.threads` event-loop threads instead of one
    /// thread each. Protocol semantics, metrics, and resulting reference
    /// weights are identical to [`serve_background`]; see the module docs
    /// for how blocking pulls are deferred.
    ///
    /// The returned [`Reactor`] serves until dropped or
    /// [`shutdown`](Reactor::shutdown).
    ///
    /// [`serve_background`]: RefShardServer::serve_background
    pub fn serve_reactor(&self, listener: TcpListener, cfg: ReactorConfig) -> io::Result<Reactor> {
        Reactor::spawn(listener, self.dispatch(), cfg)
    }

    /// A fresh [`ReactorDispatch`] over this server's shared state, for
    /// embedding in a *composite* [`ReactorHandler`] — e.g. an inference
    /// frontend that routes `Infer` to its own engine and delegates the
    /// whole trainer protocol (plus weight subscriptions) here. Every
    /// dispatch shares the underlying shards, membership, and metrics.
    pub fn dispatch(&self) -> Arc<ReactorDispatch> {
        Arc::new(ReactorDispatch::new(Arc::clone(&self.ctx)))
    }
}
