//! Shared per-workload experiment environment.

use ea_models::{ModelSpec, Workload};
use ea_sim::ClusterConfig;

/// Everything an experiment needs about one workload.
#[derive(Clone, Debug)]
pub struct WorkloadEnv {
    /// The workload.
    pub workload: Workload,
    /// Its cost model.
    pub spec: ModelSpec,
    /// The cluster it runs on (AWD uses two nodes, §7).
    pub cluster: ClusterConfig,
    /// Batch size from the paper.
    pub batch: usize,
    /// Optimizer state bytes per parameter (Adam = 8, ASGD = 4).
    pub opt_state_per_param: usize,
    /// Batches per epoch at the paper's dataset scale (WMT16 ≈ 4.5 M
    /// pairs, QQP ≈ 364 k pairs, PTB ≈ 930 k tokens / (seq × batch)).
    pub batches_per_epoch: u64,
}

/// Builds the paper's setup for a workload.
pub fn workload_env(w: Workload) -> WorkloadEnv {
    let spec = w.spec();
    let batch = spec.default_batch;
    let (cluster, opt_bytes, batches_per_epoch) = match w {
        Workload::Gnmt => (ClusterConfig::paper_testbed(), 8, 4_500_000 / batch as u64),
        Workload::Bert => (ClusterConfig::paper_testbed(), 8, 364_000 / batch as u64),
        Workload::Awd => {
            (ClusterConfig::paper_testbed_two_nodes(), 4, 930_000 / (70 * batch as u64))
        }
    };
    WorkloadEnv {
        workload: w,
        spec,
        cluster,
        batch,
        opt_state_per_param: opt_bytes,
        batches_per_epoch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envs_match_paper_setup() {
        let g = workload_env(Workload::Gnmt);
        assert_eq!(g.batch, 128);
        assert_eq!(g.cluster.num_devices(), 6);
        let a = workload_env(Workload::Awd);
        assert_eq!(a.batch, 40);
        assert_eq!(a.cluster.num_devices(), 4);
        assert!(a.batches_per_epoch > 100);
    }
}
