//! The profiling phase of the tuning method (§5.2.1).

use ea_models::ModelSpec;
use ea_sched::{pipeline_program, Partition, PipeStyle, PipelinePlan, WarmupPolicy};
use ea_sim::{ClusterConfig, Simulator, UtilTrace};

/// Per-GPU measurements from a profiling run, normalized per batch.
#[derive(Clone, Debug)]
pub struct DeviceProfile {
    /// Compute time per batch, `T_gpu` (µs).
    pub t_gpu_us: f64,
    /// Total communication service time per batch, `𝕋ᵏ` (µs).
    pub t_comm_total_us: f64,
    /// Model memory: weights + gradients + optimizer state + reference
    /// replica (bytes), `F_mod`.
    pub f_mod: u64,
    /// Data/activation memory at peak (bytes), `F_dat`.
    pub f_dat: u64,
    /// The utilization curve φᵏ(t) over the whole profiling run.
    pub trace: UtilTrace,
    /// Profiling-run horizon (µs), for normalizing trace integrals.
    pub horizon_us: f64,
}

/// The complete profile of one parallelism-degree setting.
#[derive(Clone, Debug)]
pub struct Profile {
    /// The workload being profiled (the predictor reads its demand curve
    /// and stash geometry).
    pub spec: ModelSpec,
    /// Samples per batch.
    pub batch: usize,
    /// Micro-batch count `m` used while profiling.
    pub m: usize,
    /// Pipeline count `n` used while profiling.
    pub n: usize,
    /// Batches simulated.
    pub batches: usize,
    /// Per-device measurements.
    pub per_device: Vec<DeviceProfile>,
    /// Wall time of the profiling run itself (µs of simulated time) —
    /// the tuning cost reported in Figure 18.
    pub profiling_cost_us: f64,
}

/// Runs profiling experiments against the cluster simulator.
pub struct Profiler {
    spec: ModelSpec,
    cluster: ClusterConfig,
    partition: Partition,
    batch: usize,
    opt_state_per_param: usize,
}

impl Profiler {
    /// A profiler for one workload on one cluster.
    pub fn new(
        spec: ModelSpec,
        cluster: ClusterConfig,
        partition: Partition,
        batch: usize,
        opt_state_per_param: usize,
    ) -> Self {
        Profiler { spec, cluster, partition, batch, opt_state_per_param }
    }

    /// The workload spec.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// The batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Builds the plan for a setting.
    pub fn plan(&self, m: usize, n_unused: usize) -> PipelinePlan {
        let _ = n_unused;
        PipelinePlan::new(
            self.spec.clone(),
            self.cluster.clone(),
            self.partition.clone(),
            self.batch,
            m,
            self.opt_state_per_param,
        )
    }

    /// Profiles setting `(m, n)` over `batches` batches using the AFAB
    /// schedule (the predictor reasons about AFAB; see §5.2.2). Following
    /// the paper, pick a large `m` and small `n` so no GPU saturates —
    /// [`Profiler::profile_default`] does this automatically.
    pub fn profile(&self, m: usize, n: usize, batches: usize) -> Profile {
        let plan = self.plan(m, n);
        let style = PipeStyle::avgpipe_with(n, WarmupPolicy::Afab);
        let prog = pipeline_program(&plan, &style, batches);
        let sim = Simulator::new(self.cluster.clone());
        let result = sim.run(&prog).expect("profiling run must execute");

        let kk = plan.stages();
        let per_device = (0..kk)
            .map(|k| {
                let d = &result.devices[k];
                // Model memory from the plan (deterministic); the rest of
                // the peak is data/activations.
                let f_mod = plan.stage_weight_footprint(k) * n as u64 + plan.stage_param_bytes(k); // reference replica
                let f_dat = d.peak_mem.saturating_sub(f_mod);
                DeviceProfile {
                    t_gpu_us: d.busy_us / batches as f64,
                    t_comm_total_us: d.total_comm_us / batches as f64,
                    f_mod,
                    f_dat,
                    trace: d.trace.clone(),
                    horizon_us: result.makespan_us,
                }
            })
            .collect();

        Profile {
            spec: self.spec.clone(),
            batch: self.batch,
            m,
            n,
            batches,
            per_device,
            profiling_cost_us: result.makespan_us,
        }
    }

    /// The paper's default profiling setting: one pipeline, `m` as large
    /// as possible (micro-batch of one sample) so utilization stays far
    /// from 100%, twenty batches.
    pub fn profile_default(&self) -> Profile {
        self.profile(self.batch, 1, 20)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_models::awd_spec;
    use ea_sched::partition_model;

    fn profiler() -> Profiler {
        let spec = awd_spec();
        let part = partition_model(&spec, 4);
        Profiler::new(spec, ClusterConfig::paper_testbed_two_nodes(), part, 40, 4)
    }

    #[test]
    fn profile_has_sane_shape() {
        let p = profiler().profile(8, 1, 4);
        assert_eq!(p.per_device.len(), 4);
        for d in &p.per_device {
            assert!(d.t_gpu_us > 0.0);
            assert!(d.f_mod > 0);
            assert!(d.horizon_us > 0.0);
        }
        // Interior devices both receive activations and gradients.
        assert!(p.per_device[1].t_comm_total_us > 0.0);
    }

    #[test]
    fn default_profile_keeps_utilization_low() {
        let prof = profiler();
        let p = prof.profile_default();
        for d in &p.per_device {
            let mean = d.trace.mean_over(d.horizon_us);
            assert!(mean < 0.9, "profiling setting must not saturate: {mean}");
        }
    }

    #[test]
    fn per_batch_numbers_scale_with_batches() {
        let prof = profiler();
        let p2 = prof.profile(8, 1, 2);
        let p6 = prof.profile(8, 1, 6);
        // Per-batch compute time is batch-count independent (±20% from
        // fill/drain amortization).
        for (a, b) in p2.per_device.iter().zip(&p6.per_device) {
            let ratio = a.t_gpu_us / b.t_gpu_us;
            assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
        }
    }
}
