//! Cross-validation of the analytic predictor (Equations 1–8) against
//! the discrete-event simulator: the tuner only needs the predictor to
//! *rank* settings correctly, so these tests measure ranking agreement,
//! memory-feasibility agreement, and monotonicity.

use avgpipe::{predict, Profiler};
use ea_models::{ModelSpec, Workload};
use ea_sched::{partition_model, pipeline_program, PipeStyle, PipelinePlan};
use ea_sim::{ClusterConfig, Simulator};

fn settings(batch: usize, max_n: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for m in (1..=batch).filter(|d| batch.is_multiple_of(*d)) {
        for n in 1..=max_n {
            out.push((m, n));
        }
    }
    out
}

fn env(w: Workload) -> (ModelSpec, ClusterConfig, usize, usize) {
    let spec = w.spec();
    let cluster = if w == Workload::Awd {
        ClusterConfig::paper_testbed_two_nodes()
    } else {
        ClusterConfig::paper_testbed()
    };
    let batch = spec.default_batch;
    let opt = if w == Workload::Awd { 4 } else { 8 };
    (spec, cluster, batch, opt)
}

/// Measures every setting two ways: predicted time and simulated time.
fn measure_both(w: Workload) -> Vec<((usize, usize), f64, f64)> {
    let (spec, cluster, batch, opt) = env(w);
    let kk = cluster.num_devices();
    let part = partition_model(&spec, kk);
    let profiler = Profiler::new(spec.clone(), cluster.clone(), part.clone(), batch, opt);
    let profile = profiler.profile_default();
    let sim = Simulator::new(cluster.clone());
    settings(batch, 3)
        .into_iter()
        .filter_map(|(m, n)| {
            let pred = predict(&profile, m, n).t_us;
            let plan =
                PipelinePlan::new(spec.clone(), cluster.clone(), part.clone(), batch, m, opt);
            let prog = pipeline_program(&plan, &PipeStyle::avgpipe(n, kk - 1), 4);
            let r = sim.run(&prog).ok()?;
            let measured = r.makespan_us / (4.0 * n as f64);
            Some(((m, n), pred, measured))
        })
        .collect()
}

/// Fraction of setting pairs ordered the same way by predictor and
/// simulator (Kendall-style concordance).
fn concordance(rows: &[((usize, usize), f64, f64)]) -> f64 {
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..rows.len() {
        for j in i + 1..rows.len() {
            let dp = rows[i].1 - rows[j].1;
            let dm = rows[i].2 - rows[j].2;
            // Skip near-ties in the measured ordering.
            if dm.abs() < 0.02 * rows[i].2.max(rows[j].2) {
                continue;
            }
            total += 1;
            if dp.signum() == dm.signum() {
                agree += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        agree as f64 / total as f64
    }
}

#[test]
fn predictor_ranks_settings_consistently_with_simulator() {
    for w in Workload::all() {
        let rows = measure_both(w);
        assert!(rows.len() >= 8, "{}: too few settings ran", w.name());
        let c = concordance(&rows);
        assert!(c >= 0.6, "{}: predictor/simulator concordance only {c:.2}", w.name());
        // The predictor's top pick is within 2× of the simulator's best.
        let best_pred = rows.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
        let best_meas = rows.iter().min_by(|a, b| a.2.total_cmp(&b.2)).unwrap();
        assert!(
            best_pred.2 <= best_meas.2 * 2.0,
            "{}: predicted-best {:?} measures {:.0}µs vs true best {:?} {:.0}µs",
            w.name(),
            best_pred.0,
            best_pred.2,
            best_meas.0,
            best_meas.2
        );
    }
}

#[test]
fn predicted_memory_is_monotone_in_n_and_antitone_in_m() {
    for w in Workload::all() {
        let (spec, cluster, batch, opt) = env(w);
        let part = partition_model(&spec, cluster.num_devices());
        let profiler = Profiler::new(spec, cluster, part, batch, opt);
        let profile = profiler.profile_default();
        let ms: Vec<usize> = (1..=batch).filter(|d| batch % d == 0).collect();
        for window in ms.windows(2) {
            let small = predict(&profile, window[0], 1);
            let large = predict(&profile, window[1], 1);
            // More micro-batches never increase the stage-0 footprint.
            assert!(
                large.per_device_mem[0] <= small.per_device_mem[0],
                "{}: M={} mem {} vs M={} mem {}",
                w.name(),
                window[1],
                large.per_device_mem[0],
                window[0],
                small.per_device_mem[0]
            );
        }
        for n in 1..4usize {
            let a = predict(&profile, batch, n);
            let b = predict(&profile, batch, n + 1);
            assert!(b.per_device_mem[0] > a.per_device_mem[0]);
        }
    }
}

#[test]
fn predicted_memory_brackets_simulated_memory() {
    // Predicted memory uses the 1F1B floor; the measured run at the same
    // floor depth must land within a modest factor.
    for w in [Workload::Gnmt, Workload::Awd] {
        let (spec, cluster, batch, opt) = env(w);
        let kk = cluster.num_devices();
        let part = partition_model(&spec, kk);
        let profiler = Profiler::new(spec.clone(), cluster.clone(), part.clone(), batch, opt);
        let profile = profiler.profile_default();
        let sim = Simulator::new(cluster.clone());
        for (m, n) in [(batch, 1), (batch / 2, 2)] {
            let pred = predict(&profile, m, n);
            let plan =
                PipelinePlan::new(spec.clone(), cluster.clone(), part.clone(), batch, m, opt);
            let prog = pipeline_program(&plan, &PipeStyle::avgpipe(n, kk - 1), 2);
            let r = sim.run(&prog).unwrap();
            for k in 0..kk {
                let p = pred.per_device_mem[k] as f64;
                let s = r.devices[k].peak_mem as f64;
                assert!(
                    p > 0.4 * s && p < 2.5 * s,
                    "{} (M={m},N={n}) device {k}: predicted {p:.2e} vs simulated {s:.2e}",
                    w.name()
                );
            }
        }
    }
}
