//! Precomputed per-stage quantities shared by all schedule generators.

use crate::Partition;
use ea_models::ModelSpec;
use ea_sim::ClusterConfig;

/// A fully-resolved pipeline execution plan: workload × cluster ×
/// partition × parallelism degrees `(M micro-batches, micro-batch size)`.
#[derive(Clone, Debug)]
pub struct PipelinePlan {
    /// The workload cost model.
    pub spec: ModelSpec,
    /// The cluster.
    pub cluster: ClusterConfig,
    /// Contiguous layer ranges per stage.
    pub partition: Partition,
    /// Samples per batch.
    pub batch: usize,
    /// Micro-batches per batch (the paper's `M`).
    pub micros: usize,
    /// Optimizer state bytes per parameter scalar (0 SGD, 8 Adam).
    pub opt_state_per_param: usize,
}

impl PipelinePlan {
    /// Builds a plan; `batch` must be divisible by `micros`.
    pub fn new(
        spec: ModelSpec,
        cluster: ClusterConfig,
        partition: Partition,
        batch: usize,
        micros: usize,
        opt_state_per_param: usize,
    ) -> Self {
        assert!(micros >= 1 && micros <= batch, "need 1 ≤ M ≤ batch");
        assert_eq!(batch % micros, 0, "batch {batch} not divisible by M {micros}");
        assert!(!partition.is_empty());
        PipelinePlan { spec, cluster, partition, batch, micros, opt_state_per_param }
    }

    /// Number of stages K.
    pub fn stages(&self) -> usize {
        self.partition.len()
    }

    /// Samples per micro-batch.
    pub fn micro_size(&self) -> usize {
        self.batch / self.micros
    }

    /// Compute demand (arithmetic intensity) of this micro-batch size.
    pub fn demand(&self) -> f64 {
        self.spec.demand(self.micro_size())
    }

    /// Parameter bytes of stage `k`.
    pub fn stage_param_bytes(&self, k: usize) -> u64 {
        let (p, _, _, _) = self.stage_cost(k);
        p
    }

    /// Parameter + gradient + optimizer-state bytes of stage `k` (one
    /// model replica).
    pub fn stage_weight_footprint(&self, k: usize) -> u64 {
        let p = self.stage_param_bytes(k);
        // value + grad + optimizer state.
        p + p + p / 4 * self.opt_state_per_param as u64
    }

    /// Forward FLOPs of one micro-batch on stage `k`.
    pub fn stage_fwd_flops(&self, k: usize) -> f64 {
        let (_, f, _, _) = self.stage_cost(k);
        f * self.micro_size() as f64
    }

    /// Backward FLOPs of one micro-batch on stage `k`.
    pub fn stage_bwd_flops(&self, k: usize) -> f64 {
        self.stage_fwd_flops(k) * self.spec.bwd_factor
    }

    /// Activation bytes stashed by stage `k` for one micro-batch.
    pub fn stage_stash_bytes(&self, k: usize) -> u64 {
        let (_, _, s, _) = self.stage_cost(k);
        s * self.micro_size() as u64
    }

    /// Bytes of the activation stage `k` sends downstream per micro-batch.
    pub fn stage_out_bytes(&self, k: usize) -> u64 {
        let (_, _, _, o) = self.stage_cost(k);
        o * self.micro_size() as u64
    }

    /// Bytes of the gradient stage `k` receives back per micro-batch
    /// (same size as its output activation).
    pub fn stage_grad_in_bytes(&self, k: usize) -> u64 {
        self.stage_out_bytes(k)
    }

    /// Optimizer-step FLOPs for stage `k` (a few ops per parameter).
    pub fn stage_opt_flops(&self, k: usize) -> f64 {
        (self.stage_param_bytes(k) / 4) as f64 * 4.0
    }

    fn stage_cost(&self, k: usize) -> (u64, f64, u64, u64) {
        let (lo, hi) = self.partition[k];
        self.spec.stage_cost(lo, hi)
    }

    /// Maps pipeline stage `k` to its device. Stages map one-to-one onto
    /// devices in order (the paper's placement).
    pub fn device_of_stage(&self, k: usize) -> usize {
        assert!(self.stages() <= self.cluster.num_devices());
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition_model;
    use ea_models::gnmt_spec;

    fn plan(m: usize) -> PipelinePlan {
        let spec = gnmt_spec();
        let part = partition_model(&spec, 6);
        PipelinePlan::new(spec, ClusterConfig::paper_testbed(), part, 128, m, 8)
    }

    #[test]
    fn micro_size_and_divisibility() {
        let p = plan(64);
        assert_eq!(p.micro_size(), 2);
        assert_eq!(p.stages(), 6);
    }

    #[test]
    #[should_panic]
    fn non_divisible_batch_rejected() {
        let spec = gnmt_spec();
        let part = partition_model(&spec, 6);
        PipelinePlan::new(spec, ClusterConfig::paper_testbed(), part, 128, 48, 8);
    }

    #[test]
    fn per_stage_costs_scale_with_micro_size() {
        let p2 = plan(64); // micro = 2
        let p4 = plan(32); // micro = 4
        for k in 0..6 {
            assert!((p4.stage_fwd_flops(k) / p2.stage_fwd_flops(k) - 2.0).abs() < 1e-9);
            assert_eq!(p4.stage_stash_bytes(k), 2 * p2.stage_stash_bytes(k));
            assert_eq!(p4.stage_out_bytes(k), 2 * p2.stage_out_bytes(k));
        }
    }

    #[test]
    fn weight_footprint_includes_optimizer() {
        let p = plan(64);
        let params = p.stage_param_bytes(0);
        // value + grad + Adam (8 B per scalar = 2× fp32 value bytes).
        assert_eq!(p.stage_weight_footprint(0), 4 * params);
    }

    #[test]
    fn smaller_micro_batches_have_lower_demand() {
        let p2 = plan(64);
        let p8 = plan(16);
        assert!(p2.demand() < p8.demand());
    }
}
