//! Metrics: counters, gauges, log-linear timing histograms, registries.
//!
//! Handles are cheap `Arc`-backed clones safe to share across threads;
//! recording is a handful of relaxed atomic operations, so metrics stay
//! on even when tracing is `off`. A [`Registry`] names a set of metrics
//! and renders them in the Prometheus text exposition format; the
//! process-wide [`global`] registry holds cross-cutting metrics (pool,
//! comms), while components with per-instance counters (one server per
//! test) own private registries.

use crate::clock;
use crate::level::counters_enabled;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh zero counter (standalone; registries create their own).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A gauge: a value that goes up and down.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh zero gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Log-linear histogram: 16 linear sub-buckets per power of two, like
// HdrHistogram. Relative quantile error is bounded by 1/16 ≈ 6%.

const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// Index of the last bucket a `u64` value can land in.
const N_BUCKETS: usize = (64 - SUB_BITS as usize) * SUB + SUB;

fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize; // ≥ SUB_BITS
        let shift = msb as u32 - SUB_BITS;
        let sub = ((v >> shift) & (SUB as u64 - 1)) as usize;
        (msb - SUB_BITS as usize + 1) * SUB + sub
    }
}

/// Inclusive `[lo, hi]` value range of bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < SUB {
        (i as u64, i as u64)
    } else {
        let major = (i / SUB) as u32; // ≥ 1
        let sub = (i % SUB) as u64;
        let shift = major - 1;
        let lo = (SUB as u64 + sub) << shift;
        (lo, lo + ((1u64 << shift) - 1))
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A concurrent log-linear-bucket histogram for timings (µs) or sizes.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        let h = &*self.0;
        h.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        h.count.fetch_add(1, Relaxed);
        h.sum.fetch_add(v, Relaxed);
        h.min.fetch_min(v, Relaxed);
        h.max.fetch_max(v, Relaxed);
    }

    /// Starts a timer that records its elapsed µs on drop; inert (no
    /// clock reads) unless `EA_TRACE` is at least `counters`.
    pub fn start_timer(&self) -> HistTimer {
        if !counters_enabled() {
            return HistTimer { hist: None, t0: 0 };
        }
        HistTimer { hist: Some(self.clone()), t0: clock::now_us() }
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let h = &*self.0;
        HistogramSnapshot {
            buckets: h.buckets.iter().map(|b| b.load(Relaxed)).collect(),
            count: h.count.load(Relaxed),
            sum: h.sum.load(Relaxed),
            min: h.min.load(Relaxed),
            max: h.max.load(Relaxed),
        }
    }
}

/// Times a scope into a [`Histogram`].
#[must_use = "a timer measures the scope it is bound to"]
pub struct HistTimer {
    hist: Option<Histogram>,
    t0: u64,
}

impl Drop for HistTimer {
    fn drop(&mut self) {
        if let Some(h) = self.hist.take() {
            h.record(clock::now_us().saturating_sub(self.t0));
        }
    }
}

/// A consistent-enough copy of a [`Histogram`] (relaxed reads).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Observation count.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q ∈ [0, 1]`, as the upper bound of the
    /// bucket holding that rank (≤ 1/16 relative error), clamped to the
    /// observed `[min, max]`. Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, hi) = bucket_bounds(i);
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another snapshot into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

// ---------------------------------------------------------------------------
// Registry.

type GaugeFn = Box<dyn Fn() -> i64 + Send + Sync>;

/// A named set of metrics, renderable as Prometheus text exposition.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    gauge_fns: Mutex<BTreeMap<String, GaugeFn>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        m.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        m.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        m.entry(name.to_string()).or_default().clone()
    }

    /// Registers a callback gauge sampled at render time — how
    /// components with their own atomics (the tensor pool) expose state
    /// without double-counting.
    pub fn register_gauge_fn(&self, name: &str, f: impl Fn() -> i64 + Send + Sync + 'static) {
        let mut m = self.gauge_fns.lock().unwrap_or_else(|e| e.into_inner());
        m.insert(name.to_string(), Box::new(f));
    }

    /// All counters as `(name, value)` pairs, name-sorted.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        let m = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        m.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// Renders every metric in the Prometheus text exposition format.
    /// Histograms render as summaries (p50/p95/p99 quantiles).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, c) in self.counters.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
        }
        for (name, g) in self.gauges.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.get()));
        }
        for (name, f) in self.gauge_fns.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", f()));
        }
        for (name, h) in self.histograms.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            let s = h.snapshot();
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                out.push_str(&format!("{name}{{quantile=\"{label}\"}} {}\n", s.percentile(q)));
            }
            out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", s.sum, s.count));
        }
        out
    }
}

/// The process-wide registry for cross-cutting metrics.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_do_arithmetic() {
        let r = Registry::new();
        let c = r.counter("c_total");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("c_total").get(), 5);
        let g = r.gauge("g");
        g.set(10);
        g.add(-3);
        assert_eq!(r.gauge("g").get(), 7);
    }

    #[test]
    fn bucket_index_and_bounds_are_inverse() {
        for v in (0u64..200).chain([1 << 20, u64::MAX / 2, u64::MAX]) {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "v={v} i={i} lo={lo} hi={hi}");
        }
        // Buckets tile the axis without gaps.
        for i in 0..N_BUCKETS - 1 {
            let (_, hi) = bucket_bounds(i);
            let (lo_next, _) = bucket_bounds(i + 1);
            assert_eq!(lo_next, hi + 1, "gap after bucket {i}");
        }
    }

    #[test]
    fn exact_percentiles_for_small_values() {
        // Values < 16 land in exact single-value buckets.
        let h = Histogram::new();
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.percentile(0.5), 5);
        assert_eq!(s.percentile(1.0), 10);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 10);
        assert!((s.mean() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn percentile_error_is_bounded() {
        let h = Histogram::new();
        for v in 0..10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        for (q, exact) in [(0.5, 5000.0), (0.95, 9500.0), (0.99, 9900.0)] {
            let got = s.percentile(q) as f64;
            assert!((got - exact).abs() <= exact / 16.0 + 1.0, "p{q}: got {got}, exact {exact}");
        }
    }

    #[test]
    fn empty_histogram_is_sane() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.percentile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn timer_is_inert_when_off() {
        let _guard = crate::level::test_level_lock();
        let before = crate::level::level();
        crate::level::set_level(crate::Level::Off);
        let h = Histogram::new();
        drop(h.start_timer());
        assert_eq!(h.snapshot().count, 0);
        crate::level::set_level(crate::Level::Counters);
        drop(h.start_timer());
        assert_eq!(h.snapshot().count, 1);
        crate::level::set_level(before);
    }

    #[test]
    fn prometheus_rendering_has_all_families() {
        let r = Registry::new();
        r.counter("requests_total").add(3);
        r.gauge("live").set(2);
        r.register_gauge_fn("sampled", || 9);
        r.histogram("latency_us").record(120);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE requests_total counter\nrequests_total 3\n"));
        assert!(text.contains("# TYPE live gauge\nlive 2\n"));
        assert!(text.contains("sampled 9\n"));
        assert!(text.contains("# TYPE latency_us summary\n"));
        assert!(text.contains("latency_us{quantile=\"0.5\"}"));
        assert!(text.contains("latency_us_count 1\n"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn values() -> impl Strategy<Value = Vec<u64>> {
        proptest::collection::vec(0u64..1_000_000_000, 1..200)
    }

    proptest! {
        #[test]
        fn percentile_is_monotone_and_bounded(vals in values()) {
            let h = Histogram::new();
            for &v in &vals { h.record(v); }
            let s = h.snapshot();
            let mut last = 0u64;
            for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
                let p = s.percentile(q);
                prop_assert!(p >= last, "quantiles must be monotone");
                prop_assert!(p >= s.min && p <= s.max);
                last = p;
            }
        }

        #[test]
        fn percentile_has_bounded_relative_error(vals in values()) {
            let h = Histogram::new();
            for &v in &vals { h.record(v); }
            let s = h.snapshot();
            let mut sorted = vals.clone();
            sorted.sort_unstable();
            for q in [0.5, 0.95, 0.99] {
                let rank = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
                let exact = sorted[rank] as f64;
                let got = s.percentile(q) as f64;
                // Log-linear buckets with 16 sub-buckets: ≤ 1/16 relative
                // error (plus 1 for integer edges).
                prop_assert!(
                    (got - exact).abs() <= exact / 16.0 + 1.0,
                    "q={} got={} exact={}", q, got, exact
                );
            }
        }

        #[test]
        fn merge_equals_recording_everything_in_one(a in values(), b in values()) {
            let ha = Histogram::new();
            for &v in &a { ha.record(v); }
            let hb = Histogram::new();
            for &v in &b { hb.record(v); }
            let hall = Histogram::new();
            for &v in a.iter().chain(&b) { hall.record(v); }
            let mut merged = ha.snapshot();
            merged.merge(&hb.snapshot());
            prop_assert_eq!(merged, hall.snapshot());
        }

        #[test]
        fn count_sum_min_max_are_exact(vals in values()) {
            let h = Histogram::new();
            for &v in &vals { h.record(v); }
            let s = h.snapshot();
            prop_assert_eq!(s.count, vals.len() as u64);
            prop_assert_eq!(s.sum, vals.iter().sum::<u64>());
            prop_assert_eq!(s.min, *vals.iter().min().unwrap());
            prop_assert_eq!(s.max, *vals.iter().max().unwrap());
        }
    }
}
