//! Process-wide traffic counters and trace marks for the transport layer.
//!
//! The per-connection [`crate::transport::TransportStats`] stay exact per
//! connection; these aggregate across every connection in the process and
//! land in `ea_trace::metrics::global()` so a Prometheus dump or Chrome
//! trace shows total wire traffic. Trace marks ("send"/"recv" instants
//! with byte counts, "retry" instants) are recorded only when spans are
//! enabled via `EA_TRACE=spans`; the counters are always live and cost
//! one relaxed atomic each.

use ea_trace::{Category, Counter, StaticName};
use std::sync::OnceLock;

static SEND_MARK: StaticName = StaticName::new("send");
static RECV_MARK: StaticName = StaticName::new("recv");
static RETRY_MARK: StaticName = StaticName::new("retry");

pub(crate) struct CommsCounters {
    frames_sent: Counter,
    frames_recvd: Counter,
    bytes_sent: Counter,
    bytes_recvd: Counter,
    retries: Counter,
}

pub(crate) fn counters() -> &'static CommsCounters {
    static COUNTERS: OnceLock<CommsCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let r = ea_trace::metrics::global();
        CommsCounters {
            frames_sent: r.counter("ea_comms_frames_sent_total"),
            frames_recvd: r.counter("ea_comms_frames_recvd_total"),
            bytes_sent: r.counter("ea_comms_bytes_sent_total"),
            bytes_recvd: r.counter("ea_comms_bytes_recvd_total"),
            retries: r.counter("ea_comms_retries_total"),
        }
    })
}

impl CommsCounters {
    /// One serialized frame written (`bytes` = header + payload + CRC).
    pub(crate) fn on_send(&self, bytes: u64) {
        self.frames_sent.inc();
        self.bytes_sent.add(bytes);
        ea_trace::instant(&SEND_MARK, Category::Comm, bytes);
    }

    /// One serialized frame read.
    pub(crate) fn on_recv(&self, bytes: u64) {
        self.frames_recvd.inc();
        self.bytes_recvd.add(bytes);
        ea_trace::instant(&RECV_MARK, Category::Comm, bytes);
    }

    /// One request retransmission (any backend).
    pub(crate) fn on_retry(&self) {
        self.retries.inc();
        ea_trace::instant(&RETRY_MARK, Category::Comm, 1);
    }
}
