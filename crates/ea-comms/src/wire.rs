//! The elastic-averaging wire protocol.
//!
//! Six message types carry the whole of Figure 6's pipeline↔reference
//! traffic:
//!
//! * [`Message::Hello`] / [`Message::HelloAck`] — version handshake. The
//!   client announces its protocol version and pipeline id; the server
//!   confirms and reports the shard/pipeline topology so a misconfigured
//!   worker fails fast instead of corrupting a round.
//! * [`Message::PullRequest`] / [`Message::PullReply`] — Step ❷: fetch the
//!   reference weights as of exactly `version` completed rounds. The reply
//!   echoes shard and version so retried requests can be matched and stale
//!   duplicates discarded.
//! * [`Message::SubmitDelta`] / [`Message::Ack`] — Steps ❸–❹: ship one
//!   pipeline's local update for a round. `(shard, round, pipe)` is the
//!   idempotency key: resubmissions of an already-recorded key are
//!   acknowledged with `duplicate = true` and otherwise ignored, which is
//!   what makes at-least-once retry safe.
//! * [`Message::Heartbeat`] / [`Message::HeartbeatAck`] — membership
//!   lease renewal. A worker beats between rounds; the ack reports the
//!   server's current round, the effective quorum (live member count) and
//!   the live-member bitmask, so a worker learns when the ensemble
//!   degraded and can renormalize its pull strength to `1/k`.
//! * [`Message::RoundInfoRequest`] / [`Message::RoundInfoReply`] — the
//!   per-round membership record: which pipelines' updates were folded
//!   into a given completed round and the quorum it was applied under.
//! * [`Message::MetricsRequest`] / [`Message::MetricsReply`] — remote
//!   read of the server's health counters, for dashboards and tests.
//!   The reply is a fixed array of counters in the server's snapshot
//!   field order; the transport layer stays ignorant of their meaning.
//!
//! The **serving extension** (tags 13–16) lets one reactor fleet carry
//! inference traffic next to the trainer protocol above:
//!
//! * [`Message::Infer`] / [`Message::InferReply`] — one inference
//!   request (flat input rows) and its output rows, matched on a
//!   client-chosen `id` so requests can be pipelined on one connection.
//!   A reply with `shed = true` carries no output: admission control
//!   rejected the request (bounded queue full) and the client should
//!   back off — precisely *not* the silent drop a retrying trainer
//!   tolerates.
//! * [`Message::SubscribeWeights`] / [`Message::WeightsUpdate`] — a
//!   **read-only** subscription to a reference shard: the server
//!   replies immediately with the current snapshot and pushes another
//!   `WeightsUpdate` at every elastic round boundary. Unlike `Hello`/
//!   `SubmitDelta`/`Heartbeat`, a subscription carries no pipeline id
//!   and never registers lease membership — an inference replica can
//!   come and go without ever stalling a training quorum.
//!
//! The extension is versioned by the frame header's `PROTO_VERSION`
//! plus tag range: a pre-serving peer rejects tags 13–16 as
//! `UnknownType` and closes, so mixed deployments fail loudly at the
//! first serving message instead of corrupting training state.
//!
//! Payload encoding is little-endian and fixed-layout; the flat `f32`
//! buffers use [`ea_optim::codec`] so decode lands in pooled storage.

use crate::frame::FrameError;
use ea_optim::codec::{decode_f32s_le, encode_f32s_le};

/// One protocol message.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Client → server: open a connection for pipeline `pipe`.
    Hello { proto: u16, pipe: u32 },
    /// Server → client: handshake accepted; topology follows.
    HelloAck { proto: u16, n_shards: u32, n_pipelines: u32 },
    /// Client → server: request shard weights at exactly `version`.
    PullRequest { shard: u32, version: u64 },
    /// Server → client: shard weights; `version` echoes the state the
    /// weights correspond to (may exceed the requested version for stale
    /// retries — the client discards mismatches).
    PullReply { shard: u32, version: u64, weights: Vec<f32> },
    /// Client → server: pipeline `pipe`'s local update for `round`.
    SubmitDelta { shard: u32, round: u64, pipe: u32, delta: Vec<f32> },
    /// Server → client: submission recorded (or recognized as a
    /// retransmission, `duplicate = true`).
    Ack { shard: u32, round: u64, pipe: u32, duplicate: bool },
    /// Client → server: lease renewal from pipeline `pipe`, which has
    /// completed `round` rounds.
    Heartbeat { pipe: u32, round: u64 },
    /// Server → client: lease renewed. `round` is the server's newest
    /// completed round across shards, `quorum` the number of live
    /// members, `members` the live-member bitmask (bit `p` = pipeline
    /// `p` holds a valid lease).
    HeartbeatAck { pipe: u32, round: u64, quorum: u32, members: u64 },
    /// Client → server: which pipelines contributed to `round` on
    /// `shard`?
    RoundInfoRequest { shard: u32, round: u64 },
    /// Server → client: the membership record of a completed round.
    /// `known = false` means the round has not completed yet or its
    /// record was evicted from the bounded history (quorum/members are
    /// zero then).
    RoundInfoReply { shard: u32, round: u64, quorum: u32, members: u64, known: bool },
    /// Client → server: dump the server's health counters.
    MetricsRequest,
    /// Server → client: counter values in `ServerMetricsSnapshot` field
    /// order (disconnects, protocol_violations, crc_failures, io_errors,
    /// heartbeats, evictions, rejoins, degraded_rounds, quorum_lost,
    /// checkpoints_saved, checkpoint_restores, slow_consumer_evictions,
    /// idle_timeouts).
    MetricsReply { counters: [u64; METRICS_COUNTERS] },
    /// Client → server: one inference request. `input` is the flat
    /// input rows in the served model's layout; `id` is echoed in the
    /// reply so requests can be pipelined on one connection.
    Infer { id: u64, input: Vec<f32> },
    /// Server → client: the output rows for request `id`, computed
    /// against reference `version`. `shed = true` means admission
    /// control rejected the request (queue full); `output` is empty.
    InferReply { id: u64, version: u64, shed: bool, output: Vec<f32> },
    /// Client → server: read-only subscription to `shard`'s reference
    /// weights. Carries no pipeline id and does **not** register lease
    /// membership. Answered immediately with the current snapshot, then
    /// pushed again at every round boundary.
    SubscribeWeights { shard: u32 },
    /// Server → client: pushed snapshot of `shard`'s reference weights
    /// as of `version` completed rounds.
    WeightsUpdate { shard: u32, version: u64, weights: Vec<f32> },
}

/// Number of counters carried by [`Message::MetricsReply`].
pub const METRICS_COUNTERS: usize = 13;

/// Wire tags, one per message type.
mod tag {
    pub const HELLO: u8 = 1;
    pub const HELLO_ACK: u8 = 2;
    pub const PULL_REQUEST: u8 = 3;
    pub const PULL_REPLY: u8 = 4;
    pub const SUBMIT_DELTA: u8 = 5;
    pub const ACK: u8 = 6;
    pub const HEARTBEAT: u8 = 7;
    pub const HEARTBEAT_ACK: u8 = 8;
    pub const ROUND_INFO_REQUEST: u8 = 9;
    pub const ROUND_INFO_REPLY: u8 = 10;
    pub const METRICS_REQUEST: u8 = 11;
    pub const METRICS_REPLY: u8 = 12;
    pub const INFER: u8 = 13;
    pub const INFER_REPLY: u8 = 14;
    pub const SUBSCRIBE_WEIGHTS: u8 = 15;
    pub const WEIGHTS_UPDATE: u8 = 16;
}

/// Highest wire tag currently assigned (tests sweep `1..=MAX_TAG`).
pub const MAX_TAG: u8 = tag::WEIGHTS_UPDATE;

impl Message {
    /// The frame tag for this message.
    pub fn wire_type(&self) -> u8 {
        match self {
            Message::Hello { .. } => tag::HELLO,
            Message::HelloAck { .. } => tag::HELLO_ACK,
            Message::PullRequest { .. } => tag::PULL_REQUEST,
            Message::PullReply { .. } => tag::PULL_REPLY,
            Message::SubmitDelta { .. } => tag::SUBMIT_DELTA,
            Message::Ack { .. } => tag::ACK,
            Message::Heartbeat { .. } => tag::HEARTBEAT,
            Message::HeartbeatAck { .. } => tag::HEARTBEAT_ACK,
            Message::RoundInfoRequest { .. } => tag::ROUND_INFO_REQUEST,
            Message::RoundInfoReply { .. } => tag::ROUND_INFO_REPLY,
            Message::MetricsRequest => tag::METRICS_REQUEST,
            Message::MetricsReply { .. } => tag::METRICS_REPLY,
            Message::Infer { .. } => tag::INFER,
            Message::InferReply { .. } => tag::INFER_REPLY,
            Message::SubscribeWeights { .. } => tag::SUBSCRIBE_WEIGHTS,
            Message::WeightsUpdate { .. } => tag::WEIGHTS_UPDATE,
        }
    }

    /// Short name for logs and errors.
    pub fn name(&self) -> &'static str {
        match self {
            Message::Hello { .. } => "Hello",
            Message::HelloAck { .. } => "HelloAck",
            Message::PullRequest { .. } => "PullRequest",
            Message::PullReply { .. } => "PullReply",
            Message::SubmitDelta { .. } => "SubmitDelta",
            Message::Ack { .. } => "Ack",
            Message::Heartbeat { .. } => "Heartbeat",
            Message::HeartbeatAck { .. } => "HeartbeatAck",
            Message::RoundInfoRequest { .. } => "RoundInfoRequest",
            Message::RoundInfoReply { .. } => "RoundInfoReply",
            Message::MetricsRequest => "MetricsRequest",
            Message::MetricsReply { .. } => "MetricsReply",
            Message::Infer { .. } => "Infer",
            Message::InferReply { .. } => "InferReply",
            Message::SubscribeWeights { .. } => "SubscribeWeights",
            Message::WeightsUpdate { .. } => "WeightsUpdate",
        }
    }

    /// Serializes the payload (frame body, excluding header/CRC) into
    /// `out`, which is cleared first.
    pub fn encode_payload(&self, out: &mut Vec<u8>) {
        out.clear();
        match self {
            Message::Hello { proto, pipe } => {
                out.extend_from_slice(&proto.to_le_bytes());
                out.extend_from_slice(&pipe.to_le_bytes());
            }
            Message::HelloAck { proto, n_shards, n_pipelines } => {
                out.extend_from_slice(&proto.to_le_bytes());
                out.extend_from_slice(&n_shards.to_le_bytes());
                out.extend_from_slice(&n_pipelines.to_le_bytes());
            }
            Message::PullRequest { shard, version } => {
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&version.to_le_bytes());
            }
            Message::PullReply { shard, version, weights } => {
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&version.to_le_bytes());
                encode_f32s_le(weights, out);
            }
            Message::SubmitDelta { shard, round, pipe, delta } => {
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&pipe.to_le_bytes());
                encode_f32s_le(delta, out);
            }
            Message::Ack { shard, round, pipe, duplicate } => {
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&pipe.to_le_bytes());
                out.push(u8::from(*duplicate));
            }
            Message::Heartbeat { pipe, round } => {
                out.extend_from_slice(&pipe.to_le_bytes());
                out.extend_from_slice(&round.to_le_bytes());
            }
            Message::HeartbeatAck { pipe, round, quorum, members } => {
                out.extend_from_slice(&pipe.to_le_bytes());
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&quorum.to_le_bytes());
                out.extend_from_slice(&members.to_le_bytes());
            }
            Message::RoundInfoRequest { shard, round } => {
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&round.to_le_bytes());
            }
            Message::RoundInfoReply { shard, round, quorum, members, known } => {
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&quorum.to_le_bytes());
                out.extend_from_slice(&members.to_le_bytes());
                out.push(u8::from(*known));
            }
            Message::MetricsRequest => {}
            Message::MetricsReply { counters } => {
                for c in counters {
                    out.extend_from_slice(&c.to_le_bytes());
                }
            }
            Message::Infer { id, input } => {
                out.extend_from_slice(&id.to_le_bytes());
                encode_f32s_le(input, out);
            }
            Message::InferReply { id, version, shed, output } => {
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&version.to_le_bytes());
                out.push(u8::from(*shed));
                encode_f32s_le(output, out);
            }
            Message::SubscribeWeights { shard } => {
                out.extend_from_slice(&shard.to_le_bytes());
            }
            Message::WeightsUpdate { shard, version, weights } => {
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&version.to_le_bytes());
                encode_f32s_le(weights, out);
            }
        }
    }

    /// Decodes a payload for frame tag `msg_type`.
    pub fn decode_payload(msg_type: u8, payload: &[u8]) -> Result<Message, FrameError> {
        let bad = |why: &str| FrameError::BadPayload(why.to_string());
        match msg_type {
            tag::HELLO => {
                let p = fixed::<6>(payload)?;
                Ok(Message::Hello { proto: le_u16(&p[0..2]), pipe: le_u32(&p[2..6]) })
            }
            tag::HELLO_ACK => {
                let p = fixed::<10>(payload)?;
                Ok(Message::HelloAck {
                    proto: le_u16(&p[0..2]),
                    n_shards: le_u32(&p[2..6]),
                    n_pipelines: le_u32(&p[6..10]),
                })
            }
            tag::PULL_REQUEST => {
                let p = fixed::<12>(payload)?;
                Ok(Message::PullRequest { shard: le_u32(&p[0..4]), version: le_u64(&p[4..12]) })
            }
            tag::PULL_REPLY => {
                if payload.len() < 12 {
                    return Err(bad("PullReply shorter than its fixed fields"));
                }
                let weights = decode_f32s_le(&payload[12..])
                    .map_err(|e| FrameError::BadPayload(e.to_string()))?;
                Ok(Message::PullReply {
                    shard: le_u32(&payload[0..4]),
                    version: le_u64(&payload[4..12]),
                    weights,
                })
            }
            tag::SUBMIT_DELTA => {
                if payload.len() < 16 {
                    return Err(bad("SubmitDelta shorter than its fixed fields"));
                }
                let delta = decode_f32s_le(&payload[16..])
                    .map_err(|e| FrameError::BadPayload(e.to_string()))?;
                Ok(Message::SubmitDelta {
                    shard: le_u32(&payload[0..4]),
                    round: le_u64(&payload[4..12]),
                    pipe: le_u32(&payload[12..16]),
                    delta,
                })
            }
            tag::ACK => {
                let p = fixed::<17>(payload)?;
                let dup = match p[16] {
                    0 => false,
                    1 => true,
                    _ => return Err(bad("Ack duplicate flag out of range")),
                };
                Ok(Message::Ack {
                    shard: le_u32(&p[0..4]),
                    round: le_u64(&p[4..12]),
                    pipe: le_u32(&p[12..16]),
                    duplicate: dup,
                })
            }
            tag::HEARTBEAT => {
                let p = fixed::<12>(payload)?;
                Ok(Message::Heartbeat { pipe: le_u32(&p[0..4]), round: le_u64(&p[4..12]) })
            }
            tag::HEARTBEAT_ACK => {
                let p = fixed::<24>(payload)?;
                Ok(Message::HeartbeatAck {
                    pipe: le_u32(&p[0..4]),
                    round: le_u64(&p[4..12]),
                    quorum: le_u32(&p[12..16]),
                    members: le_u64(&p[16..24]),
                })
            }
            tag::ROUND_INFO_REQUEST => {
                let p = fixed::<12>(payload)?;
                Ok(Message::RoundInfoRequest { shard: le_u32(&p[0..4]), round: le_u64(&p[4..12]) })
            }
            tag::ROUND_INFO_REPLY => {
                let p = fixed::<25>(payload)?;
                let known = match p[24] {
                    0 => false,
                    1 => true,
                    _ => return Err(bad("RoundInfoReply known flag out of range")),
                };
                Ok(Message::RoundInfoReply {
                    shard: le_u32(&p[0..4]),
                    round: le_u64(&p[4..12]),
                    quorum: le_u32(&p[12..16]),
                    members: le_u64(&p[16..24]),
                    known,
                })
            }
            tag::METRICS_REQUEST => {
                fixed::<0>(payload)?;
                Ok(Message::MetricsRequest)
            }
            tag::METRICS_REPLY => {
                let p = fixed::<{ METRICS_COUNTERS * 8 }>(payload)?;
                let mut counters = [0u64; METRICS_COUNTERS];
                for (i, c) in counters.iter_mut().enumerate() {
                    *c = le_u64(&p[i * 8..i * 8 + 8]);
                }
                Ok(Message::MetricsReply { counters })
            }
            tag::INFER => {
                if payload.len() < 8 {
                    return Err(bad("Infer shorter than its fixed fields"));
                }
                let input = decode_f32s_le(&payload[8..])
                    .map_err(|e| FrameError::BadPayload(e.to_string()))?;
                Ok(Message::Infer { id: le_u64(&payload[0..8]), input })
            }
            tag::INFER_REPLY => {
                if payload.len() < 17 {
                    return Err(bad("InferReply shorter than its fixed fields"));
                }
                let shed = match payload[16] {
                    0 => false,
                    1 => true,
                    _ => return Err(bad("InferReply shed flag out of range")),
                };
                let output = decode_f32s_le(&payload[17..])
                    .map_err(|e| FrameError::BadPayload(e.to_string()))?;
                Ok(Message::InferReply {
                    id: le_u64(&payload[0..8]),
                    version: le_u64(&payload[8..16]),
                    shed,
                    output,
                })
            }
            tag::SUBSCRIBE_WEIGHTS => {
                let p = fixed::<4>(payload)?;
                Ok(Message::SubscribeWeights { shard: le_u32(&p[0..4]) })
            }
            tag::WEIGHTS_UPDATE => {
                if payload.len() < 12 {
                    return Err(bad("WeightsUpdate shorter than its fixed fields"));
                }
                let weights = decode_f32s_le(&payload[12..])
                    .map_err(|e| FrameError::BadPayload(e.to_string()))?;
                Ok(Message::WeightsUpdate {
                    shard: le_u32(&payload[0..4]),
                    version: le_u64(&payload[4..12]),
                    weights,
                })
            }
            other => Err(FrameError::UnknownType(other)),
        }
    }

    /// Approximate payload size in bytes, for counters and buffer sizing.
    pub fn payload_len(&self) -> usize {
        match self {
            Message::Hello { .. } => 6,
            Message::HelloAck { .. } => 10,
            Message::PullRequest { .. } => 12,
            Message::PullReply { weights, .. } => 12 + 4 * weights.len(),
            Message::SubmitDelta { delta, .. } => 16 + 4 * delta.len(),
            Message::Ack { .. } => 17,
            Message::Heartbeat { .. } => 12,
            Message::HeartbeatAck { .. } => 24,
            Message::RoundInfoRequest { .. } => 12,
            Message::RoundInfoReply { .. } => 25,
            Message::MetricsRequest => 0,
            Message::MetricsReply { .. } => METRICS_COUNTERS * 8,
            Message::Infer { input, .. } => 8 + 4 * input.len(),
            Message::InferReply { output, .. } => 17 + 4 * output.len(),
            Message::SubscribeWeights { .. } => 4,
            Message::WeightsUpdate { weights, .. } => 12 + 4 * weights.len(),
        }
    }
}

fn fixed<const N: usize>(payload: &[u8]) -> Result<[u8; N], FrameError> {
    payload.try_into().map_err(|_| {
        FrameError::BadPayload(format!("expected {N}-byte payload, got {}", payload.len()))
    })
}

fn le_u16(b: &[u8]) -> u16 {
    u16::from_le_bytes(b.try_into().unwrap())
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b.try_into().unwrap())
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b.try_into().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let mut payload = Vec::new();
        msg.encode_payload(&mut payload);
        assert_eq!(payload.len(), msg.payload_len(), "{} size", msg.name());
        let back = Message::decode_payload(msg.wire_type(), &payload).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn every_message_type_roundtrips() {
        roundtrip(Message::Hello { proto: 1, pipe: 3 });
        roundtrip(Message::HelloAck { proto: 1, n_shards: 4, n_pipelines: 2 });
        roundtrip(Message::PullRequest { shard: 2, version: u64::MAX - 1 });
        roundtrip(Message::PullReply { shard: 0, version: 7, weights: vec![1.5, -2.25, 0.0] });
        roundtrip(Message::SubmitDelta { shard: 1, round: 9, pipe: 1, delta: vec![0.125; 65] });
        roundtrip(Message::Ack { shard: 1, round: 9, pipe: 1, duplicate: true });
        roundtrip(Message::Ack { shard: 0, round: 0, pipe: 0, duplicate: false });
        roundtrip(Message::Heartbeat { pipe: 3, round: 17 });
        roundtrip(Message::HeartbeatAck { pipe: 3, round: 17, quorum: 2, members: 0b101 });
        roundtrip(Message::RoundInfoRequest { shard: 1, round: 5 });
        roundtrip(Message::RoundInfoReply {
            shard: 1,
            round: 5,
            quorum: 3,
            members: 0b1011,
            known: true,
        });
        roundtrip(Message::RoundInfoReply {
            shard: 0,
            round: 0,
            quorum: 0,
            members: 0,
            known: false,
        });
        roundtrip(Message::MetricsRequest);
        let mut counters = [0u64; METRICS_COUNTERS];
        for (i, c) in counters.iter_mut().enumerate() {
            *c = (i as u64 + 1) * 1000 + u64::from(i == 4) * u64::from(u32::MAX);
        }
        roundtrip(Message::MetricsReply { counters });
        roundtrip(Message::Infer { id: 77, input: vec![0.5, -1.5, 3.0] });
        roundtrip(Message::InferReply { id: 77, version: 12, shed: false, output: vec![9.0; 7] });
        roundtrip(Message::InferReply { id: 78, version: 12, shed: true, output: vec![] });
        roundtrip(Message::SubscribeWeights { shard: 3 });
        roundtrip(Message::WeightsUpdate { shard: 3, version: 41, weights: vec![0.25; 33] });
    }

    #[test]
    fn empty_weight_vectors_roundtrip() {
        roundtrip(Message::PullReply { shard: 0, version: 0, weights: vec![] });
        roundtrip(Message::SubmitDelta { shard: 0, round: 0, pipe: 0, delta: vec![] });
        roundtrip(Message::Infer { id: 0, input: vec![] });
        roundtrip(Message::WeightsUpdate { shard: 0, version: 0, weights: vec![] });
    }

    #[test]
    fn short_payloads_are_rejected() {
        // Tag 11 (MetricsRequest) expects exactly zero bytes, so even it
        // must reject a 3-byte payload.
        for ty in 1..=MAX_TAG {
            let err = Message::decode_payload(ty, &[0u8; 3]);
            assert!(err.is_err(), "type {ty} accepted a 3-byte payload");
        }
    }

    #[test]
    fn ragged_weight_bytes_are_rejected() {
        let msg = Message::PullReply { shard: 0, version: 1, weights: vec![1.0, 2.0] };
        let mut payload = Vec::new();
        msg.encode_payload(&mut payload);
        payload.pop(); // 4k+3 bytes of weights
        assert!(matches!(
            Message::decode_payload(msg.wire_type(), &payload),
            Err(FrameError::BadPayload(_))
        ));
    }

    #[test]
    fn unknown_type_is_rejected() {
        assert_eq!(Message::decode_payload(0, &[]), Err(FrameError::UnknownType(0)));
        assert_eq!(Message::decode_payload(42, &[]), Err(FrameError::UnknownType(42)));
    }

    #[test]
    fn ack_flag_out_of_range_is_rejected() {
        let msg = Message::Ack { shard: 0, round: 0, pipe: 0, duplicate: false };
        let mut payload = Vec::new();
        msg.encode_payload(&mut payload);
        payload[16] = 2;
        assert!(Message::decode_payload(tag::ACK, &payload).is_err());
    }

    #[test]
    fn infer_reply_shed_flag_out_of_range_is_rejected() {
        let msg = Message::InferReply { id: 1, version: 2, shed: false, output: vec![1.0] };
        let mut payload = Vec::new();
        msg.encode_payload(&mut payload);
        payload[16] = 2;
        assert!(Message::decode_payload(tag::INFER_REPLY, &payload).is_err());
    }

    #[test]
    fn round_info_known_flag_out_of_range_is_rejected() {
        let msg =
            Message::RoundInfoReply { shard: 0, round: 0, quorum: 0, members: 0, known: false };
        let mut payload = Vec::new();
        msg.encode_payload(&mut payload);
        payload[24] = 2;
        assert!(Message::decode_payload(tag::ROUND_INFO_REPLY, &payload).is_err());
    }
}
