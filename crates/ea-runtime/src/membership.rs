//! Lease-based liveness tracking for the reference-shard server.
//!
//! Every pipeline holds a *lease* renewed by any message it sends
//! (heartbeats exist for workers with nothing else to say). The server's
//! reaper thread periodically calls [`Membership::reap`]; a pipeline
//! whose lease has lapsed is reported exactly once so the caller can
//! evict it from the shard quorums. A message from a dead pipeline
//! revives it ([`Membership::join`]), which the caller turns into a
//! shard-level readmission at the next round boundary.

use parking_lot::Mutex;
use std::time::{Duration, Instant};

struct Member {
    last_beat: Instant,
    live: bool,
}

/// Liveness of the N pipelines, under one lease duration.
pub struct Membership {
    lease: Duration,
    state: Mutex<Vec<Member>>,
}

impl Membership {
    /// All `n` pipelines start live, with fresh leases.
    pub fn new(n: usize, lease: Duration) -> Self {
        let now = Instant::now();
        Membership {
            lease,
            state: Mutex::new((0..n).map(|_| Member { last_beat: now, live: true }).collect()),
        }
    }

    /// The configured lease duration.
    pub fn lease(&self) -> Duration {
        self.lease
    }

    /// Renews pipeline `pipe`'s lease (any received message counts).
    /// Out-of-range pipes are ignored — the caller validates ids.
    pub fn beat(&self, pipe: usize) {
        let mut st = self.state.lock();
        if let Some(m) = st.get_mut(pipe) {
            m.last_beat = Instant::now();
        }
    }

    /// Marks `pipe` live with a fresh lease. Returns `true` when the pipe
    /// was dead — i.e. this message is a *rejoin* the caller must mirror
    /// into the shards.
    pub fn join(&self, pipe: usize) -> bool {
        let mut st = self.state.lock();
        match st.get_mut(pipe) {
            Some(m) => {
                let was_dead = !m.live;
                m.live = true;
                m.last_beat = Instant::now();
                was_dead
            }
            None => false,
        }
    }

    /// Expires lapsed leases as of `now`; returns the pipes that died in
    /// this pass (each reported once — already-dead members are skipped).
    pub fn reap(&self, now: Instant) -> Vec<usize> {
        let mut st = self.state.lock();
        let mut dead = Vec::new();
        for (i, m) in st.iter_mut().enumerate() {
            if m.live && now.duration_since(m.last_beat) > self.lease {
                m.live = false;
                dead.push(i);
            }
        }
        dead
    }

    /// Number of live members.
    pub fn live_count(&self) -> usize {
        self.state.lock().iter().filter(|m| m.live).count()
    }

    /// Bitmask of live member ids (members ≥ 64 omitted from the mask).
    pub fn mask(&self) -> u64 {
        let st = self.state.lock();
        st.iter()
            .take(64)
            .enumerate()
            .fold(0u64, |mask, (i, m)| if m.live { mask | (1 << i) } else { mask })
    }

    /// Whether `pipe` is currently live.
    pub fn is_live(&self, pipe: usize) -> bool {
        self.state.lock().get(pipe).map(|m| m.live).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_membership_is_fully_live() {
        let m = Membership::new(3, Duration::from_millis(50));
        assert_eq!(m.live_count(), 3);
        assert_eq!(m.mask(), 0b111);
        assert!(m.is_live(2));
        assert!(!m.is_live(3), "out of range is not live");
    }

    #[test]
    fn lapsed_lease_is_reaped_once() {
        let m = Membership::new(2, Duration::from_millis(10));
        m.beat(0);
        let later = Instant::now() + Duration::from_millis(50);
        assert_eq!(m.reap(later), vec![0, 1]);
        assert_eq!(m.live_count(), 0);
        // A second reap reports nothing new.
        assert_eq!(m.reap(later + Duration::from_millis(50)), Vec::<usize>::new());
    }

    #[test]
    fn beat_keeps_a_member_alive() {
        let m = Membership::new(2, Duration::from_millis(40));
        std::thread::sleep(Duration::from_millis(20));
        m.beat(0);
        std::thread::sleep(Duration::from_millis(25));
        // 0 beat 25ms ago (inside the lease); 1 last beat 45ms ago.
        assert_eq!(m.reap(Instant::now()), vec![1]);
        assert!(m.is_live(0));
        assert_eq!(m.mask(), 0b01);
    }

    #[test]
    fn join_revives_and_reports_the_transition() {
        let m = Membership::new(2, Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(m.reap(Instant::now()), vec![0, 1]);
        assert!(m.join(1), "dead → live is a rejoin");
        assert!(!m.join(1), "live → live is not");
        assert_eq!(m.live_count(), 1);
        assert_eq!(m.mask(), 0b10);
    }
}
