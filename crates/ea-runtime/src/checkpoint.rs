//! Model checkpointing: save and restore the flat parameters of a staged
//! model (and the elastic-averaging reference) to disk.
//!
//! The format is deliberately simple and self-describing: a JSON document
//! with one base64-free `Vec<f32>` per stage plus shape metadata, so
//! checkpoints are portable across runs and diffable in tests.

use crate::Error;
use ea_autograd::StagedModel;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::Path;

/// A serialized model snapshot.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct Checkpoint {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Free-form tag (e.g. the workload name and step count).
    pub tag: String,
    /// Flat parameters of each stage, in stage order.
    pub stages: Vec<Vec<f32>>,
}

impl Checkpoint {
    /// Captures the current parameters of a model.
    pub fn capture(model: &StagedModel, tag: impl Into<String>) -> Self {
        Checkpoint {
            version: 1,
            tag: tag.into(),
            stages: (0..model.num_stages()).map(|k| model.stage(k).params_flat()).collect(),
        }
    }

    /// Writes the parameters back into a structurally-identical model.
    ///
    /// Returns an error (without touching any parameter) if the stage
    /// count or any stage's parameter count differs — a corrupt or
    /// mismatched checkpoint file must not abort training, and must not
    /// leave the model half-restored.
    pub fn restore(&self, model: &mut StagedModel) -> Result<(), Error> {
        if self.stages.len() != model.num_stages() {
            return Err(Error::StageCountMismatch {
                checkpoint: self.stages.len(),
                model: model.num_stages(),
            });
        }
        for (k, params) in self.stages.iter().enumerate() {
            let expected = model.stage(k).num_params();
            if params.len() != expected {
                return Err(Error::LengthMismatch {
                    what: format!("checkpoint stage {k} params"),
                    expected,
                    got: params.len(),
                });
            }
        }
        for (k, params) in self.stages.iter().enumerate() {
            model.stage_mut(k).set_params_flat(params);
        }
        Ok(())
    }

    /// Serializes to a writer as JSON.
    pub fn save_to(&self, mut w: impl Write) -> std::io::Result<()> {
        let json = serde_json::to_string(self).expect("checkpoint serializes");
        w.write_all(json.as_bytes())
    }

    /// Deserializes from a reader.
    pub fn load_from(mut r: impl Read) -> std::io::Result<Self> {
        let mut buf = String::new();
        r.read_to_string(&mut buf)?;
        serde_json::from_str(&buf)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Saves to a file path.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        self.save_to(std::fs::File::create(path)?)
    }

    /// Loads from a file path.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::load_from(std::fs::File::open(path)?)
    }

    /// Total scalar parameters in the snapshot.
    pub fn num_params(&self) -> usize {
        self.stages.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_models::{gnmt_analogue, AnalogueConfig};
    use ea_tensor::TensorRng;

    const CFG: AnalogueConfig =
        AnalogueConfig { vocab: 16, seq: 4, hidden: 16, blocks: 2, stages: 2 };

    #[test]
    fn roundtrip_through_memory() {
        let model = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(1));
        let ckpt = Checkpoint::capture(&model, "test");
        assert_eq!(ckpt.num_params(), model.num_params());

        let mut buf = Vec::new();
        ckpt.save_to(&mut buf).unwrap();
        let loaded = Checkpoint::load_from(buf.as_slice()).unwrap();
        assert_eq!(loaded, ckpt);

        // Restore into a differently-initialized model: parameters match
        // the original bit-for-bit afterwards.
        let mut other = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(99));
        assert_ne!(other.stage(0).params_flat(), model.stage(0).params_flat());
        loaded.restore(&mut other).unwrap();
        for k in 0..2 {
            assert_eq!(other.stage(k).params_flat(), model.stage(k).params_flat());
        }
    }

    #[test]
    fn roundtrip_through_file() {
        let model = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(2));
        let ckpt = Checkpoint::capture(&model, "file-test");
        let path = std::env::temp_dir().join("avgpipe_ckpt_test.json");
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded, ckpt);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn restore_into_wrong_architecture_is_an_error() {
        let model = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(3));
        let ckpt = Checkpoint::capture(&model, "bad");
        let wrong_cfg = AnalogueConfig { hidden: 8, ..CFG };
        let mut wrong = gnmt_analogue(wrong_cfg, &mut TensorRng::seed_from_u64(3));
        let before = wrong.stage(0).params_flat();
        match ckpt.restore(&mut wrong) {
            Err(Error::LengthMismatch { .. }) => {}
            other => panic!("expected LengthMismatch, got {other:?}"),
        }
        assert_eq!(wrong.stage(0).params_flat(), before, "failed restore must not mutate");
    }

    #[test]
    fn restore_with_wrong_stage_count_is_an_error() {
        let model = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(4));
        let mut ckpt = Checkpoint::capture(&model, "bad");
        ckpt.stages.pop();
        let mut target = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(4));
        assert_eq!(
            ckpt.restore(&mut target),
            Err(Error::StageCountMismatch { checkpoint: 1, model: 2 })
        );
    }

    #[test]
    fn corrupt_data_is_an_error_not_a_panic() {
        let err = Checkpoint::load_from("not json".as_bytes());
        assert!(err.is_err());
    }
}
