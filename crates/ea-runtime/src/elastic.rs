//! The threaded elastic-averaging trainer: N pipelines + reference shards.
//!
//! Fault tolerance: each shard tracks per-pipeline *membership*. A
//! pipeline whose lease expires is evicted ([`RefShard::evict`]) and the
//! stalled round completes in **degraded-quorum mode** — the normalized
//! sum is taken over the `k ≤ N` members that actually reported
//! (`w̃ ← w̃ + (1/k)·Σ Δ_i`). EASGD's center-of-mass argument survives
//! renormalization: the reference remains a convex combination of itself
//! and the mean of the reporting replicas. A restarted worker is
//! readmitted at the *next* round boundary ([`RefShard::readmit`]), so a
//! mid-round rejoin can never deadlock a round it never pulled. Per-round
//! membership is recorded in [`RoundRecord`]s for clients and tests.

use crate::metrics::ServerMetrics;
use crate::{Error, ThreadedPipeline};
use ea_autograd::{Stage, StagedModel};
use ea_comms::{CommsError, QuorumInfo, ShardChannel};
use ea_data::Batch;
use ea_optim::Optimizer;
use ea_trace::{Category, StaticName};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// How many per-round membership records a shard retains.
const RECORD_CAP: usize = 1024;

static ROUND_APPLIED_MARK: StaticName = StaticName::new("round_applied");
static DEGRADED_MARK: StaticName = StaticName::new("degraded_round");
static ROUND_SPAN: StaticName = StaticName::new("round");
static PULL_REF_SPAN: StaticName = StaticName::new("pull");
static SUBMIT_DELTA_SPAN: StaticName = StaticName::new("submit");

/// Membership of one applied round: who contributed to the average.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundRecord {
    /// The round this record describes (the shard version it produced is
    /// `round + 1`).
    pub round: u64,
    /// Number of pipelines folded into the average (`k` in `1/k`).
    pub quorum: u32,
    /// Bitmask of contributing pipeline ids.
    pub members: u64,
}

struct ShardState {
    /// Completed elastic-averaging rounds.
    version: u64,
    /// Reference weights (Step ❹'s target).
    weights: Vec<f32>,
    /// One pending local update per pipeline for the current round.
    pending: Vec<Option<Vec<f32>>>,
    /// Membership: `false` = evicted (lease expired), not required for
    /// round completion and not allowed to submit until readmitted.
    active: Vec<bool>,
    /// First round a pipeline is *required* for. Readmission sets this to
    /// `version + 1` so a rejoiner re-enters at the next round boundary.
    joined_at: Vec<u64>,
    /// Membership records of the most recent applied rounds.
    records: VecDeque<RoundRecord>,
}

/// Whether a submission changed shard state or was a recognized
/// retransmission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// First delivery: the update was recorded (and possibly the round
    /// applied).
    Applied,
    /// `(round, pipe)` was already recorded or already folded into the
    /// reference — the retransmission was dropped.
    Duplicate,
}

/// A reference-model shard: the per-GPU process of the paper's Figure 6
/// that owns one stage of the reference model, accumulates the local
/// updates of all N pipelines and applies the normalized sum.
pub struct RefShard {
    state: Mutex<ShardState>,
    cv: Condvar,
    n: usize,
    metrics: OnceLock<Arc<ServerMetrics>>,
}

impl RefShard {
    /// Creates the shard with initial reference weights.
    pub fn new(init: Vec<f32>, n_pipelines: usize) -> Self {
        Self::with_version(init, n_pipelines, 0)
    }

    /// Creates the shard at a given version — used when restoring from a
    /// checkpoint, so the server resumes at the recorded round instead of
    /// silently resetting to round 0.
    pub fn with_version(init: Vec<f32>, n_pipelines: usize, version: u64) -> Self {
        RefShard {
            state: Mutex::new(ShardState {
                version,
                weights: init,
                pending: vec![None; n_pipelines],
                active: vec![true; n_pipelines],
                joined_at: vec![0; n_pipelines],
                records: VecDeque::new(),
            }),
            cv: Condvar::new(),
            n: n_pipelines,
            metrics: OnceLock::new(),
        }
    }

    /// Number of pipelines feeding this shard.
    pub fn n_pipelines(&self) -> usize {
        self.n
    }

    /// Attaches server metrics; degraded rounds are counted there. Only
    /// the first call takes effect.
    pub fn set_metrics(&self, metrics: Arc<ServerMetrics>) {
        let _ = self.metrics.set(metrics);
    }

    /// Completed rounds on this shard.
    pub fn version(&self) -> u64 {
        self.state.lock().version
    }

    /// Number of live (non-evicted) members.
    pub fn live_count(&self) -> usize {
        self.state.lock().active.iter().filter(|a| **a).count()
    }

    /// Bitmask of live member pipeline ids.
    pub fn member_mask(&self) -> u64 {
        let st = self.state.lock();
        mask_of(&st.active)
    }

    /// Whether pipeline `pipe` currently holds membership.
    pub fn is_member(&self, pipe: usize) -> bool {
        let st = self.state.lock();
        pipe < self.n && st.active[pipe]
    }

    /// The membership record of an applied `round`, if still retained.
    pub fn round_record(&self, round: u64) -> Option<RoundRecord> {
        let st = self.state.lock();
        st.records.iter().rev().find(|r| r.round == round).copied()
    }

    /// All retained membership records, oldest first.
    pub fn round_records(&self) -> Vec<RoundRecord> {
        self.state.lock().records.iter().copied().collect()
    }

    /// Step ❹ for in-process callers: pipeline `pipe` submits its local
    /// update for the *current* round. A second submission by the same
    /// pipeline within one round is an error (in-process callers are
    /// exactly-once; retransmission-tolerant peers use
    /// [`RefShard::submit_at`]).
    pub fn submit(&self, pipe: usize, delta: Vec<f32>) -> Result<(), Error> {
        let mut st = self.state.lock();
        let round = st.version;
        match self.submit_locked(&mut st, round, pipe, delta)? {
            SubmitOutcome::Applied => Ok(()),
            SubmitOutcome::Duplicate => Err(Error::DuplicateSubmit { pipe, round }),
        }
    }

    /// Step ❹ for transport peers: idempotent, round-addressed
    /// submission. The `(round, pipe)` pair is the idempotency key:
    ///
    /// * `round == version`, first delivery → recorded
    ///   ([`SubmitOutcome::Applied`]; when all N have reported, Step ❺
    ///   applies the normalized sum in fixed pipeline order and bumps the
    ///   version).
    /// * `round < version`, or already recorded this round → the delta is
    ///   discarded and the caller acknowledged
    ///   ([`SubmitOutcome::Duplicate`]), so at-least-once retry never
    ///   double-counts an update.
    /// * `round > version` → [`Error::RoundAhead`]: a correct peer pulls
    ///   round `r` before submitting round `r`, so this means a protocol
    ///   violation.
    pub fn submit_at(
        &self,
        round: u64,
        pipe: usize,
        delta: Vec<f32>,
    ) -> Result<SubmitOutcome, Error> {
        let mut st = self.state.lock();
        self.submit_locked(&mut st, round, pipe, delta)
    }

    fn submit_locked(
        &self,
        st: &mut ShardState,
        round: u64,
        pipe: usize,
        delta: Vec<f32>,
    ) -> Result<SubmitOutcome, Error> {
        if pipe >= self.n {
            ea_tensor::pool::recycle(delta);
            return Err(Error::IndexOutOfRange { what: "pipeline", index: pipe, len: self.n });
        }
        if delta.len() != st.weights.len() {
            let got = delta.len();
            ea_tensor::pool::recycle(delta);
            return Err(Error::LengthMismatch {
                what: format!("pipeline {pipe} delta"),
                expected: st.weights.len(),
                got,
            });
        }
        if !st.active[pipe] {
            // The pipe was evicted (lease expired). Checked before the
            // duplicate path so a dead worker's late submission — even
            // for a round that already completed without it — is refused
            // loudly rather than silently swallowed as a retransmission.
            ea_tensor::pool::recycle(delta);
            return Err(Error::LeaseExpired { pipe, round });
        }
        if round < st.version {
            // The round this update belongs to has already been applied;
            // the original delivery made it. Drop the retransmission.
            ea_tensor::pool::recycle(delta);
            return Ok(SubmitOutcome::Duplicate);
        }
        if round > st.version {
            ea_tensor::pool::recycle(delta);
            return Err(Error::RoundAhead { round, version: st.version });
        }
        if st.pending[pipe].is_some() {
            ea_tensor::pool::recycle(delta);
            return Ok(SubmitOutcome::Duplicate);
        }
        st.pending[pipe] = Some(delta);
        self.maybe_apply(st);
        Ok(SubmitOutcome::Applied)
    }

    /// Step ❺: applies the round if every *required* member has reported.
    /// Required = active with `joined_at ≤ version`; a rejoiner waiting
    /// for the next boundary is exempt. The normalized sum folds all
    /// pending deltas in fixed pipeline order with `1/k`, `k` = number of
    /// contributors — with a full quorum this is byte-identical to the
    /// fault-free `1/N` path.
    fn maybe_apply(&self, st: &mut ShardState) {
        let complete = (0..self.n).all(|i| {
            let required = st.active[i] && st.joined_at[i] <= st.version;
            !required || st.pending[i].is_some()
        });
        let k = st.pending.iter().filter(|p| p.is_some()).count();
        if !complete || k == 0 {
            return;
        }
        let inv = 1.0 / k as f32;
        let mut members = 0u64;
        for i in 0..self.n {
            if let Some(delta) = st.pending[i].take() {
                if i < 64 {
                    members |= 1 << i;
                }
                for (w, d) in st.weights.iter_mut().zip(&delta) {
                    *w += d * inv;
                }
                // Deltas arrive in pooled buffers; return them for reuse.
                ea_tensor::pool::recycle(delta);
            }
        }
        st.records.push_back(RoundRecord { round: st.version, quorum: k as u32, members });
        if st.records.len() > RECORD_CAP {
            st.records.pop_front();
        }
        if k < self.n {
            if let Some(m) = self.metrics.get() {
                m.inc_degraded_rounds();
            }
            ea_trace::instant(&DEGRADED_MARK, Category::Runtime, k as u64);
        }
        ea_trace::instant(&ROUND_APPLIED_MARK, Category::Runtime, st.version);
        st.version += 1;
        self.cv.notify_all();
    }

    /// Removes pipeline `pipe` from the quorum (its lease expired). Any
    /// pending update it submitted for the current round is discarded, and
    /// the round is applied in degraded-quorum mode if the survivors have
    /// all reported. Returns `Ok(true)` when state changed, `Ok(false)`
    /// when the pipe was already evicted, and [`Error::QuorumLost`] when
    /// eviction would leave zero live members (the member stays required
    /// so the caller can retry once someone rejoins).
    pub fn evict(&self, pipe: usize) -> Result<bool, Error> {
        let mut st = self.state.lock();
        if pipe >= self.n {
            return Err(Error::IndexOutOfRange { what: "pipeline", index: pipe, len: self.n });
        }
        if !st.active[pipe] {
            return Ok(false);
        }
        if st.active.iter().filter(|a| **a).count() == 1 {
            return Err(Error::QuorumLost { live: 1, round: st.version });
        }
        st.active[pipe] = false;
        if let Some(delta) = st.pending[pipe].take() {
            ea_tensor::pool::recycle(delta);
        }
        self.maybe_apply(&mut st);
        Ok(true)
    }

    /// Readmits an evicted pipeline at the *next* round boundary: it is
    /// not required (and its submissions are not expected) until the
    /// current round completes. Returns `true` if the pipe was dead.
    pub fn readmit(&self, pipe: usize) -> Result<bool, Error> {
        let joined_at = self.version() + 1;
        self.readmit_at(pipe, joined_at)
    }

    /// [`readmit`](Self::readmit) with an explicit join round, so a
    /// server readmitting one pipeline across *many* shards can pick a
    /// single boundary (the max version over all shards, plus one) — a
    /// per-shard `version + 1` would let the join rounds diverge, and a
    /// rejoiner resyncing to the *highest* shard version could then skip
    /// a round a slower shard still requires it for, stalling that shard
    /// forever. Clamped to this shard's own next boundary: a pipeline is
    /// never required for the round already in flight when it rejoins.
    pub fn readmit_at(&self, pipe: usize, joined_at: u64) -> Result<bool, Error> {
        let mut st = self.state.lock();
        if pipe >= self.n {
            return Err(Error::IndexOutOfRange { what: "pipeline", index: pipe, len: self.n });
        }
        if st.active[pipe] {
            return Ok(false);
        }
        st.active[pipe] = true;
        st.joined_at[pipe] = joined_at.max(st.version + 1);
        Ok(true)
    }

    /// Step ❷ support: returns the reference weights as of exactly
    /// `version` completed rounds (blocks until reached). Because every
    /// pipeline pulls for round `r` before submitting round `r`, the
    /// version cannot advance past `r` while any pull is outstanding —
    /// all pipelines observe identical reference weights.
    pub fn weights_at(&self, version: u64) -> Vec<f32> {
        let mut st = self.state.lock();
        while st.version < version {
            self.cv.wait(&mut st);
        }
        assert_eq!(st.version, version, "reference advanced past the pull point");
        st.weights.clone()
    }

    /// Transport-facing variant of [`RefShard::weights_at`]: waits until
    /// at least `version` rounds are complete and returns the weights
    /// *with the version they actually correspond to*. Retransmitted pull
    /// requests can arrive after their round was superseded; the caller
    /// matches on the returned version and discards stale replies instead
    /// of panicking.
    pub fn weights_at_least(&self, version: u64) -> (u64, Vec<f32>) {
        let mut st = self.state.lock();
        while st.version < version {
            self.cv.wait(&mut st);
        }
        (st.version, st.weights.clone())
    }

    /// Bounded-wait variant of [`RefShard::weights_at_least`]: gives up
    /// after `timeout` and returns `None`. Fault-tolerant servers use this
    /// so a pull for a round stalled by a dead peer cannot pin a
    /// connection thread forever — the client simply retransmits, which
    /// doubles as lease renewal while the reaper completes the round.
    pub fn weights_within(&self, version: u64, timeout: Duration) -> Option<(u64, Vec<f32>)> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        while st.version < version {
            if self.cv.wait_until(&mut st, deadline).timed_out() {
                return None;
            }
        }
        Some((st.version, st.weights.clone()))
    }

    /// Consistent `(version, weights)` snapshot under one lock hold.
    pub fn versioned_snapshot(&self) -> (u64, Vec<f32>) {
        let st = self.state.lock();
        (st.version, st.weights.clone())
    }

    /// Non-blocking read of the reference weights at exactly `version`
    /// completed rounds: `None` if the shard is at any other version or a
    /// round is mid-application. Evaluation paths use this so they can
    /// never observe mid-round weights.
    pub fn try_weights_at(&self, version: u64) -> Option<Vec<f32>> {
        let st = self.state.lock();
        (st.version == version).then(|| st.weights.clone())
    }

    /// Current reference weights (for evaluation; racy only with active
    /// training — prefer [`RefShard::try_weights_at`] when the expected
    /// round is known).
    pub fn snapshot(&self) -> Vec<f32> {
        self.state.lock().weights.clone()
    }
}

/// Bitmask of `true` entries (pipelines ≥ 64 are not representable and
/// are omitted from masks, never from the quorum arithmetic).
fn mask_of(active: &[bool]) -> u64 {
    active.iter().take(64).enumerate().fold(0u64, |m, (i, a)| if *a { m | (1 << i) } else { m })
}

/// The in-process [`ShardChannel`]: calls the shard accumulators
/// directly, no serialization, no copies beyond the protocol-mandated
/// clone of the reference weights.
pub struct LocalShards {
    shards: Vec<Arc<RefShard>>,
}

impl LocalShards {
    /// Wraps the given shards.
    pub fn new(shards: Vec<Arc<RefShard>>) -> Self {
        LocalShards { shards }
    }

    /// The underlying shards.
    pub fn shards(&self) -> &[Arc<RefShard>] {
        &self.shards
    }
}

impl ShardChannel for LocalShards {
    fn n_shards(&self) -> usize {
        self.shards.len()
    }

    fn pull(&self, _pipe: usize, shard: usize, version: u64) -> Result<Vec<f32>, CommsError> {
        let sh = self
            .shards
            .get(shard)
            .ok_or_else(|| CommsError::Protocol(format!("no shard {shard}")))?;
        Ok(sh.weights_at(version))
    }

    fn submit(
        &self,
        pipe: usize,
        shard: usize,
        round: u64,
        delta: Vec<f32>,
    ) -> Result<(), CommsError> {
        let sh = self
            .shards
            .get(shard)
            .ok_or_else(|| CommsError::Protocol(format!("no shard {shard}")))?;
        sh.submit_at(round, pipe, delta)
            .map(|_| ())
            .map_err(|e| CommsError::Protocol(e.to_string()))
    }

    fn pull_latest(&self, _pipe: usize, shard: usize) -> Result<(u64, Vec<f32>), CommsError> {
        let sh = self
            .shards
            .get(shard)
            .ok_or_else(|| CommsError::Protocol(format!("no shard {shard}")))?;
        Ok(sh.versioned_snapshot())
    }

    fn heartbeat(&self, _pipe: usize, _round: u64) -> Result<QuorumInfo, CommsError> {
        // In-process pipelines share a fate — there are no leases to
        // expire, so the quorum is always full.
        let round = self.shards.iter().map(|s| s.version()).max().unwrap_or(0);
        let n = self.shards.first().map(|s| s.n_pipelines()).unwrap_or(0);
        let quorum = n as u32;
        let members = if n >= 64 { u64::MAX } else { (1u64 << n) - 1 };
        Ok(QuorumInfo { round, quorum, members })
    }
}

/// N parallel threaded pipelines training replicas under elastic
/// averaging. The reference shards live behind a [`ShardChannel`]: the
/// default constructor wires the in-process [`LocalShards`] backend, and
/// [`ElasticTrainer::with_channel`] runs the identical training loop over
/// any transport (loopback, TCP, fault-injected) instead.
pub struct ElasticTrainer {
    pipelines: Vec<ThreadedPipeline>,
    channel: Arc<dyn ShardChannel>,
    /// Present in local mode only: direct shard handles for evaluation
    /// reads that must never block or observe mid-round state.
    local: Option<Vec<Arc<RefShard>>>,
    n_shards: usize,
    alpha: f32,
    round: u64,
    eval_replica: StagedModel,
}

impl ElasticTrainer {
    /// Builds the trainer with in-process reference shards (all replicas
    /// must start from identical weights for the reference initialization
    /// to be meaningful). `alpha = None` uses 1/N.
    pub fn new(
        replica_stages: Vec<Vec<Stage>>,
        replica_opts: Vec<Vec<Box<dyn Optimizer>>>,
        micros: usize,
        alpha: Option<f32>,
        eval_replica: StagedModel,
    ) -> Self {
        let n = replica_stages.len();
        assert!(n >= 1);
        let k = replica_stages[0].len();
        let shards: Vec<Arc<RefShard>> = (0..k)
            .map(|s| Arc::new(RefShard::new(replica_stages[0][s].params_flat(), n)))
            .collect();
        let channel: Arc<dyn ShardChannel> = Arc::new(LocalShards::new(shards.clone()));
        Self::build(
            replica_stages,
            replica_opts,
            micros,
            alpha,
            eval_replica,
            channel,
            Some(shards),
        )
    }

    /// Builds the trainer against an arbitrary shard backend — the
    /// loopback or TCP transport, optionally fault-wrapped. The channel's
    /// server must hold reference weights identical to the replicas'
    /// initial weights.
    pub fn with_channel(
        replica_stages: Vec<Vec<Stage>>,
        replica_opts: Vec<Vec<Box<dyn Optimizer>>>,
        micros: usize,
        alpha: Option<f32>,
        eval_replica: StagedModel,
        channel: Arc<dyn ShardChannel>,
    ) -> Self {
        Self::build(replica_stages, replica_opts, micros, alpha, eval_replica, channel, None)
    }

    fn build(
        replica_stages: Vec<Vec<Stage>>,
        replica_opts: Vec<Vec<Box<dyn Optimizer>>>,
        micros: usize,
        alpha: Option<f32>,
        eval_replica: StagedModel,
        channel: Arc<dyn ShardChannel>,
        local: Option<Vec<Arc<RefShard>>>,
    ) -> Self {
        let n = replica_stages.len();
        assert!(n >= 1);
        assert_eq!(replica_opts.len(), n);
        let k = replica_stages[0].len();
        assert_eq!(channel.n_shards(), k, "one reference shard per stage");
        let pipelines = replica_stages
            .into_iter()
            .zip(replica_opts)
            .map(|(stages, opts)| ThreadedPipeline::spawn(stages, opts, micros))
            .collect();
        ElasticTrainer {
            pipelines,
            channel,
            local,
            n_shards: k,
            alpha: alpha.unwrap_or(1.0 / n as f32),
            round: 0,
            eval_replica,
        }
    }

    /// Number of pipelines N.
    pub fn n_pipelines(&self) -> usize {
        self.pipelines.len()
    }

    /// One elastic-averaging round: each pipeline trains on its own batch
    /// concurrently (scoped threads — one driver per pipeline), then pulls
    /// toward the round-`r` reference and submits its update. Returns the
    /// mean loss across pipelines.
    pub fn round(&mut self, batches: &[Batch]) -> f32 {
        assert_eq!(batches.len(), self.pipelines.len(), "one batch per pipeline");
        let k = self.n_shards;
        let round = self.round;
        let alpha = self.alpha;
        let channel = &self.channel;
        let losses: Vec<f32> = std::thread::scope(|scope| {
            let mut joins = Vec::new();
            for (p, (pipe, batch)) in self.pipelines.iter_mut().zip(batches.iter()).enumerate() {
                joins.push(scope.spawn(move || {
                    let _round_span = ea_trace::span_arg(&ROUND_SPAN, Category::Runtime, round);
                    // Fetch the round-r reference up front: the version
                    // cannot advance past r until this pipeline submits,
                    // so this observes exactly the pre-round weights.
                    let references: Vec<Vec<f32>> = (0..k)
                        .map(|s| {
                            let _s = ea_trace::span_arg(&PULL_REF_SPAN, Category::Comm, round);
                            channel.pull(p, s, round).expect("reference pull failed")
                        })
                        .collect();
                    // Steps ❶–❷ run worker-side in one fused pass; Δ comes
                    // back per stage for Step ❸.
                    let (loss, deltas) = pipe.step_elastic(batch, references, alpha);
                    for (s, delta) in deltas.into_iter().enumerate() {
                        let _s = ea_trace::span_arg(&SUBMIT_DELTA_SPAN, Category::Comm, round);
                        channel.submit(p, s, round, delta).expect("delta submit failed");
                    }
                    loss
                }));
            }
            joins.into_iter().map(|j| j.join().expect("pipeline driver panicked")).collect()
        });
        self.round += 1;
        losses.iter().sum::<f32>() / losses.len() as f32
    }

    /// Materializes the reference model into the evaluation replica.
    ///
    /// Reads the reference at exactly `self.round` completed rounds —
    /// never a mid-round state. (`&mut self` excludes a concurrent
    /// [`ElasticTrainer::round`], so the read cannot block either.)
    pub fn eval_model(&mut self) -> &StagedModel {
        for s in 0..self.n_shards {
            let w = self.reference(s);
            self.eval_replica.stage_mut(s).set_params_flat(&w);
            ea_tensor::pool::recycle(w);
        }
        &self.eval_replica
    }

    /// Reference weights of stage `s` as of the last completed round.
    pub fn reference(&self, s: usize) -> Vec<f32> {
        match &self.local {
            Some(shards) => shards[s]
                .try_weights_at(self.round)
                .expect("evaluation must not race an active round"),
            None => {
                self.channel.pull(0, s, self.round).expect("reference pull for evaluation failed")
            }
        }
    }

    /// Replica parameters of pipeline `p`, stage `s`.
    pub fn replica_params(&self, p: usize, s: usize) -> Vec<f32> {
        self.pipelines[p].stage_params(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantic::ElasticSemantic;
    use ea_data::SyntheticTask;
    use ea_models::{gnmt_analogue, AnalogueConfig};
    use ea_optim::OptKind;
    use ea_tensor::TensorRng;

    const CFG: AnalogueConfig =
        AnalogueConfig { vocab: 16, seq: 4, hidden: 16, blocks: 2, stages: 2 };

    type Replicas = (Vec<Vec<Stage>>, Vec<Vec<Box<dyn Optimizer>>>);

    fn replicas(n: usize, seed: u64) -> Replicas {
        let stages = (0..n)
            .map(|_| gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(seed)).into_stages())
            .collect();
        let opts = (0..n)
            .map(|_| {
                (0..CFG.stages).map(|_| OptKind::Adam { lr: 1e-2 }.build()).collect::<Vec<_>>()
            })
            .collect();
        (stages, opts)
    }

    #[test]
    fn threaded_elastic_matches_semantic_reference() {
        let seed = 55;
        let task = SyntheticTask::copy_translate(16, 4, 41);
        let n = 2;

        let (stages, opts) = replicas(n, seed);
        let eval = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(seed));
        let mut threaded = ElasticTrainer::new(stages, opts, 2, None, eval);

        let sem_replicas: Vec<StagedModel> =
            (0..n).map(|_| gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(seed))).collect();
        let sem_opts = (0..n)
            .map(|_| {
                (0..CFG.stages).map(|_| OptKind::Adam { lr: 1e-2 }.build()).collect::<Vec<_>>()
            })
            .collect();
        let sem_eval = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(seed));
        let mut semantic =
            ElasticSemantic::with_eval_replica(sem_replicas, sem_opts, 2, None, sem_eval);

        for r in 0..4 {
            let batches: Vec<_> = (0..n as u64).map(|i| task.batch(4, r * 2 + i)).collect();
            let lt = threaded.round(&batches);
            let ls = semantic.round(&batches);
            assert!((lt - ls).abs() < 1e-6, "round {r}: {lt} vs {ls}");
        }
        for s in 0..CFG.stages {
            let tw = threaded.reference(s);
            let sw = semantic.reference(s);
            for (a, b) in tw.iter().zip(sw) {
                assert!((a - b).abs() < 1e-6, "reference mismatch: {a} vs {b}");
            }
            for p in 0..n {
                let tp = threaded.replica_params(p, s);
                let sp = semantic.replica(p).stage(s).params_flat();
                for (a, b) in tp.iter().zip(&sp) {
                    assert!((a - b).abs() < 1e-6, "replica {p} mismatch: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn reference_stays_centered_between_replicas() {
        let (stages, opts) = replicas(2, 99);
        let eval = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(99));
        let mut t = ElasticTrainer::new(stages, opts, 2, None, eval);
        let task = SyntheticTask::copy_translate(16, 4, 43);
        for r in 0..6 {
            let batches: Vec<_> = (0..2u64).map(|i| task.batch(4, r * 2 + i)).collect();
            t.round(&batches);
        }
        // ‖ref − replica‖ should be smaller than ‖replica0 − replica1‖
        // scaled distance — the reference sits between the replicas.
        let r0 = t.replica_params(0, 0);
        let r1 = t.replica_params(1, 0);
        let rf = t.reference(0);
        let d01: f32 = r0.iter().zip(&r1).map(|(a, b)| (a - b) * (a - b)).sum::<f32>().sqrt();
        let dr0: f32 = rf.iter().zip(&r0).map(|(a, b)| (a - b) * (a - b)).sum::<f32>().sqrt();
        assert!(dr0 < d01 * 2.0 + 1e-3, "reference far from replicas: {dr0} vs {d01}");
    }

    #[test]
    fn shard_applies_in_pipeline_order() {
        let shard = RefShard::new(vec![0.0; 2], 2);
        shard.submit(1, vec![2.0, 2.0]).unwrap();
        // Round not complete yet.
        assert_eq!(shard.weights_at(0), vec![0.0, 0.0]);
        shard.submit(0, vec![0.0, 4.0]).unwrap();
        assert_eq!(shard.weights_at(1), vec![1.0, 3.0]);
    }

    #[test]
    fn double_submit_is_an_error_not_a_panic() {
        let shard = RefShard::new(vec![0.0; 1], 2);
        shard.submit(0, vec![1.0]).unwrap();
        assert_eq!(shard.submit(0, vec![1.0]), Err(Error::DuplicateSubmit { pipe: 0, round: 0 }));
        // The pending update survives the rejected duplicate.
        shard.submit(1, vec![3.0]).unwrap();
        assert_eq!(shard.weights_at(1), vec![2.0]);
    }

    #[test]
    fn wrong_length_delta_is_rejected_without_corrupting_state() {
        let shard = RefShard::new(vec![0.0; 3], 1);
        assert!(matches!(shard.submit(0, vec![1.0; 2]), Err(Error::LengthMismatch { .. })));
        assert!(matches!(shard.submit_at(0, 0, vec![1.0; 7]), Err(Error::LengthMismatch { .. })));
        // A well-formed submission still works afterwards.
        shard.submit(0, vec![1.0; 3]).unwrap();
        assert_eq!(shard.weights_at(1), vec![1.0; 3]);
    }

    #[test]
    fn out_of_range_pipe_is_rejected() {
        let shard = RefShard::new(vec![0.0; 1], 2);
        assert!(matches!(shard.submit_at(0, 5, vec![1.0]), Err(Error::IndexOutOfRange { .. })));
    }

    #[test]
    fn submit_at_is_idempotent_per_round_and_pipe() {
        let shard = RefShard::new(vec![0.0; 1], 2);
        assert_eq!(shard.submit_at(0, 0, vec![2.0]), Ok(SubmitOutcome::Applied));
        // Same (round, pipe) again: duplicate, not double-counted.
        assert_eq!(shard.submit_at(0, 0, vec![2.0]), Ok(SubmitOutcome::Duplicate));
        assert_eq!(shard.submit_at(0, 1, vec![4.0]), Ok(SubmitOutcome::Applied));
        assert_eq!(shard.weights_at(1), vec![3.0]);
        // Late retransmission of the applied round: still a duplicate.
        assert_eq!(shard.submit_at(0, 1, vec![4.0]), Ok(SubmitOutcome::Duplicate));
        assert_eq!(shard.try_weights_at(1), Some(vec![3.0]));
    }

    #[test]
    fn submit_for_a_future_round_is_rejected() {
        let shard = RefShard::new(vec![0.0; 1], 1);
        assert_eq!(
            shard.submit_at(3, 0, vec![1.0]),
            Err(Error::RoundAhead { round: 3, version: 0 })
        );
    }

    #[test]
    fn try_weights_at_only_serves_the_exact_version() {
        let shard = RefShard::new(vec![5.0; 1], 1);
        assert_eq!(shard.try_weights_at(0), Some(vec![5.0]));
        assert_eq!(shard.try_weights_at(1), None);
        shard.submit(0, vec![1.0]).unwrap();
        assert_eq!(shard.try_weights_at(0), None);
        assert_eq!(shard.try_weights_at(1), Some(vec![6.0]));
    }

    #[test]
    fn weights_at_least_reports_the_actual_version() {
        let shard = RefShard::new(vec![0.0; 1], 1);
        shard.submit(0, vec![2.0]).unwrap();
        shard.submit(0, vec![2.0]).unwrap();
        let (v, w) = shard.weights_at_least(1);
        assert_eq!(v, 2);
        assert_eq!(w, vec![4.0]);
    }

    #[test]
    fn evicted_pipe_submission_is_lease_expired() {
        let shard = RefShard::new(vec![0.0; 1], 3);
        shard.submit_at(0, 0, vec![3.0]).unwrap();
        assert_eq!(shard.evict(2), Ok(true));
        // Survivors 0 and 1 complete round 0 in degraded mode...
        shard.submit_at(0, 1, vec![5.0]).unwrap();
        assert_eq!(shard.weights_at(1), vec![4.0], "1/k with k=2");
        // ...and the dead pipe's late submission for that round is refused,
        // not silently treated as a duplicate.
        assert_eq!(
            shard.submit_at(0, 2, vec![9.0]),
            Err(Error::LeaseExpired { pipe: 2, round: 0 })
        );
        let rec = shard.round_record(0).unwrap();
        assert_eq!(rec, RoundRecord { round: 0, quorum: 2, members: 0b011 });
    }

    #[test]
    fn eviction_completes_a_stalled_round_degraded() {
        let shard = RefShard::new(vec![0.0; 2], 2);
        shard.submit_at(0, 0, vec![6.0, 6.0]).unwrap();
        // Pipe 1 never reports; its eviction finishes the round with k=1.
        assert_eq!(shard.evict(1), Ok(true));
        assert_eq!(shard.try_weights_at(1), Some(vec![6.0, 6.0]));
        assert_eq!(shard.round_record(0).unwrap().quorum, 1);
        assert_eq!(shard.live_count(), 1);
        assert_eq!(shard.member_mask(), 0b01);
    }

    #[test]
    fn readmit_at_uses_the_common_boundary_and_clamps_to_the_next_round() {
        let shard = RefShard::new(vec![0.0; 1], 2);
        shard.evict(1).unwrap();
        // A server-wide boundary ahead of this shard is taken verbatim:
        // pipe 1 is not required until round 5.
        assert_eq!(shard.readmit_at(1, 5), Ok(true));
        shard.submit_at(0, 0, vec![2.0]).unwrap();
        assert_eq!(shard.try_weights_at(1), Some(vec![2.0]), "round 0 must not wait for pipe 1");
        assert_eq!(shard.round_record(0).unwrap().quorum, 1);
        // A boundary behind the shard's own version is clamped forward —
        // a rejoiner is never required for the round already in flight.
        shard.evict(1).unwrap();
        assert_eq!(shard.readmit_at(1, 0), Ok(true));
        shard.submit_at(1, 0, vec![4.0]).unwrap();
        assert_eq!(shard.try_weights_at(2), Some(vec![6.0]), "round 1 must not wait for pipe 1");
        // From the clamped boundary on, the rejoiner is required again.
        shard.submit_at(2, 0, vec![6.0]).unwrap();
        assert_eq!(shard.try_weights_at(3), None, "round 2 must wait for pipe 1");
        shard.submit_at(2, 1, vec![8.0]).unwrap();
        assert_eq!(
            shard.round_record(2).unwrap(),
            RoundRecord { round: 2, quorum: 2, members: 0b11 }
        );
        // Readmitting a live member never slides its boundary.
        assert_eq!(shard.readmit_at(1, 40), Ok(false));
        assert!(shard.is_member(1));
    }

    #[test]
    fn evicting_the_last_member_is_quorum_lost() {
        let shard = RefShard::new(vec![0.0; 2], 2);
        shard.evict(0).unwrap();
        assert_eq!(shard.evict(1), Err(Error::QuorumLost { live: 1, round: 0 }));
        // The survivor is still a member and can finish the round alone.
        shard.submit_at(0, 1, vec![2.0, 2.0]).unwrap();
        assert_eq!(shard.try_weights_at(1), Some(vec![2.0, 2.0]));
        // Double eviction of an already-dead pipe is a no-op.
        assert_eq!(shard.evict(0), Ok(false));
    }

    #[test]
    fn duplicate_submit_straddling_a_quorum_change_is_not_double_counted() {
        let shard = RefShard::new(vec![0.0; 1], 3);
        assert_eq!(shard.submit_at(0, 0, vec![3.0]), Ok(SubmitOutcome::Applied));
        // Quorum shrinks mid-round; pipe 1's eviction applies round 0 over
        // pipes {0, 2} once pipe 2 reports.
        shard.evict(1).unwrap();
        shard.submit_at(0, 2, vec![5.0]).unwrap();
        assert_eq!(shard.version(), 1);
        assert_eq!(shard.snapshot(), vec![4.0]);
        // Pipe 0's retransmission of its round-0 submit — sent before it
        // learned the quorum changed — must be a duplicate, not a new
        // contribution under the new 1/k.
        assert_eq!(shard.submit_at(0, 0, vec![3.0]), Ok(SubmitOutcome::Duplicate));
        assert_eq!(shard.snapshot(), vec![4.0]);
    }

    #[test]
    fn rejoin_is_required_only_from_the_next_round_boundary() {
        let shard = RefShard::new(vec![0.0; 1], 2);
        shard.submit_at(0, 0, vec![2.0]).unwrap();
        shard.evict(1).unwrap(); // round 0 applies with k=1
        assert_eq!(shard.version(), 1);
        assert_eq!(shard.readmit(1), Ok(true));
        assert!(shard.is_member(1));
        // Round 1 (version 1) must NOT wait for the rejoiner: pipe 0 alone
        // completes it...
        shard.submit_at(1, 0, vec![4.0]).unwrap();
        assert_eq!(shard.version(), 2);
        assert_eq!(shard.round_record(1).unwrap().quorum, 1);
        // ...but round 2 requires both again.
        shard.submit_at(2, 0, vec![1.0]).unwrap();
        assert_eq!(shard.version(), 2, "round 2 must wait for the rejoiner");
        shard.submit_at(2, 1, vec![3.0]).unwrap();
        assert_eq!(shard.version(), 3);
        assert_eq!(
            shard.round_record(2).unwrap(),
            RoundRecord { round: 2, quorum: 2, members: 0b11 }
        );
        // Readmitting a live member is a no-op.
        assert_eq!(shard.readmit(1), Ok(false));
    }

    #[test]
    fn weights_at_least_wakes_on_a_degraded_version_bump() {
        let shard = Arc::new(RefShard::new(vec![0.0; 1], 2));
        shard.submit_at(0, 0, vec![8.0]).unwrap();
        let waiter = {
            let shard = Arc::clone(&shard);
            std::thread::spawn(move || shard.weights_at_least(1))
        };
        // Give the waiter time to block on version 0 → 1.
        std::thread::sleep(std::time::Duration::from_millis(30));
        shard.evict(1).unwrap(); // degraded apply bumps the version
        let (v, w) = waiter.join().unwrap();
        assert_eq!(v, 1);
        assert_eq!(w, vec![8.0]);
    }

    #[test]
    fn weights_within_times_out_on_a_stalled_round() {
        let shard = RefShard::new(vec![0.0; 2], 2);
        assert_eq!(shard.weights_within(1, std::time::Duration::from_millis(20)), None);
        shard.submit_at(0, 0, vec![2.0, 0.0]).unwrap();
        shard.submit_at(0, 1, vec![0.0, 2.0]).unwrap();
        let (v, w) = shard.weights_within(1, std::time::Duration::from_millis(20)).unwrap();
        assert_eq!(v, 1);
        assert_eq!(w, vec![1.0, 1.0]);
    }

    #[test]
    fn with_version_resumes_at_the_recorded_round() {
        let shard = RefShard::with_version(vec![7.0; 2], 2, 5);
        assert_eq!(shard.version(), 5);
        assert_eq!(shard.versioned_snapshot(), (5, vec![7.0, 7.0]));
        shard.submit_at(5, 0, vec![1.0, 1.0]).unwrap();
        shard.submit_at(5, 1, vec![3.0, 3.0]).unwrap();
        assert_eq!(shard.try_weights_at(6), Some(vec![9.0, 9.0]));
    }

    #[test]
    fn local_channel_matches_direct_shard_access() {
        let seed = 61;
        let task = SyntheticTask::copy_translate(16, 4, 44);
        let n = 2;
        // Trainer built through the explicit LocalShards channel.
        let (stages, opts) = replicas(n, seed);
        let k = stages[0].len();
        let shards: Vec<Arc<RefShard>> =
            (0..k).map(|s| Arc::new(RefShard::new(stages[0][s].params_flat(), n))).collect();
        let eval = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(seed));
        let mut via_channel = ElasticTrainer::with_channel(
            stages,
            opts,
            2,
            None,
            eval,
            Arc::new(LocalShards::new(shards)),
        );
        // Default-constructed trainer.
        let (stages2, opts2) = replicas(n, seed);
        let eval2 = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(seed));
        let mut direct = ElasticTrainer::new(stages2, opts2, 2, None, eval2);
        for r in 0..3 {
            let batches: Vec<_> = (0..n as u64).map(|i| task.batch(4, r * 2 + i)).collect();
            let a = via_channel.round(&batches);
            let b = direct.round(&batches);
            assert_eq!(a, b, "round {r}");
        }
        for s in 0..k {
            assert_eq!(via_channel.reference(s), direct.reference(s), "stage {s}");
        }
    }
}
