//! End-to-end fault-tolerance tests: worker crash → lease eviction →
//! degraded-quorum rounds → rejoin, and server kill → checkpoint restore.
//!
//! These run the real TCP transport with a four-pipeline ensemble, so
//! they exercise the full stack the chaos demo narrates: membership
//! leases, the reaper, bounded pull waits with client retransmission,
//! per-round membership records, and atomic reference checkpoints.

use avgpipe_suite::demo;
use ea_comms::{
    RemoteShards, RetryConfig, ShardChannel, ShardClient, TcpConfig, TcpServer, TcpTransport,
};
use ea_data::{Batch, SyntheticTask};
use ea_models::gnmt_analogue;
use ea_runtime::{ElasticTrainer, ElasticWorker, FtConfig, RefCheckpoint, RefShardServer};
use ea_tensor::TensorRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pipelines in the fault-tolerance ensemble.
const N: usize = 4;
/// Rounds every surviving pipeline completes.
const ROUNDS: u64 = 12;

fn alpha() -> f32 {
    1.0 / N as f32
}

/// Deep retry budget: the fault-tolerant server answers pulls within its
/// bounded wait and relies on retransmission while rounds stall.
fn retry() -> RetryConfig {
    RetryConfig { reply_timeout: Duration::from_millis(100), max_attempts: 200 }
}

fn connect(addr: &str, pipe: usize) -> Arc<dyn ShardChannel> {
    let tcp = TcpTransport::connect(addr, TcpConfig::default()).expect("connect");
    let client = ShardClient::handshake(Box::new(tcp), pipe, retry()).expect("handshake");
    Arc::new(RemoteShards::new(vec![client]).expect("channel"))
}

fn worker(pipe: usize, channel: Arc<dyn ShardChannel>) -> ElasticWorker {
    ElasticWorker::new(
        demo::model_stages(),
        demo::optimizers(),
        demo::MICROS,
        alpha(),
        pipe,
        channel,
    )
}

fn batch_for(task: &SyntheticTask, round: u64, pipe: usize) -> Batch {
    task.batch(demo::BATCH, round * N as u64 + pipe as u64)
}

/// Fault-free in-process baseline over the same four-pipeline schedule.
fn baseline_final_loss() -> f32 {
    let stages = (0..N).map(|_| demo::model_stages()).collect();
    let opts = (0..N).map(|_| demo::optimizers()).collect();
    let eval = gnmt_analogue(demo::CFG, &mut TensorRng::seed_from_u64(demo::MODEL_SEED));
    let mut trainer = ElasticTrainer::new(stages, opts, demo::MICROS, Some(alpha()), eval);
    let task = demo::task();
    let mut last = f32::NAN;
    for r in 0..ROUNDS {
        let batches: Vec<Batch> = (0..N).map(|p| batch_for(&task, r, p)).collect();
        last = trainer.round(&batches);
    }
    last
}

fn wait_until(what: &str, timeout: Duration, mut done: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !done() {
        assert!(t0.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn crashed_worker_is_evicted_survivors_degrade_and_a_restart_rejoins() {
    let server = Arc::new(
        RefShardServer::from_initial_weights(demo::initial_reference(), N).with_fault_tolerance(
            FtConfig {
                lease: Duration::from_millis(400),
                reap_interval: Duration::from_millis(100),
                pull_wait: Duration::from_millis(100),
                checkpoint: None,
            },
        ),
    );
    let listener = TcpServer::bind("127.0.0.1:0", TcpConfig::default()).expect("bind");
    let addr = listener.local_addr().expect("local addr").to_string();
    let _accept = server.serve_background(Box::new(listener));

    // Three survivors run all rounds; their pulls stall while round 4 is
    // missing pipe 3's delta and resume once the reaper completes it
    // degraded. They hold the final two rounds until the restarted pipe 3
    // has resynced — that pins its readmission boundary before the last
    // round, so the quorum provably recovers to N (purely a determinism
    // gate for the test; the protocol never requires it).
    let rejoined = Arc::new(AtomicBool::new(false));
    let survivors: Vec<_> = (0..N - 1)
        .map(|p| {
            let channel = connect(&addr, p);
            let rejoined = Arc::clone(&rejoined);
            std::thread::spawn(move || {
                let task = demo::task();
                let mut w = worker(p, channel);
                let mut last = f32::NAN;
                let deadline = Instant::now() + Duration::from_secs(60);
                while w.rounds_done() < ROUNDS {
                    let r = w.rounds_done();
                    while r >= ROUNDS - 2 && !rejoined.load(Ordering::Acquire) {
                        assert!(Instant::now() < deadline, "pipe {p}: rejoin never happened");
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    last = w.round(&batch_for(&task, r, p)).expect("survivor round failed");
                    assert!(last.is_finite(), "pipe {p} loss diverged");
                }
                last
            })
        })
        .collect();

    // Pipe 3 trains for four rounds, then "crashes": the thread returns,
    // the connection drops, and the worker goes silent mid-round 4 from
    // the server's perspective (its round-4 delta is never sent).
    let crasher = {
        let channel = connect(&addr, N - 1);
        std::thread::spawn(move || {
            let task = demo::task();
            let mut w = worker(N - 1, channel);
            for _ in 0..4 {
                let r = w.rounds_done();
                w.round(&batch_for(&task, r, N - 1)).expect("pre-crash round failed");
            }
        })
    };
    crasher.join().unwrap();

    // The lease expires and the reaper evicts pipe 3.
    wait_until("eviction", Duration::from_secs(10), || server.metrics().evictions >= 1);
    assert_eq!(server.live_count(), N - 1, "quorum must drop to the survivors");

    // Restart pipe 3: re-handshake, adopt the live reference and round,
    // re-enter the quorum at the next boundary.
    let rejoiner = {
        let channel = connect(&addr, N - 1);
        let rejoined = Arc::clone(&rejoined);
        std::thread::spawn(move || {
            let task = demo::task();
            let mut w = worker(N - 1, channel);
            let start = w.resync().expect("resync");
            rejoined.store(true, Ordering::Release);
            while w.rounds_done() < ROUNDS {
                let r = w.rounds_done();
                if w.round(&batch_for(&task, r, N - 1)).is_err() {
                    // Raced a round that completed without us; realign.
                    w.resync().expect("resync after race");
                }
            }
            start
        })
    };

    let mut finals = Vec::new();
    for h in survivors {
        finals.push(h.join().expect("survivor panicked"));
    }
    let rejoin_round = rejoiner.join().expect("rejoiner panicked");
    assert!(rejoin_round >= 4, "rejoiner must resync past its crash round, got {rejoin_round}");

    // Every shard reached the target round despite the crash.
    for shard in server.shards() {
        assert!(shard.version() >= ROUNDS);
    }
    // The membership records show the quorum dipping to 3 and recovering
    // to 4 once the restarted worker was readmitted.
    let records = server.shards()[0].round_records();
    assert!(
        records.iter().any(|r| r.quorum == (N - 1) as u32),
        "no degraded round recorded: {records:?}"
    );
    let last = records.iter().find(|r| r.round == ROUNDS - 1).expect("final round record");
    assert_eq!(last.quorum, N as u32, "quorum must be back to full at the final round");
    assert_eq!(last.members, (1u64 << N) - 1, "all pipelines in the final round");

    let m = server.metrics();
    assert!(m.evictions >= 1, "no eviction recorded");
    assert!(m.rejoins >= 1, "no rejoin recorded");
    assert!(m.degraded_rounds >= 1, "no degraded round counted");
    assert_eq!(server.live_count(), N, "quorum must be back to {N}");

    // Degraded rounds renormalize over the survivors, so the run is not
    // byte-identical to the fault-free baseline — but it must stay in the
    // same training regime.
    let base = baseline_final_loss();
    for loss in finals {
        assert!(
            (loss - base).abs() < 0.2,
            "survivor final loss {loss} drifted from fault-free baseline {base}"
        );
    }
}

#[test]
fn server_kill_and_restart_restores_from_checkpoint_and_resumes() {
    let ckpt_path = std::env::temp_dir().join(format!("ea-ft-restart-{}.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&ckpt_path);
    let n = demo::N_PIPELINES;

    // Phase 1: fault-tolerant server with fast periodic checkpoints;
    // both workers complete four rounds, then the server is torn down.
    let addr1;
    {
        let server = Arc::new(
            RefShardServer::from_initial_weights(demo::initial_reference(), n)
                .with_fault_tolerance(FtConfig {
                    lease: Duration::from_millis(2000),
                    reap_interval: Duration::from_millis(40),
                    pull_wait: Duration::from_millis(100),
                    checkpoint: Some((ckpt_path.clone(), Duration::from_millis(40))),
                }),
        );
        let listener = TcpServer::bind("127.0.0.1:0", TcpConfig::default()).expect("bind");
        addr1 = listener.local_addr().expect("local addr").to_string();
        let _accept = server.serve_background(Box::new(listener));

        let workers: Vec<_> = (0..n)
            .map(|p| {
                let channel = connect(&addr1, p);
                std::thread::spawn(move || {
                    let task = demo::task();
                    let mut w = ElasticWorker::new(
                        demo::model_stages(),
                        demo::optimizers(),
                        demo::MICROS,
                        demo::alpha(),
                        p,
                        channel,
                    );
                    for r in 0..4 {
                        w.round(&demo::worker_batch(&task, r, p)).expect("round failed");
                    }
                })
            })
            .collect();
        for h in workers {
            h.join().expect("worker panicked");
        }
        // A consistent checkpoint at the final round lands on disk.
        wait_until("round-4 checkpoint", Duration::from_secs(10), || {
            RefCheckpoint::load(&ckpt_path).map(|c| c.round >= 4).unwrap_or(false)
        });
        // Server dropped here: the "kill". (A harder kill mid-write is
        // covered by the atomic-write unit tests — a torn temp file can
        // never shadow the last durable checkpoint.)
    }

    // Phase 2: a fresh server restores the shards from the checkpoint
    // and resumes at the recorded round.
    let ckpt = RefCheckpoint::load(&ckpt_path).expect("load checkpoint");
    assert_eq!(ckpt.round, 4);
    let server = Arc::new(RefShardServer::from_checkpoint(&ckpt, n));
    assert_eq!(server.metrics().checkpoint_restores, 1);
    for (shard, saved) in server.shards().iter().zip(&ckpt.shards) {
        assert_eq!(shard.version(), ckpt.round);
        assert_eq!(&shard.snapshot(), saved, "restored weights differ from the checkpoint");
    }

    let listener = TcpServer::bind("127.0.0.1:0", TcpConfig::default()).expect("bind");
    let addr2 = listener.local_addr().expect("local addr").to_string();
    let _accept = server.serve_background(Box::new(listener));

    // Rejoining workers resync to the restored round and train on.
    let workers: Vec<_> = (0..n)
        .map(|p| {
            let channel = connect(&addr2, p);
            std::thread::spawn(move || {
                let task = demo::task();
                let mut w = ElasticWorker::new(
                    demo::model_stages(),
                    demo::optimizers(),
                    demo::MICROS,
                    demo::alpha(),
                    p,
                    channel,
                );
                let start = w.resync().expect("resync");
                assert_eq!(start, 4, "workers must resume at the checkpointed round");
                while w.rounds_done() < 8 {
                    let r = w.rounds_done();
                    let loss =
                        w.round(&demo::worker_batch(&task, r, p)).expect("post-restart round");
                    assert!(loss.is_finite());
                }
            })
        })
        .collect();
    for h in workers {
        h.join().expect("worker panicked");
    }
    for shard in server.shards() {
        assert_eq!(shard.version(), 8, "training must resume from round 4 to 8");
    }
    let _ = std::fs::remove_file(&ckpt_path);
}
