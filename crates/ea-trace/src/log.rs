//! Leveled runtime logging with per-site rate limiting.
//!
//! The runtime's stderr diagnostics route through [`log`] (usually via
//! the [`log_event!`](crate::log_event) macro): every message still
//! reaches stderr — the examples and chaos scripts grep for them — but
//! each one also bumps a per-level counter in the global metrics
//! registry and, at the `spans` level, records an instant event on the
//! logging thread's timeline. Chatty sites (lease-eviction storms) wrap
//! their call in a [`RateLimit`] so a misbehaving cluster cannot flood
//! stderr; suppressed messages are counted, never silently lost.

use crate::clock;
use crate::metrics;
use crate::name::StaticName;
use crate::ring::Category;
use crate::span::instant;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Severity of a runtime log event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Unrecoverable or data-affecting conditions.
    Error,
    /// Degraded-but-continuing conditions (evictions, retries).
    Warn,
    /// Lifecycle milestones (rejoins, checkpoints, reconnects).
    Info,
}

impl LogLevel {
    fn as_str(self) -> &'static str {
        match self {
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
        }
    }
}

static LOG_MARK: StaticName = StaticName::new("log");

/// Emits one leveled log line: prints `[target] message` to stderr,
/// bumps `ea_log_{level}_total` in the global registry, and records an
/// instant event when spans are on. Prefer the
/// [`log_event!`](crate::log_event) macro at call sites.
pub fn log(level: LogLevel, target: &str, args: fmt::Arguments<'_>) {
    metrics::global().counter(&format!("ea_log_{}_total", level.as_str())).inc();
    instant(&LOG_MARK, Category::Runtime, level as u64);
    eprintln!("[{target}] {args}");
}

/// Formats and emits a leveled log event:
///
/// ```
/// ea_trace::log_event!(Warn, "refshard", "EVICTED pipe={} round={}", 1, 7);
/// ```
#[macro_export]
macro_rules! log_event {
    ($lvl:ident, $target:expr, $($arg:tt)*) => {
        $crate::log::log($crate::log::LogLevel::$lvl, $target, format_args!($($arg)*))
    };
}

/// A token-bucket-per-window rate limiter for one log site.
///
/// Allows `max_per_window` events per window (1 s); the rest are
/// suppressed and counted. Declare one `static` per chatty site.
pub struct RateLimit {
    window_start_us: AtomicU64,
    in_window: AtomicU64,
    suppressed: AtomicU64,
    max_per_window: u64,
}

/// The rate-limit window (µs).
const WINDOW_US: u64 = 1_000_000;

impl RateLimit {
    /// A limiter allowing `max_per_sec` events per second.
    pub const fn new(max_per_sec: u64) -> Self {
        RateLimit {
            window_start_us: AtomicU64::new(0),
            in_window: AtomicU64::new(0),
            suppressed: AtomicU64::new(0),
            max_per_window: max_per_sec,
        }
    }

    /// True if this event fits the budget; false (and counted as
    /// suppressed) otherwise.
    pub fn allow(&self) -> bool {
        self.allow_at(clock::now_us())
    }

    fn allow_at(&self, now: u64) -> bool {
        let start = self.window_start_us.load(Relaxed);
        if now.saturating_sub(start) >= WINDOW_US {
            // A new window. One winner resets the count; racers just
            // spend from the fresh budget.
            if self.window_start_us.compare_exchange(start, now, Relaxed, Relaxed).is_ok() {
                self.in_window.store(0, Relaxed);
            }
        }
        if self.in_window.fetch_add(1, Relaxed) < self.max_per_window {
            true
        } else {
            self.suppressed.fetch_add(1, Relaxed);
            false
        }
    }

    /// Events suppressed since construction.
    pub fn suppressed(&self) -> u64 {
        self.suppressed.load(Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_counts_per_level() {
        let c = metrics::global().counter("ea_log_warn_total");
        let before = c.get();
        log(LogLevel::Warn, "test", format_args!("something degraded"));
        crate::log_event!(Warn, "test", "degraded {}", 2);
        assert_eq!(c.get(), before + 2);
    }

    #[test]
    fn rate_limit_caps_a_burst_and_counts_suppressed() {
        let rl = RateLimit::new(5);
        let allowed = (0..20).filter(|_| rl.allow()).count();
        assert_eq!(allowed, 5);
        assert_eq!(rl.suppressed(), 15);
    }

    #[test]
    fn rate_limit_window_refills() {
        let rl = RateLimit::new(1);
        assert!(rl.allow_at(10));
        assert!(!rl.allow_at(20), "budget of 1 spent");
        // A full window later the budget refills.
        assert!(rl.allow_at(WINDOW_US + 30));
        assert!(!rl.allow_at(WINDOW_US + 40));
        assert_eq!(rl.suppressed(), 2);
    }
}
