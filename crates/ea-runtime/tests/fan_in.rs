//! Fan-in stress test: 64 concurrent TCP workers against the reactor
//! server, checked for byte-identical reference weights against an
//! in-process replay.
//!
//! This is the end-to-end guarantee the reactor must preserve: arrival
//! order of deltas under heavy multiplexing (parked pulls, cross-thread
//! sends, partial reads) must not change a single bit of the reference,
//! because `RefShard` folds each round's deltas in pipe order at round
//! completion. The test also asserts the server observed *zero* protocol
//! violations and CRC failures — multiplexed frame reassembly must be
//! byte-perfect under concurrency, not merely eventually consistent.

use std::net::TcpListener;
use std::time::Duration;

use ea_comms::reactor::ReactorConfig;
use ea_comms::tcp::{TcpConfig, TcpTransport};
use ea_comms::{Message, RetryConfig, ShardClient, Transport};
use ea_runtime::{RefShard, RefShardServer, ServerMetricsSnapshot};

const WORKERS: usize = 64;
const ROUNDS: u64 = 3;
const DIM: usize = 256;

/// Deterministic per-(pipe, round) delta, distinct in every element.
fn delta(pipe: usize, round: u64) -> Vec<f32> {
    (0..DIM)
        .map(|i| ((pipe as f32) - 31.5) * 0.125 + (round as f32) * 0.01 + (i as f32) * 1e-4)
        .collect()
}

#[test]
fn sixty_four_tcp_workers_produce_byte_identical_reference() {
    let init = vec![0.5f32; DIM];

    // In-process replay: the ground truth the reactor must reproduce.
    let reference = RefShard::new(init.clone(), WORKERS);
    for round in 0..ROUNDS {
        for pipe in 0..WORKERS {
            reference.submit_at(round, pipe, delta(pipe, round)).unwrap();
        }
    }
    let expected: Vec<Vec<f32>> = (0..=ROUNDS).map(|v| reference.weights_at_least(v).1).collect();

    // Reactor server on 2 event-loop threads.
    let server = RefShardServer::from_initial_weights(vec![init], WORKERS);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let reactor = server
        .serve_reactor(listener, ReactorConfig { threads: 2, ..ReactorConfig::default() })
        .unwrap();
    let addr = reactor.local_addr();

    let workers: Vec<_> = (0..WORKERS)
        .map(|pipe| {
            std::thread::Builder::new()
                .name(format!("fanin-worker-{pipe}"))
                .stack_size(256 * 1024)
                .spawn(move || {
                    let conn = TcpTransport::connect(addr, TcpConfig::default()).unwrap();
                    let retry =
                        RetryConfig { reply_timeout: Duration::from_secs(5), max_attempts: 10 };
                    let mut client = ShardClient::handshake(Box::new(conn), pipe, retry).unwrap();
                    for round in 0..ROUNDS {
                        // Step ❷: blocks (parked server-side) until every
                        // pipeline finished round-1 — the contended path.
                        let pulled = client.pull(0, round).unwrap();
                        assert_eq!(pulled.len(), DIM);
                        client.submit(0, round, delta(pipe, round)).unwrap();
                    }
                    // Final pull: reference after all rounds.
                    client.pull(0, ROUNDS).unwrap()
                })
                .unwrap()
        })
        .collect();

    for (pipe, w) in workers.into_iter().enumerate() {
        let final_pull = w.join().unwrap_or_else(|_| panic!("worker {pipe} panicked"));
        assert_eq!(final_pull.len(), DIM);
        for (i, (got, want)) in final_pull.iter().zip(expected[ROUNDS as usize].iter()).enumerate()
        {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "worker {pipe}: final weights differ at element {i}: {got} vs {want}"
            );
        }
    }

    // The server's own shard state is bit-identical to the replay.
    let served = server.shards()[0].weights_at_least(ROUNDS).1;
    for (i, (got, want)) in served.iter().zip(expected[ROUNDS as usize].iter()).enumerate() {
        assert_eq!(got.to_bits(), want.to_bits(), "server shard differs at element {i}");
    }

    // Frame reassembly under fan-in must be flawless.
    let m: ServerMetricsSnapshot = server.metrics();
    assert_eq!(m.protocol_violations, 0, "protocol violations: {m:?}");
    assert_eq!(m.crc_failures, 0, "CRC failures: {m:?}");
    assert_eq!(m.slow_consumer_evictions, 0, "slow-consumer evictions: {m:?}");

    reactor.shutdown();
}

/// Every intermediate version pulled by every worker matches the replay —
/// not just the final state. Uses fewer workers so parked pulls resolve
/// through both completion paths (inline after submit, and handler poll).
#[test]
fn intermediate_pulls_match_the_replay_bit_for_bit() {
    const N: usize = 8;
    let init = vec![-1.25f32; DIM];

    // Snapshot the replay after every round: `weights_at_least` returns
    // the *current* weights, so the history must be captured as it forms.
    let reference = RefShard::new(init.clone(), N);
    let mut expected: Vec<Vec<f32>> = vec![reference.weights_at_least(0).1];
    for round in 0..ROUNDS {
        for pipe in 0..N {
            reference.submit_at(round, pipe, delta(pipe, round)).unwrap();
        }
        expected.push(reference.weights_at_least(round + 1).1);
    }

    let server = RefShardServer::from_initial_weights(vec![init], N);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let reactor = server
        .serve_reactor(listener, ReactorConfig { threads: 1, ..ReactorConfig::default() })
        .unwrap();
    let addr = reactor.local_addr();

    let workers: Vec<_> = (0..N)
        .map(|pipe| {
            std::thread::spawn(move || {
                let conn = TcpTransport::connect(addr, TcpConfig::default()).unwrap();
                let retry = RetryConfig { reply_timeout: Duration::from_secs(5), max_attempts: 10 };
                let mut client = ShardClient::handshake(Box::new(conn), pipe, retry).unwrap();
                let mut pulls = Vec::new();
                for round in 0..ROUNDS {
                    pulls.push(client.pull(0, round).unwrap());
                    client.submit(0, round, delta(pipe, round)).unwrap();
                }
                pulls.push(client.pull(0, ROUNDS).unwrap());
                pulls
            })
        })
        .collect();

    for (pipe, w) in workers.into_iter().enumerate() {
        let pulls = w.join().unwrap_or_else(|_| panic!("worker {pipe} panicked"));
        for (v, pulled) in pulls.iter().enumerate() {
            assert_eq!(pulled.len(), DIM, "worker {pipe} version {v}");
            for (i, (got, want)) in pulled.iter().zip(expected[v].iter()).enumerate() {
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "worker {pipe}, version {v}, element {i}: {got} vs {want}"
                );
            }
        }
    }

    let m = server.metrics();
    assert_eq!(m.protocol_violations, 0);
    assert_eq!(m.crc_failures, 0);
    reactor.shutdown();
}

/// A read-only weight subscription (the serving extension): the
/// subscriber gets the current snapshot immediately, a push at each
/// round boundary bit-identical to the reference, and never registers
/// lease membership.
#[test]
fn weight_subscription_pushes_round_boundaries_without_joining_lease() {
    const N: usize = 2;
    let init = vec![0.75f32; DIM];

    // Replay ground truth for versions 1 and 2.
    let reference = RefShard::new(init.clone(), N);
    let mut expected = Vec::new();
    for round in 0..2u64 {
        for pipe in 0..N {
            reference.submit_at(round, pipe, delta(pipe, round)).unwrap();
        }
        expected.push(reference.weights_at_least(round + 1).1);
    }

    let server = RefShardServer::from_initial_weights(vec![init.clone()], N);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let reactor = server
        .serve_reactor(listener, ReactorConfig { threads: 1, ..ReactorConfig::default() })
        .unwrap();
    let addr = reactor.local_addr();

    let live_before = server.live_count();
    let mut sub = TcpTransport::connect(addr, TcpConfig::default()).unwrap();
    sub.send(Message::SubscribeWeights { shard: 0 }).unwrap();
    match sub.recv().unwrap() {
        Message::WeightsUpdate { shard: 0, version: 0, weights } => assert_eq!(weights, init),
        other => panic!("expected immediate snapshot, got {other:?}"),
    }
    assert_eq!(server.live_count(), live_before, "subscription must not touch the lease table");

    // Two trainers drive two rounds; the subscriber just listens.
    let trainers: Vec<_> = (0..N)
        .map(|pipe| {
            std::thread::spawn(move || {
                let conn = TcpTransport::connect(addr, TcpConfig::default()).unwrap();
                let retry = RetryConfig { reply_timeout: Duration::from_secs(5), max_attempts: 10 };
                let mut client = ShardClient::handshake(Box::new(conn), pipe, retry).unwrap();
                for round in 0..2u64 {
                    client.pull(0, round).unwrap();
                    client.submit(0, round, delta(pipe, round)).unwrap();
                }
            })
        })
        .collect();
    for t in trainers {
        t.join().unwrap();
    }

    // Round-boundary pushes arrive in version order, bit-identical to
    // the replay. (Push granularity is per completed round observed at
    // publish time; with two rapid rounds the first push may already
    // carry version 2 — accept any strictly-increasing version chain
    // ending at 2 whose payloads match the replay.)
    let mut last_version = 0u64;
    while last_version < 2 {
        match sub.recv().expect("round-boundary push") {
            Message::WeightsUpdate { shard: 0, version, weights } => {
                assert!(version > last_version, "non-monotonic push {version}");
                let want = &expected[version as usize - 1];
                for (i, (got, want)) in weights.iter().zip(want.iter()).enumerate() {
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "push v{version} differs at element {i}"
                    );
                }
                last_version = version;
            }
            other => panic!("expected WeightsUpdate, got {other:?}"),
        }
    }

    let m = server.metrics();
    assert_eq!(m.protocol_violations, 0);
    reactor.shutdown();
}
