//! Epoll-backed [`Reactor`] implementation (Linux x86_64/aarch64).
//!
//! Topology: `N` event-loop threads, each owning one [`crate::sys::Epoll`]
//! instance, a slab of connections, and a wake pipe. Thread 0 additionally
//! owns the nonblocking listener and deals new connections round-robin.
//! Cross-thread traffic (new connections, handler sends addressed to a
//! connection another thread owns, handler closes) goes through a small
//! mutex-guarded inbox plus a wake-pipe write; the hot path — readable
//! socket → frame decode → handler → reply flush — runs entirely on one
//! thread with no shared locks.
//!
//! Level-triggered epoll keeps the state machine simple: a partially
//! drained socket simply fires again on the next wait. The interest set
//! is `IN|RDHUP` normally and `IN|OUT|RDHUP` only while a connection has
//! unsent bytes (tracked via `Conn::armed_write` to skip redundant
//! `EPOLL_CTL_MOD` calls).

use std::io;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ea_trace::{Category, StaticName};

use super::{
    recycle_message, resolve_threads, ConnId, DisconnectReason, Outbox, ReactorConfig,
    ReactorHandler, GEN_MASK,
};
use crate::conn::Conn;
use crate::sys::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::wire::Message;

/// Epoll data tag for the wake pipe.
const WAKE_TOKEN: u64 = u64::MAX;
/// Epoll data tag for the listener (thread 0 only).
const LISTEN_TOKEN: u64 = u64::MAX - 1;
/// Max decoded messages per readiness event before yielding to other
/// connections (level-triggered epoll re-reports the remainder).
const READ_BURST: usize = 64;
/// Timer-wheel slot count; a full revolution spans `WHEEL_SLOTS` granules.
const WHEEL_SLOTS: usize = 16;

static EPOLL_WAIT_SPAN: StaticName = StaticName::new("epoll_wait");
static DECODE_SPAN: StaticName = StaticName::new("frame_decode");
static DISPATCH_SPAN: StaticName = StaticName::new("reactor_dispatch");
static FLUSH_SPAN: StaticName = StaticName::new("reactor_flush");

/// Cross-thread mailbox: drained by the owning event loop after a wake.
#[derive(Default)]
struct Inbox {
    conns: Vec<TcpStream>,
    sends: Vec<(ConnId, Message)>,
    closes: Vec<(ConnId, String)>,
}

struct ThreadShared {
    inbox: Mutex<Inbox>,
    wake_tx: UnixStream,
    /// Set by the owning worker while draining: every locally-owned
    /// connection has flushed its outbound queue and the inbox is empty.
    drained: AtomicBool,
}

struct Shared {
    handler: Arc<dyn ReactorHandler>,
    idle_timeout: Option<Duration>,
    max_outbound_bytes: usize,
    handler_poll: Duration,
    stop: AtomicBool,
    /// Graceful-shutdown phase: refuse new connections, flush what is
    /// queued, report per-thread drain status.
    draining: AtomicBool,
    threads: Vec<ThreadShared>,
    /// Round-robin cursor for dealing accepted connections to threads.
    rr: AtomicUsize,
    live_conns: AtomicUsize,
}

impl Shared {
    fn wake(&self, thread: usize) {
        // A full (nonblocking) pipe means a wake is already pending —
        // that is exactly the state we want, so the error is ignored.
        let _ = (&self.threads[thread].wake_tx).write(&[1]);
    }

    fn wake_all(&self) {
        for t in 0..self.threads.len() {
            self.wake(t);
        }
    }

    /// Routes an outbox produced *outside* any event-loop thread (the
    /// graceful-shutdown path): everything goes through the owning
    /// thread's inbox, followed by a wake.
    fn route_external(&self, outbox: &mut Outbox) {
        let n = self.threads.len();
        for (to, msg) in outbox.sends.drain(..) {
            let t = to.thread();
            if t < n {
                self.threads[t].inbox.lock().expect("reactor inbox poisoned").sends.push((to, msg));
            } else {
                recycle_message(msg);
            }
        }
        for (to, why) in outbox.closes.drain(..) {
            let t = to.thread();
            if t < n {
                self.threads[t]
                    .inbox
                    .lock()
                    .expect("reactor inbox poisoned")
                    .closes
                    .push((to, why));
            }
        }
        self.wake_all();
    }
}

/// Cloneable handle that cuts short every event-loop thread's
/// `epoll_wait` sleep, so deferred work completed outside the reactor
/// (e.g. an inference engine finishing a batch on its own thread) is
/// picked up by [`ReactorHandler::poll`] immediately instead of at the
/// next `handler_poll` tick. Safe to call from any thread, at any rate:
/// redundant wakes coalesce in the wake pipe.
#[derive(Clone)]
pub struct ReactorWaker {
    shared: Arc<Shared>,
}

impl ReactorWaker {
    /// Wakes every event-loop thread.
    pub fn wake(&self) {
        self.shared.wake_all();
    }
}

/// Multi-threaded epoll event-loop server. See [`super`] for semantics.
pub struct Reactor {
    shared: Arc<Shared>,
    joins: Vec<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl Reactor {
    /// Takes ownership of `listener` and serves it until [`shutdown`]
    /// (or drop). Accepted connections speak the `frame` + `wire`
    /// protocol; decoded messages go to `handler`.
    ///
    /// [`shutdown`]: Reactor::shutdown
    pub fn spawn(
        listener: TcpListener,
        handler: Arc<dyn ReactorHandler>,
        cfg: ReactorConfig,
    ) -> io::Result<Reactor> {
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let n_threads = resolve_threads(cfg.threads);

        let mut thread_shared = Vec::with_capacity(n_threads);
        let mut wake_rxs = Vec::with_capacity(n_threads);
        for _ in 0..n_threads {
            let (tx, rx) = UnixStream::pair()?;
            tx.set_nonblocking(true)?;
            rx.set_nonblocking(true)?;
            thread_shared.push(ThreadShared {
                inbox: Mutex::new(Inbox::default()),
                wake_tx: tx,
                drained: AtomicBool::new(false),
            });
            wake_rxs.push(rx);
        }

        let shared = Arc::new(Shared {
            handler,
            idle_timeout: cfg.idle_timeout,
            max_outbound_bytes: cfg.max_outbound_bytes,
            handler_poll: cfg.handler_poll,
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            threads: thread_shared,
            rr: AtomicUsize::new(0),
            live_conns: AtomicUsize::new(0),
        });

        let mut joins = Vec::with_capacity(n_threads);
        let mut listener = Some(listener);
        for (idx, wake_rx) in wake_rxs.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            let listener = if idx == 0 { listener.take() } else { None };
            let join = std::thread::Builder::new()
                .name(format!("ea-reactor-{idx}"))
                .spawn(move || Worker::new(idx, shared, listener, wake_rx).run())?;
            joins.push(join);
        }
        Ok(Reactor { shared, joins, local_addr })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Currently-open connections across all event-loop threads.
    pub fn live_connections(&self) -> usize {
        self.shared.live_conns.load(Ordering::Relaxed)
    }

    /// A handle that wakes the event loops from any thread. See
    /// [`ReactorWaker`].
    pub fn waker(&self) -> ReactorWaker {
        ReactorWaker { shared: Arc::clone(&self.shared) }
    }

    /// Stops the event loops, closing every connection with
    /// [`DisconnectReason::Shutdown`] (after a best-effort final flush),
    /// and joins the threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Graceful shutdown: gives the handler one [`on_shutdown`] callback
    /// to complete or reject its deferred work, stops accepting new
    /// connections, waits (up to `timeout`) until every connection's
    /// queued write buffer has drained to the socket, then closes
    /// everything with [`DisconnectReason::Shutdown`].
    ///
    /// [`on_shutdown`]: ReactorHandler::on_shutdown
    pub fn shutdown_graceful(mut self, timeout: Duration) {
        let mut outbox = Outbox::default();
        self.shared.handler.on_shutdown(&mut outbox);
        self.shared.route_external(&mut outbox);
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.wake_all();
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.shared.threads.iter().all(|t| t.drained.load(Ordering::SeqCst)) {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for t in 0..self.shared.threads.len() {
            self.shared.wake(t);
        }
        for join in self.joins.drain(..) {
            let _ = join.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Coarse idle-timeout wheel: connections are checked roughly once per
/// `granule` past their deadline, not exactly at it — idle reaping does
/// not need precision, and the wheel costs O(1) per insert/advance
/// regardless of connection count.
struct TimerWheel {
    timeout: Option<Duration>,
    granule: Duration,
    slots: Vec<Vec<usize>>,
    cursor: usize,
    next_tick: Option<Instant>,
}

impl TimerWheel {
    fn new(timeout: Option<Duration>) -> TimerWheel {
        let granule = timeout
            .map(|t| (t / 8).max(Duration::from_millis(10)))
            .unwrap_or(Duration::from_secs(3600));
        TimerWheel {
            timeout,
            granule,
            slots: vec![Vec::new(); WHEEL_SLOTS],
            cursor: 0,
            next_tick: timeout.map(|_| Instant::now() + granule),
        }
    }

    /// Schedules a liveness check for `slot` roughly `granules` granules
    /// from now.
    fn insert_at(&mut self, slot: usize, granules: usize) {
        if self.timeout.is_none() {
            return;
        }
        let g = granules.clamp(1, WHEEL_SLOTS - 1);
        let idx = (self.cursor + g) % WHEEL_SLOTS;
        self.slots[idx].push(slot);
    }

    /// Schedules the first check for a fresh connection: one granule past
    /// the timeout.
    fn insert(&mut self, slot: usize) {
        self.insert_at(slot, 9);
    }

    /// How long `epoll_wait` may sleep before the next tick is due.
    fn sleep_hint(&self, now: Instant) -> Option<Duration> {
        self.next_tick.map(|t| t.saturating_duration_since(now))
    }

    /// Advances the cursor past every due tick, draining fired slots into
    /// `due`. Entries may be stale (connection already closed) — the
    /// caller re-validates against the slab.
    fn advance(&mut self, now: Instant, due: &mut Vec<usize>) {
        while let Some(tick) = self.next_tick {
            if now < tick {
                break;
            }
            due.append(&mut self.slots[self.cursor]);
            self.cursor = (self.cursor + 1) % WHEEL_SLOTS;
            self.next_tick = Some(tick + self.granule);
        }
    }
}

struct Worker {
    idx: usize,
    shared: Arc<Shared>,
    ep: Epoll,
    listener: Option<TcpListener>,
    wake_rx: UnixStream,
    slab: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Per-slot generation counters; survive slot reuse so stale epoll
    /// events and stale `ConnId`s are detected.
    gens: Vec<u32>,
    wheel: TimerWheel,
    /// Reusable payload-encode scratch for outbound frames.
    scratch: Vec<u8>,
    /// Reusable handler outbox.
    outbox: Outbox,
    /// Reusable timer-wheel drain buffer.
    due: Vec<usize>,
}

impl Worker {
    fn new(
        idx: usize,
        shared: Arc<Shared>,
        listener: Option<TcpListener>,
        wake_rx: UnixStream,
    ) -> Worker {
        let ep = Epoll::new().expect("epoll_create1 failed");
        ep.add(wake_rx.as_raw_fd(), EPOLLIN, WAKE_TOKEN).expect("epoll_ctl(wake pipe) failed");
        if let Some(l) = &listener {
            ep.add(l.as_raw_fd(), EPOLLIN, LISTEN_TOKEN).expect("epoll_ctl(listener) failed");
        }
        let wheel = TimerWheel::new(shared.idle_timeout);
        Worker {
            idx,
            shared,
            ep,
            listener,
            wake_rx,
            slab: Vec::new(),
            free: Vec::new(),
            gens: Vec::new(),
            wheel,
            scratch: Vec::new(),
            outbox: Outbox::default(),
            due: Vec::new(),
        }
    }

    fn run(mut self) {
        let mut events = vec![EpollEvent::default(); 512];
        loop {
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            let timeout_ms = self.epoll_timeout();
            let n = {
                let _span = ea_trace::span_arg(&EPOLL_WAIT_SPAN, Category::Comm, self.idx as u64);
                self.ep.wait(&mut events, timeout_ms).unwrap_or_default()
            };
            for event in &events[..n] {
                let (ev, data) = (event.events, event.data);
                match data {
                    WAKE_TOKEN => self.drain_wake_pipe(),
                    LISTEN_TOKEN => self.accept_ready(),
                    _ => self.conn_event(data, ev),
                }
            }
            self.drain_inbox();
            self.poll_handler();
            self.reap_idle();
            if self.shared.draining.load(Ordering::SeqCst) {
                self.update_drained();
            }
        }
        self.teardown();
    }

    /// Draining phase: close the listener (refusing new connections) and
    /// report whether everything this thread owns has flushed. The flag
    /// may regress if a late inbox send re-queues bytes; the shutdown
    /// driver samples it until all threads agree or its deadline passes.
    fn update_drained(&mut self) {
        if let Some(l) = self.listener.take() {
            let _ = self.ep.delete(l.as_raw_fd());
        }
        let inbox_empty = {
            let g = self.shared.threads[self.idx].inbox.lock().expect("reactor inbox poisoned");
            g.conns.is_empty() && g.sends.is_empty() && g.closes.is_empty()
        };
        let flushed = self.slab.iter().flatten().all(|c| c.queued_bytes() == 0);
        self.shared.threads[self.idx].drained.store(inbox_empty && flushed, Ordering::SeqCst);
    }

    /// Sleep budget for the next `epoll_wait`: bounded by the handler's
    /// deferred-work cadence and the next timer-wheel tick. Wakes and
    /// readiness events cut it short, so the default is coarse.
    fn epoll_timeout(&self) -> i32 {
        let mut budget = Duration::from_millis(100);
        if self.shared.handler.has_deferred() {
            budget = budget.min(self.shared.handler_poll);
        }
        if let Some(hint) = self.wheel.sleep_hint(Instant::now()) {
            budget = budget.min(hint);
        }
        (budget.as_millis() as i32).max(1)
    }

    fn drain_wake_pipe(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            match (&self.wake_rx).read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break, // WouldBlock: drained
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let listener = self.listener.as_ref().expect("LISTEN_TOKEN on thread without listener");
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let n = self.shared.threads.len();
                    let target = self.shared.rr.fetch_add(1, Ordering::Relaxed) % n;
                    if target == self.idx {
                        self.register_conn(stream);
                    } else {
                        self.shared.threads[target]
                            .inbox
                            .lock()
                            .expect("reactor inbox poisoned")
                            .conns
                            .push(stream);
                        self.shared.wake(target);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept errors (ECONNABORTED, EMFILE burst):
                // stop the batch; level-triggered epoll retries later.
                Err(_) => break,
            }
        }
    }

    fn register_conn(&mut self, stream: TcpStream) {
        let slot = self.free.pop().unwrap_or_else(|| {
            self.slab.push(None);
            self.gens.push(0);
            self.slab.len() - 1
        });
        self.gens[slot] = self.gens[slot].wrapping_add(1) & GEN_MASK;
        let gen = self.gens[slot];
        let id = ConnId::new(self.idx, gen, slot);
        if self.ep.add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, id.0).is_err() {
            self.free.push(slot);
            return;
        }
        self.slab[slot] = Some(Conn::new(stream, gen));
        self.wheel.insert(slot);
        self.shared.live_conns.fetch_add(1, Ordering::Relaxed);
    }

    /// Looks up the live connection a readiness event or `ConnId` refers
    /// to, rejecting stale generations (slot reused since).
    fn live_slot(&self, id: ConnId) -> Option<usize> {
        let slot = id.slot();
        match self.slab.get(slot) {
            Some(Some(conn)) if conn.gen == id.gen() => Some(slot),
            _ => None,
        }
    }

    fn conn_event(&mut self, data: u64, events: u32) {
        let id = ConnId(data);
        let Some(slot) = self.live_slot(id) else {
            return; // stale event for a closed connection's slot
        };

        if events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0 {
            let mut burst = 0;
            loop {
                let read = {
                    let _span = ea_trace::span(&DECODE_SPAN, Category::Comm);
                    self.slab[slot].as_mut().unwrap().read_message()
                };
                match read {
                    Ok(Some(msg)) => {
                        self.dispatch(id, msg);
                        if self.live_slot(id).is_none() {
                            return; // handler closed it
                        }
                        burst += 1;
                        if burst >= READ_BURST {
                            break; // yield; epoll re-reports the rest
                        }
                    }
                    Ok(None) => break,
                    Err(reason) => {
                        self.drop_conn(slot, reason);
                        return;
                    }
                }
            }
        }

        if events & EPOLLOUT != 0 {
            let _span = ea_trace::span(&FLUSH_SPAN, Category::Comm);
            match self.slab[slot].as_mut().unwrap().flush() {
                Ok(drained) => {
                    if drained {
                        self.rearm(slot, id, false);
                    }
                }
                Err(reason) => self.drop_conn(slot, reason),
            }
        }
    }

    /// Sets or clears `EPOLLOUT` in a connection's interest set, skipping
    /// the syscall when already in the desired state.
    fn rearm(&mut self, slot: usize, id: ConnId, want_write: bool) {
        let conn = self.slab[slot].as_mut().unwrap();
        if conn.armed_write == want_write {
            return;
        }
        let interest =
            if want_write { EPOLLIN | EPOLLOUT | EPOLLRDHUP } else { EPOLLIN | EPOLLRDHUP };
        if self.ep.modify(conn.stream().as_raw_fd(), interest, id.0).is_ok() {
            self.slab[slot].as_mut().unwrap().armed_write = want_write;
        }
    }

    fn dispatch(&mut self, id: ConnId, msg: Message) {
        let mut outbox = std::mem::take(&mut self.outbox);
        {
            let _span = ea_trace::span_arg(&DISPATCH_SPAN, Category::Comm, msg.wire_type() as u64);
            let handler = Arc::clone(&self.shared.handler);
            handler.on_message(id, msg, &mut outbox);
        }
        self.route_outbox(&mut outbox);
        self.outbox = outbox;
    }

    /// Applies an outbox: local sends are encoded and flushed here;
    /// remote ones are forwarded to the owning thread's inbox.
    fn route_outbox(&mut self, outbox: &mut Outbox) {
        if outbox.is_empty() {
            return;
        }
        let n = self.shared.threads.len();
        let mut woke = vec![false; n];
        for (to, msg) in outbox.sends.drain(..) {
            let t = to.thread();
            if t == self.idx {
                self.local_send(to, msg);
            } else if t < n {
                self.shared.threads[t]
                    .inbox
                    .lock()
                    .expect("reactor inbox poisoned")
                    .sends
                    .push((to, msg));
                woke[t] = true;
            } else {
                recycle_message(msg);
            }
        }
        for (to, why) in outbox.closes.drain(..) {
            let t = to.thread();
            if t == self.idx {
                if let Some(slot) = self.live_slot(to) {
                    self.drop_conn(slot, DisconnectReason::HandlerClosed(why));
                }
            } else if t < n {
                self.shared.threads[t]
                    .inbox
                    .lock()
                    .expect("reactor inbox poisoned")
                    .closes
                    .push((to, why));
                woke[t] = true;
            }
        }
        for (t, woke) in woke.into_iter().enumerate() {
            if woke {
                self.shared.wake(t);
            }
        }
    }

    /// Encodes and queues one message on a locally-owned connection, with
    /// an eager flush and backpressure bookkeeping.
    fn local_send(&mut self, to: ConnId, msg: Message) {
        let Some(slot) = self.live_slot(to) else {
            recycle_message(msg);
            return;
        };
        let conn = self.slab[slot].as_mut().unwrap();
        conn.enqueue(msg, &mut self.scratch);
        let flushed = {
            let _span = ea_trace::span(&FLUSH_SPAN, Category::Comm);
            conn.flush()
        };
        match flushed {
            Ok(true) => self.rearm(slot, to, false),
            Ok(false) => {
                let queued = self.slab[slot].as_ref().unwrap().queued_bytes();
                if queued > self.shared.max_outbound_bytes {
                    self.drop_conn(slot, DisconnectReason::SlowConsumer { queued_bytes: queued });
                } else {
                    self.rearm(slot, to, true);
                }
            }
            Err(reason) => self.drop_conn(slot, reason),
        }
    }

    fn drain_inbox(&mut self) {
        let inbox = {
            let mut guard =
                self.shared.threads[self.idx].inbox.lock().expect("reactor inbox poisoned");
            std::mem::take(&mut *guard)
        };
        for stream in inbox.conns {
            self.register_conn(stream);
        }
        for (to, msg) in inbox.sends {
            self.local_send(to, msg);
        }
        for (to, why) in inbox.closes {
            if let Some(slot) = self.live_slot(to) {
                self.drop_conn(slot, DisconnectReason::HandlerClosed(why));
            }
        }
    }

    fn poll_handler(&mut self) {
        if !self.shared.handler.has_deferred() {
            return;
        }
        let mut outbox = std::mem::take(&mut self.outbox);
        {
            let handler = Arc::clone(&self.shared.handler);
            handler.poll(&mut outbox);
        }
        self.route_outbox(&mut outbox);
        self.outbox = outbox;
    }

    fn reap_idle(&mut self) {
        let Some(timeout) = self.shared.idle_timeout else {
            return;
        };
        let now = Instant::now();
        let mut due = std::mem::take(&mut self.due);
        self.wheel.advance(now, &mut due);
        for slot in due.drain(..) {
            let Some(conn) = self.slab.get(slot).and_then(Option::as_ref) else {
                continue; // closed since scheduling; slot may be reused later
            };
            let idle = now.saturating_duration_since(conn.last_activity);
            if idle >= timeout {
                self.drop_conn(slot, DisconnectReason::IdleTimeout);
            } else {
                // Re-check one granule past the remaining allowance.
                let remaining = timeout - idle;
                let granules =
                    (remaining.as_micros() / self.wheel.granule.as_micros().max(1)) as usize + 1;
                self.wheel.insert_at(slot, granules);
            }
        }
        self.due = due;
    }

    fn drop_conn(&mut self, slot: usize, reason: DisconnectReason) {
        let mut conn = match self.slab[slot].take() {
            Some(c) => c,
            None => return,
        };
        self.free.push(slot);
        let _ = self.ep.delete(conn.stream().as_raw_fd());
        conn.recycle_queue();
        self.shared.live_conns.fetch_sub(1, Ordering::Relaxed);
        let id = ConnId::new(self.idx, conn.gen, slot);
        self.shared.handler.on_disconnect(id, &reason);
    }

    /// Shutdown: best-effort flush of queued replies, then close every
    /// connection with [`DisconnectReason::Shutdown`].
    fn teardown(&mut self) {
        for slot in 0..self.slab.len() {
            if let Some(conn) = self.slab[slot].as_mut() {
                let _ = conn.flush();
            }
            if self.slab[slot].is_some() {
                self.drop_conn(slot, DisconnectReason::Shutdown);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::{TcpConfig, TcpTransport};
    use crate::transport::Transport;
    use std::sync::atomic::AtomicU64;

    /// Echo-style handler: acks submits, answers pings, records drops.
    struct EchoHandler {
        disconnects: Mutex<Vec<String>>,
        messages: AtomicU64,
    }

    impl EchoHandler {
        fn new() -> EchoHandler {
            EchoHandler { disconnects: Mutex::new(Vec::new()), messages: AtomicU64::new(0) }
        }
    }

    impl ReactorHandler for EchoHandler {
        fn on_message(&self, conn: ConnId, msg: Message, out: &mut Outbox) {
            self.messages.fetch_add(1, Ordering::Relaxed);
            match msg {
                Message::SubmitDelta { shard, round, pipe, .. } => {
                    out.send(conn, Message::Ack { shard, round, pipe, duplicate: false });
                }
                Message::Hello { proto, .. } => {
                    out.send(conn, Message::HelloAck { proto, n_shards: 1, n_pipelines: 1 });
                }
                _ => out.close(conn, "unexpected message".to_string()),
            }
        }

        fn on_disconnect(&self, _conn: ConnId, reason: &DisconnectReason) {
            self.disconnects.lock().unwrap().push(reason.to_string());
        }
    }

    fn connect(addr: SocketAddr) -> TcpTransport {
        TcpTransport::connect(addr, TcpConfig::default()).expect("connect")
    }

    #[test]
    fn round_trips_messages_from_many_connections() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handler = Arc::new(EchoHandler::new());
        let reactor = Reactor::spawn(
            listener,
            handler.clone(),
            ReactorConfig { threads: 2, ..ReactorConfig::default() },
        )
        .unwrap();
        let addr = reactor.local_addr();

        let joins: Vec<_> = (0..8u32)
            .map(|w| {
                std::thread::spawn(move || {
                    let mut t = connect(addr);
                    for round in 0..5u64 {
                        let delta = vec![w as f32; 16];
                        t.send(Message::SubmitDelta { shard: 0, round, pipe: w, delta }).unwrap();
                        let reply = t.recv().unwrap();
                        assert_eq!(
                            reply,
                            Message::Ack { shard: 0, round, pipe: w, duplicate: false },
                            "worker {w} round {round}"
                        );
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(handler.messages.load(Ordering::Relaxed), 8 * 5);
        reactor.shutdown();
    }

    #[test]
    fn garbage_bytes_disconnect_with_protocol_violation() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handler = Arc::new(EchoHandler::new());
        let reactor = Reactor::spawn(listener, handler.clone(), ReactorConfig::default()).unwrap();
        let mut raw = TcpStream::connect(reactor.local_addr()).unwrap();
        raw.write_all(b"definitely not a frame header!").unwrap();
        // The reactor should drop us; read() observing EOF proves it.
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 16];
        let n = raw.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "expected server-side close");
        // Disconnect reason recorded as a protocol violation.
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let drops = handler.disconnects.lock().unwrap().clone();
            if !drops.is_empty() {
                assert!(drops[0].contains("protocol violation"), "got: {drops:?}");
                break;
            }
            assert!(Instant::now() < deadline, "no disconnect recorded");
            std::thread::sleep(Duration::from_millis(10));
        }
        reactor.shutdown();
    }

    #[test]
    fn idle_connections_are_reaped() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handler = Arc::new(EchoHandler::new());
        let reactor = Reactor::spawn(
            listener,
            handler.clone(),
            ReactorConfig {
                idle_timeout: Some(Duration::from_millis(80)),
                ..ReactorConfig::default()
            },
        )
        .unwrap();
        let raw = TcpStream::connect(reactor.local_addr()).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut raw = raw;
        let mut buf = [0u8; 1];
        // Never send anything: the wheel must evict us. Full revolution
        // at 10ms granule is 160ms; allow generous slack.
        let t0 = Instant::now();
        let n = raw.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "expected idle eviction close");
        assert!(t0.elapsed() < Duration::from_secs(8), "eviction took too long");
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let drops = handler.disconnects.lock().unwrap().clone();
            if !drops.is_empty() {
                assert!(drops.iter().any(|d| d.contains("idle timeout")), "got: {drops:?}");
                break;
            }
            assert!(Instant::now() < deadline, "no disconnect recorded");
            std::thread::sleep(Duration::from_millis(10));
        }
        reactor.shutdown();
    }

    #[test]
    fn slow_consumer_is_evicted() {
        // Handler that answers one Hello with a ~64 MiB flood of
        // PullReplys — far past both the 1 MiB outbound bound and any
        // kernel socket buffer — at a client that never reads.
        struct FloodHandler {
            disconnects: Mutex<Vec<String>>,
        }
        impl ReactorHandler for FloodHandler {
            fn on_message(&self, conn: ConnId, msg: Message, out: &mut Outbox) {
                if matches!(msg, Message::Hello { .. }) {
                    for version in 0..64u64 {
                        out.send(
                            conn,
                            Message::PullReply { shard: 0, version, weights: vec![0.5; 256 << 10] },
                        );
                    }
                }
            }
            fn on_disconnect(&self, _conn: ConnId, reason: &DisconnectReason) {
                self.disconnects.lock().unwrap().push(reason.to_string());
            }
        }

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handler = Arc::new(FloodHandler { disconnects: Mutex::new(Vec::new()) });
        let reactor = Reactor::spawn(
            listener,
            handler.clone(),
            ReactorConfig { max_outbound_bytes: 1 << 20, ..ReactorConfig::default() },
        )
        .unwrap();
        let mut t = connect(reactor.local_addr());
        t.send(Message::Hello { proto: crate::frame::PROTO_VERSION as u16, pipe: 0 }).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let drops = handler.disconnects.lock().unwrap().clone();
            if !drops.is_empty() {
                assert!(drops.iter().any(|d| d.contains("slow consumer")), "got: {drops:?}");
                break;
            }
            assert!(Instant::now() < deadline, "no slow-consumer eviction recorded");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(reactor.live_connections(), 0);
        reactor.shutdown();
    }

    #[test]
    fn idle_reaper_reschedules_after_activity() {
        // With timeout = 150ms the wheel's first liveness check for a
        // fresh connection lands ~170ms after accept. Activity at
        // ~100ms means that check finds the connection only ~70ms idle,
        // exercising the reschedule branch (`insert_at`); the *second*
        // check must then evict it — so eviction cannot land before
        // last-activity + timeout (~250ms after connect).
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handler = Arc::new(EchoHandler::new());
        let reactor = Reactor::spawn(
            listener,
            handler.clone(),
            ReactorConfig {
                idle_timeout: Some(Duration::from_millis(150)),
                ..ReactorConfig::default()
            },
        )
        .unwrap();
        let t0 = Instant::now();
        let mut t = connect(reactor.local_addr());
        std::thread::sleep(Duration::from_millis(100));
        t.send(Message::Hello { proto: crate::frame::PROTO_VERSION as u16, pipe: 0 }).unwrap();
        assert!(matches!(t.recv().unwrap(), Message::HelloAck { .. }));
        let deadline = Instant::now() + Duration::from_secs(10);
        let reaped_at = loop {
            let drops = handler.disconnects.lock().unwrap().clone();
            if !drops.is_empty() {
                assert!(drops.iter().any(|d| d.contains("idle timeout")), "got: {drops:?}");
                break t0.elapsed();
            }
            assert!(Instant::now() < deadline, "idle connection never reaped");
            std::thread::sleep(Duration::from_millis(5));
        };
        // A buggy no-reschedule reaper would evict at the first check
        // (~170ms); the reschedule pushes it past activity + timeout.
        assert!(
            reaped_at >= Duration::from_millis(230),
            "reaped too early ({reaped_at:?}): first-wheel-check eviction ignored activity"
        );
        reactor.shutdown();
    }

    #[test]
    fn shutdown_closes_live_connections() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handler = Arc::new(EchoHandler::new());
        let reactor = Reactor::spawn(listener, handler.clone(), ReactorConfig::default()).unwrap();
        let mut t = connect(reactor.local_addr());
        t.send(Message::Hello { proto: crate::frame::PROTO_VERSION as u16, pipe: 0 }).unwrap();
        assert!(matches!(t.recv().unwrap(), Message::HelloAck { .. }));
        assert_eq!(reactor.live_connections(), 1);
        reactor.shutdown();
        let drops = handler.disconnects.lock().unwrap().clone();
        assert!(drops.iter().any(|d| d.contains("shutdown")), "got: {drops:?}");
    }
}
