//! Criterion benchmarks of the tuning pipeline: the profiling run, the
//! analytic predictor sweep, and the full profiling-based tuner — the
//! wall-clock costs behind Figure 18.

use avgpipe::{predict, tune, Profiler, TuneMethod};
use criterion::{criterion_group, criterion_main, Criterion};
use ea_models::awd_spec;
use ea_sched::partition_model;
use ea_sim::ClusterConfig;

fn bench_profile(c: &mut Criterion) {
    let spec = awd_spec();
    let cluster = ClusterConfig::paper_testbed_two_nodes();
    let part = partition_model(&spec, 4);
    let profiler = Profiler::new(spec, cluster, part, 40, 4);
    c.bench_function("profiler/awd_20_batches", |b| b.iter(|| profiler.profile_default()));
}

fn bench_predict_sweep(c: &mut Criterion) {
    let spec = awd_spec();
    let cluster = ClusterConfig::paper_testbed_two_nodes();
    let part = partition_model(&spec, 4);
    let profiler = Profiler::new(spec, cluster, part, 40, 4);
    let profile = profiler.profile_default();
    c.bench_function("predict/awd_full_sweep", |b| {
        b.iter(|| {
            let mut best = f64::INFINITY;
            for m in (1..=40usize).filter(|d| 40 % d == 0) {
                for n in 1..=4 {
                    best = best.min(predict(std::hint::black_box(&profile), m, n).t_us);
                }
            }
            best
        })
    });
}

fn bench_tuners(c: &mut Criterion) {
    let spec = awd_spec();
    let cluster = ClusterConfig::paper_testbed_two_nodes();
    let part = partition_model(&spec, 4);
    let cap = 16 * (1u64 << 30);
    c.bench_function("tune/profiling_based_awd", |b| {
        b.iter(|| tune(&spec, &cluster, &part, 40, 4, cap, TuneMethod::ProfilingBased, 4))
    });
}

criterion_group!(benches, bench_profile, bench_predict_sweep, bench_tuners);
criterion_main!(benches);
