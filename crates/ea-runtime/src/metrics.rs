//! Evaluation and epochs-to-target measurement (Figure 14), plus the
//! server-side fault/health counters ([`ServerMetrics`]).

use crate::Trainer;
use ea_autograd::cross_entropy_loss;
use ea_data::{accuracy, SyntheticTask};
use std::sync::atomic::{AtomicU64, Ordering};

/// Health and fault counters exposed by `RefShardServer`: connection
/// failures are *counted and logged*, never silently swallowed, so tests
/// (and operators) can assert on what the server actually observed.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    disconnects: AtomicU64,
    protocol_violations: AtomicU64,
    crc_failures: AtomicU64,
    io_errors: AtomicU64,
    heartbeats: AtomicU64,
    evictions: AtomicU64,
    rejoins: AtomicU64,
    degraded_rounds: AtomicU64,
    quorum_lost: AtomicU64,
    checkpoints_saved: AtomicU64,
    checkpoint_restores: AtomicU64,
}

/// A point-in-time copy of [`ServerMetrics`], for assertions and logs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerMetricsSnapshot {
    /// Connections that ended with the peer hanging up.
    pub disconnects: u64,
    /// Messages that violated the protocol (bad round, bad shard, …).
    pub protocol_violations: u64,
    /// Frames rejected by their CRC32 trailer.
    pub crc_failures: u64,
    /// Transport-level I/O errors.
    pub io_errors: u64,
    /// Heartbeats served.
    pub heartbeats: u64,
    /// Lease expirations that evicted a pipeline.
    pub evictions: u64,
    /// Dead pipelines readmitted to the quorum.
    pub rejoins: u64,
    /// Rounds applied with fewer than N contributors.
    pub degraded_rounds: u64,
    /// Evictions refused because they would empty the quorum.
    pub quorum_lost: u64,
    /// Reference checkpoints written.
    pub checkpoints_saved: u64,
    /// Server startups that restored shards from a checkpoint.
    pub checkpoint_restores: u64,
}

macro_rules! counter {
    ($inc:ident, $field:ident) => {
        /// Increments the corresponding counter.
        pub fn $inc(&self) {
            self.$field.fetch_add(1, Ordering::Relaxed);
        }
    };
}

impl ServerMetrics {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        ServerMetrics::default()
    }

    counter!(inc_disconnects, disconnects);
    counter!(inc_protocol_violations, protocol_violations);
    counter!(inc_crc_failures, crc_failures);
    counter!(inc_io_errors, io_errors);
    counter!(inc_heartbeats, heartbeats);
    counter!(inc_evictions, evictions);
    counter!(inc_rejoins, rejoins);
    counter!(inc_degraded_rounds, degraded_rounds);
    counter!(inc_quorum_lost, quorum_lost);
    counter!(inc_checkpoints_saved, checkpoints_saved);
    counter!(inc_checkpoint_restores, checkpoint_restores);

    /// A consistent-enough copy of all counters (relaxed reads).
    pub fn snapshot(&self) -> ServerMetricsSnapshot {
        ServerMetricsSnapshot {
            disconnects: self.disconnects.load(Ordering::Relaxed),
            protocol_violations: self.protocol_violations.load(Ordering::Relaxed),
            crc_failures: self.crc_failures.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
            heartbeats: self.heartbeats.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            rejoins: self.rejoins.load(Ordering::Relaxed),
            degraded_rounds: self.degraded_rounds.load(Ordering::Relaxed),
            quorum_lost: self.quorum_lost.load(Ordering::Relaxed),
            checkpoints_saved: self.checkpoints_saved.load(Ordering::Relaxed),
            checkpoint_restores: self.checkpoint_restores.load(Ordering::Relaxed),
        }
    }
}

/// Held-out evaluation of a trainer's model.
#[derive(Clone, Copy, Debug)]
pub struct EvalResult {
    /// Mean cross-entropy on held-out batches.
    pub loss: f64,
    /// Mean token accuracy.
    pub accuracy: f64,
}

/// Evaluates a model on `n_batches` held-out batches.
pub fn evaluate(
    trainer: &mut dyn Trainer,
    task: &SyntheticTask,
    batch_size: usize,
    n_batches: usize,
) -> EvalResult {
    let model = trainer.eval_model();
    let mut loss = 0.0;
    let mut acc = 0.0;
    for i in 0..n_batches {
        let b = task.eval_batch(batch_size, i as u64);
        let logits = model.forward_eval(&b.input);
        loss += cross_entropy_loss(&logits, &b.targets).loss as f64;
        acc += accuracy(&logits, &b.targets);
    }
    EvalResult { loss: loss / n_batches as f64, accuracy: acc / n_batches as f64 }
}

/// Result of an epochs-to-target run.
#[derive(Clone, Copy, Debug)]
pub struct EpochsToTarget {
    /// Epochs consumed before the target was met (fractional granularity
    /// of one evaluation interval), or `None` if never reached.
    pub epochs: Option<f64>,
    /// Final evaluation at stop time.
    pub final_eval: EvalResult,
    /// Total optimizer steps taken.
    pub steps: u64,
}

/// Trains until the held-out metric crosses `target` (accuracy ≥ target
/// if `by_accuracy`, else loss ≤ target), up to `max_epochs`.
///
/// One "epoch" is `batches_per_epoch` *consumed* batches — elastic
/// averaging consumes N per round, so a round advances the epoch counter
/// N times as fast, exactly like the paper's accounting (each parallel
/// pipeline sees its own data).
#[allow(clippy::too_many_arguments)]
pub fn epochs_to_target(
    trainer: &mut dyn Trainer,
    task: &SyntheticTask,
    batch_size: usize,
    batches_per_epoch: usize,
    max_epochs: usize,
    target: f64,
    by_accuracy: bool,
    eval_batches: usize,
) -> EpochsToTarget {
    let per_step = trainer.batches_per_step();
    let mut consumed = 0usize;
    let mut steps = 0u64;
    let mut next_data_index = 0u64;
    let total = batches_per_epoch * max_epochs;
    let eval_every = (batches_per_epoch / 4).max(per_step);
    let mut last = EvalResult { loss: f64::INFINITY, accuracy: 0.0 };
    let mut next_eval = eval_every;
    while consumed < total {
        let batch = task.batch(batch_size * per_step, next_data_index);
        next_data_index += 1;
        trainer.step(&batch);
        consumed += per_step;
        steps += 1;
        if consumed >= next_eval {
            next_eval += eval_every;
            last = evaluate(trainer, task, batch_size, eval_batches);
            let met = if by_accuracy { last.accuracy >= target } else { last.loss <= target };
            if met {
                return EpochsToTarget {
                    epochs: Some(consumed as f64 / batches_per_epoch as f64),
                    final_eval: last,
                    steps,
                };
            }
        }
    }
    EpochsToTarget { epochs: None, final_eval: last, steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyncTrainer;
    use ea_models::{gnmt_analogue, AnalogueConfig};
    use ea_optim::{OptKind, Optimizer};
    use ea_tensor::TensorRng;

    fn trainer(seed: u64) -> SyncTrainer {
        let cfg = AnalogueConfig { vocab: 16, seq: 4, hidden: 16, blocks: 2, stages: 2 };
        let model = gnmt_analogue(cfg, &mut TensorRng::seed_from_u64(seed));
        let opts: Vec<Box<dyn Optimizer>> =
            (0..2).map(|_| OptKind::Adam { lr: 2e-2 }.build()).collect();
        SyncTrainer::new(model, opts, 2)
    }

    #[test]
    fn untrained_model_scores_near_chance() {
        let mut t = trainer(1);
        let task = SyntheticTask::copy_translate(16, 4, 51);
        let e = evaluate(&mut t, &task, 8, 4);
        assert!(e.accuracy < 0.3, "untrained accuracy {}", e.accuracy);
        assert!(e.loss > 2.0, "untrained loss {}", e.loss);
    }

    #[test]
    fn reaches_accuracy_target_on_copy_task() {
        let mut t = trainer(2);
        let task = SyntheticTask::copy_translate(16, 4, 52);
        let r = epochs_to_target(&mut t, &task, 8, 40, 20, 0.9, true, 4);
        assert!(r.epochs.is_some(), "never reached target: {:?}", r.final_eval);
        assert!(r.final_eval.accuracy >= 0.9);
    }

    #[test]
    fn impossible_target_returns_none() {
        let mut t = trainer(3);
        let task = SyntheticTask::copy_translate(16, 4, 53);
        let r = epochs_to_target(&mut t, &task, 8, 10, 1, 0.0, false, 2);
        assert!(r.epochs.is_none());
        assert!(r.steps > 0);
    }

    #[test]
    fn server_metrics_count_and_snapshot() {
        let m = ServerMetrics::new();
        assert_eq!(m.snapshot(), ServerMetricsSnapshot::default());
        m.inc_disconnects();
        m.inc_disconnects();
        m.inc_crc_failures();
        m.inc_evictions();
        m.inc_rejoins();
        m.inc_degraded_rounds();
        let s = m.snapshot();
        assert_eq!(s.disconnects, 2);
        assert_eq!(s.crc_failures, 1);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.rejoins, 1);
        assert_eq!(s.degraded_rounds, 1);
        assert_eq!(s.protocol_violations, 0);
    }
}
