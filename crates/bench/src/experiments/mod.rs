//! Experiment implementations, one module per figure family.

mod common;
mod extensions;
mod perf;
mod schedules;
mod stat;
mod tuning;

pub use common::{workload_env, WorkloadEnv};
pub use extensions::{
    ext_chimera, ext_elastic_ablation, ext_recompute, ext_straggler, ChimeraRow,
    ElasticAblationRow, RecomputeRow, StragglerRow,
};
pub use perf::{fig11_12_13, SystemRow, WorkloadMatrix};
pub use schedules::{
    fig16_util_traces, fig17_schedule_ablation, fig2_utilization, fig7_toy_schedules, Fig16, Fig17,
    Fig17Row, Fig2, Fig7, Fig7Row,
};
pub use stat::{fig14_statistical, Fig14, Fig14Row};
pub use tuning::{fig15_batch_sweep, fig18_19_tuning, Fig15, Fig15Row, TuningRow};
