//! Local optimizers over flat parameter buffers.
//!
//! The inner step loops run on [`ea_tensor::simd`] kernels. Parameters
//! are independent lanes, so every vectorized step is bit-identical to
//! the scalar expression it replaced (DESIGN.md §13); `EA_SIMD=off`
//! selects the scalar reference path.

use ea_tensor::simd;

/// A first-order optimizer over a flat `f32` parameter vector.
///
/// Working on flat buffers decouples the optimizer from model structure,
/// which is what lets one optimizer instance serve a pipeline stage
/// regardless of which layers the partitioner assigned to it.
pub trait Optimizer: Send {
    /// Applies one update in place. `grads.len() == params.len()`.
    fn step(&mut self, params: &mut [f32], grads: &[f32]);

    /// The current learning rate.
    fn lr(&self) -> f32;

    /// Scales the learning rate (used by warmup/decay policies in tests).
    fn set_lr(&mut self, lr: f32);

    /// Human-readable name.
    fn name(&self) -> &'static str;

    /// A fresh optimizer of the same configuration with empty state, used
    /// to give each parallel pipeline its own instance.
    fn fresh(&self) -> Box<dyn Optimizer>;

    /// Bytes of optimizer state per parameter scalar (for the memory
    /// model: SGD = 0, momentum = 4, Adam = 8).
    fn state_bytes_per_param(&self) -> usize;
}

/// Optimizer kinds, for configuration surfaces that need to be `Copy`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OptKind {
    /// Plain SGD.
    Sgd { lr: f32 },
    /// SGD with classical momentum.
    Momentum { lr: f32, beta: f32 },
    /// Adam with default betas.
    Adam { lr: f32 },
    /// Averaged SGD (Polyak–Juditsky), as AWD-LSTM uses.
    Asgd { lr: f32 },
}

impl OptKind {
    /// Instantiates the optimizer.
    pub fn build(self) -> Box<dyn Optimizer> {
        match self {
            OptKind::Sgd { lr } => Box::new(Sgd::new(lr)),
            OptKind::Momentum { lr, beta } => Box::new(Momentum::new(lr, beta)),
            OptKind::Adam { lr } => Box::new(Adam::new(lr)),
            OptKind::Asgd { lr } => Box::new(Asgd::new(lr)),
        }
    }

    /// Optimizer state bytes per parameter scalar (for the memory model).
    pub fn state_bytes_per_param(self) -> usize {
        match self {
            OptKind::Sgd { .. } => 0,
            OptKind::Momentum { .. } => 4,
            OptKind::Adam { .. } => 8,
            OptKind::Asgd { .. } => 4,
        }
    }
}

/// Plain stochastic gradient descent.
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        simd::sgd_step(params, grads, self.lr);
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn name(&self) -> &'static str {
        "sgd"
    }

    fn fresh(&self) -> Box<dyn Optimizer> {
        Box::new(Sgd::new(self.lr))
    }

    fn state_bytes_per_param(&self) -> usize {
        0
    }
}

/// SGD with classical momentum.
pub struct Momentum {
    lr: f32,
    beta: f32,
    velocity: Vec<f32>,
}

impl Momentum {
    /// Momentum SGD.
    pub fn new(lr: f32, beta: f32) -> Self {
        Momentum { lr, beta, velocity: Vec::new() }
    }
}

impl Optimizer for Momentum {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        if self.velocity.is_empty() {
            self.velocity = vec![0.0; params.len()];
        }
        simd::momentum_step(params, &mut self.velocity, grads, self.lr, self.beta);
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn name(&self) -> &'static str {
        "momentum"
    }

    fn fresh(&self) -> Box<dyn Optimizer> {
        Box::new(Momentum::new(self.lr, self.beta))
    }

    fn state_bytes_per_param(&self) -> usize {
        4
    }
}

/// Adam (Kingma & Ba) with bias correction.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    /// Adam with default `beta1 = 0.9`, `beta2 = 0.999`.
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        if self.m.is_empty() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        simd::adam_step(
            params,
            &mut self.m,
            &mut self.v,
            grads,
            self.lr,
            self.beta1,
            self.beta2,
            self.eps,
            bc1,
            bc2,
        );
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn name(&self) -> &'static str {
        "adam"
    }

    fn fresh(&self) -> Box<dyn Optimizer> {
        Box::new(Adam::new(self.lr))
    }

    fn state_bytes_per_param(&self) -> usize {
        8
    }
}

/// AdamW (decoupled weight decay): Adam's update plus `wd · lr` direct
/// shrinkage of the weights, the regularizer transformer training uses.
pub struct AdamW {
    inner: Adam,
    weight_decay: f32,
}

impl AdamW {
    /// AdamW with decoupled weight decay `wd`.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        AdamW { inner: Adam::new(lr), weight_decay }
    }
}

impl Optimizer for AdamW {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        let shrink = 1.0 - self.inner.lr() * self.weight_decay;
        simd::scale(params, shrink);
        self.inner.step(params, grads);
    }

    fn lr(&self) -> f32 {
        self.inner.lr()
    }

    fn set_lr(&mut self, lr: f32) {
        self.inner.set_lr(lr);
    }

    fn name(&self) -> &'static str {
        "adamw"
    }

    fn fresh(&self) -> Box<dyn Optimizer> {
        Box::new(AdamW::new(self.inner.lr(), self.weight_decay))
    }

    fn state_bytes_per_param(&self) -> usize {
        8
    }
}

/// Averaged SGD (Polyak–Juditsky): plain SGD steps plus a running average
/// of the iterates, exposed through [`Asgd::averaged`]. AWD-LSTM switches
/// to ASGD once validation loss plateaus; the AWD analogue workload uses
/// this optimizer.
pub struct Asgd {
    lr: f32,
    t: u64,
    avg: Vec<f32>,
}

impl Asgd {
    /// ASGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Asgd { lr, t: 0, avg: Vec::new() }
    }

    /// The Polyak-averaged iterate (falls back to the current parameters
    /// before the first step).
    pub fn averaged(&self) -> &[f32] {
        &self.avg
    }
}

impl Optimizer for Asgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        simd::sgd_step(params, grads, self.lr);
        if self.avg.is_empty() {
            self.avg = params.to_vec();
            self.t = 1;
        } else {
            self.t += 1;
            let w = 1.0 / self.t as f32;
            simd::asgd_avg_update(&mut self.avg, params, w);
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn name(&self) -> &'static str {
        "asgd"
    }

    fn fresh(&self) -> Box<dyn Optimizer> {
        Box::new(Asgd::new(self.lr))
    }

    fn state_bytes_per_param(&self) -> usize {
        4
    }
}

/// The classic *coupled* EASGD optimizer of Zhang, Choromanska & LeCun —
/// the extended-SGD design the paper's §3.1 criticizes. Kept as a baseline:
/// each call updates one worker's parameters AND the shared center with the
/// symmetric elastic force.
pub struct Easgd {
    lr: f32,
    rho: f32,
}

impl Easgd {
    /// EASGD with elastic strength `rho` (the paper's α is `rho` here).
    pub fn new(lr: f32, rho: f32) -> Self {
        Easgd { lr, rho }
    }

    /// One coupled update of a worker and the center.
    pub fn step_worker(&self, worker: &mut [f32], center: &mut [f32], grads: &[f32]) {
        assert_eq!(worker.len(), center.len());
        assert_eq!(worker.len(), grads.len());
        for i in 0..worker.len() {
            let diff = worker[i] - center[i];
            worker[i] -= self.lr * grads[i] + self.rho * diff;
            center[i] += self.rho * diff;
        }
    }

    /// The configured elastic strength.
    pub fn rho(&self) -> f32 {
        self.rho
    }

    /// The configured learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }
}

/// Clips the gradient to a maximum L2 norm, returning the pre-clip norm.
///
/// The norm uses the deterministic lane-blocked sum of squares: identical
/// across SIMD levels (fixed combine tree at every level), though
/// reassociated relative to a sequential sum. No training path in this
/// workspace clips gradients, so this does not perturb the e2e losses.
pub fn clip_grad_norm(grads: &mut [f32], max_norm: f32) -> f32 {
    let norm = simd::sum_squares(grads).sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        simd::scale(grads, scale);
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quadratic bowl: f(p) = Σ (p - 3)² / 2, grad = p - 3.
    fn bowl_grad(params: &[f32]) -> Vec<f32> {
        params.iter().map(|p| p - 3.0).collect()
    }

    fn converges(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut p = vec![0.0f32; 4];
        for _ in 0..steps {
            let g = bowl_grad(&p);
            opt.step(&mut p, &g);
        }
        p.iter().map(|v| (v - 3.0).abs()).fold(0.0, f32::max)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        assert!(converges(&mut Sgd::new(0.1), 200) < 1e-3);
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        assert!(converges(&mut Momentum::new(0.05, 0.9), 300) < 1e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        assert!(converges(&mut Adam::new(0.05), 1000) < 1e-2);
    }

    #[test]
    fn asgd_average_trails_but_converges() {
        let mut opt = Asgd::new(0.1);
        let mut p = vec![0.0f32; 2];
        for _ in 0..500 {
            let g = bowl_grad(&p);
            opt.step(&mut p, &g);
        }
        for a in opt.averaged() {
            assert!((a - 3.0).abs() < 0.1, "averaged {a}");
        }
    }

    #[test]
    fn adam_step_is_bounded_by_lr() {
        // Adam's per-step displacement is ~lr regardless of gradient scale.
        let mut opt = Adam::new(0.01);
        let mut p = vec![0.0f32];
        opt.step(&mut p, &[1e6]);
        assert!(p[0].abs() < 0.011, "step {}", p[0]);
    }

    #[test]
    fn fresh_resets_state() {
        let mut opt = Momentum::new(0.1, 0.9);
        let mut p = vec![0.0f32];
        opt.step(&mut p, &[1.0]);
        let mut f = opt.fresh();
        let mut q = vec![0.0f32];
        f.step(&mut q, &[1.0]);
        // A fresh optimizer's first step must match a brand-new one.
        assert_eq!(q[0], -0.1);
    }

    #[test]
    fn easgd_center_tracks_workers() {
        let e = Easgd::new(0.05, 0.1);
        let mut w1 = vec![0.0f32; 2];
        let mut w2 = vec![0.0f32; 2];
        let mut c = vec![0.0f32; 2];
        for _ in 0..400 {
            let g1 = bowl_grad(&w1);
            e.step_worker(&mut w1, &mut c, &g1);
            let g2 = bowl_grad(&w2);
            e.step_worker(&mut w2, &mut c, &g2);
        }
        for v in &c {
            assert!((v - 3.0).abs() < 0.2, "center {v}");
        }
    }

    #[test]
    fn clip_grad_norm_scales_down_only() {
        let mut g = vec![3.0f32, 4.0];
        let norm = clip_grad_norm(&mut g, 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        let clipped: f32 = g.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((clipped - 1.0).abs() < 1e-6);

        let mut small = vec![0.1f32, 0.1];
        clip_grad_norm(&mut small, 1.0);
        assert_eq!(small, vec![0.1, 0.1]);
    }

    #[test]
    fn optkind_state_bytes() {
        assert_eq!(OptKind::Sgd { lr: 0.1 }.state_bytes_per_param(), 0);
        assert_eq!(OptKind::Adam { lr: 0.1 }.state_bytes_per_param(), 8);
        assert_eq!(OptKind::Adam { lr: 0.1 }.build().name(), "adam");
    }
}

#[cfg(test)]
mod adamw_tests {
    use super::*;

    #[test]
    fn adamw_decays_weights_toward_zero_without_gradients() {
        let mut opt = AdamW::new(0.1, 0.5);
        let mut p = vec![10.0f32];
        for _ in 0..50 {
            opt.step(&mut p, &[0.0]);
        }
        assert!(p[0].abs() < 2.0, "weight decay inactive: {}", p[0]);
    }

    #[test]
    fn adamw_with_zero_decay_matches_adam() {
        let mut a = Adam::new(0.05);
        let mut w = AdamW::new(0.05, 0.0);
        let mut pa = vec![1.0f32, -2.0];
        let mut pw = vec![1.0f32, -2.0];
        for step in 0..20 {
            let g = vec![(step as f32).sin(), 0.3];
            a.step(&mut pa, &g);
            w.step(&mut pw, &g);
        }
        for (x, y) in pa.iter().zip(&pw) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn adamw_still_converges_on_quadratic() {
        let mut opt = AdamW::new(0.05, 0.01);
        let mut p = vec![0.0f32; 3];
        for _ in 0..1000 {
            let g: Vec<f32> = p.iter().map(|x| x - 3.0).collect();
            opt.step(&mut p, &g);
        }
        for v in &p {
            // Weight decay biases slightly below 3.0.
            assert!((v - 3.0).abs() < 0.3, "{v}");
        }
    }
}
