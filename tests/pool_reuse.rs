//! Allocation-regression test: after a short warm-up, a steady-state
//! training loop must be served almost entirely from the buffer pool.
//!
//! Kept in its own test binary so no concurrently-running test pollutes
//! the process-global pool counters.

use ea_data::SyntheticTask;
use ea_models::{gnmt_analogue, AnalogueConfig};
use ea_optim::{OptKind, Optimizer};
use ea_runtime::train_step;
use ea_tensor::{pool, TensorRng};

#[test]
fn steady_state_training_reuses_pooled_buffers() {
    let cfg = AnalogueConfig { vocab: 16, seq: 4, hidden: 16, blocks: 2, stages: 2 };
    let mut rng = TensorRng::seed_from_u64(11);
    let mut model = gnmt_analogue(cfg, &mut rng);
    let mut opts: Vec<Box<dyn Optimizer>> =
        (0..2).map(|_| OptKind::Adam { lr: 1e-2 }.build()).collect();
    let task = SyntheticTask::copy_translate(16, 4, 7);

    // Warm-up: populate the pool buckets with every buffer size the
    // training loop touches.
    for b in 0..3 {
        train_step(&mut model, &mut opts, &task.batch(8, b), 4, b);
    }

    pool::reset_stats();
    let steps = 8;
    for b in 0..steps {
        train_step(&mut model, &mut opts, &task.batch(8, 3 + b), 4, 3 + b);
    }
    let stats = pool::stats();

    // The loop must actually exercise the pool...
    assert!(
        stats.hits > 100,
        "expected a pooled-allocation-heavy loop, saw only {} hits",
        stats.hits
    );
    // ...and in steady state essentially every pooled-size request must
    // be served from a recycled buffer, not the allocator.
    assert!(
        stats.hit_rate() >= 0.95,
        "pool hit rate regressed: {:.3} ({} hits / {} misses)",
        stats.hit_rate(),
        stats.hits,
        stats.misses
    );
    // Fresh allocations must not scale with the number of steps: a few
    // stragglers (first touch of a rare size) are tolerable, per-step
    // allocation churn is not.
    assert!(
        stats.misses <= steps,
        "steady-state loop allocates per step: {} misses in {} steps",
        stats.misses,
        steps
    );

    // Byte accounting: between steps the scratch buffers are back in the
    // pool, so the pool holds real memory and the high-water mark covers
    // the current occupancy.
    assert!(stats.pooled_bytes > 0, "no bytes pooled after a training loop");
    assert!(
        stats.peak_pooled_bytes >= stats.pooled_bytes,
        "peak {} below live occupancy {}",
        stats.peak_pooled_bytes,
        stats.pooled_bytes
    );
    // Draining the pool returns the bytes to the allocator and the
    // accounting follows exactly.
    pool::clear();
    let drained = pool::stats();
    assert_eq!(drained.pooled_bytes, 0, "clear() left bytes accounted: {drained:?}");
    assert_eq!(
        drained.peak_pooled_bytes, stats.peak_pooled_bytes,
        "clear() must not move the peak"
    );

    // The same numbers are visible through the process-wide metrics
    // registry (render-time gauges).
    let text = ea_trace::metrics::global().render_prometheus();
    for g in ["ea_pool_hits", "ea_pool_misses", "ea_pool_pooled_bytes", "ea_pool_peak_pooled_bytes"]
    {
        assert!(text.contains(&format!("# TYPE {g} gauge\n")), "missing {g} in:\n{text}");
    }
    assert!(
        text.contains(&format!("ea_pool_peak_pooled_bytes {}\n", stats.peak_pooled_bytes)),
        "registry gauge disagrees with pool::stats():\n{text}"
    );
}
