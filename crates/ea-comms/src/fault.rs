//! Fault injection: a [`Transport`] wrapper that drops, delays, or
//! duplicates outgoing messages with configurable probabilities.
//!
//! The RNG is seeded, so a failing fault-injection test replays exactly.
//! Faults are applied on the send side — a dropped send models a lost
//! datagram/connection blip in either direction, because the effect the
//! protocol must survive is identical: a request or its reply never
//! arrives, a retry fires, and idempotent handling must keep training
//! byte-identical.
//!
//! On top of the probabilistic faults, [`ChaosConfig`] adds *scheduled*
//! failures keyed to the elastic round the wrapped connection is working
//! on (tracked from outgoing [`Message::SubmitDelta`] frames): crash the
//! connection permanently at round K, stall it for a fixed duration, or
//! partition it (drop everything, both directions) for a round interval.
//! These model whole-worker death, GC/OS pauses, and network partitions
//! for the fault-tolerance end-to-end tests and the `chaos_demo` example.

use crate::transport::{CommsError, Transport, TransportStats};
use crate::wire::Message;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

/// Probabilities and magnitudes of injected faults.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Probability an outgoing message is silently discarded.
    pub drop_prob: f64,
    /// Probability an outgoing message is delayed by up to `max_delay`.
    pub delay_prob: f64,
    /// Upper bound of an injected delay.
    pub max_delay: Duration,
    /// Probability an outgoing message is sent twice.
    pub duplicate_prob: f64,
}

impl FaultConfig {
    /// The acceptance-criteria setting: 10% drop, 10% delay, 10% dup.
    pub fn lossy_10() -> Self {
        FaultConfig {
            drop_prob: 0.10,
            delay_prob: 0.10,
            max_delay: Duration::from_millis(20),
            duplicate_prob: 0.10,
        }
    }
}

/// Counters of injected faults.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages discarded.
    pub dropped: u64,
    /// Messages delayed.
    pub delayed: u64,
    /// Messages sent twice.
    pub duplicated: u64,
    /// Messages dropped by a scheduled partition (either direction).
    pub partitioned: u64,
    /// Scheduled stalls served.
    pub stalled: u64,
}

/// Scheduled, round-keyed failures layered on top of [`FaultConfig`].
///
/// The round is observed from outgoing [`Message::SubmitDelta`] frames,
/// so schedules fire deterministically at round boundaries regardless of
/// wall-clock timing.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChaosConfig {
    /// Once a `SubmitDelta` for this round is attempted, the transport
    /// dies permanently: every later send/recv returns
    /// [`CommsError::Closed`]. Models a worker crash.
    pub crash_at_round: Option<u64>,
    /// The first send at this round sleeps for the given duration before
    /// proceeding. Models a GC/OS pause long enough to expire a lease.
    pub stall_at_round: Option<(u64, Duration)>,
    /// While the current round is in `[start, end)`, every message in
    /// either direction is silently dropped. Models a network partition
    /// that heals at `end`.
    pub partition_rounds: Option<(u64, u64)>,
}

impl ChaosConfig {
    /// Crash the connection permanently at `round`.
    pub fn crash_at(round: u64) -> Self {
        ChaosConfig { crash_at_round: Some(round), ..ChaosConfig::default() }
    }

    /// Stall the connection for `pause` at `round`.
    pub fn stall_at(round: u64, pause: Duration) -> Self {
        ChaosConfig { stall_at_round: Some((round, pause)), ..ChaosConfig::default() }
    }

    /// Partition the connection for rounds `[start, end)`.
    pub fn partition(start: u64, end: u64) -> Self {
        ChaosConfig { partition_rounds: Some((start, end)), ..ChaosConfig::default() }
    }
}

/// A transport with seeded random faults on its send path and optional
/// round-scheduled chaos (crash / stall / partition).
pub struct FaultyTransport<T: Transport> {
    inner: T,
    cfg: FaultConfig,
    chaos: ChaosConfig,
    rng: ChaCha8Rng,
    faults: FaultStats,
    round: u64,
    crashed: bool,
    stall_done: bool,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` with the given fault profile and RNG seed.
    pub fn new(inner: T, cfg: FaultConfig, seed: u64) -> Self {
        FaultyTransport {
            inner,
            cfg,
            chaos: ChaosConfig::default(),
            rng: ChaCha8Rng::seed_from_u64(seed),
            faults: FaultStats::default(),
            round: 0,
            crashed: false,
            stall_done: false,
        }
    }

    /// Wraps `inner` with probabilistic faults *and* a chaos schedule.
    pub fn with_chaos(inner: T, cfg: FaultConfig, chaos: ChaosConfig, seed: u64) -> Self {
        FaultyTransport { chaos, ..FaultyTransport::new(inner, cfg, seed) }
    }

    /// Injected-fault counters.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults
    }

    /// The round most recently observed in an outgoing `SubmitDelta`.
    pub fn observed_round(&self) -> u64 {
        self.round
    }

    /// True once a scheduled crash has fired.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// The wrapped transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    fn partitioned(&self) -> bool {
        matches!(self.chaos.partition_rounds, Some((s, e)) if (s..e).contains(&self.round))
    }

    /// Applies the chaos schedule for an outgoing message. Returns
    /// `Some(result)` when the schedule consumed the message.
    fn chaos_send(&mut self, msg: &Message) -> Option<Result<(), CommsError>> {
        if self.crashed {
            return Some(Err(CommsError::Closed));
        }
        if let Message::SubmitDelta { round, .. } = msg {
            self.round = self.round.max(*round);
        }
        if let Some(at) = self.chaos.crash_at_round {
            if self.round >= at {
                self.crashed = true;
                return Some(Err(CommsError::Closed));
            }
        }
        if let Some((at, pause)) = self.chaos.stall_at_round {
            if self.round >= at && !self.stall_done {
                self.stall_done = true;
                self.faults.stalled += 1;
                std::thread::sleep(pause);
            }
        }
        if self.partitioned() {
            self.faults.partitioned += 1;
            return Some(Ok(())); // swallowed: the peer never sees it
        }
        None
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, msg: Message) -> Result<(), CommsError> {
        if let Some(done) = self.chaos_send(&msg) {
            return done;
        }
        if self.rng.gen_bool(self.cfg.drop_prob) {
            self.faults.dropped += 1;
            return Ok(()); // swallowed: the peer never sees it
        }
        if self.rng.gen_bool(self.cfg.delay_prob) {
            self.faults.delayed += 1;
            let nanos = self.rng.gen_range(0..=self.cfg.max_delay.as_nanos() as u64);
            std::thread::sleep(Duration::from_nanos(nanos));
        }
        if self.rng.gen_bool(self.cfg.duplicate_prob) {
            self.faults.duplicated += 1;
            self.inner.send(msg.clone())?;
        }
        self.inner.send(msg)
    }

    fn recv(&mut self) -> Result<Message, CommsError> {
        loop {
            if self.crashed {
                return Err(CommsError::Closed);
            }
            let msg = self.inner.recv()?;
            if self.partitioned() {
                self.faults.partitioned += 1;
                continue; // swallowed: we never see it
            }
            return Ok(msg);
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Message, CommsError> {
        if self.crashed {
            return Err(CommsError::Closed);
        }
        let msg = self.inner.recv_timeout(timeout)?;
        if self.partitioned() {
            self.faults.partitioned += 1;
            return Err(CommsError::Timeout); // swallowed: we never see it
        }
        Ok(msg)
    }

    fn stats(&self) -> TransportStats {
        self.inner.stats()
    }

    fn record_retry(&mut self) {
        self.inner.record_retry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopback::loopback_pair;

    fn always(p: f64) -> FaultConfig {
        FaultConfig {
            drop_prob: p,
            delay_prob: 0.0,
            max_delay: Duration::ZERO,
            duplicate_prob: 0.0,
        }
    }

    #[test]
    fn drop_probability_one_swallows_everything() {
        let (a, mut b) = loopback_pair();
        let mut faulty = FaultyTransport::new(a, always(1.0), 7);
        for _ in 0..10 {
            faulty.send(Message::Hello { proto: 1, pipe: 0 }).unwrap();
        }
        assert_eq!(faulty.fault_stats().dropped, 10);
        assert!(matches!(b.recv_timeout(Duration::from_millis(10)), Err(CommsError::Timeout)));
    }

    #[test]
    fn duplicate_probability_one_doubles_traffic() {
        let (a, mut b) = loopback_pair();
        let cfg = FaultConfig {
            drop_prob: 0.0,
            delay_prob: 0.0,
            max_delay: Duration::ZERO,
            duplicate_prob: 1.0,
        };
        let mut faulty = FaultyTransport::new(a, cfg, 7);
        faulty.send(Message::PullRequest { shard: 0, version: 1 }).unwrap();
        assert!(b.recv().is_ok());
        assert!(b.recv_timeout(Duration::from_millis(100)).is_ok(), "expected the duplicate");
        assert_eq!(faulty.fault_stats().duplicated, 1);
    }

    #[test]
    fn same_seed_injects_identical_fault_sequence() {
        let run = |seed: u64| {
            let (a, _b) = loopback_pair();
            let mut faulty = FaultyTransport::new(a, FaultConfig::lossy_10(), seed);
            for i in 0..200 {
                faulty.send(Message::PullRequest { shard: 0, version: i }).unwrap();
            }
            faulty.fault_stats()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should differ somewhere");
    }

    #[test]
    fn lossy_profile_actually_drops_at_roughly_ten_percent() {
        let (a, _b) = loopback_pair();
        let mut faulty = FaultyTransport::new(
            a,
            FaultConfig { max_delay: Duration::ZERO, ..FaultConfig::lossy_10() },
            1,
        );
        for i in 0..1000 {
            faulty.send(Message::PullRequest { shard: 0, version: i }).unwrap();
        }
        let dropped = faulty.fault_stats().dropped;
        assert!((50..200).contains(&dropped), "10% of 1000 sends, got {dropped}");
    }

    fn clean() -> FaultConfig {
        always(0.0)
    }

    fn submit(round: u64) -> Message {
        Message::SubmitDelta { shard: 0, round, pipe: 0, delta: vec![] }
    }

    #[test]
    fn crash_at_round_kills_the_transport_permanently() {
        let (a, mut b) = loopback_pair();
        let mut faulty = FaultyTransport::with_chaos(a, clean(), ChaosConfig::crash_at(3), 7);
        for r in 0..3 {
            faulty.send(submit(r)).unwrap();
            assert!(b.recv().is_ok());
        }
        assert!(!faulty.crashed());
        assert!(matches!(faulty.send(submit(3)), Err(CommsError::Closed)));
        assert!(faulty.crashed());
        // Dead for good: later sends and recvs fail even for other rounds.
        assert!(matches!(faulty.send(submit(0)), Err(CommsError::Closed)));
        assert!(matches!(faulty.recv_timeout(Duration::from_millis(5)), Err(CommsError::Closed)));
    }

    #[test]
    fn partition_drops_both_directions_then_heals() {
        let (a, mut b) = loopback_pair();
        let mut faulty = FaultyTransport::with_chaos(a, clean(), ChaosConfig::partition(1, 2), 7);
        faulty.send(submit(0)).unwrap();
        assert!(b.recv().is_ok());
        // Round 1 is inside the partition: outgoing vanishes...
        faulty.send(submit(1)).unwrap();
        assert!(matches!(b.recv_timeout(Duration::from_millis(10)), Err(CommsError::Timeout)));
        // ...and incoming is swallowed too.
        b.send(Message::Ack { shard: 0, round: 1, pipe: 0, duplicate: false }).unwrap();
        assert!(matches!(faulty.recv_timeout(Duration::from_millis(10)), Err(CommsError::Timeout)));
        assert_eq!(faulty.fault_stats().partitioned, 2);
        // Round 2 heals the partition.
        faulty.send(submit(2)).unwrap();
        assert!(b.recv().is_ok());
    }

    #[test]
    fn stall_fires_once_at_its_round() {
        let (a, mut b) = loopback_pair();
        let pause = Duration::from_millis(30);
        let mut faulty =
            FaultyTransport::with_chaos(a, clean(), ChaosConfig::stall_at(1, pause), 7);
        faulty.send(submit(0)).unwrap();
        let t0 = std::time::Instant::now();
        faulty.send(submit(1)).unwrap();
        assert!(t0.elapsed() >= pause, "first round-1 send should stall");
        let t1 = std::time::Instant::now();
        faulty.send(submit(1)).unwrap();
        assert!(t1.elapsed() < pause, "stall must fire only once");
        assert_eq!(faulty.fault_stats().stalled, 1);
        for _ in 0..3 {
            assert!(b.recv().is_ok());
        }
    }
}
