//! Serving-side batch sizing from the §5 arithmetic-intensity model.
//!
//! The tuner's profiling method (§5.2) rests on one observation: a
//! device's utilization is a saturating function of the micro-batch
//! size — [`ModelSpec::demand`] rises steeply while the batch is small
//! and flattens once the kernels saturate the device. Training uses the
//! curve to pick micro-batch *counts*; inference serving reads the same
//! curve from the other end. A dynamic micro-batcher coalescing queued
//! requests gains throughput only while the demand curve still climbs:
//! past the saturation knee, a larger batch buys no more utilization
//! but every queued request still pays the full batch's latency.
//!
//! [`serve_batch_cap`] combines that model-derived ceiling with a
//! *measured* latency budget (BaPipe-style sizing against an observed
//! cost model): the cap is the largest batch that (a) the demand curve
//! still rewards and (b) a forward pass can execute inside the caller's
//! latency budget, interpolated from measured `(batch, µs)` points.
//!
//! [`ModelSpec::demand`]: ea_models::ModelSpec::demand

use ea_models::ModelSpec;

/// Fraction of the demand cap treated as "saturated": batches past the
/// smallest size reaching `SATURATION * demand_cap` are not worth
/// coalescing further.
const SATURATION: f64 = 0.95;

/// Linear interpolation (and edge extrapolation) of the measured
/// forward-pass cost at batch size `m`. `measured` must be sorted by
/// batch size and non-empty.
fn interp_cost_us(measured: &[(usize, f64)], m: usize) -> f64 {
    let x = m as f64;
    let (first, last) = (measured[0], measured[measured.len() - 1]);
    if measured.len() == 1 {
        // One calibration point: scale proportionally (cost through the
        // origin), the conservative choice for a compute-bound forward.
        return first.1 * x / (first.0 as f64).max(1.0);
    }
    // Below/above the measured range: extend the nearest segment.
    let seg = if x <= first.0 as f64 {
        (measured[0], measured[1])
    } else if x >= last.0 as f64 {
        (measured[measured.len() - 2], last)
    } else {
        let hi = measured.iter().position(|&(b, _)| (b as f64) >= x).unwrap();
        (measured[hi - 1], measured[hi])
    };
    let ((x0, y0), (x1, y1)) = (seg.0, seg.1);
    let span = (x1 as f64 - x0 as f64).max(1e-9);
    y0 + (y1 - y0) * (x - x0 as f64) / span
}

/// Largest worthwhile micro-batch for serving `spec` under a per-batch
/// execution budget of `budget_us`, given measured forward-pass costs
/// `measured` (sorted `(batch_size, micros)` calibration points).
///
/// The cap is `min(saturation cutoff, latency cutoff)`, clamped to at
/// least 1:
///
/// * **saturation cutoff** — the smallest batch whose
///   [`demand`](ea_models::ModelSpec::demand) reaches 95% of the
///   model's `demand_cap`. Beyond it the device is saturated and
///   batching further only adds queueing latency.
/// * **latency cutoff** — the largest batch whose interpolated cost
///   stays within `budget_us`. With an empty `measured` (no
///   calibration yet) this cutoff is skipped and the saturation
///   cutoff alone decides.
pub fn serve_batch_cap(spec: &ModelSpec, measured: &[(usize, f64)], budget_us: f64) -> usize {
    // Saturation cutoff: demand(m) is monotonically increasing, so walk
    // up from 1. The curve is cheap (one division per probe) and the
    // knee for every paper model sits far below 10k.
    let target = SATURATION * spec.demand_cap;
    let mut saturation = 1usize;
    while saturation < 10_000 && spec.demand(saturation) < target {
        saturation += 1;
    }

    let mut cap = saturation;
    if !measured.is_empty() && budget_us > 0.0 {
        // Latency cutoff: cost(m) grows with m, so binary-search the
        // largest m within budget over [0, cap].
        let (mut lo, mut hi) = (0usize, cap.max(1));
        if interp_cost_us(measured, hi) <= budget_us {
            lo = hi;
        } else {
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                if interp_cost_us(measured, mid) <= budget_us {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
        }
        cap = cap.min(lo);
    }
    cap.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_models::{awd_spec, bert_spec, gnmt_spec};

    #[test]
    fn interpolation_hits_measured_points_and_midpoints() {
        let measured = [(1, 100.0), (8, 400.0), (32, 1600.0)];
        assert!((interp_cost_us(&measured, 1) - 100.0).abs() < 1e-9);
        assert!((interp_cost_us(&measured, 8) - 400.0).abs() < 1e-9);
        // Midpoint of the second segment.
        assert!((interp_cost_us(&measured, 20) - 1000.0).abs() < 1e-9);
        // Extrapolation continues the last segment's slope (50 µs/item).
        assert!((interp_cost_us(&measured, 64) - 3200.0).abs() < 1e-9);
    }

    #[test]
    fn saturation_cutoff_tracks_the_demand_knee() {
        // demand(m) = cap·m/(m+half); 95% of cap needs m = 19·half.
        for spec in [gnmt_spec(), bert_spec(), awd_spec()] {
            let cap = serve_batch_cap(&spec, &[], f64::INFINITY);
            assert!(
                spec.demand(cap) >= 0.95 * spec.demand_cap - 1e-9,
                "{}: cap {cap} below the knee",
                spec.name
            );
            assert!(
                cap == 1 || spec.demand(cap - 1) < 0.95 * spec.demand_cap,
                "{}: cap {cap} is not the smallest saturating batch",
                spec.name
            );
        }
    }

    #[test]
    fn latency_budget_tightens_the_cap() {
        let spec = gnmt_spec();
        // 10 µs per row, measured exactly.
        let measured: Vec<(usize, f64)> =
            (0..8).map(|i| (1 << i, (1 << i) as f64 * 10.0)).collect();
        let unbounded = serve_batch_cap(&spec, &measured, f64::INFINITY);
        let bounded = serve_batch_cap(&spec, &measured, 200.0);
        assert!(bounded <= 20, "200 µs at 10 µs/row admits at most 20 rows, got {bounded}");
        assert!(bounded >= 19, "interpolated cutoff should land near 20, got {bounded}");
        assert!(bounded <= unbounded);
        // A budget below a single row still serves batch=1 (never 0).
        assert_eq!(serve_batch_cap(&spec, &measured, 1.0), 1);
    }
}
