//! Span-name interning: `&'static str` → `u32` once, per site.
//!
//! Ring-buffer events are fixed-size `Copy` records, so names travel as
//! small integers. A [`StaticName`] caches its id in a per-site atomic,
//! making the steady-state cost of naming a span one relaxed load.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};

static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();

fn table() -> &'static Mutex<Vec<&'static str>> {
    NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Interns `name`, returning its id (ids start at 1; 0 means "unset").
/// The table is tiny (one entry per instrumentation site), so a linear
/// scan beats a hash map here.
pub fn intern(name: &'static str) -> u32 {
    let mut t = table().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(i) = t.iter().position(|n| *n == name) {
        return i as u32 + 1;
    }
    t.push(name);
    t.len() as u32
}

/// The string behind an interned id (`"?"` for unknown ids).
pub fn name_of(id: u32) -> &'static str {
    if id == 0 {
        return "?";
    }
    let t = table().lock().unwrap_or_else(|e| e.into_inner());
    t.get(id as usize - 1).copied().unwrap_or("?")
}

/// A span/event name declared once at an instrumentation site:
///
/// ```
/// use ea_trace::StaticName;
/// static FWD: StaticName = StaticName::new("fwd");
/// assert_eq!(FWD.as_str(), "fwd");
/// ```
pub struct StaticName {
    name: &'static str,
    id: AtomicU32,
}

impl StaticName {
    /// Declares a name; interning happens lazily on first use.
    pub const fn new(name: &'static str) -> Self {
        StaticName { name, id: AtomicU32::new(0) }
    }

    /// The interned id, cached at the site after the first call.
    #[inline]
    pub fn id(&self) -> u32 {
        match self.id.load(Ordering::Relaxed) {
            0 => {
                let id = intern(self.name);
                self.id.store(id, Ordering::Relaxed);
                id
            }
            id => id,
        }
    }

    /// The name itself.
    pub fn as_str(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = intern("test-name-a");
        let b = intern("test-name-a");
        assert_eq!(a, b);
        assert_eq!(name_of(a), "test-name-a");
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let a = intern("test-name-b");
        let b = intern("test-name-c");
        assert_ne!(a, b);
    }

    #[test]
    fn static_name_caches_its_id() {
        static N: StaticName = StaticName::new("test-name-d");
        let first = N.id();
        assert_eq!(N.id(), first);
        assert_eq!(name_of(first), "test-name-d");
    }

    #[test]
    fn unknown_id_is_a_question_mark() {
        assert_eq!(name_of(0), "?");
        assert_eq!(name_of(u32::MAX), "?");
    }
}
