//! Per-connection state machine for the epoll reactor.
//!
//! Each accepted socket owns a [`Conn`]: an incremental frame decoder on
//! the read side and a bounded queue of fully-encoded frames on the write
//! side. Both directions are nonblocking — the reactor calls
//! [`Conn::read_message`] when the socket is readable and [`Conn::flush`]
//! when it is writable, and neither ever parks a thread.
//!
//! Zero-copy assembly: the fixed 12-byte header lands in an inline array;
//! once validated, one pooled buffer of exactly `payload_len + 4` bytes is
//! taken from [`crate::bytepool`] and `read(2)` writes payload and CRC
//! trailer directly into it. The payload is never memmoved between a
//! socket buffer and the decode buffer — `Message::decode_payload` reads
//! straight out of the pooled allocation, which is then recycled.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use crate::bytepool;
use crate::frame::{self, FrameError, HEADER_LEN};
use crate::reactor::DisconnectReason;
use crate::wire::Message;

/// Which part of the current inbound frame is being assembled.
enum Phase {
    /// Filling the 12-byte fixed header.
    Header,
    /// Filling `body` (payload + 4-byte CRC trailer) for a validated header.
    Body { msg_type: u8 },
}

/// One multiplexed connection: socket, inbound decoder state, outbound
/// frame queue, and liveness bookkeeping used by the reactor's timer wheel.
pub(crate) struct Conn {
    stream: TcpStream,
    phase: Phase,
    header: [u8; HEADER_LEN],
    /// Bytes filled so far in the current phase's target buffer.
    filled: usize,
    /// Pooled buffer for payload + CRC; sized when the header validates.
    body: Vec<u8>,
    /// Fully-encoded frames awaiting the socket, front partially written.
    outq: VecDeque<Vec<u8>>,
    /// Bytes of the front frame already written.
    head_off: usize,
    /// Total unwritten bytes across the queue (backpressure accounting).
    out_bytes: usize,
    /// Slot-reuse guard: readiness events carry the generation they were
    /// registered with, so events for a closed conn's recycled slot drop.
    pub(crate) gen: u32,
    /// Last time a complete inbound message arrived (idle-timeout basis).
    pub(crate) last_activity: Instant,
    /// Whether the reactor currently has `EPOLLOUT` in this connection's
    /// interest set (tracked here to avoid redundant `EPOLL_CTL_MOD`s).
    pub(crate) armed_write: bool,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, gen: u32) -> Conn {
        Conn {
            stream,
            phase: Phase::Header,
            header: [0u8; HEADER_LEN],
            filled: 0,
            body: Vec::new(),
            outq: VecDeque::new(),
            head_off: 0,
            out_bytes: 0,
            gen,
            last_activity: Instant::now(),
            armed_write: false,
        }
    }

    pub(crate) fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Unwritten outbound bytes currently queued.
    pub(crate) fn queued_bytes(&self) -> usize {
        self.out_bytes
    }

    /// Advances the inbound state machine as far as the socket allows.
    ///
    /// Returns `Ok(Some(msg))` for each completed frame, `Ok(None)` once
    /// the socket would block mid-frame, and `Err` when the connection
    /// must be dropped. A clean EOF at a frame boundary is `PeerClosed`;
    /// EOF mid-frame is a protocol violation (`Truncated`), matching the
    /// blocking reader in [`crate::frame::read_frame`].
    pub(crate) fn read_message(&mut self) -> Result<Option<Message>, DisconnectReason> {
        loop {
            match self.phase {
                Phase::Header => {
                    while self.filled < HEADER_LEN {
                        let at_boundary = self.filled == 0;
                        match self.stream.read(&mut self.header[self.filled..]) {
                            Ok(0) => {
                                return Err(if at_boundary {
                                    DisconnectReason::PeerClosed
                                } else {
                                    DisconnectReason::Frame(FrameError::Truncated)
                                });
                            }
                            Ok(n) => self.filled += n,
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                return Ok(None);
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                            Err(e) => return Err(DisconnectReason::Io(e)),
                        }
                    }
                    let (msg_type, len) =
                        frame::parse_header(&self.header).map_err(DisconnectReason::Frame)?;
                    self.body = bytepool::take(len + 4);
                    self.filled = 0;
                    self.phase = Phase::Body { msg_type };
                }
                Phase::Body { msg_type } => {
                    while self.filled < self.body.len() {
                        match self.stream.read(&mut self.body[self.filled..]) {
                            Ok(0) => {
                                return Err(DisconnectReason::Frame(FrameError::Truncated));
                            }
                            Ok(n) => self.filled += n,
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                return Ok(None);
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                            Err(e) => return Err(DisconnectReason::Io(e)),
                        }
                    }
                    let len = self.body.len() - 4;
                    let expected = u32::from_le_bytes(self.body[len..].try_into().unwrap());
                    let got = frame::crc32(&self.body[..len]);
                    if expected != got {
                        return Err(DisconnectReason::Frame(FrameError::BadCrc { expected, got }));
                    }
                    let msg = Message::decode_payload(msg_type, &self.body[..len])
                        .map_err(DisconnectReason::Frame)?;
                    bytepool::recycle(std::mem::take(&mut self.body));
                    self.phase = Phase::Header;
                    self.filled = 0;
                    self.last_activity = Instant::now();
                    crate::trace::counters().on_recv((HEADER_LEN + len + 4) as u64);
                    return Ok(Some(msg));
                }
            }
        }
    }

    /// Encodes `msg` into a pooled frame buffer and queues it. Large
    /// payload vectors (weights, deltas) are recycled to the tensor pool
    /// once serialized, mirroring `TcpTransport::send`.
    pub(crate) fn enqueue(&mut self, msg: Message, payload_scratch: &mut Vec<u8>) {
        msg.encode_payload(payload_scratch);
        let ty = msg.wire_type();
        match msg {
            Message::PullReply { weights, .. } => ea_tensor::pool::recycle(weights),
            Message::SubmitDelta { delta, .. } => ea_tensor::pool::recycle(delta),
            _ => {}
        }
        let mut buf = bytepool::take_empty(HEADER_LEN + payload_scratch.len() + 4);
        frame::encode_frame(ty, payload_scratch, &mut buf);
        crate::trace::counters().on_send(buf.len() as u64);
        self.out_bytes += buf.len();
        self.outq.push_back(buf);
    }

    /// Writes queued frames until done or the socket would block.
    ///
    /// Returns `Ok(true)` when the queue drained completely, `Ok(false)`
    /// when bytes remain (keep `EPOLLOUT` armed).
    pub(crate) fn flush(&mut self) -> Result<bool, DisconnectReason> {
        while let Some(front) = self.outq.front() {
            match self.stream.write(&front[self.head_off..]) {
                Ok(0) => return Err(DisconnectReason::PeerClosed),
                Ok(n) => {
                    self.head_off += n;
                    self.out_bytes -= n;
                    if self.head_off == front.len() {
                        let done = self.outq.pop_front().unwrap();
                        bytepool::recycle(done);
                        self.head_off = 0;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::BrokenPipe
                            | std::io::ErrorKind::ConnectionReset
                            | std::io::ErrorKind::ConnectionAborted
                            | std::io::ErrorKind::UnexpectedEof
                    ) =>
                {
                    return Err(DisconnectReason::PeerClosed);
                }
                Err(e) => return Err(DisconnectReason::Io(e)),
            }
        }
        Ok(true)
    }

    /// Returns every queued buffer to the byte pool (connection teardown).
    pub(crate) fn recycle_queue(&mut self) {
        for buf in self.outq.drain(..) {
            bytepool::recycle(buf);
        }
        self.out_bytes = 0;
        self.head_off = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn assembles_a_frame_split_across_arbitrary_writes() {
        let (mut client, server) = pair();
        server.set_nonblocking(true).unwrap();
        let mut conn = Conn::new(server, 0);

        let msg = Message::Ack { shard: 3, round: 9, pipe: 1, duplicate: false };
        let mut payload = Vec::new();
        msg.encode_payload(&mut payload);
        let mut wire = Vec::new();
        frame::encode_frame(msg.wire_type(), &payload, &mut wire);

        // Dribble the frame one byte at a time; the state machine must
        // report WouldBlock (None) until the last byte lands.
        for (i, b) in wire.iter().enumerate() {
            use std::io::Write;
            client.write_all(&[*b]).unwrap();
            client.flush().unwrap();
            // Give the kernel a moment to make the byte readable.
            let deadline = Instant::now() + std::time::Duration::from_secs(2);
            loop {
                match conn.read_message() {
                    Ok(Some(got)) => {
                        assert_eq!(i, wire.len() - 1, "decoded before the frame completed");
                        assert_eq!(got, msg);
                        return;
                    }
                    Ok(None) => {
                        if i == wire.len() - 1 && Instant::now() < deadline {
                            continue; // last byte may not be visible yet
                        }
                        break;
                    }
                    Err(e) => panic!("unexpected disconnect: {e:?}"),
                }
            }
        }
        panic!("frame never decoded");
    }

    #[test]
    fn clean_eof_at_boundary_is_peer_closed_mid_frame_is_truncated() {
        // Boundary close.
        let (client, server) = pair();
        server.set_nonblocking(true).unwrap();
        let mut conn = Conn::new(server, 0);
        drop(client);
        let deadline = Instant::now() + std::time::Duration::from_secs(2);
        loop {
            match conn.read_message() {
                Err(DisconnectReason::PeerClosed) => break,
                Ok(None) if Instant::now() < deadline => continue,
                other => panic!("expected PeerClosed, got {other:?}"),
            }
        }

        // Mid-frame close.
        let (mut client, server) = pair();
        server.set_nonblocking(true).unwrap();
        let mut conn = Conn::new(server, 0);
        {
            use std::io::Write;
            client.write_all(&frame::MAGIC).unwrap(); // 4 of 12 header bytes
        }
        drop(client);
        let deadline = Instant::now() + std::time::Duration::from_secs(2);
        loop {
            match conn.read_message() {
                Err(DisconnectReason::Frame(FrameError::Truncated)) => break,
                Ok(None) if Instant::now() < deadline => continue,
                other => panic!("expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn flush_tracks_partial_writes_and_drains() {
        let (client, server) = pair();
        server.set_nonblocking(true).unwrap();
        let mut conn = Conn::new(server, 0);
        let mut scratch = Vec::new();
        for round in 0..3 {
            conn.enqueue(Message::Ack { shard: 0, round, pipe: 0, duplicate: false }, &mut scratch);
        }
        let queued = conn.queued_bytes();
        assert!(queued > 0);
        assert!(conn.flush().unwrap(), "small frames drain in one flush");
        assert_eq!(conn.queued_bytes(), 0);

        // The peer can reassemble all three frames from the byte stream.
        let mut client = client;
        client.set_read_timeout(Some(std::time::Duration::from_secs(2))).unwrap();
        for round in 0..3 {
            let (ty, payload) = frame::read_frame(&mut client).unwrap().unwrap();
            let msg = Message::decode_payload(ty, &payload).unwrap();
            assert_eq!(msg, Message::Ack { shard: 0, round, pipe: 0, duplicate: false });
        }
    }
}
