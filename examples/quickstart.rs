//! Quickstart: tune and run AvgPipe on the GNMT workload, compare with
//! GPipe under the same per-GPU memory budget.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use avgpipe::{run_avgpipe, run_baseline, BaselineKind, TuneMethod};
use ea_models::gnmt_spec;
use ea_sim::ClusterConfig;

fn main() {
    // The paper's testbed: 3 nodes × 2 V100 (32 GB), 1 Gbps Ethernet.
    let cluster = ClusterConfig::paper_testbed();
    let spec = gnmt_spec();
    let batch = spec.default_batch;
    let adam_state_bytes = 8;
    let mem_budget = 16 * (1u64 << 30);

    println!(
        "workload: {} ({} M parameters, batch {batch})",
        spec.name,
        spec.total_param_bytes() / 4 / 1_000_000
    );

    // Baseline: GPipe with its micro-batch count swept for best time.
    let gpipe =
        run_baseline(BaselineKind::GPipe, &spec, &cluster, batch, adam_state_bytes, mem_budget);
    println!(
        "GPipe        : M={:<3}       {:>7.3} s/batch, peak {:>5.2} GiB/GPU, util {:.2}",
        gpipe.m,
        gpipe.time_per_batch_s,
        gpipe.max_peak_mem as f64 / (1u64 << 30) as f64,
        gpipe.mean_util
    );

    // AvgPipe: profiling-based tuning of (M, N), advance forward
    // propagation adapted by Algorithm 1, constrained to GPipe's memory.
    let avg = run_avgpipe(
        &spec,
        &cluster,
        batch,
        adam_state_bytes,
        gpipe.max_peak_mem,
        TuneMethod::ProfilingBased,
        4,
    );
    println!(
        "AvgPipe(G)   : M={:<3} N={}   {:>7.3} s/batch, peak {:>5.2} GiB/GPU, util {:.2}, advance {}",
        avg.m,
        avg.n,
        avg.time_per_batch_s,
        avg.max_peak_mem as f64 / (1u64 << 30) as f64,
        avg.mean_util,
        avg.advance
    );
    println!(
        "speedup: {:.2}x with {:.1}% of GPipe's memory",
        gpipe.time_per_batch_s / avg.time_per_batch_s,
        avg.max_peak_mem as f64 / gpipe.max_peak_mem as f64 * 100.0
    );
}
