//! Data-parallel (PyTorch DDP) baseline program.

use ea_models::ModelSpec;
use ea_sim::{CLabel, ClusterConfig, Instr, Program, Stream};

/// Generates `n_batches` iterations of synchronous data parallelism: every
/// device holds a full model replica, computes forward/backward on its
/// share of the batch, then ring-allreduces the full gradient.
///
/// The ring transfers `2·(D−1)·(G/D)` bytes per device per batch; with a
/// ~1 GB gradient over 1 Gbps Ethernet this is the communication wall the
/// paper measures ("data parallelism takes over 4 days to train GNMT").
pub fn data_parallel_program(
    spec: &ModelSpec,
    cluster: &ClusterConfig,
    batch: usize,
    n_batches: usize,
    opt_state_per_param: usize,
) -> Program {
    let d = cluster.num_devices();
    assert!(d >= 1);
    assert!(batch >= d, "batch smaller than device count");
    let per_dev = batch / d;

    let params = spec.total_param_bytes();
    let full_fwd_flops = spec.total_fwd_flops();
    let stash_per_sample: u64 = spec.layers.iter().map(|l| l.act_stash_bytes).sum();
    let demand = spec.demand(per_dev);
    let chunk = params / d as u64;

    let mut prog = Program::new();
    for dev in 0..d {
        prog.add_stream(Stream::new(dev, format!("ddp/rank{dev}")));
    }
    for dev in 0..d {
        let stream = &mut prog.streams[dev];
        // Replica + grads + optimizer state.
        let weight_bytes = 2 * params + params / 4 * opt_state_per_param as u64;
        stream.push(Instr::Alloc { bytes: weight_bytes, tag: 0 });
        for b in 0..n_batches as u64 {
            let act_tag = 1 + b;
            stream.push(Instr::Alloc { bytes: stash_per_sample * per_dev as u64, tag: act_tag });
            stream.push(Instr::Compute {
                flops: full_fwd_flops * per_dev as f64,
                demand,
                label: CLabel::Fwd { micro: b as u32 },
            });
            stream.push(Instr::Compute {
                flops: full_fwd_flops * per_dev as f64 * spec.bwd_factor,
                demand,
                label: CLabel::Bwd { micro: b as u32 },
            });
            stream.push(Instr::Free { tag: act_tag });
            // Ring allreduce: 2(D−1) rounds of chunk exchanges.
            if d > 1 {
                let next = (dev + 1) % d;
                let prev = (dev + d - 1) % d;
                for r in 0..2 * (d - 1) as u64 {
                    let tag = (b * 2 * d as u64 + r) as u32;
                    stream.push(Instr::Send { to: next, bytes: chunk, tag });
                    stream.push(Instr::Recv { from: prev, tag });
                }
            }
            stream.push(Instr::Compute {
                flops: (params / 4) as f64 * 4.0,
                demand: 1.0,
                label: CLabel::Opt,
            });
        }
    }
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_models::{awd_spec, gnmt_spec};
    use ea_sim::Simulator;

    #[test]
    fn ddp_program_runs() {
        let spec = awd_spec();
        let cluster = ClusterConfig::paper_testbed_two_nodes();
        let prog = data_parallel_program(&spec, &cluster, 40, 2, 0);
        prog.validate_channels().unwrap();
        let sim = Simulator::new(cluster);
        let r = sim.run(&prog).unwrap();
        assert!(r.makespan_us > 0.0);
    }

    #[test]
    fn allreduce_dominates_for_big_models_on_slow_network() {
        // GNMT gradients (~0.8 GB) over 1 Gbps: communication must dwarf
        // compute, reproducing the paper's data-parallelism wall.
        let spec = gnmt_spec();
        let cluster = ClusterConfig::paper_testbed();
        let sim = Simulator::new(cluster.clone());
        let r = sim.run(&data_parallel_program(&spec, &cluster, 128, 1, 8)).unwrap();
        let d0 = &r.devices[0];
        assert!(
            d0.comm_blocked_us > d0.busy_us,
            "comm {} vs busy {}",
            d0.comm_blocked_us,
            d0.busy_us
        );
    }

    #[test]
    fn single_device_has_no_transfers() {
        let spec = awd_spec();
        let cluster =
            ClusterConfig { nodes: 1, gpus_per_node: 1, ..ClusterConfig::paper_testbed() };
        let prog = data_parallel_program(&spec, &cluster, 40, 1, 0);
        assert!(prog.streams[0]
            .instrs
            .iter()
            .all(|i| !matches!(i, Instr::Send { .. } | Instr::Recv { .. })));
    }

    #[test]
    fn ddp_memory_includes_full_replica_everywhere() {
        let spec = awd_spec();
        let cluster = ClusterConfig::paper_testbed_two_nodes();
        let sim = Simulator::new(cluster.clone());
        let r = sim.run(&data_parallel_program(&spec, &cluster, 40, 1, 8)).unwrap();
        let min_peak = r.devices.iter().map(|d| d.peak_mem).min().unwrap();
        assert!(min_peak as f64 >= 2.0 * spec.total_param_bytes() as f64);
    }
}
