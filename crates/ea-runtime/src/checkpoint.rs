//! Model checkpointing: save and restore the flat parameters of a staged
//! model (and the elastic-averaging reference) to disk.
//!
//! The format is deliberately simple and self-describing: a JSON document
//! with one base64-free `Vec<f32>` per stage plus shape metadata, so
//! checkpoints are portable across runs and diffable in tests.
//!
//! Durability: [`Checkpoint::save`] and [`RefCheckpoint::save`] write to a
//! temporary file in the target directory and `rename` it into place, so
//! a crash mid-write leaves either the previous checkpoint or the new one
//! — never a torn file. Both formats carry a CRC32 over their payload;
//! loading rejects a checksum mismatch with
//! [`Error::CorruptCheckpoint`]-backed `InvalidData` instead of restoring
//! garbage weights.

use crate::json::{self, Json};
use crate::Error;
use ea_autograd::StagedModel;
use std::io::{Read, Write};
use std::path::Path;

/// CRC32 over stage payloads: each stage contributes its length (u32 LE)
/// followed by its parameters (f32 LE).
fn stages_checksum(stages: &[Vec<f32>]) -> u32 {
    let mut bytes = Vec::with_capacity(stages.iter().map(|s| 4 + 4 * s.len()).sum());
    for stage in stages {
        bytes.extend_from_slice(&(stage.len() as u32).to_le_bytes());
        for x in stage {
            bytes.extend_from_slice(&x.to_le_bytes());
        }
    }
    ea_comms::crc32(&bytes)
}

/// Writes `json` to `path` atomically: temp file in the same directory,
/// flushed, then renamed over the target.
fn atomic_write(path: &Path, json: &str) -> std::io::Result<()> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(json.as_bytes())?;
    f.sync_all()?;
    drop(f);
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Emits `[[...],[...]]` for stage payloads.
fn write_stages(out: &mut String, stages: &[Vec<f32>]) {
    out.push('[');
    for (i, stage) in stages.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, x) in stage.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            json::write_f32(out, *x);
        }
        out.push(']');
    }
    out.push(']');
}

fn read_stages(v: &Json, field: &'static str) -> std::io::Result<Vec<Vec<f32>>> {
    let bad = |why: String| std::io::Error::new(std::io::ErrorKind::InvalidData, why);
    let arr = v
        .get(field)
        .and_then(Json::as_arr)
        .ok_or_else(|| bad(format!("checkpoint missing {field:?} array")))?;
    arr.iter()
        .map(|stage| {
            stage
                .as_arr()
                .ok_or_else(|| bad(format!("{field} entry is not an array")))?
                .iter()
                .map(|x| x.as_f32().ok_or_else(|| bad(format!("{field} holds a non-number"))))
                .collect()
        })
        .collect()
}

fn read_checksum(v: &Json) -> std::io::Result<Option<u32>> {
    match v.get("checksum") {
        None | Some(Json::Null) => Ok(None),
        Some(c) => c.as_u32().map(Some).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "bad checksum field")
        }),
    }
}

fn read_u32(v: &Json, field: &'static str) -> std::io::Result<u32> {
    v.get(field).and_then(Json::as_u32).ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad {field} field"))
    })
}

/// A serialized model snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Free-form tag (e.g. the workload name and step count).
    pub tag: String,
    /// Flat parameters of each stage, in stage order.
    pub stages: Vec<Vec<f32>>,
    /// CRC32 of the stage payloads; `None` only in legacy files written
    /// before checksums existed.
    pub checksum: Option<u32>,
}

impl Checkpoint {
    /// Captures the current parameters of a model.
    pub fn capture(model: &StagedModel, tag: impl Into<String>) -> Self {
        let stages: Vec<Vec<f32>> =
            (0..model.num_stages()).map(|k| model.stage(k).params_flat()).collect();
        let checksum = Some(stages_checksum(&stages));
        Checkpoint { version: 1, tag: tag.into(), stages, checksum }
    }

    /// Validates the payload against the stored checksum. Legacy files
    /// without a checksum pass (nothing to validate against).
    pub fn verify(&self) -> Result<(), Error> {
        match self.checksum {
            None => Ok(()),
            Some(want) => {
                let got = stages_checksum(&self.stages);
                if got == want {
                    Ok(())
                } else {
                    Err(Error::CorruptCheckpoint {
                        why: format!("payload CRC32 {got:#010x}, file says {want:#010x}"),
                    })
                }
            }
        }
    }

    /// Writes the parameters back into a structurally-identical model.
    ///
    /// Returns an error (without touching any parameter) if the stage
    /// count or any stage's parameter count differs — a corrupt or
    /// mismatched checkpoint file must not abort training, and must not
    /// leave the model half-restored.
    pub fn restore(&self, model: &mut StagedModel) -> Result<(), Error> {
        if self.stages.len() != model.num_stages() {
            return Err(Error::StageCountMismatch {
                checkpoint: self.stages.len(),
                model: model.num_stages(),
            });
        }
        for (k, params) in self.stages.iter().enumerate() {
            let expected = model.stage(k).num_params();
            if params.len() != expected {
                return Err(Error::LengthMismatch {
                    what: format!("checkpoint stage {k} params"),
                    expected,
                    got: params.len(),
                });
            }
        }
        for (k, params) in self.stages.iter().enumerate() {
            model.stage_mut(k).set_params_flat(params);
        }
        Ok(())
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\"version\":");
        out.push_str(&self.version.to_string());
        out.push_str(",\"tag\":");
        json::write_str(&mut out, &self.tag);
        out.push_str(",\"stages\":");
        write_stages(&mut out, &self.stages);
        out.push_str(",\"checksum\":");
        match self.checksum {
            Some(c) => out.push_str(&c.to_string()),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }

    fn from_json(buf: &str) -> std::io::Result<Self> {
        let bad = |why: String| std::io::Error::new(std::io::ErrorKind::InvalidData, why);
        let v = json::parse(buf).map_err(bad)?;
        let ckpt = Checkpoint {
            version: read_u32(&v, "version")?,
            tag: v
                .get("tag")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("bad tag field".into()))?
                .to_string(),
            stages: read_stages(&v, "stages")?,
            checksum: read_checksum(&v)?,
        };
        ckpt.verify().map_err(|e| bad(e.to_string()))?;
        Ok(ckpt)
    }

    /// Serializes to a writer as JSON.
    pub fn save_to(&self, mut w: impl Write) -> std::io::Result<()> {
        w.write_all(self.to_json().as_bytes())
    }

    /// Deserializes from a reader, rejecting checksum mismatches.
    pub fn load_from(mut r: impl Read) -> std::io::Result<Self> {
        let mut buf = String::new();
        r.read_to_string(&mut buf)?;
        Self::from_json(&buf)
    }

    /// Saves to a file path atomically (temp file + rename).
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        atomic_write(path.as_ref(), &self.to_json())
    }

    /// Loads from a file path.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::load_from(std::fs::File::open(path)?)
    }

    /// Total scalar parameters in the snapshot.
    pub fn num_params(&self) -> usize {
        self.stages.iter().map(Vec::len).sum()
    }
}

/// A round-tagged snapshot of the elastic-averaging *reference shards* —
/// what `RefShardServer` persists periodically and restores on startup so
/// a server crash resumes at the recorded round instead of resetting the
/// reference.
#[derive(Clone, Debug, PartialEq)]
pub struct RefCheckpoint {
    /// Format version for forward compatibility.
    pub version: u32,
    /// The shard version (completed rounds) this snapshot corresponds to.
    /// All shards are captured at the same round — the checkpointer skips
    /// a tick rather than persist a torn cross-shard state.
    pub round: u64,
    /// Reference weights of each shard, in stage order.
    pub shards: Vec<Vec<f32>>,
    /// CRC32 of the shard payloads.
    pub checksum: Option<u32>,
}

impl RefCheckpoint {
    /// Builds a snapshot from consistent per-shard weights.
    pub fn capture(round: u64, shards: Vec<Vec<f32>>) -> Self {
        let checksum = Some(stages_checksum(&shards));
        RefCheckpoint { version: 1, round, shards, checksum }
    }

    /// Validates the payload against the stored checksum.
    pub fn verify(&self) -> Result<(), Error> {
        match self.checksum {
            None => Ok(()),
            Some(want) => {
                let got = stages_checksum(&self.shards);
                if got == want {
                    Ok(())
                } else {
                    Err(Error::CorruptCheckpoint {
                        why: format!("payload CRC32 {got:#010x}, file says {want:#010x}"),
                    })
                }
            }
        }
    }

    /// Saves to a file path atomically (temp file + rename).
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut out = String::from("{\"version\":");
        out.push_str(&self.version.to_string());
        out.push_str(",\"round\":");
        out.push_str(&self.round.to_string());
        out.push_str(",\"shards\":");
        write_stages(&mut out, &self.shards);
        out.push_str(",\"checksum\":");
        match self.checksum {
            Some(c) => out.push_str(&c.to_string()),
            None => out.push_str("null"),
        }
        out.push('}');
        atomic_write(path.as_ref(), &out)
    }

    /// Loads from a file path, rejecting torn or corrupt files.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let bad = |why: String| std::io::Error::new(std::io::ErrorKind::InvalidData, why);
        let buf = std::fs::read_to_string(path)?;
        let v = json::parse(&buf).map_err(bad)?;
        let ckpt = RefCheckpoint {
            version: read_u32(&v, "version")?,
            round: v
                .get("round")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("bad round field".into()))?,
            shards: read_stages(&v, "shards")?,
            checksum: read_checksum(&v)?,
        };
        ckpt.verify().map_err(|e| bad(e.to_string()))?;
        Ok(ckpt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_models::{gnmt_analogue, AnalogueConfig};
    use ea_tensor::TensorRng;

    const CFG: AnalogueConfig =
        AnalogueConfig { vocab: 16, seq: 4, hidden: 16, blocks: 2, stages: 2 };

    #[test]
    fn roundtrip_through_memory() {
        let model = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(1));
        let ckpt = Checkpoint::capture(&model, "test");
        assert_eq!(ckpt.num_params(), model.num_params());

        let mut buf = Vec::new();
        ckpt.save_to(&mut buf).unwrap();
        let loaded = Checkpoint::load_from(buf.as_slice()).unwrap();
        assert_eq!(loaded, ckpt);

        // Restore into a differently-initialized model: parameters match
        // the original bit-for-bit afterwards.
        let mut other = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(99));
        assert_ne!(other.stage(0).params_flat(), model.stage(0).params_flat());
        loaded.restore(&mut other).unwrap();
        for k in 0..2 {
            assert_eq!(other.stage(k).params_flat(), model.stage(k).params_flat());
        }
    }

    #[test]
    fn roundtrip_through_file() {
        let model = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(2));
        let ckpt = Checkpoint::capture(&model, "file-test");
        let path = std::env::temp_dir().join("avgpipe_ckpt_test.json");
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded, ckpt);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn restore_into_wrong_architecture_is_an_error() {
        let model = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(3));
        let ckpt = Checkpoint::capture(&model, "bad");
        let wrong_cfg = AnalogueConfig { hidden: 8, ..CFG };
        let mut wrong = gnmt_analogue(wrong_cfg, &mut TensorRng::seed_from_u64(3));
        let before = wrong.stage(0).params_flat();
        match ckpt.restore(&mut wrong) {
            Err(Error::LengthMismatch { .. }) => {}
            other => panic!("expected LengthMismatch, got {other:?}"),
        }
        assert_eq!(wrong.stage(0).params_flat(), before, "failed restore must not mutate");
    }

    #[test]
    fn restore_with_wrong_stage_count_is_an_error() {
        let model = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(4));
        let mut ckpt = Checkpoint::capture(&model, "bad");
        ckpt.stages.pop();
        let mut target = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(4));
        assert_eq!(
            ckpt.restore(&mut target),
            Err(Error::StageCountMismatch { checkpoint: 1, model: 2 })
        );
    }

    #[test]
    fn corrupt_data_is_an_error_not_a_panic() {
        let err = Checkpoint::load_from("not json".as_bytes());
        assert!(err.is_err());
    }

    #[test]
    fn tampered_payload_fails_the_checksum() {
        let model = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(5));
        let mut ckpt = Checkpoint::capture(&model, "tamper");
        assert!(ckpt.verify().is_ok());
        ckpt.stages[0][0] += 1.0;
        assert!(matches!(ckpt.verify(), Err(Error::CorruptCheckpoint { .. })));
        let mut buf = Vec::new();
        ckpt.save_to(&mut buf).unwrap();
        let err = Checkpoint::load_from(buf.as_slice());
        assert!(err.is_err(), "load must reject a checksum mismatch");
    }

    #[test]
    fn legacy_file_without_checksum_still_loads() {
        let json = r#"{"version":1,"tag":"old","stages":[[1.0,2.0]]}"#;
        let ckpt = Checkpoint::load_from(json.as_bytes()).unwrap();
        assert_eq!(ckpt.checksum, None);
        assert_eq!(ckpt.stages, vec![vec![1.0, 2.0]]);
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_file() {
        let model = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(6));
        let ckpt = Checkpoint::capture(&model, "atomic");
        let dir = std::env::temp_dir().join("avgpipe_ckpt_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        // Overwrite an existing checkpoint twice; the directory must only
        // ever contain the finished file.
        ckpt.save(&path).unwrap();
        ckpt.save(&path).unwrap();
        let entries: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(entries, vec!["ckpt.json"], "no temp files left behind");
        assert_eq!(Checkpoint::load(&path).unwrap(), ckpt);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ref_checkpoint_roundtrips_and_rejects_torn_files() {
        let ckpt = RefCheckpoint::capture(7, vec![vec![1.0, 2.0], vec![3.0]]);
        let path = std::env::temp_dir().join("avgpipe_ref_ckpt_test.json");
        ckpt.save(&path).unwrap();
        assert_eq!(RefCheckpoint::load(&path).unwrap(), ckpt);

        // A torn write (truncated file) must be rejected, not restored.
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(RefCheckpoint::load(&path).is_err());

        // Valid JSON whose payload disagrees with its checksum must fail.
        let mut tampered = ckpt.clone();
        tampered.shards[0][0] = 9.0; // checksum field now stale
        tampered.save(&path).unwrap();
        assert!(RefCheckpoint::load(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
