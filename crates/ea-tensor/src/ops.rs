//! Reductions, softmax and layout helpers.
//!
//! The softmax family has `_into` variants that write into a
//! caller-supplied tensor, reusing its buffer when possible; the
//! allocating forms wrap them with a pooled output.

use crate::Tensor;

/// Transpose of the matrix view, written into `out`.
pub fn transpose_into(t: &Tensor, out: &mut Tensor) {
    let (r, c) = t.shape().as_matrix();
    out.prepare_out(&[c, r]);
    let obuf = out.data_mut();
    let data = t.data();
    for i in 0..r {
        for j in 0..c {
            obuf[j * r + i] = data[i * c + j];
        }
    }
}

/// Transpose of the matrix view.
pub fn transpose(t: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(&[0]);
    transpose_into(t, &mut out);
    out
}

/// Per-row sums of the matrix view.
pub fn row_sums(t: &Tensor) -> Tensor {
    let (r, c) = t.shape().as_matrix();
    let mut out = crate::pool::take_cleared(r);
    for i in 0..r {
        out.push(t.data()[i * c..(i + 1) * c].iter().sum());
    }
    Tensor::from_vec(out, &[r])
}

/// Per-column sums of the matrix view (e.g. bias gradients).
pub fn col_sums(t: &Tensor) -> Tensor {
    let (r, c) = t.shape().as_matrix();
    let mut out = Tensor::zeros(&[c]);
    let obuf = out.data_mut();
    let data = t.data();
    for i in 0..r {
        let row = &data[i * c..(i + 1) * c];
        for (o, &v) in obuf.iter_mut().zip(row) {
            *o += v;
        }
    }
    out
}

fn softmax_row(row: &mut [f32]) {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    let inv = 1.0 / sum;
    for x in row.iter_mut() {
        *x *= inv;
    }
}

/// Numerically-stable softmax per row of the matrix view, written into
/// `out` (which may alias `t` only as a distinct tensor — the kernel
/// copies the input before transforming).
pub fn softmax_rows_into(t: &Tensor, out: &mut Tensor) {
    let (r, c) = t.shape().as_matrix();
    out.prepare_out(&[r, c]);
    let obuf = out.data_mut();
    obuf.copy_from_slice(t.data());
    for i in 0..r {
        softmax_row(&mut obuf[i * c..(i + 1) * c]);
    }
}

/// Numerically-stable softmax applied independently to each row of the
/// matrix view.
pub fn softmax_rows(t: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(&[0]);
    softmax_rows_into(t, &mut out);
    out
}

/// Numerically-stable log-softmax per row, written into `out`.
pub fn log_softmax_rows_into(t: &Tensor, out: &mut Tensor) {
    let (r, c) = t.shape().as_matrix();
    out.prepare_out(&[r, c]);
    let obuf = out.data_mut();
    obuf.copy_from_slice(t.data());
    for i in 0..r {
        let row = &mut obuf[i * c..(i + 1) * c];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let log_sum = row.iter().map(|x| (x - max).exp()).sum::<f32>().ln() + max;
        for x in row.iter_mut() {
            *x -= log_sum;
        }
    }
}

/// Numerically-stable log-softmax applied per row.
pub fn log_softmax_rows(t: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(&[0]);
    log_softmax_rows_into(t, &mut out);
    out
}

/// Index of the maximum element in each row of the matrix view (first
/// occurrence wins ties).
pub fn argmax_rows(t: &Tensor) -> Vec<usize> {
    let (r, c) = t.shape().as_matrix();
    let mut out = Vec::with_capacity(r);
    for i in 0..r {
        let row = &t.data()[i * c..(i + 1) * c];
        let mut best = 0;
        for (j, &x) in row.iter().enumerate() {
            if x > row[best] {
                best = j;
            }
        }
        out.push(best);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allclose;

    #[test]
    fn transpose_roundtrip() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let tt = transpose(&transpose(&t));
        assert_eq!(tt, t);
        assert_eq!(transpose(&t).at(&[2, 1]), t.at(&[1, 2]));
    }

    #[test]
    fn sums() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(row_sums(&t).data(), &[3.0, 7.0]);
        assert_eq!(col_sums(&t).data(), &[4.0, 6.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let s = softmax_rows(&t);
        for sum in row_sums(&s).data() {
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Softmax is shift-invariant.
        let shifted = softmax_rows(&t.map(|x| x + 100.0));
        assert!(allclose(&s, &shifted, 1e-5));
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let t = Tensor::from_vec(vec![1000.0, 1001.0], &[1, 2]);
        let s = softmax_rows(&t);
        assert!(!s.has_non_finite());
        assert!(s.at(&[0, 1]) > s.at(&[0, 0]));
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let t = Tensor::from_vec(vec![0.5, -0.3, 2.0], &[1, 3]);
        let a = log_softmax_rows(&t);
        let b = softmax_rows(&t).map(f32::ln);
        assert!(allclose(&a, &b, 1e-5));
    }

    #[test]
    fn softmax_into_reuses_buffer_and_overwrites() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let mut out = Tensor::full(&[2, 3], f32::NAN);
        let ptr = out.data().as_ptr();
        softmax_rows_into(&t, &mut out);
        assert_eq!(out.data().as_ptr(), ptr);
        assert!(!out.has_non_finite());
        assert!(allclose(&out, &softmax_rows(&t), 0.0));
    }

    #[test]
    fn argmax_rows_first_tie_wins() {
        let t = Tensor::from_vec(vec![1.0, 3.0, 3.0, 0.0, -1.0, -2.0], &[2, 3]);
        assert_eq!(argmax_rows(&t), vec![1, 0]);
    }
}
