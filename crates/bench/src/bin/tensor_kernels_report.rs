//! GFLOP/s report for the SIMD kernel layer: times every matmul kernel,
//! the softmax/optimizer/elastic hot loops, and one real train_step /
//! elastic_round, under forced-scalar and auto-detected dispatch, and
//! writes `BENCH_3.json` with the speedups.
//!
//! Exits nonzero if the end-to-end losses are not bit-identical across
//! dispatch levels — the bit-exactness contract of DESIGN.md §13.
//!
//! ```text
//! cargo run -p bench --release --bin tensor_kernels_report
//! cargo run -p bench --release --bin tensor_kernels_report -- --reps 30
//! ```

use ea_data::SyntheticTask;
use ea_models::{gnmt_analogue, AnalogueConfig};
use ea_optim::{OptKind, Optimizer};
use ea_runtime::{train_step, ElasticSemantic};
use ea_tensor::{matmul_a_bt_into, matmul_at_b_into, matmul_into, simd, softmax_rows_into};
use ea_tensor::{uniform, Tensor, TensorRng};
use std::time::Instant;

/// Median wall-clock seconds of `reps` runs of `f`.
fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Runs `f` under a forced dispatch level, restoring auto dispatch after.
fn at_level<T>(level: Option<simd::Level>, f: impl FnOnce() -> T) -> T {
    simd::force_level(level);
    let out = f();
    simd::force_level(None);
    out
}

struct KernelRow {
    name: String,
    gflops_scalar: f64,
    gflops_simd: f64,
}

impl KernelRow {
    fn speedup(&self) -> f64 {
        self.gflops_simd / self.gflops_scalar
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"kernel\": \"{}\", \"scalar_gflops\": {:.3}, \"simd_gflops\": {:.3}, \"speedup\": {:.2}}}",
            self.name,
            self.gflops_scalar,
            self.gflops_simd,
            self.speedup()
        )
    }
}

/// Times one matmul kernel at (m, k, n) under both levels.
fn bench_matmul(
    name: &str,
    reps: usize,
    m: usize,
    k: usize,
    n: usize,
    kernel: impl Fn(&Tensor, &Tensor, &mut Tensor),
    a_dims: [usize; 2],
    b_dims: [usize; 2],
) -> KernelRow {
    let mut rng = TensorRng::seed_from_u64(42);
    let a = uniform(&a_dims, -1.0, 1.0, &mut rng);
    let b = uniform(&b_dims, -1.0, 1.0, &mut rng);
    let mut out = Tensor::from_vec(vec![0.0], &[1]);
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    let mut run = |level| {
        at_level(level, || {
            kernel(&a, &b, &mut out); // warm up pool + level cache
            let secs = time_median(reps, || {
                kernel(std::hint::black_box(&a), std::hint::black_box(&b), &mut out)
            });
            flops / secs / 1e9
        })
    };
    let gflops_scalar = run(Some(simd::Level::Scalar));
    let gflops_simd = run(None);
    KernelRow { name: format!("{name}_{m}x{k}x{n}"), gflops_scalar, gflops_simd }
}

/// Times an in-place flat-buffer kernel, reporting effective GFLOP/s for
/// `flops_per_elem` operations per element.
fn bench_flat(
    name: &str,
    reps: usize,
    len: usize,
    flops_per_elem: f64,
    mut f: impl FnMut(),
) -> KernelRow {
    let flops = flops_per_elem * len as f64;
    let mut run = |level: Option<simd::Level>| {
        at_level(level, || {
            f(); // warm up
            let secs = time_median(reps, &mut f);
            flops / secs / 1e9
        })
    };
    let gflops_scalar = run(Some(simd::Level::Scalar));
    let gflops_simd = run(None);
    KernelRow { name: name.to_string(), gflops_scalar, gflops_simd }
}

const CFG: AnalogueConfig = AnalogueConfig { vocab: 32, seq: 8, hidden: 32, blocks: 3, stages: 3 };

fn adam_opts() -> Vec<Box<dyn Optimizer>> {
    (0..CFG.stages).map(|_| OptKind::Adam { lr: 1e-2 }.build()).collect()
}

/// Five synchronous training steps on the GNMT analogue; returns the
/// per-step losses and the median per-step seconds.
fn run_train_steps(level: Option<simd::Level>) -> (Vec<f32>, f64) {
    at_level(level, || {
        let mut model = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(0));
        let mut opts = adam_opts();
        let task = SyntheticTask::copy_translate(32, 8, 1);
        let batch = task.batch(16, 0);
        let mut losses = Vec::new();
        let mut samples = Vec::new();
        for step in 1..=5u64 {
            let t0 = Instant::now();
            losses.push(train_step(&mut model, &mut opts, &batch, 4, step));
            samples.push(t0.elapsed().as_secs_f64());
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        (losses, samples[samples.len() / 2])
    })
}

/// Three elastic-averaging rounds with two replicas; returns the round
/// losses and the median per-round seconds.
fn run_elastic_rounds(level: Option<simd::Level>) -> (Vec<f32>, f64) {
    at_level(level, || {
        let replicas =
            (0..2).map(|_| gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(0))).collect();
        let opts = (0..2).map(|_| adam_opts()).collect();
        let eval = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(0));
        let mut ea = ElasticSemantic::with_eval_replica(replicas, opts, 4, None, eval);
        let task = SyntheticTask::copy_translate(32, 8, 2);
        let b0 = task.batch(16, 0);
        let b1 = task.batch(16, 1);
        let mut losses = Vec::new();
        let mut samples = Vec::new();
        for _ in 0..3 {
            let t0 = Instant::now();
            losses.push(ea.round(&[b0.clone(), b1.clone()]));
            samples.push(t0.elapsed().as_secs_f64());
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        (losses, samples[samples.len() / 2])
    })
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn json_f32s(v: &[f32]) -> String {
    let items: Vec<String> = v.iter().map(|x| format!("{x:.6}")).collect();
    format!("[{}]", items.join(", "))
}

fn main() {
    let mut reps = 20usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--reps" => reps = args.next().expect("--reps value").parse().expect("integer"),
            other => panic!("unknown argument {other:?}"),
        }
    }

    println!(
        "== tensor kernel report: detected level {} ==",
        simd::level_name(simd::detected_level())
    );

    // Matmul kernels at the training-step shape (hidden = 32) and larger.
    let mut rows = Vec::new();
    for s in [32usize, 64, 128, 256] {
        rows.push(bench_matmul("matmul", reps, s, s, s, matmul_into, [s, s], [s, s]));
        rows.push(bench_matmul("matmul_a_bt", reps, s, s, s, matmul_a_bt_into, [s, s], [s, s]));
        rows.push(bench_matmul("matmul_at_b", reps, s, s, s, matmul_at_b_into, [s, s], [s, s]));
    }
    // The actual per-micro-batch activation shape of the training bench:
    // (batch·seq) × hidden against hidden × hidden.
    rows.push(bench_matmul("matmul", reps, 128, 32, 32, matmul_into, [128, 32], [32, 32]));

    // Softmax at the logits shape of the analogue models.
    {
        let mut rng = TensorRng::seed_from_u64(1);
        let x = uniform(&[256, 512], -2.0, 2.0, &mut rng);
        let mut out = Tensor::from_vec(vec![0.0], &[1]);
        // ~6 flops/elem (max, sub, exp≈4 amortized is ignored: relative only).
        rows.push(bench_flat("softmax_rows_256x512", reps, 256 * 512, 6.0, || {
            softmax_rows_into(std::hint::black_box(&x), &mut out)
        }));
    }

    // Optimizer + fused elastic kernels on a 64k flat buffer.
    {
        let n = 64 * 1024;
        let g: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin() * 0.1).collect();
        let r: Vec<f32> = (0..n).map(|i| (i as f32 * 0.53).cos()).collect();
        let mut p = vec![0.5f32; n];
        let mut m = vec![0.0f32; n];
        let mut v = vec![0.0f32; n];
        rows.push(bench_flat("adam_step_64k", reps, n, 12.0, || {
            simd::adam_step(&mut p, &mut m, &mut v, &g, 1e-3, 0.9, 0.999, 1e-8, 0.1, 0.001)
        }));
        let mut w = vec![0.5f32; n];
        let mut opt = ea_optim::Sgd::new(0.01);
        let mut delta = Vec::with_capacity(n);
        rows.push(bench_flat("step_pull_delta_sgd_64k", reps, n, 7.0, || {
            ea_optim::step_pull_delta(&mut opt, &mut w, &g, &r, 0.25, &mut delta)
        }));
    }

    for row in &rows {
        println!(
            "  {:<24} scalar {:>8.3} GF/s   simd {:>8.3} GF/s   speedup {:>5.2}x",
            row.name,
            row.gflops_scalar,
            row.gflops_simd,
            row.speedup()
        );
    }

    // End-to-end: losses must be bit-identical across dispatch levels.
    let (loss_steps_scalar, step_secs_scalar) = run_train_steps(Some(simd::Level::Scalar));
    let (loss_steps_simd, step_secs_simd) = run_train_steps(None);
    let (loss_rounds_scalar, round_secs_scalar) = run_elastic_rounds(Some(simd::Level::Scalar));
    let (loss_rounds_simd, round_secs_simd) = run_elastic_rounds(None);

    let steps_identical = bits(&loss_steps_scalar) == bits(&loss_steps_simd);
    let rounds_identical = bits(&loss_rounds_scalar) == bits(&loss_rounds_simd);
    println!(
        "  train_step     scalar {:.2} ms  simd {:.2} ms  speedup {:.2}x  losses bit-identical: {steps_identical}",
        step_secs_scalar * 1e3,
        step_secs_simd * 1e3,
        step_secs_scalar / step_secs_simd
    );
    println!(
        "  elastic_round  scalar {:.2} ms  simd {:.2} ms  speedup {:.2}x  losses bit-identical: {rounds_identical}",
        round_secs_scalar * 1e3,
        round_secs_simd * 1e3,
        round_secs_scalar / round_secs_simd
    );

    let kernel_json: Vec<String> = rows.iter().map(|r| format!("    {}", r.to_json())).collect();
    let json = format!(
        "{{\n  \"bench\": \"tensor_kernels\",\n  \"simd_level\": \"{}\",\n  \"reps\": {reps},\n  \"kernels\": [\n{}\n  ],\n  \"train_step\": {{\"scalar_ms\": {:.3}, \"simd_ms\": {:.3}, \"speedup\": {:.2}, \"losses\": {}, \"bit_identical\": {steps_identical}}},\n  \"elastic_round\": {{\"scalar_ms\": {:.3}, \"simd_ms\": {:.3}, \"speedup\": {:.2}, \"losses\": {}, \"bit_identical\": {rounds_identical}}}\n}}\n",
        simd::level_name(simd::detected_level()),
        kernel_json.join(",\n"),
        step_secs_scalar * 1e3,
        step_secs_simd * 1e3,
        step_secs_scalar / step_secs_simd,
        json_f32s(&loss_steps_simd),
        round_secs_scalar * 1e3,
        round_secs_simd * 1e3,
        round_secs_scalar / round_secs_simd,
        json_f32s(&loss_rounds_simd),
    );
    std::fs::write("BENCH_3.json", &json).expect("write BENCH_3.json");
    println!("  [saved BENCH_3.json]");

    if !(steps_identical && rounds_identical) {
        eprintln!("FAIL: end-to-end losses differ across SIMD dispatch levels");
        eprintln!("  train_step scalar: {loss_steps_scalar:?}");
        eprintln!("  train_step simd:   {loss_steps_simd:?}");
        eprintln!("  elastic    scalar: {loss_rounds_scalar:?}");
        eprintln!("  elastic    simd:   {loss_rounds_simd:?}");
        std::process::exit(1);
    }
}
