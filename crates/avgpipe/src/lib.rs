//! AvgPipe: elastic averaging for efficient pipelined DNN training.
//!
//! This is the paper's system (PPoPP'23), reassembled from the substrate
//! crates. The architecture mirrors the paper's Figure 10:
//!
//! * **partitioner** — `ea_sched::partition_model` (PipeDream's method).
//! * **profiler** — [`Profiler`]: runs one setting of the parallelism
//!   degrees for a few batches on the cluster simulator and records
//!   per-GPU compute time, total communication time, the utilization
//!   curve φᵏ(t) and the model/data memory split (§5.2.1).
//!   [`TraceProfiler`] derives the same profile from the `ea-trace` span
//!   stream of a *real* `ea-runtime` pipeline, so the tuning loop can
//!   also run on measured φ(t).
//! * **predictor** — [`predict`]: Equations (1)–(8), extrapolating batch
//!   time and memory to any `(M*, N*)` (§5.2.2–5.2.3).
//! * **tuner** — [`tune`]: picks parallelism degrees by the
//!   profiling-based method, exhaustive traversal, or the max-num /
//!   max-size guidelines (§5, Figures 18–19).
//! * **scheduler** — `ea_sched::pipeline_program` with advance forward
//!   propagation, adapted online by `ea_sched::AdvanceController`
//!   (Algorithm 1).
//! * **runtime** — the cluster simulator for performance, and
//!   `ea_runtime::ElasticTrainer` for real training.
//!
//! [`run_baseline`] / [`run_avgpipe`] are the entry points the benchmark
//! harness uses to regenerate the paper's figures.

mod api;
mod predictor;
mod profiler;
mod serving;
mod system;
mod trace_profiler;
mod tuner;

pub use api::{AvgPipe, AvgPipeBuilder};
pub use predictor::{predict, Prediction};
pub use profiler::{DeviceProfile, Profile, Profiler};
pub use serving::serve_batch_cap;
pub use system::{run_avgpipe, run_baseline, BaselineKind, SystemReport};
pub use trace_profiler::TraceProfiler;
pub use tuner::{tune, TuneMethod, TuneOutcome};
