//! Train-and-serve: elastic-averaging training and live inference on
//! one reactor, with hot weight swaps at round boundaries.
//!
//! The full deployment loop the serving crate exists for:
//!
//! * a [`RefShardServer`] holds the reference shards;
//! * one listener (reactor fleet) serves **both** protocols — two
//!   `ElasticWorker` pipelines train over it while inference clients
//!   query it;
//! * a [`WeightsSubscriber`] feeds round-boundary weight pushes into
//!   the [`ServeEngine`], which swaps its double-buffered snapshot
//!   atomically — served accuracy climbs *while* requests flow, with
//!   no restart and no mixed-version outputs.
//!
//! ```text
//! cargo run --release --example train_and_serve
//! ```

use std::sync::Arc;
use std::time::Duration;

use ea_comms::reactor::ReactorConfig;
use ea_comms::{RemoteShards, RetryConfig, ShardClient, TcpConfig, TcpTransport};
use ea_data::SyntheticTask;
use ea_models::{analogue_spec, gnmt_analogue, AnalogueConfig};
use ea_optim::{OptKind, Optimizer};
use ea_runtime::{ElasticWorker, RefShardServer};
use ea_serve::{spawn_serving, InferClient, ServeConfig, ServeEngine, WeightsSubscriber};
use ea_tensor::TensorRng;

const CFG: AnalogueConfig = AnalogueConfig { vocab: 16, seq: 6, hidden: 24, blocks: 2, stages: 2 };
const SEED: u64 = 42;
const N_PIPELINES: usize = 2;
const ROUNDS: u64 = 60;

fn model() -> ea_autograd::StagedModel {
    gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(SEED))
}

/// Accuracy of served outputs on a held-out batch: one request per
/// sample, argmax per row against the task targets.
fn served_accuracy(client: &mut InferClient, task: &SyntheticTask, samples: usize) -> (f64, u64) {
    let batch = task.eval_batch(samples, 0);
    let mut hits = 0usize;
    let mut version = 0u64;
    for s in 0..samples {
        let rows = &batch.input.data()[s * CFG.seq..(s + 1) * CFG.seq];
        let outcome = client.infer(rows.to_vec()).expect("infer");
        assert!(!outcome.shed, "eval traffic must not be shed");
        version = outcome.version;
        let vocab = CFG.vocab;
        for (t, row) in outcome.output.chunks(vocab).enumerate() {
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            hits += usize::from(pred == batch.targets[s * CFG.seq + t]);
        }
    }
    (hits as f64 / (samples * CFG.seq) as f64, version)
}

fn main() {
    // Reference shards initialized to the model's starting point.
    let init_model = model();
    let init: Vec<Vec<f32>> =
        (0..init_model.num_stages()).map(|k| init_model.stage(k).params_flat()).collect();
    let server = RefShardServer::from_initial_weights(init, N_PIPELINES);

    // Serving engine: two instances of the same architecture+weights
    // form the double buffer.
    let engine = ServeEngine::start(
        model(),
        model(),
        0,
        &analogue_spec(CFG),
        ServeConfig {
            input_len: CFG.seq,
            max_coalesce_delay: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    );

    // One listener for everything: trainers, subscribers, inference.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let reactor = spawn_serving(
        listener,
        ReactorConfig { threads: 2, ..ReactorConfig::default() },
        Arc::clone(&engine),
        &server,
    )
    .expect("spawn serving reactor");
    let addr = reactor.local_addr();
    let subscriber = WeightsSubscriber::spawn(addr, TcpConfig::default(), Arc::clone(&engine));

    println!("serving + training on {addr} (batch cap {})", engine.batch_cap());

    // Two elastic pipelines train over the same port the inference
    // clients use.
    let trainers: Vec<_> = (0..N_PIPELINES)
        .map(|pipe| {
            std::thread::spawn(move || {
                let conn = TcpTransport::connect(addr, TcpConfig::default()).unwrap();
                let retry = RetryConfig { reply_timeout: Duration::from_secs(10), max_attempts: 5 };
                let client = ShardClient::handshake(Box::new(conn), pipe, retry).unwrap();
                let channel = Arc::new(RemoteShards::new(vec![client]).unwrap());
                let opts: Vec<Box<dyn Optimizer>> =
                    (0..CFG.stages).map(|_| OptKind::Adam { lr: 1e-2 }.build()).collect();
                let mut worker = ElasticWorker::new(
                    model().into_stages(),
                    opts,
                    4,
                    1.0 / N_PIPELINES as f32,
                    pipe,
                    channel,
                );
                let task = SyntheticTask::copy_translate(CFG.vocab, CFG.seq, 7);
                let mut loss = f32::NAN;
                for round in 0..ROUNDS {
                    loss = worker
                        .round(&task.batch(16, round * N_PIPELINES as u64 + pipe as u64))
                        .unwrap();
                }
                loss
            })
        })
        .collect();

    // Meanwhile: query the serving side and watch accuracy climb as
    // round-boundary swaps land.
    let task = SyntheticTask::copy_translate(CFG.vocab, CFG.seq, 7);
    let mut client = InferClient::connect(addr, TcpConfig::default()).expect("connect");
    let (acc0, v0) = served_accuracy(&mut client, &task, 16);
    println!("served v{v0}: held-out accuracy {acc0:.3} (untrained)");
    let mut last_version = v0;
    while engine.served_version() < ROUNDS {
        std::thread::sleep(Duration::from_millis(50));
        let v = engine.served_version();
        if v >= last_version + 10 {
            let (acc, ver) = served_accuracy(&mut client, &task, 16);
            println!("served v{ver}: held-out accuracy {acc:.3}");
            last_version = v;
        }
    }

    for (pipe, t) in trainers.into_iter().enumerate() {
        let loss = t.join().expect("trainer panicked");
        println!("pipeline {pipe}: final train loss {loss:.4}");
    }

    let (acc_final, v_final) = served_accuracy(&mut client, &task, 32);
    let slo = engine.slo();
    println!("served v{v_final}: final held-out accuracy {acc_final:.3}");
    println!(
        "SLO: {} served / {} shed, {} swaps, e2e p50 {} µs p99 {} µs, mean batch {:.2}",
        slo.served, slo.shed, slo.swaps, slo.e2e_p50_us, slo.e2e_p99_us, slo.mean_batch
    );
    assert!(slo.swaps > 0, "hot swaps must have landed");
    assert!(
        acc_final > acc0 + 0.1,
        "serving must have picked up trained weights ({acc0:.3} -> {acc_final:.3})"
    );

    subscriber.stop();
    reactor.shutdown_graceful(Duration::from_secs(5));
    engine.shutdown();
    println!("TRAIN_AND_SERVE OK");
}
