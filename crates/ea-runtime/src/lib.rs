//! Real execution runtime: threads as GPUs, channels as interconnect.
//!
//! This crate runs actual training (real tensors, real gradients) with the
//! concurrency structure of the paper's Figure 6:
//!
//! * [`ThreadedPipeline`] — one worker thread per pipeline stage,
//!   micro-batches streamed through crossbeam channels, gradients flowing
//!   back. Numerically identical to single-threaded execution (verified by
//!   tests), because micro-batch gradient accumulation is order-independent
//!   up to a fixed reduction order, which the driver enforces.
//! * [`ElasticTrainer`] — `N` parallel pipelines, each training a replica
//!   on its own batches, plus per-stage reference shards implementing
//!   Steps ❷–❺ (α-pull, async update shipping, accumulate, normalize &
//!   apply).
//! * [`semantic`] — deterministic single-threaded reference
//!   implementations of every training semantics the paper compares in
//!   Figure 14: synchronous SGD ("PyTorch"), multi-version stale gradients
//!   ("PipeDream"), one-step-stale ("PipeDream-2BW"), and elastic
//!   averaging ("AvgPipe"). The threaded implementations are tested to
//!   agree exactly with these.

//! ```
//! use ea_data::SyntheticTask;
//! use ea_models::{gnmt_analogue, AnalogueConfig};
//! use ea_optim::{OptKind, Optimizer};
//! use ea_runtime::ThreadedPipeline;
//! use ea_tensor::TensorRng;
//!
//! let cfg = AnalogueConfig { vocab: 16, seq: 4, hidden: 16, blocks: 2, stages: 2 };
//! let model = gnmt_analogue(cfg, &mut TensorRng::seed_from_u64(0));
//! let opts: Vec<Box<dyn Optimizer>> =
//!     (0..2).map(|_| OptKind::Adam { lr: 1e-2 }.build()).collect();
//!
//! // Two stage-worker threads, micro-batches streamed through channels.
//! let mut pipe = ThreadedPipeline::spawn(model.into_stages(), opts, 4);
//! let task = SyntheticTask::copy_translate(16, 4, 1);
//! let loss = pipe.step(&task.batch(8, 0));
//! assert!(loss.is_finite() && loss > 0.0);
//! ```

mod checkpoint;
mod elastic;
mod error;
mod json;
mod membership;
mod metrics;
mod reactor_server;
pub mod semantic;
mod server;
mod supervisor;
mod threaded;

pub use checkpoint::{Checkpoint, RefCheckpoint};
pub use elastic::{ElasticTrainer, LocalShards, RefShard, RoundRecord, SubmitOutcome};
pub use error::Error;
pub use membership::Membership;
pub use metrics::{
    epochs_to_target, evaluate, EpochsToTarget, EvalResult, ServerMetrics, ServerMetricsSnapshot,
};
pub use reactor_server::ReactorDispatch;
pub use semantic::{train_step, ElasticSemantic, StaleTrainer, SyncTrainer, Trainer};
pub use server::{ElasticWorker, FtConfig, RefShardServer};
pub use supervisor::{ChannelFactory, RoundReport, SupervisedWorker, SupervisorConfig, WorkerMode};
pub use threaded::ThreadedPipeline;
