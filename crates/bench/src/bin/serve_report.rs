//! Closed-loop serving benchmark: throughput vs tail latency across
//! micro-batch caps, against the batch=1 baseline. Writes `BENCH_7.json`.
//!
//! A fleet of closed-loop clients (each sends the next request the
//! moment the previous reply lands) hammers one serving frontend over
//! TCP. The sweep pins the engine's batch cap at 1, 2, 4, ... and at
//! the cap the §5 demand-curve sizing picked, measuring client-side
//! latency percentiles and aggregate throughput per setting. The
//! paper-side claim under test: coalescing buys throughput while the
//! demand curve climbs, so some cap > 1 must beat batch=1 throughput
//! without giving up its p99.
//!
//! ```text
//! cargo run -p bench --release --bin serve_report
//! cargo run -p bench --release --bin serve_report -- --clients 16 --secs 3
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ea_comms::reactor::ReactorConfig;
use ea_comms::TcpConfig;
use ea_models::{analogue_spec, gnmt_analogue, AnalogueConfig};
use ea_runtime::RefShardServer;
use ea_serve::{spawn_serving, InferClient, ServeConfig, ServeEngine};
use ea_tensor::TensorRng;

const CFG: AnalogueConfig = AnalogueConfig { vocab: 32, seq: 8, hidden: 32, blocks: 4, stages: 2 };
const SEED: u64 = 17;

struct SettingReport {
    batch_cap: usize,
    throughput_rps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    served: u64,
    shed: u64,
    mean_batch: f64,
}

impl SettingReport {
    fn to_json(&self) -> String {
        format!(
            "{{\"batch_cap\": {}, \"throughput_rps\": {:.1}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \
             \"p99_us\": {:.1}, \"served\": {}, \"shed\": {}, \"mean_batch\": {:.2}}}",
            self.batch_cap,
            self.throughput_rps,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.served,
            self.shed,
            self.mean_batch
        )
    }
}

/// Runs `clients` closed-loop requesters for `secs`, returning the
/// client-observed latency samples (µs) and the shed count.
fn drive(addr: std::net::SocketAddr, clients: usize, secs: f64) -> (Vec<f64>, u64) {
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = InferClient::connect(addr, TcpConfig::default()).unwrap();
                let mut lat = Vec::new();
                let mut shed = 0u64;
                let mut i = c as u64;
                while !stop.load(Ordering::Relaxed) {
                    let input: Vec<f32> =
                        (0..CFG.seq).map(|j| ((i as usize + j * 3) % CFG.vocab) as f32).collect();
                    let t0 = Instant::now();
                    let outcome = client.infer(input).expect("infer");
                    if outcome.shed {
                        shed += 1;
                    } else {
                        lat.push(t0.elapsed().as_secs_f64() * 1e6);
                    }
                    i += 1;
                }
                (lat, shed)
            })
        })
        .collect();
    std::thread::sleep(Duration::from_secs_f64(secs));
    stop.store(true, Ordering::Relaxed);
    let mut all = Vec::new();
    let mut shed = 0;
    for h in handles {
        let (lat, s) = h.join().expect("client thread panicked");
        all.extend(lat);
        shed += s;
    }
    (all, shed)
}

fn pct(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[((sorted.len() - 1) as f64 * q) as usize]
}

fn main() {
    let mut clients = 8usize;
    let mut secs = 2.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--clients" => clients = args.next().expect("--clients value").parse().expect("int"),
            "--secs" => secs = args.next().expect("--secs value").parse().expect("float"),
            other => panic!("unknown argument {other:?}"),
        }
    }

    let spec = analogue_spec(CFG);
    let mut rng = TensorRng::seed_from_u64(SEED);
    let active = gnmt_analogue(CFG, &mut rng);
    let mut rng2 = TensorRng::seed_from_u64(SEED);
    let spare = gnmt_analogue(CFG, &mut rng2);

    let server = RefShardServer::from_initial_weights(
        (0..active.num_stages()).map(|k| active.stage(k).params_flat()).collect(),
        1,
    );
    let engine = ServeEngine::start(
        active,
        spare,
        0,
        &spec,
        ServeConfig {
            input_len: CFG.seq,
            queue_cap: 4096,
            max_coalesce_delay: Duration::from_millis(2),
            ..ServeConfig::default()
        },
    );
    let tuned_cap = engine.batch_cap();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let reactor = spawn_serving(
        listener,
        ReactorConfig { threads: 2, ..ReactorConfig::default() },
        Arc::clone(&engine),
        &server,
    )
    .expect("spawn serving reactor");
    let addr = reactor.local_addr();

    println!(
        "== serve report: {} | {clients} closed-loop clients, {secs:.1}s per setting ==",
        spec.name
    );
    println!("   demand-curve tuned batch cap: {tuned_cap}");

    // Sweep: the no-batching baseline, powers of two, and the tuned cap.
    let mut caps = vec![1usize, 2, 4, 8, 16];
    if !caps.contains(&tuned_cap) {
        caps.push(tuned_cap);
    }
    caps.sort_unstable();

    // Warm up connections, pools, and the JIT-warmed kernels once.
    drive(addr, clients, (secs * 0.25).max(0.25));

    let mut reports: Vec<SettingReport> = Vec::new();
    for &cap in &caps {
        engine.set_batch_cap(cap);
        let slo_before = engine.slo();
        let t0 = Instant::now();
        let (mut lat, shed) = drive(addr, clients, secs);
        let elapsed = t0.elapsed().as_secs_f64();
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let slo_after = engine.slo();
        let served = slo_after.served - slo_before.served;
        let batches = (slo_after.batches - slo_before.batches).max(1);
        let r = SettingReport {
            batch_cap: cap,
            throughput_rps: lat.len() as f64 / elapsed,
            p50_us: pct(&lat, 0.50),
            p95_us: pct(&lat, 0.95),
            p99_us: pct(&lat, 0.99),
            served,
            shed,
            mean_batch: served as f64 / batches as f64,
        };
        println!(
            "   cap {cap:>3}: {:>9.1} req/s   p50 {:>8.1} µs   p99 {:>8.1} µs   mean batch {:.2}",
            r.throughput_rps, r.p50_us, r.p99_us, r.mean_batch
        );
        reports.push(r);
    }

    let baseline = reports.iter().find(|r| r.batch_cap == 1).expect("baseline setting");
    let best = reports
        .iter()
        .filter(|r| r.batch_cap > 1)
        .max_by(|a, b| a.throughput_rps.partial_cmp(&b.throughput_rps).unwrap())
        .expect("batched setting");
    let speedup = best.throughput_rps / baseline.throughput_rps;
    println!(
        "   micro-batching: cap {} gives {:.2}x the batch=1 throughput (p99 {:.1} vs {:.1} µs)",
        best.batch_cap, speedup, best.p99_us, baseline.p99_us
    );

    let json = format!(
        "{{\n  \"bench\": \"serve_report\",\n  \"model\": \"{}\",\n  \"clients\": {clients},\n  \
         \"secs_per_setting\": {secs},\n  \"tuned_cap\": {tuned_cap},\n  \
         \"best_batched_cap\": {},\n  \"batched_speedup_vs_batch1\": {speedup:.3},\n  \
         \"settings\": [\n    {}\n  ]\n}}\n",
        spec.name,
        best.batch_cap,
        reports.iter().map(SettingReport::to_json).collect::<Vec<_>>().join(",\n    ")
    );
    std::fs::write("BENCH_7.json", &json).expect("write BENCH_7.json");
    println!("   [saved BENCH_7.json]");

    reactor.shutdown_graceful(Duration::from_secs(5));
    engine.shutdown();
}
