//! A minimal JSON reader/writer for the checkpoint formats.
//!
//! Checkpoints are the *recovery* path — they must load in exactly the
//! environments where things already went wrong, so the codec is a small,
//! dependency-free, fully-tested parser rather than a serialization
//! framework. Numbers keep their raw token until a caller asks for a
//! concrete type, so `u64` round counters and shortest-representation
//! `f32` weights both roundtrip exactly.

use std::fmt::Write as _;

/// A parsed JSON value. Object keys keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, kept as its raw token for lossless reparsing.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The unescaped contents of a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number parsed as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `u32`.
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Json::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `f32` (correctly rounded from the token).
    pub fn as_f32(&self) -> Option<f32> {
        match self {
            Json::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }
}

/// Escapes and quotes `s` as a JSON string into `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes an `f32` with its shortest roundtripping representation.
pub fn write_f32(out: &mut String, x: f32) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        // JSON has no non-finite numbers; `null` mirrors serde_json and
        // fails loudly on load instead of smuggling a NaN into weights.
        out.push_str("null");
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => *pos += 1,
            _ => break,
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b) if b.is_ascii_digit() || *b == b'-' => parse_num(bytes, pos),
        Some(b) => Err(format!("unexpected byte {:?} at {}", *b as char, *pos)),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-' => *pos += 1,
            _ => break,
        }
    }
    let tok = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    // Validate now so `Num` tokens are always parseable later.
    tok.parse::<f64>().map_err(|_| format!("bad number {tok:?} at byte {start}"))?;
    Ok(Json::Num(tok.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        // Surrogate pairs are not needed for checkpoint
                        // tags; reject rather than mis-decode.
                        let c = char::from_u32(code).ok_or("surrogate \\u escape".to_string())?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (the input is a &str, so
                // boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string".to_string())?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_checkpoint_shape() {
        let doc = r#"{"version":1,"tag":"run \"A\"","stages":[[1.5,-2e-3],[3]],"checksum":null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("version").unwrap().as_u32(), Some(1));
        assert_eq!(v.get("tag").unwrap().as_str(), Some("run \"A\""));
        let stages = v.get("stages").unwrap().as_arr().unwrap();
        assert_eq!(stages[0].as_arr().unwrap()[0].as_f32(), Some(1.5));
        assert_eq!(stages[0].as_arr().unwrap()[1].as_f32(), Some(-2e-3));
        assert_eq!(stages[1].as_arr().unwrap()[0].as_f32(), Some(3.0));
        assert_eq!(v.get("checksum"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in
            ["", "{", "[1,", "{\"a\":}", "{\"a\":1} trailing", "\"unterminated", "{'a':1}", "nul"]
        {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn f32_roundtrips_through_shortest_repr() {
        for x in [0.1f32, -3.25e-7, f32::MIN_POSITIVE, 1.0, 16777216.0, -0.0] {
            let mut s = String::new();
            write_f32(&mut s, x);
            let back = parse(&s).unwrap().as_f32().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} → {s} → {back}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let mut s = String::new();
        write_str(&mut s, "a\"b\\c\nd\te\u{1}f");
        let back = parse(&s).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\te\u{1}f"));
    }

    #[test]
    fn whitespace_and_nesting_are_tolerated() {
        let v = parse(" { \"a\" : [ 1 , { \"b\" : [ ] } ] , \"c\" : true } ").unwrap();
        assert_eq!(v.get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
    }
}
