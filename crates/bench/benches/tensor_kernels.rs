//! Criterion benchmarks of the numeric substrate: the kernels that bound
//! the real-execution (threads-as-GPUs) experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ea_tensor::{
    log_softmax_rows, matmul, matmul_a_bt, matmul_at_b, simd, softmax_rows, uniform, TensorRng,
};

fn bench_matmul(c: &mut Criterion) {
    // One group per dispatch level: "matmul" is the auto-detected SIMD
    // path, "matmul_scalar" forces the reference ikj loop so the two can
    // be compared run-to-run. Criterion runs benches serially, so the
    // process-global force is safe here.
    for (group_name, level) in [("matmul", None), ("matmul_scalar", Some(simd::Level::Scalar))] {
        simd::force_level(level);
        let mut group = c.benchmark_group(group_name);
        for size in [32usize, 128, 256] {
            let mut rng = TensorRng::seed_from_u64(0);
            let a = uniform(&[size, size], -1.0, 1.0, &mut rng);
            let b = uniform(&[size, size], -1.0, 1.0, &mut rng);
            group.bench_with_input(BenchmarkId::new("ab", size), &size, |bench, _| {
                bench.iter(|| matmul(std::hint::black_box(&a), std::hint::black_box(&b)))
            });
            group.bench_with_input(BenchmarkId::new("a_bt", size), &size, |bench, _| {
                bench.iter(|| matmul_a_bt(std::hint::black_box(&a), std::hint::black_box(&b)))
            });
            group.bench_with_input(BenchmarkId::new("at_b", size), &size, |bench, _| {
                bench.iter(|| matmul_at_b(std::hint::black_box(&a), std::hint::black_box(&b)))
            });
        }
        group.finish();
        simd::force_level(None);
    }
}

fn bench_softmax(c: &mut Criterion) {
    // Forced-level pairs, like bench_matmul: "softmax" is the detected
    // SIMD path (vectorized exp + fixed-tree sum), "softmax_scalar"
    // forces the scalar instantiation of the same kernel for run-to-run
    // speedup tracking.
    for (group_name, level) in [("softmax", None), ("softmax_scalar", Some(simd::Level::Scalar))] {
        simd::force_level(level);
        let mut group = c.benchmark_group(group_name);
        let mut rng = TensorRng::seed_from_u64(1);
        let x = uniform(&[256, 512], -2.0, 2.0, &mut rng);
        group.bench_function("rows/256x512", |b| b.iter(|| softmax_rows(std::hint::black_box(&x))));
        group.finish();
        simd::force_level(None);
    }
}

fn bench_log_softmax(c: &mut Criterion) {
    // Same forced-level pairing as bench_softmax: "log_softmax" is the
    // vectorized exp-sum + scalar ln, "log_softmax_scalar" the scalar
    // instantiation of the identical kernel (bit-equal by §13).
    for (group_name, level) in
        [("log_softmax", None), ("log_softmax_scalar", Some(simd::Level::Scalar))]
    {
        simd::force_level(level);
        let mut group = c.benchmark_group(group_name);
        let mut rng = TensorRng::seed_from_u64(2);
        let x = uniform(&[256, 512], -2.0, 2.0, &mut rng);
        group.bench_function("rows/256x512", |b| {
            b.iter(|| log_softmax_rows(std::hint::black_box(&x)))
        });
        group.finish();
        simd::force_level(None);
    }
}

criterion_group!(benches, bench_matmul, bench_softmax, bench_log_softmax);
criterion_main!(benches);
