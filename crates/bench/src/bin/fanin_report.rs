//! Fan-in benchmark of the comms server: N concurrent TCP workers
//! driving full elastic rounds (Step-❷ pull + Step-❸ submit) against one
//! reference shard, for the epoll reactor versus the thread-per-connection
//! accept loop. Writes `BENCH_6.json`.
//!
//! ```text
//! cargo run -p bench --release --bin fanin_report
//! cargo run -p bench --release --bin fanin_report -- --rounds 10 --dim 64
//! ```
//!
//! The sweep climbs 16 → 1024 workers on the reactor; the
//! thread-per-connection baseline stops at 256 (two OS threads per
//! connection makes 1024 a thread-scheduler benchmark, not a comms one —
//! the skip is logged, not silent). Per-round latency percentiles are
//! measured at the workers; server CPU is attributed by summing
//! utime+stime of the `ea-reactor-*` threads from `/proc/self/task`.

use std::net::TcpListener;
use std::sync::{Arc, Barrier};
use std::time::Instant;

use ea_comms::reactor::ReactorConfig;
use ea_comms::{RetryConfig, ShardClient, TcpConfig, TcpServer, TcpTransport};
use ea_runtime::RefShardServer;

/// Linux USER_HZ: the unit of utime/stime in `/proc/*/stat`. Fixed at
/// 100 on every supported configuration of the kernels we run on.
const TICKS_PER_SEC: f64 = 100.0;

const SWEEP: &[usize] = &[16, 64, 256, 1024];
/// Thread-per-connection ceiling: beyond this the baseline measures the
/// scheduler, not the protocol.
const THREADED_CAP: usize = 256;

struct RunStats {
    workers: usize,
    rounds: u64,
    wall_s: f64,
    rounds_per_s: f64,
    exchanges_per_s: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    process_cpu_s: f64,
    /// CPU spent on `ea-reactor-*` threads; `None` for the baseline
    /// (its per-connection threads are anonymous).
    server_cpu_s: Option<f64>,
}

impl RunStats {
    fn to_json(&self) -> String {
        let server = match self.server_cpu_s {
            Some(s) => format!("{s:.3}"),
            None => "null".to_string(),
        };
        format!(
            "{{\"workers\": {}, \"rounds\": {}, \"wall_s\": {:.3}, \"rounds_per_s\": {:.2}, \
             \"exchanges_per_s\": {:.1}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \
             \"p99_us\": {:.1}, \"process_cpu_s\": {:.3}, \"server_cpu_s\": {}}}",
            self.workers,
            self.rounds,
            self.wall_s,
            self.rounds_per_s,
            self.exchanges_per_s,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.process_cpu_s,
            server
        )
    }
}

/// utime+stime of the whole process, in seconds.
fn process_cpu_s() -> f64 {
    cpu_from_stat(&std::fs::read_to_string("/proc/self/stat").unwrap_or_default())
}

/// Sum of utime+stime over threads whose comm starts with `prefix`.
fn threads_cpu_s(prefix: &str) -> f64 {
    let Ok(tasks) = std::fs::read_dir("/proc/self/task") else { return 0.0 };
    let mut total = 0.0;
    for task in tasks.flatten() {
        let stat = task.path().join("stat");
        let Ok(line) = std::fs::read_to_string(&stat) else { continue };
        let Some(open) = line.find('(') else { continue };
        let Some(close) = line.rfind(')') else { continue };
        if line[open + 1..close].starts_with(prefix) {
            total += cpu_from_stat(&line);
        }
    }
    total
}

/// Parses utime+stime (fields 14 and 15) out of a `/proc` stat line.
fn cpu_from_stat(line: &str) -> f64 {
    let Some(close) = line.rfind(')') else { return 0.0 };
    let fields: Vec<&str> = line[close + 1..].split_whitespace().collect();
    // After the comm field, utime/stime are the 12th and 13th fields.
    let utime: f64 = fields.get(11).and_then(|f| f.parse().ok()).unwrap_or(0.0);
    let stime: f64 = fields.get(12).and_then(|f| f.parse().ok()).unwrap_or(0.0);
    (utime + stime) / TICKS_PER_SEC
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[((sorted.len() - 1) as f64 * q) as usize]
}

/// Drives `workers` concurrent clients for `rounds` full elastic rounds
/// against `addr`, returning every per-round (pull+submit) latency in µs.
fn drive_workers(
    addr: std::net::SocketAddr,
    workers: usize,
    rounds: u64,
    dim: usize,
) -> (Vec<f64>, f64) {
    let start = Arc::new(Barrier::new(workers + 1));
    let joins: Vec<_> = (0..workers)
        .map(|pipe| {
            let start = Arc::clone(&start);
            std::thread::Builder::new()
                .name(format!("fanin-{pipe}"))
                .stack_size(192 * 1024)
                .spawn(move || {
                    let conn = TcpTransport::connect(addr, TcpConfig::default()).expect("connect");
                    let retry = RetryConfig {
                        reply_timeout: std::time::Duration::from_secs(60),
                        max_attempts: 3,
                    };
                    let mut client =
                        ShardClient::handshake(Box::new(conn), pipe, retry).expect("handshake");
                    let delta = vec![1e-6f32; dim];
                    start.wait();
                    let mut samples = Vec::with_capacity(rounds as usize);
                    for round in 0..rounds {
                        let t0 = Instant::now();
                        let w = client.pull(0, round).expect("pull");
                        ea_tensor::pool::recycle(w);
                        let mut d = ea_tensor::pool::take_cleared(dim);
                        d.extend_from_slice(&delta);
                        client.submit(0, round, d).expect("submit");
                        samples.push(t0.elapsed().as_secs_f64() * 1e6);
                    }
                    samples
                })
                .expect("spawn worker")
        })
        .collect();

    start.wait();
    let t0 = Instant::now();
    let mut samples = Vec::new();
    for j in joins {
        samples.extend(j.join().expect("worker panicked"));
    }
    (samples, t0.elapsed().as_secs_f64())
}

fn run_stats(
    workers: usize,
    rounds: u64,
    wall_s: f64,
    mut samples: Vec<f64>,
    process_cpu: f64,
    server_cpu: Option<f64>,
) -> RunStats {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    RunStats {
        workers,
        rounds,
        wall_s,
        rounds_per_s: rounds as f64 / wall_s,
        exchanges_per_s: (rounds as f64 * workers as f64) / wall_s,
        p50_us: percentile(&samples, 0.50),
        p95_us: percentile(&samples, 0.95),
        p99_us: percentile(&samples, 0.99),
        process_cpu_s: process_cpu,
        server_cpu_s: server_cpu,
    }
}

fn bench_reactor(workers: usize, rounds: u64, dim: usize, threads: usize) -> RunStats {
    let server = RefShardServer::from_initial_weights(vec![vec![0.0; dim]], workers);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let reactor = server
        .serve_reactor(listener, ReactorConfig { threads, ..ReactorConfig::default() })
        .expect("serve_reactor");
    let cpu0 = process_cpu_s();
    let srv0 = threads_cpu_s("ea-reactor");
    let (samples, wall_s) = drive_workers(reactor.local_addr(), workers, rounds, dim);
    let cpu = process_cpu_s() - cpu0;
    let srv = threads_cpu_s("ea-reactor") - srv0;
    reactor.shutdown();
    run_stats(workers, rounds, wall_s, samples, cpu, Some(srv))
}

fn bench_threaded(workers: usize, rounds: u64, dim: usize) -> RunStats {
    let server = RefShardServer::from_initial_weights(vec![vec![0.0; dim]], workers);
    let tcp = TcpServer::bind("127.0.0.1:0", TcpConfig::default()).expect("bind");
    let addr = tcp.local_addr().expect("local_addr");
    // The accept thread (and its per-connection threads) outlive the run;
    // they idle on dead sockets until process exit.
    let _serve = server.serve_background(Box::new(tcp));
    let cpu0 = process_cpu_s();
    let (samples, wall_s) = drive_workers(addr, workers, rounds, dim);
    let cpu = process_cpu_s() - cpu0;
    run_stats(workers, rounds, wall_s, samples, cpu, None)
}

fn main() {
    let mut rounds: u64 = 6;
    let mut dim: usize = 64;
    let mut threads: usize = 2;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--rounds" => rounds = args.next().expect("--rounds value").parse().expect("integer"),
            "--dim" => dim = args.next().expect("--dim value").parse().expect("integer"),
            "--threads" => {
                threads = args.next().expect("--threads value").parse().expect("integer")
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    println!("== fan-in report: {rounds} rounds, dim {dim}, {threads} reactor threads ==");

    let mut reactor_rows = Vec::new();
    for &n in SWEEP {
        let s = bench_reactor(n, rounds, dim, threads);
        println!(
            "  reactor  {:>5} workers   {:>8.1} rounds/s   p50 {:>9.1}us  p95 {:>9.1}us  p99 {:>9.1}us   server cpu {:.3}s",
            s.workers, s.rounds_per_s, s.p50_us, s.p95_us, s.p99_us, s.server_cpu_s.unwrap_or(0.0)
        );
        reactor_rows.push(s);
    }

    let mut threaded_rows = Vec::new();
    for &n in SWEEP {
        if n > THREADED_CAP {
            println!(
                "  threaded {n:>5} workers   skipped (baseline capped at {THREADED_CAP} connections)"
            );
            continue;
        }
        let s = bench_threaded(n, rounds, dim);
        println!(
            "  threaded {:>5} workers   {:>8.1} rounds/s   p50 {:>9.1}us  p95 {:>9.1}us  p99 {:>9.1}us",
            s.workers, s.rounds_per_s, s.p50_us, s.p95_us, s.p99_us
        );
        threaded_rows.push(s);
    }

    let speedup_at_cap = {
        let r = reactor_rows.iter().find(|s| s.workers == THREADED_CAP);
        let t = threaded_rows.iter().find(|s| s.workers == THREADED_CAP);
        match (r, t) {
            (Some(r), Some(t)) => r.rounds_per_s / t.rounds_per_s,
            _ => f64::NAN,
        }
    };
    let max_reactor = reactor_rows.last().map_or(0, |s| s.workers);
    println!(
        "  reactor sustains {max_reactor} workers; round throughput at {THREADED_CAP}: {speedup_at_cap:.2}x vs thread-per-connection"
    );

    let rows = |v: &[RunStats]| {
        v.iter().map(|s| format!("    {}", s.to_json())).collect::<Vec<_>>().join(",\n")
    };
    let json = format!(
        "{{\n  \"bench\": \"fanin_report\",\n  \"rounds\": {rounds},\n  \"dim\": {dim},\n  \"reactor_threads\": {threads},\n  \"max_workers_sustained\": {max_reactor},\n  \"speedup_at_{THREADED_CAP}_workers\": {speedup_at_cap:.3},\n  \"reactor\": [\n{}\n  ],\n  \"thread_per_connection\": [\n{}\n  ]\n}}\n",
        rows(&reactor_rows),
        rows(&threaded_rows),
    );
    std::fs::write("BENCH_6.json", &json).expect("write BENCH_6.json");
    println!("  [saved BENCH_6.json]");
}
