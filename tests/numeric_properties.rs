//! Property-based tests of the numeric substrate: tensor algebra,
//! autodiff, optimizers and the elastic-averaging invariants.

use ea_autograd::{
    cross_entropy_loss, Activation, ActivationKind, ForwardCtx, Layer, LayerNorm, Linear,
};
use ea_optim::{clip_grad_norm, elastic_pull, Optimizer, ReferenceAccumulator, Sgd};
use ea_tensor::{
    allclose, col_sums, matmul, matmul_a_bt, matmul_at_b, row_sums, softmax_rows, transpose,
    uniform, Tensor, TensorRng,
};
use proptest::prelude::*;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(v, &[rows, cols]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (A·B)ᵀ = Bᵀ·Aᵀ — ties the three matmul kernels together.
    #[test]
    fn matmul_transpose_identity(a in tensor_strategy(4, 6), b in tensor_strategy(6, 3)) {
        let left = transpose(&matmul(&a, &b));
        let right = matmul(&transpose(&b), &transpose(&a));
        prop_assert!(allclose(&left, &right, 1e-4));
    }

    /// A·Bᵀ computed directly equals A·(Bᵀ) materialized.
    #[test]
    fn fused_transpose_kernels_agree(a in tensor_strategy(5, 4), b in tensor_strategy(3, 4)) {
        prop_assert!(allclose(&matmul_a_bt(&a, &b), &matmul(&a, &transpose(&b)), 1e-4));
        let c = Tensor::from_vec(b.data().to_vec(), &[4, 3]);
        let _ = c;
        prop_assert!(allclose(
            &matmul_at_b(&a, &matmul(&a, &b.reshape(&[4, 3]))),
            &matmul(&transpose(&a), &matmul(&a, &b.reshape(&[4, 3]))),
            1e-3
        ));
    }

    /// Matmul distributes over addition.
    #[test]
    fn matmul_is_linear(
        a in tensor_strategy(3, 5),
        b in tensor_strategy(5, 2),
        c in tensor_strategy(5, 2),
    ) {
        let lhs = matmul(&a, &b.add(&c));
        let rhs = matmul(&a, &b).add(&matmul(&a, &c));
        prop_assert!(allclose(&lhs, &rhs, 1e-4));
    }

    /// Row sums + transposition = column sums.
    #[test]
    fn row_col_sum_duality(a in tensor_strategy(4, 7)) {
        prop_assert!(allclose(&row_sums(&a), &col_sums(&transpose(&a)), 1e-5));
    }

    /// Softmax rows are probability vectors and order-preserving.
    #[test]
    fn softmax_is_stochastic_and_monotone(a in tensor_strategy(3, 8)) {
        let s = softmax_rows(&a);
        prop_assert!(s.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        for total in row_sums(&s).data() {
            prop_assert!((total - 1.0).abs() < 1e-5);
        }
        for i in 0..3 {
            for j in 0..7 {
                let (x0, x1) = (a.at(&[i, j]), a.at(&[i, j + 1]));
                let (s0, s1) = (s.at(&[i, j]), s.at(&[i, j + 1]));
                if x0 < x1 {
                    prop_assert!(s0 <= s1 + 1e-7);
                }
            }
        }
    }

    /// Cross-entropy gradients have zero row sums and point away from the
    /// target class.
    #[test]
    fn cross_entropy_gradient_structure(
        logits in tensor_strategy(4, 5),
        targets in proptest::collection::vec(0usize..5, 4),
    ) {
        let out = cross_entropy_loss(&logits, &targets);
        prop_assert!(out.loss >= 0.0);
        for (i, &target) in targets.iter().enumerate() {
            let row = out.grad.row(i);
            prop_assert!(row.sum().abs() < 1e-6);
            prop_assert!(row.data()[target] <= 0.0, "target grad must be ≤ 0");
        }
    }

    /// Linear-layer gradients match finite differences for random shapes.
    #[test]
    fn linear_gradcheck_random_shapes(inputs in 2usize..6, outputs in 2usize..6, seed in 0u64..50) {
        let mut rng = TensorRng::seed_from_u64(seed);
        let layer = Linear::new(inputs, outputs, &mut rng);
        ea_autograd::gradcheck_layer(layer, &[3, inputs], 3e-2, seed);
    }

    /// Activation layers are exactly element-wise: permuting inputs
    /// permutes outputs.
    #[test]
    fn activations_are_elementwise(v in proptest::collection::vec(-3.0f32..3.0, 6)) {
        for kind in [ActivationKind::Relu, ActivationKind::Tanh, ActivationKind::Gelu] {
            let act = Activation::new(kind);
            let x = Tensor::from_vec(v.clone(), &[6]);
            let (y, _) = act.forward(&x, &ForwardCtx::eval());
            let mut rev = v.clone();
            rev.reverse();
            let (yr, _) = act.forward(&Tensor::from_vec(rev, &[6]), &ForwardCtx::eval());
            for i in 0..6 {
                prop_assert!((y.data()[i] - yr.data()[5 - i]).abs() < 1e-6);
            }
        }
    }

    /// LayerNorm output is invariant to a constant shift of its input.
    #[test]
    fn layernorm_shift_invariance(v in proptest::collection::vec(-2.0f32..2.0, 8), shift in -5.0f32..5.0) {
        let ln = LayerNorm::new(8);
        let x = Tensor::from_vec(v.clone(), &[1, 8]);
        let shifted = x.map(|t| t + shift);
        let (y, _) = ln.forward(&x, &ForwardCtx::eval());
        let (ys, _) = ln.forward(&shifted, &ForwardCtx::eval());
        prop_assert!(allclose(&y, &ys, 1e-3));
    }

    /// SGD with lr on a quadratic contracts toward the optimum for any
    /// stable learning rate.
    #[test]
    fn sgd_contracts_on_quadratic(lr in 0.01f32..0.9, start in -10.0f32..10.0) {
        let mut opt = Sgd::new(lr);
        let mut p = vec![start];
        for _ in 0..100 {
            let g = vec![p[0]];
            opt.step(&mut p, &g);
        }
        prop_assert!(p[0].abs() < start.abs().max(0.2), "diverged to {}", p[0]);
    }

    /// Gradient clipping never increases the norm and preserves direction.
    #[test]
    fn clipping_preserves_direction(v in proptest::collection::vec(-5.0f32..5.0, 6), max in 0.1f32..10.0) {
        let mut g = v.clone();
        let pre = clip_grad_norm(&mut g, max);
        let post: f32 = g.iter().map(|x| x * x).sum::<f32>().sqrt();
        prop_assert!(post <= max + 1e-4);
        prop_assert!(post <= pre + 1e-4);
        if pre > 1e-6 {
            // Direction preserved: g is a non-negative multiple of v.
            for (a, b) in g.iter().zip(&v) {
                prop_assert!((a * pre - b * post).abs() < 1e-2, "{a} vs {b}");
            }
        }
    }

    /// Elastic pull is a convex combination: the result lies between the
    /// local weights and the reference, and α + (1−α) partitions exactly.
    #[test]
    fn elastic_pull_is_convex(
        w in proptest::collection::vec(-3.0f32..3.0, 5),
        r in proptest::collection::vec(-3.0f32..3.0, 5),
        alpha in 0.0f32..1.0,
    ) {
        let mut pulled = w.clone();
        elastic_pull(&mut pulled, &r, alpha);
        for i in 0..5 {
            let lo = w[i].min(r[i]) - 1e-5;
            let hi = w[i].max(r[i]) + 1e-5;
            prop_assert!((lo..=hi).contains(&pulled[i]));
        }
    }

    /// The reference accumulator is permutation-invariant in expectation:
    /// submitting the same multiset of updates in any order yields the
    /// same reference (our shard sums in fixed index order).
    #[test]
    fn reference_accumulator_matches_mean(
        updates in proptest::collection::vec(proptest::collection::vec(-2.0f32..2.0, 4), 1..5),
    ) {
        let n = updates.len();
        let mut acc = ReferenceAccumulator::new(4, n);
        let mut reference = vec![0.0f32; 4];
        for u in &updates {
            acc.receive(u);
        }
        prop_assert!(acc.try_apply(&mut reference));
        for i in 0..4 {
            let mean: f32 = updates.iter().map(|u| u[i]).sum::<f32>() / n as f32;
            prop_assert!((reference[i] - mean).abs() < 1e-5);
        }
    }

    /// Identically-initialized replicas fed identical data stay bit-equal
    /// under elastic averaging (the contraction never separates them).
    #[test]
    fn identical_replicas_stay_identical(seed in 0u64..20) {
        let mut rng = TensorRng::seed_from_u64(seed);
        let w0: Vec<f32> = (0..6).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let mut a = w0.clone();
        let mut b = w0.clone();
        let mut reference = w0.clone();
        let mut acc = ReferenceAccumulator::new(6, 2);
        for step in 0..5 {
            let grad: Vec<f32> = (0..6).map(|i| ((step + i) as f32).sin()).collect();
            let delta: Vec<f32> = grad.iter().map(|g| -0.1 * g).collect();
            for w in [&mut a, &mut b] {
                for (x, d) in w.iter_mut().zip(&delta) {
                    *x += d;
                }
            }
            acc.receive(&delta);
            acc.receive(&delta);
            elastic_pull(&mut a, &reference, 0.5);
            elastic_pull(&mut b, &reference, 0.5);
            acc.try_apply(&mut reference);
            prop_assert_eq!(&a, &b);
        }
    }
}

#[test]
fn uniform_tensor_respects_bounds_and_determinism() {
    let mut r1 = TensorRng::seed_from_u64(5);
    let mut r2 = TensorRng::seed_from_u64(5);
    let a = uniform(&[64], -0.5, 1.5, &mut r1);
    let b = uniform(&[64], -0.5, 1.5, &mut r2);
    assert_eq!(a, b);
    assert!(a.data().iter().all(|&x| (-0.5..1.5).contains(&x)));
}
