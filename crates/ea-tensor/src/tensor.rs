//! The dense tensor type.

use crate::Shape;
use std::fmt;

/// A dense, contiguous, row-major `f32` tensor.
///
/// All operations that combine two tensors require identical shapes (there
/// is no implicit broadcasting; the NN modules use explicit row-broadcast
/// helpers such as [`Tensor::add_row_broadcast`]).
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a flat buffer; `data.len()` must equal the
    /// shape's element count.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.numel(),
            "buffer length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor { shape, data }
    }

    /// All-zeros tensor.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor { shape, data: vec![0.0; n] }
    }

    /// All-ones tensor.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor { shape, data: vec![value; n] }
    }

    /// Rank-0 scalar.
    pub fn scalar(value: f32) -> Self {
        Tensor { shape: Shape::new(&[]), data: vec![value] }
    }

    /// The shape of this tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the flat buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-dimensional index.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Returns a tensor with the same buffer re-interpreted under a new
    /// shape with the same element count.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(shape.numel(), self.numel(), "reshape must preserve numel");
        Tensor { shape, data: self.data.clone() }
    }

    /// Applies a function to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place variant of [`Tensor::map`].
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors element-wise.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip requires identical shapes");
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Element-wise sum.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// `self += other` in place.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign requires identical shapes");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += s * other` in place (axpy).
    pub fn axpy(&mut self, s: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy requires identical shapes");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Adds a length-`cols` row vector to every row of a matrix-viewed
    /// tensor (bias addition).
    pub fn add_row_broadcast(&self, row: &Tensor) -> Tensor {
        let (r, c) = self.shape.as_matrix();
        assert_eq!(row.numel(), c, "broadcast row length must equal columns");
        let mut out = self.clone();
        for i in 0..r {
            for j in 0..c {
                out.data[i * c + j] += row.data[j];
            }
        }
        out
    }

    /// Sum of all elements (fixed left-to-right order for determinism).
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Euclidean norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Largest absolute element.
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, x| m.max(x.abs()))
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Row `i` of the matrix view, as a new rank-1 tensor.
    pub fn row(&self, i: usize) -> Tensor {
        let (r, c) = self.shape.as_matrix();
        assert!(i < r, "row {i} out of bounds for {r} rows");
        Tensor::from_vec(self.data[i * c..(i + 1) * c].to_vec(), &[c])
    }

    /// Stacks rank-1 tensors of equal length into a matrix.
    pub fn stack_rows(rows: &[Tensor]) -> Tensor {
        assert!(!rows.is_empty(), "cannot stack zero rows");
        let c = rows[0].numel();
        let mut data = Vec::with_capacity(rows.len() * c);
        for row in rows {
            assert_eq!(row.numel(), c, "all stacked rows must have equal length");
            data.extend_from_slice(&row.data);
        }
        Tensor::from_vec(data, &[rows.len(), c])
    }

    /// Splits the matrix view into contiguous row chunks of `chunk_rows`
    /// rows each (last chunk may be smaller). Used to slice batches into
    /// micro-batches.
    pub fn split_rows(&self, chunk_rows: usize) -> Vec<Tensor> {
        assert!(chunk_rows > 0, "chunk_rows must be positive");
        let (r, c) = self.shape.as_matrix();
        let mut out = Vec::new();
        let mut start = 0;
        while start < r {
            let rows = chunk_rows.min(r - start);
            out.push(Tensor::from_vec(
                self.data[start * c..(start + rows) * c].to_vec(),
                &[rows, c],
            ));
            start += rows;
        }
        out
    }

    /// Concatenates matrix-viewed tensors along rows.
    pub fn concat_rows(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "cannot concat zero tensors");
        let (_, c) = parts[0].shape.as_matrix();
        let mut data = Vec::new();
        let mut rows = 0;
        for p in parts {
            let (r, pc) = p.shape.as_matrix();
            assert_eq!(pc, c, "all concatenated parts must share column count");
            rows += r;
            data.extend_from_slice(&p.data);
        }
        Tensor::from_vec(data, &[rows, c])
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({:?}, ", self.shape)?;
        if self.numel() <= 8 {
            write!(f, "{:?})", self.data)
        } else {
            write!(f, "[{} elements, norm {:.4}])", self.numel(), self.norm())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.at(&[0, 2]), 3.0);
        assert_eq!(t.at(&[1, 0]), 4.0);
        let mut t = t;
        t.set(&[1, 1], 9.0);
        assert_eq!(t.at(&[1, 1]), 9.0);
    }

    #[test]
    #[should_panic]
    fn from_vec_rejects_bad_length() {
        Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn elementwise_math() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        assert_eq!(a.add(&b).data(), &[11.0, 22.0]);
        assert_eq!(b.sub(&a).data(), &[9.0, 18.0]);
        assert_eq!(a.mul(&b).data(), &[10.0, 40.0]);
        assert_eq!(a.scale(3.0).data(), &[3.0, 6.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        let g = Tensor::from_vec(vec![2.0, 4.0], &[2]);
        a.axpy(-0.5, &g);
        assert_eq!(a.data(), &[0.0, -1.0]);
    }

    #[test]
    fn row_broadcast_adds_bias() {
        let x = Tensor::from_vec(vec![0.0; 6], &[2, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert_eq!(t.sum(), 7.0);
        assert_eq!(t.mean(), 3.5);
        assert_eq!(t.norm(), 5.0);
        assert_eq!(t.abs_max(), 4.0);
        assert!(!t.has_non_finite());
        assert!(Tensor::from_vec(vec![f32::NAN], &[1]).has_non_finite());
    }

    #[test]
    fn split_and_concat_roundtrip() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[6, 2]);
        let parts = t.split_rows(4);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].dims(), &[4, 2]);
        assert_eq!(parts[1].dims(), &[2, 2]);
        let back = Tensor::concat_rows(&parts);
        assert_eq!(back, t);
    }

    #[test]
    fn stack_rows_builds_matrix() {
        let r0 = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let r1 = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        let m = Tensor::stack_rows(&[r0, r1]);
        assert_eq!(m.dims(), &[2, 2]);
        assert_eq!(m.at(&[1, 0]), 3.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let r = t.reshape(&[4]);
        assert_eq!(r.dims(), &[4]);
        assert_eq!(r.data(), t.data());
    }
}
