//! Figures 11–13: training time, memory footprints and GPU utilization
//! of every system on every workload, with AvgPipe constrained to each
//! baseline's memory budget.

use crate::experiments::common::{workload_env, WorkloadEnv};
use crate::{EFFECTIVE_GPU_MEM, MAX_PIPELINES};
use avgpipe::{run_avgpipe, run_baseline, BaselineKind, TuneMethod};
use ea_models::Workload;
use serde::Serialize;

/// One system's row in the Figure 11/12/13 matrix.
#[derive(Clone, Debug, Serialize)]
pub struct SystemRow {
    /// System name (`GPipe`, `AvgPipe(G)`, …).
    pub system: String,
    /// Chosen micro-batch count.
    pub m: usize,
    /// Chosen pipeline count.
    pub n: usize,
    /// Advance depth (AvgPipe rows).
    pub advance: usize,
    /// Seconds per batch of data (∞ on OOM).
    pub time_per_batch_s: f64,
    /// Hours for one full training run at the paper's dataset scale and
    /// nominal epoch count (throughput × batches; statistical-efficiency
    /// differences are Figure 14's subject).
    pub train_hours: f64,
    /// Peak memory per device (GiB).
    pub mem_per_gpu_gib: Vec<f64>,
    /// Cluster-wide footprint (GiB) — what Figure 12 plots.
    pub total_mem_gib: f64,
    /// Mean GPU utilization (Figure 13).
    pub mean_util: f64,
    /// Out of memory?
    pub oom: bool,
}

/// The full matrix for one workload.
#[derive(Clone, Debug, Serialize)]
pub struct WorkloadMatrix {
    /// Workload name.
    pub workload: String,
    /// Baseline rows followed by the memory-matched AvgPipe rows.
    pub rows: Vec<SystemRow>,
}

impl WorkloadMatrix {
    /// Finds a row by system name.
    pub fn row(&self, system: &str) -> Option<&SystemRow> {
        self.rows.iter().find(|r| r.system == system)
    }

    /// Speedup of `fast` over `slow` (time ratio).
    pub fn speedup(&self, fast: &str, slow: &str) -> Option<f64> {
        let f = self.row(fast)?;
        let s = self.row(slow)?;
        Some(s.time_per_batch_s / f.time_per_batch_s)
    }
}

/// Nominal epochs to target per workload (the paper's §7 targets); the
/// relative statistical efficiency across systems is Figure 14.
fn nominal_epochs(w: Workload) -> f64 {
    match w {
        Workload::Gnmt => 5.0,
        Workload::Bert => 3.0,
        Workload::Awd => 40.0,
    }
}

fn to_row(env: &WorkloadEnv, name: &str, r: &avgpipe::SystemReport) -> SystemRow {
    let hours =
        r.time_per_batch_s * env.batches_per_epoch as f64 * nominal_epochs(env.workload) / 3600.0;
    SystemRow {
        system: name.to_string(),
        m: r.m,
        n: r.n,
        advance: r.advance,
        time_per_batch_s: r.time_per_batch_s,
        train_hours: hours,
        mem_per_gpu_gib: r.peak_mem.iter().map(|&b| b as f64 / (1u64 << 30) as f64).collect(),
        total_mem_gib: r.total_mem as f64 / (1u64 << 30) as f64,
        mean_util: r.mean_util,
        oom: r.oom,
    }
}

/// Runs every baseline and the memory-matched AvgPipe variants on one
/// workload — one pass produces Figures 11 (time), 12 (memory) and 13
/// (utilization).
pub fn fig11_12_13(w: Workload) -> WorkloadMatrix {
    let env = workload_env(w);
    let mut rows = Vec::new();
    let short = |k: BaselineKind| match k {
        BaselineKind::DataParallel => "P",
        BaselineKind::GPipe => "G",
        BaselineKind::PipeDream => "PD",
        BaselineKind::PipeDream2Bw => "2BW",
        BaselineKind::Dapple => "D",
    };
    for kind in BaselineKind::all() {
        let base = run_baseline(
            kind,
            &env.spec,
            &env.cluster,
            env.batch,
            env.opt_state_per_param,
            EFFECTIVE_GPU_MEM,
        );
        rows.push(to_row(&env, kind.name(), &base));
        // AvgPipe forced to the baseline's budget ("same or lower memory
        // footprints", §7.1.1), with 5% engineering tolerance — the
        // paper's Figure 12 reads footprints off GB-resolution bars. If
        // the baseline itself OOMed, AvgPipe gets the device budget.
        let budget =
            if base.oom { EFFECTIVE_GPU_MEM } else { (base.max_peak_mem as f64 * 1.05) as u64 };
        let avg = run_avgpipe(
            &env.spec,
            &env.cluster,
            env.batch,
            env.opt_state_per_param,
            budget,
            TuneMethod::ProfilingBased,
            MAX_PIPELINES,
        );
        rows.push(to_row(&env, &format!("AvgPipe({})", short(kind)), &avg));
    }
    WorkloadMatrix { workload: w.name().to_string(), rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn awd_matrix_reproduces_headline_shapes() {
        let m = fig11_12_13(Workload::Awd);
        assert_eq!(m.rows.len(), 10);
        // AvgPipe(P) decisively beats data parallelism (paper: 7×).
        let s = m.speedup("AvgPipe(P)", "PyTorch").unwrap();
        assert!(s > 2.0, "AvgPipe(P) vs PyTorch speedup {s}");
        // Every AvgPipe variant fits its baseline's budget.
        for kind in ["P", "G", "2BW", "D"] {
            let row = m.row(&format!("AvgPipe({kind})")).unwrap();
            assert!(!row.oom, "AvgPipe({kind}) OOMed");
        }
    }
}
