//! Size-bucketed recycling pool for the reactor's frame buffers.
//!
//! The event loop assembles one inbound payload buffer and one encoded
//! outbound frame per message; at thousand-worker fan-in that is tens of
//! thousands of transient allocations per second, almost all of a few
//! recurring sizes (acks, pulls, and the one or two delta lengths of the
//! model). This pool is the byte-buffer sibling of `ea_tensor::pool`:
//! buffers are bucketed by power-of-two capacity class, each class keeps a
//! bounded free list, and hit/miss/recycle counters are registered as
//! gauges in the global [`ea_trace::metrics`] registry.
//!
//! Unlike the tensor pool, buffers are stored *full-length* (len ==
//! capacity, contents stale) so a take never re-zeroes: the caller always
//! overwrites the bytes it asked for, either from `read(2)` or from a
//! frame encoder that clears first.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};

/// Smallest pooled capacity class; asks below this round up to it.
const MIN_CLASS: usize = 64;
/// Largest pooled capacity class (1 MiB); bigger buffers are not pooled.
const MAX_CLASS: usize = 1 << 20;
/// Free-list bound per class — beyond this, recycled buffers are freed.
const MAX_BUFS_PER_CLASS: usize = 64;

const N_CLASSES: usize = (MAX_CLASS.ilog2() - MIN_CLASS.ilog2() + 1) as usize;

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static RECYCLED: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);

fn classes() -> &'static Mutex<Vec<Vec<Vec<u8>>>> {
    static CLASSES: OnceLock<Mutex<Vec<Vec<Vec<u8>>>>> = OnceLock::new();
    CLASSES.get_or_init(|| {
        let r = ea_trace::metrics::global();
        r.register_gauge_fn("ea_comms_bytepool_hits", || HITS.load(Relaxed) as i64);
        r.register_gauge_fn("ea_comms_bytepool_misses", || MISSES.load(Relaxed) as i64);
        r.register_gauge_fn("ea_comms_bytepool_recycled", || RECYCLED.load(Relaxed) as i64);
        r.register_gauge_fn("ea_comms_bytepool_dropped", || DROPPED.load(Relaxed) as i64);
        Mutex::new(vec![Vec::new(); N_CLASSES])
    })
}

/// The capacity class index for a request of `len` bytes, or `None` when
/// the request is outside the pooled range.
fn class_of(len: usize) -> Option<usize> {
    if len > MAX_CLASS {
        return None;
    }
    let cap = len.max(MIN_CLASS).next_power_of_two();
    Some((cap.ilog2() - MIN_CLASS.ilog2()) as usize)
}

/// A buffer of exactly `len` bytes with arbitrary contents — the caller
/// must overwrite every byte it reads back.
pub(crate) fn take(len: usize) -> Vec<u8> {
    let mut buf = take_empty(len);
    // Pooled buffers are stored full-length, so the truncate path (a pool
    // hit) never re-touches memory; only fresh allocations pay the zeroing
    // resize.
    if buf.len() >= len {
        buf.truncate(len);
    } else {
        buf.resize(len, 0);
    }
    buf
}

/// An empty buffer with at least `cap` capacity, for encoders that clear
/// and extend.
pub(crate) fn take_empty(cap: usize) -> Vec<u8> {
    if let Some(class) = class_of(cap) {
        if let Some(mut buf) = classes().lock().expect("bytepool poisoned")[class].pop() {
            HITS.fetch_add(1, Relaxed);
            buf.clear();
            return buf;
        }
    }
    MISSES.fetch_add(1, Relaxed);
    Vec::with_capacity(cap.max(MIN_CLASS).next_power_of_two().max(cap))
}

/// Returns a buffer to its capacity class. Buffers outside the pooled
/// range, or landing in a full class, are simply dropped.
pub(crate) fn recycle(mut buf: Vec<u8>) {
    let cap = buf.capacity();
    if !(MIN_CLASS..=MAX_CLASS).contains(&cap) || !cap.is_power_of_two() {
        DROPPED.fetch_add(1, Relaxed);
        return;
    }
    // Store full-length (initialized via resize) so `take` can hand out
    // any shorter view with a plain truncate.
    buf.resize(cap, 0);
    let class = (cap.ilog2() - MIN_CLASS.ilog2()) as usize;
    let mut classes = classes().lock().expect("bytepool poisoned");
    if classes[class].len() < MAX_BUFS_PER_CLASS {
        classes[class].push(buf);
        RECYCLED.fetch_add(1, Relaxed);
    } else {
        DROPPED.fetch_add(1, Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_exact_length() {
        for len in [0, 1, 63, 64, 65, 1000, 4096, MAX_CLASS, MAX_CLASS + 1] {
            let buf = take(len);
            assert_eq!(buf.len(), len);
        }
    }

    #[test]
    fn recycled_buffer_is_reused_for_its_class() {
        let buf = take(300);
        let ptr = buf.as_ptr();
        let cap = buf.capacity();
        assert_eq!(cap, 512, "300-byte ask rounds to the 512 class");
        recycle(buf);
        // Same class → same storage comes back (unless a parallel test
        // drained the class first).
        let again = take(400);
        if again.capacity() == cap {
            assert_eq!(again.as_ptr(), ptr);
        }
    }

    #[test]
    fn oversized_buffers_are_not_pooled() {
        let buf = take(MAX_CLASS + 1);
        assert!(buf.capacity() > MAX_CLASS);
        recycle(buf); // must not panic; silently dropped
    }

    #[test]
    fn take_empty_has_capacity_but_no_length() {
        let buf = take_empty(100);
        assert_eq!(buf.len(), 0);
        assert!(buf.capacity() >= 100);
    }
}
