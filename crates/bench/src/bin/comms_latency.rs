//! Round-latency benchmark of the elastic-averaging transport: measures
//! one full exchange round (Step-❷ pull + Step-❸ submit + Ack) per
//! backend and writes `BENCH_2.json`.
//!
//! ```text
//! cargo run -p bench --release --bin comms_latency
//! cargo run -p bench --release --bin comms_latency -- --iters 500 --params 16384
//! ```

use ea_comms::{
    loopback_endpoint, Listener, RemoteShards, RetryConfig, ShardChannel, ShardClient, TcpConfig,
    TcpServer, TcpTransport,
};
use ea_runtime::RefShardServer;
use std::sync::Arc;
use std::time::Instant;

struct LatencyStats {
    mean_us: f64,
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
}

impl LatencyStats {
    fn from_samples(mut us: Vec<f64>) -> Self {
        us.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pct = |q: f64| us[((us.len() - 1) as f64 * q) as usize];
        LatencyStats {
            mean_us: us.iter().sum::<f64>() / us.len() as f64,
            p50_us: pct(0.50),
            p99_us: pct(0.99),
            max_us: *us.last().unwrap(),
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"mean_us\": {:.2}, \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"max_us\": {:.2}}}",
            self.mean_us, self.p50_us, self.p99_us, self.max_us
        )
    }
}

/// One pipeline driving full rounds against a single shard: pull the
/// round-`r` reference, submit a delta, repeat. With N = 1 every submit
/// completes a round, so each iteration is one complete elastic exchange.
fn measure_rounds(
    channel: &dyn ShardChannel,
    params: usize,
    start: u64,
    iters: usize,
) -> LatencyStats {
    let delta = vec![1e-6f32; params];
    let mut samples = Vec::with_capacity(iters);
    for round in start..start + iters as u64 {
        let t0 = Instant::now();
        let w = channel.pull(0, 0, round).expect("pull");
        ea_tensor::pool::recycle(w);
        let mut d = ea_tensor::pool::take_cleared(params);
        d.extend_from_slice(&delta);
        channel.submit(0, 0, round, d).expect("submit");
        samples.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    LatencyStats::from_samples(samples)
}

fn reference(params: usize) -> Vec<Vec<f32>> {
    vec![(0..params).map(|i| (i as f32 * 0.37).sin()).collect()]
}

fn loopback_channel(params: usize) -> (Arc<dyn ShardChannel>, &'static str) {
    let server = RefShardServer::from_initial_weights(reference(params), 1);
    let (hub, mut listener) = loopback_endpoint();
    let conn = hub.connect().unwrap();
    let _serve = server.spawn_conn(listener.accept().unwrap());
    let client = ShardClient::handshake(Box::new(conn), 0, RetryConfig::default()).unwrap();
    (Arc::new(RemoteShards::new(vec![client]).unwrap()), "loopback")
}

fn tcp_channel(params: usize) -> (Arc<dyn ShardChannel>, &'static str) {
    let server = RefShardServer::from_initial_weights(reference(params), 1);
    let mut listener = TcpServer::bind("127.0.0.1:0", TcpConfig::default()).unwrap();
    let addr = listener.local_addr().unwrap();
    let conn = TcpTransport::connect(addr, TcpConfig::default()).unwrap();
    let _serve = server.spawn_conn(listener.accept().unwrap());
    let client = ShardClient::handshake(Box::new(conn), 0, RetryConfig::default()).unwrap();
    (Arc::new(RemoteShards::new(vec![client]).unwrap()), "tcp")
}

fn main() {
    let mut iters = 200usize;
    let mut params = 16 * 1024usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" => iters = args.next().expect("--iters value").parse().expect("integer"),
            "--params" => params = args.next().expect("--params value").parse().expect("integer"),
            other => panic!("unknown argument {other:?}"),
        }
    }

    println!("== comms round latency: {params} f32 weights, {iters} rounds per backend ==");
    let mut sections = Vec::new();
    for make in [loopback_channel, tcp_channel] {
        let (channel, name) = make(params);
        // Warm-up rounds populate the buffer pool and the TCP window.
        let warmup = 20.min(iters);
        measure_rounds(channel.as_ref(), params, 0, warmup);
        let stats = measure_rounds(channel.as_ref(), params, warmup as u64, iters);
        println!(
            "  {name:<9} mean {:>9.1} µs   p50 {:>9.1} µs   p99 {:>9.1} µs",
            stats.mean_us, stats.p50_us, stats.p99_us
        );
        sections.push(format!("\"{name}_round_us\": {}", stats.to_json()));
    }

    let json = format!(
        "{{\n  \"bench\": \"comms_round_latency\",\n  \"params\": {params},\n  \"iters\": {iters},\n  {}\n}}\n",
        sections.join(",\n  ")
    );
    std::fs::write("BENCH_2.json", &json).expect("write BENCH_2.json");
    println!("  [saved BENCH_2.json]");
}
