//! Sequence LSTM layer with in-layer BPTT.

use crate::{ForwardCtx, Layer, Param, Saved};
use ea_tensor::{
    col_sums, matmul_a_bt_into, matmul_at_b_into, matmul_into, pool, transpose_into,
    xavier_uniform, Tensor, TensorRng,
};

/// A single-direction LSTM unrolled over a fixed sequence length.
///
/// Inputs are `[batch*seq, in_dim]` laid out batch-major (row `b*seq + t`
/// is token `t` of sample `b`); outputs are `[batch*seq, hidden]` with the
/// hidden state at every step. Truncated BPTT runs inside the layer, so a
/// pipeline stage can treat an LSTM exactly like any feed-forward layer —
/// this mirrors how GNMT/AWD stages are pipelined in the paper.
pub struct LstmSeq {
    wx: Param,
    wh: Param,
    b: Param,
    seq: usize,
    in_dim: usize,
    hidden: usize,
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl LstmSeq {
    /// Creates an LSTM over sequences of length `seq`.
    pub fn new(seq: usize, in_dim: usize, hidden: usize, rng: &mut TensorRng) -> Self {
        LstmSeq {
            wx: Param::new("lstm.wx", xavier_uniform(in_dim, 4 * hidden, rng)),
            wh: Param::new("lstm.wh", xavier_uniform(hidden, 4 * hidden, rng)),
            b: Param::new("lstm.b", Tensor::zeros(&[4 * hidden])),
            seq,
            in_dim,
            hidden,
        }
    }

    /// Gathers the rows of timestep `t` into a `[batch, width]` block,
    /// written into a reusable scratch tensor.
    fn gather_t_into(&self, x: &Tensor, t: usize, batch: usize, width: usize, out: &mut Tensor) {
        out.prepare_out(&[batch, width]);
        let obuf = out.data_mut();
        let data = x.data();
        for b in 0..batch {
            let r = b * self.seq + t;
            obuf[b * width..(b + 1) * width].copy_from_slice(&data[r * width..(r + 1) * width]);
        }
    }

    /// Scatters a `[batch, width]` block back into rows of timestep `t`.
    fn scatter_t(&self, dst: &mut [f32], block: &Tensor, t: usize, batch: usize, width: usize) {
        for b in 0..batch {
            let r = b * self.seq + t;
            dst[r * width..(r + 1) * width]
                .copy_from_slice(&block.data()[b * width..(b + 1) * width]);
        }
    }
}

impl Layer for LstmSeq {
    fn forward(&self, x: &Tensor, _ctx: &ForwardCtx) -> (Tensor, Saved) {
        let (rows, c) = x.shape().as_matrix();
        assert_eq!(c, self.in_dim, "lstm input width mismatch");
        assert_eq!(rows % self.seq, 0, "rows must be a multiple of seq");
        let batch = rows / self.seq;
        let h = self.hidden;

        let mut h_prev = Tensor::zeros(&[batch, h]);
        let mut c_prev = Tensor::zeros(&[batch, h]);
        // Every element is overwritten by the scatter loop below, so the
        // stashes can start from pooled buffers with stale contents.
        let mut h_all = pool::take_buf(rows * h);
        let mut c_all = pool::take_buf(rows * h);
        let mut gates_all = pool::take_buf(rows * 4 * h);
        let mut tanh_c_all = pool::take_buf(rows * h);

        // The x-side contribution x_t·Wx + b has no recurrent dependency,
        // so it is computed for every timestep in one batched matmul
        // (per-row results are identical to the per-step calls); only the
        // h-side term below runs step by step.
        let mut pre_all = Tensor::zeros(&[0]);
        matmul_into(x, &self.wx.value, &mut pre_all);
        pre_all.add_row_broadcast_assign(&self.b.value);

        // Per-timestep scratch reused across the unroll.
        let mut hh = Tensor::zeros(&[0]);
        let mut gates = Tensor::zeros(&[0]);
        let mut ct = Tensor::zeros(&[0]);
        let mut ht = Tensor::zeros(&[0]);
        let mut tct = Tensor::zeros(&[0]);
        for t in 0..self.seq {
            // Gate order within the 4h width: [i, f, g, o].
            self.gather_t_into(&pre_all, t, batch, 4 * h, &mut gates);
            matmul_into(&h_prev, &self.wh.value, &mut hh);
            gates.add_assign(&hh);
            ct.prepare_out(&[batch, h]);
            ht.prepare_out(&[batch, h]);
            tct.prepare_out(&[batch, h]);
            let gbuf = gates.data_mut();
            let cpbuf = c_prev.data();
            let ctbuf = ct.data_mut();
            let htbuf = ht.data_mut();
            let tcbuf = tct.data_mut();
            for bi in 0..batch {
                let base = bi * 4 * h;
                for j in 0..h {
                    let i = sigmoid(gbuf[base + j]);
                    let f = sigmoid(gbuf[base + h + j]);
                    let g = gbuf[base + 2 * h + j].tanh();
                    let o = sigmoid(gbuf[base + 3 * h + j]);
                    gbuf[base + j] = i;
                    gbuf[base + h + j] = f;
                    gbuf[base + 2 * h + j] = g;
                    gbuf[base + 3 * h + j] = o;
                    let cv = f * cpbuf[bi * h + j] + i * g;
                    let tcv = cv.tanh();
                    ctbuf[bi * h + j] = cv;
                    tcbuf[bi * h + j] = tcv;
                    htbuf[bi * h + j] = o * tcv;
                }
            }
            self.scatter_t(&mut h_all, &ht, t, batch, h);
            self.scatter_t(&mut c_all, &ct, t, batch, h);
            self.scatter_t(&mut gates_all, &gates, t, batch, 4 * h);
            self.scatter_t(&mut tanh_c_all, &tct, t, batch, h);
            std::mem::swap(&mut h_prev, &mut ht);
            std::mem::swap(&mut c_prev, &mut ct);
        }

        let y = Tensor::from_vec(h_all, &[rows, h]);
        let saved = Saved::new(vec![
            x.clone(),
            y.clone(),
            Tensor::from_vec(c_all, &[rows, h]),
            Tensor::from_vec(gates_all, &[rows, 4 * h]),
            // tanh(c_t) is stashed so backward reuses the forward values
            // instead of recomputing rows·h tanh calls.
            Tensor::from_vec(tanh_c_all, &[rows, h]),
        ]);
        (y, saved)
    }

    fn backward(&mut self, saved: &Saved, dy: &Tensor) -> Tensor {
        let x = saved.get(0);
        let h_all = saved.get(1);
        let c_all = saved.get(2);
        let gates_all = saved.get(3);
        let tanh_c_all = saved.get(4);
        let (rows, _) = x.shape().as_matrix();
        let batch = rows / self.seq;
        let h = self.hidden;

        // Pre-activation gradients for every timestep, assembled by the
        // scatter below (fully overwritten); the input gradient falls out
        // of one batched matmul at the end.
        let mut dpre_all = pool::take_buf(rows * 4 * h);
        let mut dh_next = Tensor::zeros(&[batch, h]);
        let mut dc_next = Tensor::zeros(&[batch, h]);

        // Whᵀ is loop-invariant; transpose it once instead of once per
        // timestep inside matmul_a_bt.
        let mut wht = Tensor::zeros(&[0]);
        transpose_into(&self.wh.value, &mut wht);

        // Per-timestep scratch reused across the unroll (`dw` is shared by
        // both weight gradients).
        let mut gates = Tensor::zeros(&[0]);
        let mut tc_t = Tensor::zeros(&[0]);
        let mut c_prev = Tensor::zeros(&[0]);
        let mut h_prev = Tensor::zeros(&[0]);
        let mut dy_t = Tensor::zeros(&[0]);
        let mut dpre = Tensor::zeros(&[0]);
        let mut dc_prev = Tensor::zeros(&[0]);
        let mut xt = Tensor::zeros(&[0]);
        let mut dw = Tensor::zeros(&[0]);

        for t in (0..self.seq).rev() {
            self.gather_t_into(gates_all, t, batch, 4 * h, &mut gates);
            self.gather_t_into(tanh_c_all, t, batch, h, &mut tc_t);
            if t == 0 {
                c_prev.prepare_out(&[batch, h]);
                c_prev.data_mut().fill(0.0);
                h_prev.prepare_out(&[batch, h]);
                h_prev.data_mut().fill(0.0);
            } else {
                self.gather_t_into(c_all, t - 1, batch, h, &mut c_prev);
                self.gather_t_into(h_all, t - 1, batch, h, &mut h_prev);
            }
            self.gather_t_into(dy, t, batch, h, &mut dy_t);

            dpre.prepare_out(&[batch, 4 * h]);
            dc_prev.prepare_out(&[batch, h]);
            {
                let gbuf = gates.data();
                let tcbuf = tc_t.data();
                let cpbuf = c_prev.data();
                let dybuf = dy_t.data();
                let dhnbuf = dh_next.data();
                let dcnbuf = dc_next.data();
                let dprebuf = dpre.data_mut();
                let dcpbuf = dc_prev.data_mut();
                for bi in 0..batch {
                    let gbase = bi * 4 * h;
                    for j in 0..h {
                        let i = gbuf[gbase + j];
                        let f = gbuf[gbase + h + j];
                        let g = gbuf[gbase + 2 * h + j];
                        let o = gbuf[gbase + 3 * h + j];
                        let tc = tcbuf[bi * h + j];
                        let dh = dybuf[bi * h + j] + dhnbuf[bi * h + j];
                        let mut dc = dcnbuf[bi * h + j] + dh * o * (1.0 - tc * tc);
                        let d_o = dh * tc;
                        let d_i = dc * g;
                        let d_g = dc * i;
                        let d_f = dc * cpbuf[bi * h + j];
                        dc *= f;
                        dcpbuf[bi * h + j] = dc;
                        dprebuf[gbase + j] = d_i * i * (1.0 - i);
                        dprebuf[gbase + h + j] = d_f * f * (1.0 - f);
                        dprebuf[gbase + 2 * h + j] = d_g * (1.0 - g * g);
                        dprebuf[gbase + 3 * h + j] = d_o * o * (1.0 - o);
                    }
                }
            }

            self.gather_t_into(x, t, batch, self.in_dim, &mut xt);
            matmul_at_b_into(&xt, &dpre, &mut dw);
            self.wx.accumulate_grad(&dw);
            matmul_at_b_into(&h_prev, &dpre, &mut dw);
            self.wh.accumulate_grad(&dw);
            self.b.accumulate_grad(&col_sums(&dpre));
            self.scatter_t(&mut dpre_all, &dpre, t, batch, 4 * h);
            matmul_into(&dpre, &wht, &mut dh_next);
            std::mem::swap(&mut dc_next, &mut dc_prev);
        }

        // dX = dPre · Wxᵀ row by row, so all timesteps batch into one call.
        let dpre_all = Tensor::from_vec(dpre_all, &[rows, 4 * h]);
        let mut dx = Tensor::zeros(&[0]);
        matmul_a_bt_into(&dpre_all, &self.wx.value, &mut dx);
        dx.reshape(x.dims())
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.wx);
        f(&self.wh);
        f(&self.b);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.wx);
        f(&mut self.wh);
        f(&mut self.b);
    }

    fn name(&self) -> &'static str {
        "LstmSeq"
    }

    fn flops_per_row(&self) -> u64 {
        2 * 4 * self.hidden as u64 * (self.in_dim + self.hidden) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck_layer;

    #[test]
    fn forward_shapes_and_state_propagation() {
        let mut rng = TensorRng::seed_from_u64(0);
        let lstm = LstmSeq::new(3, 2, 4, &mut rng);
        let x = ea_tensor::uniform(&[2 * 3, 2], -1.0, 1.0, &mut rng);
        let (y, s) = lstm.forward(&x, &ForwardCtx::eval());
        assert_eq!(y.dims(), &[6, 4]);
        assert_eq!(s.len(), 5);
        // Hidden state at t=1 differs from t=0 (state actually propagates).
        assert_ne!(y.row(0), y.row(1));
    }

    #[test]
    fn zero_input_keeps_bounded_output() {
        let mut rng = TensorRng::seed_from_u64(1);
        let lstm = LstmSeq::new(5, 3, 3, &mut rng);
        let x = Tensor::zeros(&[5, 3]);
        let (y, _) = lstm.forward(&x, &ForwardCtx::eval());
        assert!(y.abs_max() <= 1.0, "lstm hidden state must stay in (-1,1)");
    }

    #[test]
    fn gradcheck_short_sequence() {
        let mut rng = TensorRng::seed_from_u64(2);
        let lstm = LstmSeq::new(2, 3, 2, &mut rng);
        gradcheck_layer(lstm, &[2 * 2, 3], 5e-2, 21);
    }

    #[test]
    fn gradcheck_longer_sequence_multi_batch() {
        let mut rng = TensorRng::seed_from_u64(3);
        let lstm = LstmSeq::new(3, 2, 3, &mut rng);
        gradcheck_layer(lstm, &[2 * 3, 2], 5e-2, 22);
    }
}
