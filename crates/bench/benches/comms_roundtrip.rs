//! Criterion benchmarks of one transport round-trip (Step ❷ reference
//! pull) over the loopback and TCP backends, at a payload comparable to
//! one analogue-model stage. The gap between the two is the cost of
//! framing + CRC + kernel TCP on the elastic exchange path.

use criterion::{criterion_group, criterion_main, Criterion};
use ea_comms::{
    loopback_endpoint, Listener, RemoteShards, RetryConfig, ShardChannel, ShardClient, TcpConfig,
    TcpServer, TcpTransport,
};
use ea_runtime::RefShardServer;
use std::sync::Arc;

/// Weights per shard — same order of magnitude as one model stage.
const PARAMS: usize = 64 * 1024;

fn reference() -> Vec<Vec<f32>> {
    vec![(0..PARAMS).map(|i| (i as f32 * 0.37).sin()).collect()]
}

fn bench_loopback_pull(c: &mut Criterion) {
    let server = RefShardServer::from_initial_weights(reference(), 1);
    let (hub, mut listener) = loopback_endpoint();
    let conn = hub.connect().unwrap();
    let _serve = server.spawn_conn(listener.accept().unwrap());
    let client = ShardClient::handshake(Box::new(conn), 0, RetryConfig::default()).unwrap();
    let channel = Arc::new(RemoteShards::new(vec![client]).unwrap());
    c.bench_function("comms_roundtrip/loopback_pull_64k", |b| {
        b.iter(|| {
            let w = channel.pull(0, 0, 0).unwrap();
            let probe = w[PARAMS / 2];
            ea_tensor::pool::recycle(w);
            std::hint::black_box(probe)
        })
    });
}

fn bench_tcp_pull(c: &mut Criterion) {
    let server = RefShardServer::from_initial_weights(reference(), 1);
    let mut listener = TcpServer::bind("127.0.0.1:0", TcpConfig::default()).unwrap();
    let addr = listener.local_addr().unwrap();
    let conn = TcpTransport::connect(addr, TcpConfig::default()).unwrap();
    let _serve = server.spawn_conn(listener.accept().unwrap());
    let client = ShardClient::handshake(Box::new(conn), 0, RetryConfig::default()).unwrap();
    let channel = Arc::new(RemoteShards::new(vec![client]).unwrap());
    c.bench_function("comms_roundtrip/tcp_pull_64k", |b| {
        b.iter(|| {
            let w = channel.pull(0, 0, 0).unwrap();
            let probe = w[PARAMS / 2];
            ea_tensor::pool::recycle(w);
            std::hint::black_box(probe)
        })
    });
}

criterion_group!(benches, bench_loopback_pull, bench_tcp_pull);
criterion_main!(benches);
