//! The `EA_TRACE` switch: a single atomic the hot paths load once.

use std::sync::atomic::{AtomicU8, Ordering};

/// How much the tracing layer records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Record nothing; span sites cost one relaxed load.
    Off = 0,
    /// Counters and timing histograms, no spans.
    Counters = 1,
    /// Everything, including per-thread span rings.
    Spans = 2,
}

/// Sentinel meaning "environment not consulted yet".
const UNINIT: u8 = u8::MAX;

static LEVEL: AtomicU8 = AtomicU8::new(UNINIT);

/// The active trace level (reads `EA_TRACE` on first call).
#[inline]
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Counters,
        2 => Level::Spans,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> Level {
    let lvl = match std::env::var("EA_TRACE").ok().as_deref() {
        Some("counters") | Some("1") => Level::Counters,
        Some("spans") | Some("2") | Some("on") | Some("all") => Level::Spans,
        _ => Level::Off,
    };
    LEVEL.store(lvl as u8, Ordering::Relaxed);
    lvl
}

/// Overrides the level (tests, tools); wins over the environment.
pub fn set_level(lvl: Level) {
    LEVEL.store(lvl as u8, Ordering::Relaxed);
}

/// True when counters and histograms should record.
#[inline]
pub fn counters_enabled() -> bool {
    level() >= Level::Counters
}

/// True when spans should record into the ring buffers.
#[inline]
pub fn spans_enabled() -> bool {
    level() >= Level::Spans
}

/// Serializes tests (across this crate) that mutate the global level,
/// so the parallel test runner cannot interleave them.
#[cfg(test)]
pub(crate) fn test_level_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_level_round_trips() {
        let _guard = test_level_lock();
        let before = level();
        set_level(Level::Spans);
        assert!(spans_enabled());
        assert!(counters_enabled());
        set_level(Level::Counters);
        assert!(!spans_enabled());
        assert!(counters_enabled());
        set_level(Level::Off);
        assert!(!counters_enabled());
        set_level(before);
    }
}
