//! Traced training: record a real pipelined run through `ea-trace`,
//! export a Chrome trace and a Prometheus metrics dump, and feed the
//! measured φ(t) profile into the §5 tuner.
//!
//! ```text
//! cargo run --release --example traced_training [trace.json [metrics.prom]]
//! ```
//!
//! Open the trace in `chrome://tracing` or <https://ui.perfetto.dev>; it
//! uses the same `F{m}`/`B{m}` span conventions as the simulator's
//! timelines, so a simulated schedule opens side by side.

use avgpipe::{predict, TraceProfiler};
use ea_data::SyntheticTask;
use ea_models::{analogue_partition, analogue_spec, gnmt_analogue, AnalogueConfig};
use ea_optim::{OptKind, Optimizer};
use ea_runtime::ThreadedPipeline;
use ea_tensor::TensorRng;
use ea_trace::{chrome_trace_json, set_level, Level};

fn main() {
    let mut args = std::env::args().skip(1);
    let trace_path = args.next().unwrap_or_else(|| "trace.json".into());
    let metrics_path = args.next().unwrap_or_else(|| "metrics.prom".into());

    // Record spans regardless of the EA_TRACE environment default.
    set_level(Level::Spans);

    let cfg = AnalogueConfig { vocab: 32, seq: 8, hidden: 32, blocks: 4, stages: 3 };
    let (batch, m, n, batches) = (16usize, 4usize, 1usize, 8usize);
    let model = gnmt_analogue(cfg, &mut TensorRng::seed_from_u64(7));
    let opts: Vec<Box<dyn Optimizer>> =
        (0..cfg.stages).map(|_| OptKind::Adam { lr: 1e-3 }.build()).collect();
    let mut pipe = ThreadedPipeline::spawn(model.into_stages(), opts, m);
    let task = SyntheticTask::copy_translate(cfg.vocab, cfg.seq, 3);

    println!("running {batches} traced batches (batch {batch}, m={m}, n={n})");
    for b in 0..batches as u64 {
        let loss = pipe.step(&task.batch(batch, b));
        println!("  batch {b}: loss {loss:.4}");
    }
    drop(pipe); // join the stage workers so their rings are quiescent

    let events = ea_trace::drain();
    std::fs::write(&trace_path, chrome_trace_json(&events)).expect("write trace");
    std::fs::write(&metrics_path, ea_trace::metrics::global().render_prometheus())
        .expect("write metrics");
    println!("wrote {} events to {trace_path}, metrics to {metrics_path}", events.len());

    // The measured-φ(t) path into the §5 tuner: derive the profile from
    // the recorded spans and rank candidate (m*, n*) settings through
    // the same predictor the simulator profile feeds.
    let profiler = TraceProfiler::new(
        analogue_spec(cfg),
        analogue_partition(cfg),
        batch,
        8, // Adam: two f32 states per parameter
        12_000.0,
    );
    let peak = ea_tensor::pool::stats().peak_pooled_bytes;
    let profile = profiler.profile_events(&events, m, n, batches, peak);
    for (k, d) in profile.per_device.iter().enumerate() {
        println!(
            "stage{k}: T_gpu {:>6.0} µs/batch, 𝕋 {:>5.1} µs/batch, φ̄ {:.3}, F_mod {} KiB, F_dat {} KiB",
            d.t_gpu_us,
            d.t_comm_total_us,
            d.trace.mean_over(d.horizon_us),
            d.f_mod / 1024,
            d.f_dat / 1024,
        );
    }

    let candidates = [(2, 1), (4, 1), (4, 2), (8, 2), (8, 4), (16, 4)];
    let mut best: Option<(f64, usize, usize)> = None;
    println!("predicted per-batch time from the measured profile:");
    for (ms, ns) in candidates {
        let p = predict(&profile, ms, ns);
        println!("  M={ms:<2} N={ns}: {:>8.0} µs", p.t_us);
        if best.is_none_or(|(t, _, _)| p.t_us < t) {
            best = Some((p.t_us, ms, ns));
        }
    }
    let (_, ms, ns) = best.unwrap();
    println!("tuner pick from the measured profile: M={ms} N={ns}");
}
