//! Dynamic micro-batcher: a bounded admission queue that coalesces
//! requests into micro-batches under a latency budget.
//!
//! The serving analogue of the paper's micro-batch tuning: throughput
//! rises with batch size only while the device's demand curve still
//! climbs (§5.2), so the executor asks for *up to* `cap` requests — the
//! cap computed by [`avgpipe::serve_batch_cap`] from the model's
//! arithmetic-intensity profile and a measured cost model — but never
//! holds the first request longer than `max_delay`. Under load the
//! queue fills and batches form instantly at the cap; at low load a
//! lone request waits at most `max_delay` before executing alone.
//!
//! Admission control is load-shedding, not back-pressure: a full queue
//! rejects new requests immediately ([`Admission::Shed`]) so the
//! frontend can answer with a `shed` reply instead of letting latency
//! grow without bound. Shedding at the door keeps the p99 of *accepted*
//! requests inside the budget — the standard serving trade.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use ea_comms::reactor::ConnId;

/// One queued inference request.
pub struct InferRequest {
    /// Client-chosen correlation id, echoed in the reply.
    pub id: u64,
    /// Connection to answer on (reactor frontends; synthetic for tests).
    pub conn: ConnId,
    /// Flat input rows (token ids encoded as f32).
    pub input: Vec<f32>,
    /// Admission time, for queue-latency accounting.
    pub enqueued: Instant,
}

/// Outcome of [`Batcher::submit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Queued; a reply will arrive via the completion path.
    Accepted,
    /// Queue full (or batcher stopped) — answer `shed` immediately.
    Shed,
}

/// Bounded request queue + condvar the executor thread blocks on.
pub struct Batcher {
    queue_cap: usize,
    queue: Mutex<VecDeque<InferRequest>>,
    available: Condvar,
    stopped: AtomicBool,
}

impl Batcher {
    /// A batcher admitting at most `queue_cap` queued requests.
    pub fn new(queue_cap: usize) -> Batcher {
        assert!(queue_cap >= 1, "queue capacity must be positive");
        Batcher {
            queue_cap,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stopped: AtomicBool::new(false),
        }
    }

    /// Admits or sheds a request. O(1); never blocks.
    pub fn submit(&self, req: InferRequest) -> Admission {
        if self.stopped.load(Ordering::Acquire) {
            return Admission::Shed;
        }
        let mut q = self.queue.lock().expect("batcher queue poisoned");
        if q.len() >= self.queue_cap {
            return Admission::Shed;
        }
        q.push_back(req);
        drop(q);
        self.available.notify_one();
        Admission::Accepted
    }

    /// Requests currently queued.
    pub fn depth(&self) -> usize {
        self.queue.lock().expect("batcher queue poisoned").len()
    }

    /// Blocks until a batch is ready, the batcher stops, or — with an
    /// empty queue — `idle_wait` elapses (returning an empty vec so the
    /// caller can run housekeeping and re-enter).
    ///
    /// Batch formation: wait for the first request, then keep
    /// coalescing until `cap` requests are queued or the first
    /// request's age reaches `max_delay`. Returns at least one request
    /// when non-empty, never more than `cap`.
    pub fn next_batch(
        &self,
        cap: usize,
        max_delay: Duration,
        idle_wait: Duration,
    ) -> Vec<InferRequest> {
        let cap = cap.max(1);
        let mut q = self.queue.lock().expect("batcher queue poisoned");
        // Phase 1: wait for work (or stop / idle timeout).
        let idle_deadline = Instant::now() + idle_wait;
        while q.is_empty() {
            if self.stopped.load(Ordering::Acquire) {
                return Vec::new();
            }
            let now = Instant::now();
            if now >= idle_deadline {
                return Vec::new();
            }
            let (guard, _) = self
                .available
                .wait_timeout(q, idle_deadline - now)
                .expect("batcher queue poisoned");
            q = guard;
        }
        // Phase 2: coalesce up to `cap` within the oldest request's
        // latency budget. Stop requests drain whatever is queued.
        let deadline = q.front().expect("non-empty").enqueued + max_delay;
        while q.len() < cap && !self.stopped.load(Ordering::Acquire) {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _) =
                self.available.wait_timeout(q, deadline - now).expect("batcher queue poisoned");
            q = guard;
        }
        let take = q.len().min(cap);
        q.drain(..take).collect()
    }

    /// Stops the batcher: subsequent submits shed, blocked
    /// `next_batch` calls return (draining what is queued first).
    pub fn stop(&self) {
        self.stopped.store(true, Ordering::Release);
        self.available.notify_all();
    }

    /// Whether [`stop`](Batcher::stop) was called.
    pub fn is_stopped(&self) -> bool {
        self.stopped.load(Ordering::Acquire)
    }

    /// Drains every queued request (for shutdown shedding).
    pub fn drain(&self) -> Vec<InferRequest> {
        let mut q = self.queue.lock().expect("batcher queue poisoned");
        q.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn req(id: u64) -> InferRequest {
        InferRequest { id, conn: ConnId::from_raw(0), input: vec![0.0], enqueued: Instant::now() }
    }

    #[test]
    fn full_queue_sheds_instead_of_blocking() {
        let b = Batcher::new(2);
        assert_eq!(b.submit(req(1)), Admission::Accepted);
        assert_eq!(b.submit(req(2)), Admission::Accepted);
        let t0 = Instant::now();
        assert_eq!(b.submit(req(3)), Admission::Shed);
        assert!(t0.elapsed() < Duration::from_millis(50), "shed must not block");
        assert_eq!(b.depth(), 2);
    }

    #[test]
    fn batch_fills_to_cap_without_waiting_out_the_delay() {
        let b = Arc::new(Batcher::new(64));
        for i in 0..8 {
            b.submit(req(i));
        }
        let t0 = Instant::now();
        let batch = b.next_batch(8, Duration::from_secs(10), Duration::from_secs(10));
        assert_eq!(batch.len(), 8);
        assert!(t0.elapsed() < Duration::from_secs(1), "full batch must not wait for max_delay");
        assert_eq!(batch[0].id, 0);
        assert_eq!(batch[7].id, 7);
    }

    #[test]
    fn lone_request_executes_after_max_delay() {
        let b = Arc::new(Batcher::new(64));
        let b2 = Arc::clone(&b);
        let waiter = std::thread::spawn(move || {
            b2.next_batch(8, Duration::from_millis(60), Duration::from_secs(10))
        });
        std::thread::sleep(Duration::from_millis(10));
        b.submit(req(42));
        let batch = waiter.join().unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].id, 42);
    }

    #[test]
    fn stop_drains_queued_requests_and_sheds_new_ones() {
        let b = Batcher::new(8);
        b.submit(req(1));
        b.submit(req(2));
        b.stop();
        assert_eq!(b.submit(req(3)), Admission::Shed);
        let batch = b.next_batch(8, Duration::from_secs(10), Duration::from_secs(10));
        assert_eq!(batch.len(), 2, "stop drains what was already admitted");
        let empty = b.next_batch(8, Duration::from_secs(10), Duration::from_secs(10));
        assert!(empty.is_empty(), "stopped and empty returns immediately");
    }

    #[test]
    fn idle_wait_returns_empty_for_housekeeping() {
        let b = Batcher::new(8);
        let t0 = Instant::now();
        let batch = b.next_batch(8, Duration::from_secs(10), Duration::from_millis(30));
        assert!(batch.is_empty());
        let waited = t0.elapsed();
        assert!(waited >= Duration::from_millis(25), "waited {waited:?}");
        assert!(waited < Duration::from_secs(5), "waited {waited:?}");
    }
}
