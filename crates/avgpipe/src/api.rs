//! The ergonomic front door: configure and run AvgPipe in a few lines.
//!
//! ```
//! use avgpipe::{AvgPipe, TuneMethod};
//! use ea_models::Workload;
//!
//! let system = AvgPipe::builder(Workload::Awd)
//!     .memory_limit_gib(16)
//!     .tuner(TuneMethod::ProfilingBased)
//!     .max_pipelines(2)
//!     .build();
//! let report = system.report();
//! assert!(report.time_per_batch_s.is_finite());
//! assert!(system.degrees().0 >= 1);
//! ```

use crate::{run_avgpipe, SystemReport, TuneMethod};
use ea_models::{ModelSpec, Workload};
use ea_sched::{partition_model, pipeline_program, PipeStyle, PipelinePlan};
use ea_sim::{chrome_trace_json, ClusterConfig, Simulator};

/// Builder for an [`AvgPipe`] system.
pub struct AvgPipeBuilder {
    spec: ModelSpec,
    cluster: ClusterConfig,
    batch: usize,
    opt_state_per_param: usize,
    mem_limit: u64,
    method: TuneMethod,
    max_n: usize,
}

impl AvgPipeBuilder {
    /// Overrides the cluster (default: the paper's testbed sized to the
    /// workload).
    pub fn cluster(mut self, cluster: ClusterConfig) -> Self {
        self.cluster = cluster;
        self
    }

    /// Overrides the batch size (default: the workload's paper setting).
    pub fn batch(mut self, batch: usize) -> Self {
        assert!(batch >= 1);
        self.batch = batch;
        self
    }

    /// Optimizer state bytes per parameter (8 = Adam, 4 = momentum/ASGD,
    /// 0 = SGD). Default: Adam.
    pub fn optimizer_state_bytes(mut self, bytes: usize) -> Self {
        self.opt_state_per_param = bytes;
        self
    }

    /// Per-device memory budget in GiB (default 16).
    pub fn memory_limit_gib(mut self, gib: u64) -> Self {
        self.mem_limit = gib * (1 << 30);
        self
    }

    /// Per-device memory budget in bytes.
    pub fn memory_limit_bytes(mut self, bytes: u64) -> Self {
        self.mem_limit = bytes;
        self
    }

    /// Tuning strategy (default: the paper's profiling-based method).
    pub fn tuner(mut self, method: TuneMethod) -> Self {
        self.method = method;
        self
    }

    /// Maximum parallel pipelines considered (default 4).
    pub fn max_pipelines(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.max_n = n;
        self
    }

    /// Tunes the parallelism degrees, adapts the advance depth with
    /// Algorithm 1, and measures the resulting system.
    pub fn build(self) -> AvgPipe {
        let report = run_avgpipe(
            &self.spec,
            &self.cluster,
            self.batch,
            self.opt_state_per_param,
            self.mem_limit,
            self.method,
            self.max_n,
        );
        AvgPipe {
            spec: self.spec,
            cluster: self.cluster,
            batch: self.batch,
            opt_state_per_param: self.opt_state_per_param,
            report,
        }
    }
}

/// A tuned, measured AvgPipe configuration for one workload on one
/// cluster.
pub struct AvgPipe {
    spec: ModelSpec,
    cluster: ClusterConfig,
    batch: usize,
    opt_state_per_param: usize,
    report: SystemReport,
}

impl AvgPipe {
    /// Starts configuring AvgPipe for one of the paper's workloads.
    pub fn builder(workload: Workload) -> AvgPipeBuilder {
        let spec = workload.spec();
        let cluster = if workload == Workload::Awd {
            ClusterConfig::paper_testbed_two_nodes()
        } else {
            ClusterConfig::paper_testbed()
        };
        AvgPipeBuilder {
            batch: spec.default_batch,
            spec,
            cluster,
            opt_state_per_param: 8,
            mem_limit: 16 * (1 << 30),
            method: TuneMethod::ProfilingBased,
            max_n: 4,
        }
    }

    /// Starts configuring AvgPipe for a custom workload cost model.
    pub fn builder_for(spec: ModelSpec, cluster: ClusterConfig) -> AvgPipeBuilder {
        AvgPipeBuilder {
            batch: spec.default_batch,
            spec,
            cluster,
            opt_state_per_param: 8,
            mem_limit: 16 * (1 << 30),
            method: TuneMethod::ProfilingBased,
            max_n: 4,
        }
    }

    /// The measured performance report.
    pub fn report(&self) -> &SystemReport {
        &self.report
    }

    /// The tuned parallelism degrees `(M, N, advance depth)`.
    pub fn degrees(&self) -> (usize, usize, usize) {
        (self.report.m, self.report.n, self.report.advance)
    }

    /// Renders one training batch as a Chrome-tracing JSON timeline
    /// (open in `chrome://tracing` or Perfetto).
    pub fn chrome_trace(&self) -> String {
        let partition = partition_model(&self.spec, self.cluster.num_devices());
        let plan = PipelinePlan::new(
            self.spec.clone(),
            self.cluster.clone(),
            partition,
            self.batch,
            self.report.m,
            self.opt_state_per_param,
        );
        let prog =
            pipeline_program(&plan, &PipeStyle::avgpipe(self.report.n, self.report.advance), 1);
        let sim = Simulator::new(self.cluster.clone());
        let (_, spans) = sim.run_traced(&prog).expect("tuned program must run");
        chrome_trace_json(&prog, &spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_feasible_system() {
        let sys = AvgPipe::builder(Workload::Awd).memory_limit_gib(16).max_pipelines(2).build();
        let r = sys.report();
        assert!(!r.oom);
        assert!(r.time_per_batch_s > 0.0 && r.time_per_batch_s.is_finite());
        let (m, n, a) = sys.degrees();
        assert!(m >= 1 && n >= 1 && n <= 2);
        assert!(a >= sys.cluster.num_devices() - 1 || m == 1);
    }

    #[test]
    fn chrome_trace_is_parseable_json() {
        let sys = AvgPipe::builder(Workload::Awd).max_pipelines(2).build();
        let json = sys.chrome_trace();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(!v["traceEvents"].as_array().unwrap().is_empty());
    }

    #[test]
    fn custom_spec_builder_works() {
        let spec = ea_models::awd_spec();
        let cluster = ClusterConfig::paper_testbed_two_nodes();
        let sys = AvgPipe::builder_for(spec, cluster).batch(40).build();
        assert!(sys.report().time_per_batch_s.is_finite());
    }

    #[test]
    fn tight_budget_reports_oom_instead_of_panicking() {
        let sys = AvgPipe::builder(Workload::Awd)
            .memory_limit_bytes(1 << 20) // 1 MiB: nothing fits
            .build();
        assert!(sys.report().oom);
        assert!(sys.report().time_per_batch_s.is_infinite());
    }
}
