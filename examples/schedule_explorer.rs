//! Explore the time/memory frontier of advance forward propagation.
//!
//! Sweeps the advance depth `a` from the 1F1B floor (`K−1`) to the full
//! AFAB depth (`M+K−1`) on the GNMT workload and prints the trade-off the
//! paper's §4.2 describes, plus what Algorithm 1 settles on under a
//! memory budget.
//!
//! ```text
//! cargo run --release --example schedule_explorer
//! ```

use ea_models::gnmt_spec;
use ea_sched::{
    partition_model, pipeline_program, AdvanceController, PipeStyle, PipelinePlan, WarmupPolicy,
};
use ea_sim::{ClusterConfig, Simulator};

fn main() {
    let spec = gnmt_spec();
    let cluster = ClusterConfig::paper_testbed();
    let k = cluster.num_devices();
    let partition = partition_model(&spec, k);
    let (batch, micros) = (128, 32);
    let plan = PipelinePlan::new(spec, cluster.clone(), partition, batch, micros, 8);
    let sim = Simulator::new(cluster);

    println!("GNMT, batch {batch}, M = {micros} micro-batches, K = {k} stages");
    println!("{:>10} {:>12} {:>10}", "advance", "ms/batch", "peak GiB");
    let run = |style: PipeStyle| {
        let prog = pipeline_program(&plan, &style, 2);
        let r = sim.run(&prog).expect("schedule runs");
        (r.makespan_us / 2000.0, r.max_peak_mem() as f64 / (1u64 << 30) as f64)
    };
    let (t, m) = run(PipeStyle::avgpipe_with(1, WarmupPolicy::OneFOneB));
    println!("{:>10} {t:>12.1} {m:>10.2}   (1F1B floor)", k - 1);
    for a in [k + 1, k + 3, k + 7, k + 15, micros / 2 + k] {
        let (t, m) = run(PipeStyle::avgpipe_with(1, WarmupPolicy::Advance { a }));
        println!("{a:>10} {t:>12.1} {m:>10.2}");
    }
    let (t, m) = run(PipeStyle::avgpipe_with(1, WarmupPolicy::Afab));
    println!("{:>10} {t:>12.1} {m:>10.2}   (AFAB)", micros + k - 1);

    // Algorithm 1 under a 6 GiB budget.
    let budget = 6 * (1u64 << 30);
    let mut ctrl = AdvanceController::new(k, micros, budget);
    while !ctrl.frozen() {
        let prog = pipeline_program(
            &plan,
            &PipeStyle::avgpipe_with(1, WarmupPolicy::Advance { a: ctrl.advance() }),
            1,
        );
        let r = sim.run(&prog).expect("schedule runs");
        ctrl.observe(r.makespan_us, r.max_peak_mem());
    }
    println!("\nAlgorithm 1 under a 6 GiB budget settles at advance = {}", ctrl.advance());
}
