//! Deterministic dropout (and the AWD-LSTM "weight drop" variant).

use crate::{ForwardCtx, Layer, Param, Saved};
use ea_tensor::Tensor;

/// Inverted dropout with a counter-based deterministic mask.
///
/// The mask for element `i` of micro-batch `micro` at step `step` is a pure
/// function of `(layer_seed, step, micro, i)`, so reruns — and the backward
/// pass, which regenerates the mask instead of stashing it — are exact.
/// Regenerating instead of stashing also means dropout adds *zero* bytes to
/// the activation stash, matching how fused dropout behaves on real GPUs.
pub struct Dropout {
    p: f32,
    seed: u64,
}

impl Dropout {
    /// Dropout with drop probability `p` in `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0,1)");
        Dropout { p, seed }
    }

    /// SplitMix64-style hash: uniform in [0,1).
    fn unit(&self, step: u64, micro: u64, i: u64) -> f32 {
        let mut z = self
            .seed
            .wrapping_add(step.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(micro.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(i.wrapping_mul(0x94D0_49BB_1331_11EB));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 40) as f32 / (1u64 << 24) as f32
    }

    fn keep(&self, step: u64, micro: u64, i: u64) -> bool {
        self.unit(step, micro, i) >= self.p
    }
}

impl Layer for Dropout {
    fn forward(&self, x: &Tensor, ctx: &ForwardCtx) -> (Tensor, Saved) {
        if !ctx.train || self.p == 0.0 {
            return (x.clone(), Saved::empty());
        }
        let scale = 1.0 / (1.0 - self.p);
        let mut y = x.clone();
        for (i, v) in y.data_mut().iter_mut().enumerate() {
            if self.keep(ctx.step, ctx.micro, i as u64) {
                *v *= scale;
            } else {
                *v = 0.0;
            }
        }
        // Only the ctx coordinates are needed to regenerate the mask.
        let coords = Tensor::from_vec(vec![ctx.step as f32, ctx.micro as f32], &[2]);
        (y, Saved::new(vec![coords]))
    }

    fn backward(&mut self, saved: &Saved, dy: &Tensor) -> Tensor {
        if saved.is_empty() {
            return dy.clone();
        }
        let step = saved.get(0).data()[0] as u64;
        let micro = saved.get(0).data()[1] as u64;
        let scale = 1.0 / (1.0 - self.p);
        let mut dx = dy.clone();
        for (i, v) in dx.data_mut().iter_mut().enumerate() {
            if self.keep(step, micro, i as u64) {
                *v *= scale;
            } else {
                *v = 0.0;
            }
        }
        dx
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "Dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let d = Dropout::new(0.5, 1);
        let x = Tensor::ones(&[4, 4]);
        let (y, s) = d.forward(&x, &ForwardCtx::eval());
        assert_eq!(y, x);
        assert!(s.is_empty());
    }

    #[test]
    fn train_mode_zeroes_roughly_p_fraction() {
        let d = Dropout::new(0.3, 2);
        let x = Tensor::ones(&[100, 100]);
        let (y, _) = d.forward(&x, &ForwardCtx::train(0, 0));
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f32 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "dropped fraction {frac}");
        // Kept values are scaled by 1/(1-p).
        let kept = y.data().iter().find(|&&v| v != 0.0).unwrap();
        assert!((kept - 1.0 / 0.7).abs() < 1e-5);
    }

    #[test]
    fn masks_differ_across_steps_but_not_reruns() {
        let d = Dropout::new(0.5, 3);
        let x = Tensor::ones(&[10, 10]);
        let (y1, _) = d.forward(&x, &ForwardCtx::train(1, 0));
        let (y2, _) = d.forward(&x, &ForwardCtx::train(1, 0));
        let (y3, _) = d.forward(&x, &ForwardCtx::train(2, 0));
        assert_eq!(y1, y2);
        assert_ne!(y1, y3);
    }

    #[test]
    fn backward_applies_same_mask() {
        let mut d = Dropout::new(0.5, 4);
        let x = ea_tensor::uniform(&[6, 6], -1.0, 1.0, &mut ea_tensor::TensorRng::seed_from_u64(0));
        let ctx = ForwardCtx::train(7, 3);
        let (y, s) = d.forward(&x, &ctx);
        let dy = Tensor::ones(&[6, 6]);
        let dx = d.backward(&s, &dy);
        // dx must be zero exactly where y is zero, and 1/(1-p) elsewhere.
        for (yv, dv) in y.data().iter().zip(dx.data()) {
            if *yv == 0.0 {
                assert_eq!(*dv, 0.0);
            } else {
                assert!((dv - 2.0).abs() < 1e-6);
            }
        }
    }
}
