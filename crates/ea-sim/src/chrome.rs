//! Chrome-tracing export: visualize a simulated schedule in
//! `chrome://tracing` / Perfetto.
//!
//! [`Simulator::run_traced`](crate::Simulator::run_traced) collects one
//! [`Span`] per compute task and per transfer; [`chrome_trace_json`]
//! renders them in the Trace Event Format (one row per stream, devices as
//! processes), which is how the timing diagrams of the paper's Figures 1,
//! 2 and 7 can be inspected interactively.

use crate::{CLabel, Program};

/// One completed activity of a simulated run.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Stream that executed the activity.
    pub stream: usize,
    /// Start time (µs).
    pub t0: f64,
    /// End time (µs).
    pub t1: f64,
    /// What ran.
    pub kind: SpanKind,
}

/// Classification of a span.
#[derive(Clone, Debug, PartialEq)]
pub enum SpanKind {
    /// A compute kernel with its label.
    Compute(CLabel),
    /// A transfer to `to` of `bytes` (span covers link occupancy).
    Transfer {
        /// Receiving stream.
        to: usize,
        /// Payload bytes.
        bytes: u64,
    },
}

fn label_of(kind: &SpanKind) -> String {
    match kind {
        SpanKind::Compute(CLabel::Fwd { micro }) => format!("F{micro}"),
        SpanKind::Compute(CLabel::Bwd { micro }) => format!("B{micro}"),
        SpanKind::Compute(CLabel::Opt) => "opt".into(),
        SpanKind::Compute(CLabel::EaUpdate) => "ea".into(),
        SpanKind::Compute(CLabel::AllReduce) => "allreduce".into(),
        SpanKind::Compute(CLabel::Other) => "compute".into(),
        SpanKind::Transfer { to, bytes } => format!("send→{to} ({bytes} B)"),
    }
}

/// Renders spans as a Chrome Trace Event Format JSON document. Devices
/// become processes (`pid`), streams become threads (`tid`), so the
/// timeline reads exactly like the paper's schedule figures.
pub fn chrome_trace_json(program: &Program, spans: &[Span]) -> String {
    let mut events = Vec::with_capacity(spans.len() + program.streams.len());
    for (sid, s) in program.streams.iter().enumerate() {
        events.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":{},"tid":{},"args":{{"name":{:?}}}}}"#,
            s.device, sid, s.name
        ));
    }
    for sp in spans {
        let dev = program.streams[sp.stream].device;
        let cat = match sp.kind {
            SpanKind::Compute(_) => "compute",
            SpanKind::Transfer { .. } => "comm",
        };
        events.push(format!(
            r#"{{"name":{:?},"cat":"{}","ph":"X","ts":{:.3},"dur":{:.3},"pid":{},"tid":{}}}"#,
            label_of(&sp.kind),
            cat,
            sp.t0,
            (sp.t1 - sp.t0).max(0.001),
            dev,
            sp.stream
        ));
    }
    format!("{{\"traceEvents\":[\n{}\n]}}\n", events.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterConfig, Instr, Simulator, Stream};

    fn tiny() -> (Simulator, Program) {
        let cfg = ClusterConfig {
            nodes: 2,
            gpus_per_node: 1,
            gpu_flops: 1e6,
            gpu_mem_bytes: 1 << 30,
            inter_bw: 1e6,
            inter_lat_us: 10.0,
            intra_bw: 1e9,
            intra_lat_us: 1.0,
            device_speed: Vec::new(),
        };
        let mut p = Program::new();
        let mut a = Stream::new(0, "producer");
        a.push(Instr::Compute { flops: 100.0, demand: 1.0, label: CLabel::Fwd { micro: 0 } });
        a.push(Instr::Send { to: 1, bytes: 90, tag: 0 });
        let mut b = Stream::new(1, "consumer");
        b.push(Instr::Recv { from: 0, tag: 0 });
        b.push(Instr::Compute { flops: 50.0, demand: 1.0, label: CLabel::Bwd { micro: 0 } });
        p.add_stream(a);
        p.add_stream(b);
        (Simulator::new(cfg), p)
    }

    #[test]
    fn traced_run_matches_untraced_and_collects_spans() {
        let (sim, p) = tiny();
        let plain = sim.run(&p).unwrap();
        let (traced, spans) = sim.run_traced(&p).unwrap();
        assert_eq!(plain.makespan_us, traced.makespan_us);
        // Two computes + one transfer.
        assert_eq!(spans.len(), 3);
        let computes: Vec<_> =
            spans.iter().filter(|s| matches!(s.kind, SpanKind::Compute(_))).collect();
        assert_eq!(computes.len(), 2);
        for s in &spans {
            assert!(s.t1 >= s.t0);
        }
        // The consumer's compute starts after the transfer ends.
        let transfer = spans.iter().find(|s| matches!(s.kind, SpanKind::Transfer { .. })).unwrap();
        let consumer =
            spans.iter().find(|s| s.stream == 1 && matches!(s.kind, SpanKind::Compute(_))).unwrap();
        assert!(consumer.t0 >= transfer.t1 - 1e-9);
    }

    #[test]
    fn chrome_json_is_wellformed() {
        let (sim, p) = tiny();
        let (_, spans) = sim.run_traced(&p).unwrap();
        let json = chrome_trace_json(&p, &spans);
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = parsed["traceEvents"].as_array().unwrap();
        // 2 thread-name metadata + 3 spans.
        assert_eq!(events.len(), 5);
        assert!(events.iter().any(|e| e["name"] == "F0"));
        assert!(events.iter().any(|e| e["cat"] == "comm"));
    }
}
