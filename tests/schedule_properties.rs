//! Property-based tests of the schedule generators and simulator:
//! every randomly-configured pipeline program must be well-formed,
//! deadlock-free, within its stash bounds, and conserve time.

use ea_models::{awd_spec, bert_spec, gnmt_spec, ModelSpec};
use ea_sched::{
    check_stash_bounds, partition_model, pipeline_program, PipeStyle, PipelinePlan, WarmupPolicy,
};
use ea_sim::{ClusterConfig, Simulator};
use proptest::prelude::*;

fn spec_for(idx: usize) -> ModelSpec {
    match idx % 3 {
        0 => gnmt_spec(),
        1 => bert_spec(),
        _ => awd_spec(),
    }
}

fn style_for(idx: usize, n: usize, a: usize) -> PipeStyle {
    match idx % 5 {
        0 => PipeStyle::gpipe(),
        1 => PipeStyle::dapple(),
        2 => PipeStyle::pipedream(),
        3 => PipeStyle::pipedream_2bw(),
        _ => PipeStyle::avgpipe(n, a),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any generated pipeline program is channel-consistent, runs to
    /// completion, and its per-device time buckets sum to the makespan.
    #[test]
    fn programs_are_wellformed_and_conservative(
        spec_idx in 0usize..3,
        style_idx in 0usize..5,
        stages in 2usize..5,
        micros_pow in 0u32..4,
        n in 1usize..3,
        batches in 1usize..3,
    ) {
        let spec = spec_for(spec_idx);
        let micros = (1usize << micros_pow).min(spec.default_batch);
        let batch = spec.default_batch - spec.default_batch % micros;
        prop_assume!(batch >= micros);
        let cluster = ClusterConfig { nodes: stages, gpus_per_node: 1, ..ClusterConfig::paper_testbed() };
        let partition = partition_model(&spec, stages);
        let plan = PipelinePlan::new(spec, cluster.clone(), partition, batch, micros, 8);
        let a = stages - 1 + micros / 2;
        let style = style_for(style_idx, n, a);

        let prog = pipeline_program(&plan, &style, batches);
        prop_assert!(prog.validate_channels().is_ok(), "channel mismatch");

        let sim = Simulator::new(cluster);
        let result = sim.run(&prog);
        prop_assert!(result.is_ok(), "simulation failed: {:?}", result.err());
        let r = result.unwrap();
        prop_assert!(r.makespan_us > 0.0);
        for (k, d) in r.devices.iter().enumerate().take(plan.stages()) {
            let total = d.busy_us + d.comm_blocked_us + d.idle_us;
            prop_assert!(
                (total - r.makespan_us).abs() < 1e-3 * r.makespan_us.max(1.0),
                "device {k}: buckets {total} vs makespan {}",
                r.makespan_us
            );
        }
    }

    /// The stash bound (warmup + 1, with the 1F1B K−k floor) holds for
    /// every stage under every warmup policy.
    #[test]
    fn stash_bounds_hold(
        spec_idx in 0usize..3,
        stages in 2usize..5,
        micros_pow in 0u32..4,
        n in 1usize..3,
        extra in 0usize..12,
    ) {
        let spec = spec_for(spec_idx);
        let micros = (1usize << micros_pow).min(spec.default_batch);
        let batch = spec.default_batch - spec.default_batch % micros;
        prop_assume!(batch >= micros);
        let cluster = ClusterConfig { nodes: stages, gpus_per_node: 1, ..ClusterConfig::paper_testbed() };
        let partition = partition_model(&spec, stages);
        let plan = PipelinePlan::new(spec, cluster, partition, batch, micros, 8);
        for warmup in [
            WarmupPolicy::Afab,
            WarmupPolicy::OneFOneB,
            WarmupPolicy::Advance { a: stages - 1 + extra },
        ] {
            let style = PipeStyle::avgpipe_with(n, warmup);
            let prog = pipeline_program(&plan, &style, 2);
            prop_assert!(check_stash_bounds(&plan, &style, &prog).is_ok());
        }
    }

    /// Memory ordering across schedules: 1F1B ≤ advance ≤ AFAB for every
    /// configuration.
    #[test]
    fn schedule_memory_ordering(
        spec_idx in 0usize..3,
        stages in 2usize..5,
        micros_pow in 2u32..5,
        extra in 1usize..8,
    ) {
        let spec = spec_for(spec_idx);
        let micros = (1usize << micros_pow).min(spec.default_batch);
        let batch = spec.default_batch - spec.default_batch % micros;
        prop_assume!(batch >= micros && micros > stages);
        let cluster = ClusterConfig { nodes: stages, gpus_per_node: 1, ..ClusterConfig::paper_testbed() };
        let partition = partition_model(&spec, stages);
        let plan = PipelinePlan::new(spec, cluster.clone(), partition, batch, micros, 8);
        let sim = Simulator::new(cluster);
        let peak = |w: WarmupPolicy| {
            let prog = pipeline_program(&plan, &PipeStyle::avgpipe_with(1, w), 1);
            sim.run(&prog).unwrap().max_peak_mem()
        };
        let f1b = peak(WarmupPolicy::OneFOneB);
        let adv = peak(WarmupPolicy::Advance { a: stages - 1 + extra });
        let afab = peak(WarmupPolicy::Afab);
        prop_assert!(f1b <= adv, "1F1B {f1b} > advance {adv}");
        prop_assert!(adv <= afab, "advance {adv} > AFAB {afab}");
    }

    /// The simulator is deterministic: the same program always yields the
    /// same makespan and memory.
    #[test]
    fn simulation_is_deterministic(
        spec_idx in 0usize..3,
        stages in 2usize..5,
        n in 1usize..3,
    ) {
        let spec = spec_for(spec_idx);
        let batch = spec.default_batch;
        let cluster = ClusterConfig { nodes: stages, gpus_per_node: 1, ..ClusterConfig::paper_testbed() };
        let partition = partition_model(&spec, stages);
        let plan = PipelinePlan::new(spec, cluster.clone(), partition, batch, 4.min(batch), 8);
        let prog = pipeline_program(&plan, &PipeStyle::avgpipe(n, stages), 2);
        let sim = Simulator::new(cluster);
        let a = sim.run(&prog).unwrap();
        let b = sim.run(&prog).unwrap();
        prop_assert_eq!(a.makespan_us, b.makespan_us);
        prop_assert_eq!(a.max_peak_mem(), b.max_peak_mem());
    }
}
