//! ea-serve: elastic inference serving over the AvgPipe runtime.
//!
//! The paper trains with elastic averaging; this crate closes the loop
//! by *serving* the model those pipelines are producing — while they
//! are still producing it. Three ideas, each reusing a training-side
//! mechanism rather than inventing a serving-only one:
//!
//! * **Dynamic micro-batching from the §5 cost model.** The tuner
//!   picks training micro-batch counts from a measured
//!   arithmetic-intensity profile; serving reads the same demand curve
//!   from the other end. [`avgpipe::serve_batch_cap`] turns the curve
//!   plus startup-calibrated forward timings into a batch cap, and the
//!   [`Batcher`] coalesces queued requests up to that cap within a
//!   latency budget — batch=1 service under light load, cap-sized
//!   batches under pressure, load-shedding past the admission bound.
//!
//! * **Hot weight swap at elastic round boundaries.** A serving
//!   replica subscribes to the live reference shards
//!   (`SubscribeWeights`/`WeightsUpdate`, the PR 6 wire extension) via
//!   [`WeightsSubscriber`]. Incoming shard payloads stage in a
//!   [`SnapshotStore`] and swap in atomically only when *every* shard
//!   reached the same version — which is exactly a round boundary, the
//!   one moment a composite model exists in training. Readers are
//!   wait-free (double-buffered `Arc` rotation); no request ever sees
//!   mixed-version weights.
//!
//! * **One reactor fleet for trainers and inference.**
//!   [`ServeDispatch`] composes the engine with ea-runtime's trainer
//!   dispatch on a single epoll reactor: `Infer` routes to the
//!   admission queue, everything else to the elastic-averaging
//!   protocol. SLO accounting (queue/exec/e2e latency histograms,
//!   served/shed counters) lands in an `ea-trace` registry exported
//!   through the existing Prometheus path.
//!
//! Construction: [`ServeEngine::start`] with two instances of the
//! model (the double buffer), then [`spawn_serving`] for the network
//! frontend and [`WeightsSubscriber::spawn`] for the trainer feed. See
//! `examples/train_and_serve.rs` for the full loop.

mod batcher;
mod client;
mod dispatch;
mod engine;
mod snapshot;

pub use batcher::{Admission, Batcher, InferRequest};
pub use client::{InferClient, InferOutcome, SubscriberHandle, WeightsSubscriber};
pub use dispatch::{spawn_serving, ServeDispatch};
pub use engine::{Completion, ServeConfig, ServeEngine, SloSnapshot};
pub use snapshot::{ServedSnapshot, SnapshotStore};
