//! Compare the four tuning strategies of §5 on one workload.
//!
//! ```text
//! cargo run --release --example tune_degrees -- [gnmt|bert|awd]
//! ```

use avgpipe::{tune, TuneMethod};
use ea_models::Workload;
use ea_sched::partition_model;
use ea_sim::ClusterConfig;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "awd".to_string());
    let workload = match arg.as_str() {
        "gnmt" => Workload::Gnmt,
        "bert" => Workload::Bert,
        "awd" => Workload::Awd,
        other => panic!("unknown workload {other}; use gnmt|bert|awd"),
    };
    let spec = workload.spec();
    let cluster = if workload == Workload::Awd {
        ClusterConfig::paper_testbed_two_nodes()
    } else {
        ClusterConfig::paper_testbed()
    };
    let partition = partition_model(&spec, cluster.num_devices());
    let batch = spec.default_batch;
    let opt_bytes = if workload == Workload::Awd { 4 } else { 8 };
    let budget = 16 * (1u64 << 30);

    println!("tuning {} (batch {batch}) under a 16 GiB/GPU budget", workload.name());
    for method in
        [TuneMethod::Traversal, TuneMethod::MaxNum, TuneMethod::MaxSize, TuneMethod::ProfilingBased]
    {
        let o = tune(&spec, &cluster, &partition, batch, opt_bytes, budget, method, 4);
        println!(
            "  {:<10} -> (M = {:>3}, N = {})   tuning cost {:>8.1} simulated-cluster seconds ({} settings evaluated)",
            method.name(),
            o.m,
            o.n,
            o.tuning_cost_s,
            o.evaluated
        );
    }
    println!("\nThe profiling-based method evaluates every setting analytically");
    println!("from one twenty-batch profile (Equations 1–8 of the paper).");
}
