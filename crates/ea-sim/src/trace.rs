//! GPU-utilization traces — the φᵏ(t) curves of the paper's §5.2.

/// A constant-utilization segment of a device's timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceSeg {
    /// Segment start (µs).
    pub t0: f64,
    /// Segment end (µs).
    pub t1: f64,
    /// Utilization in `[0, 1]` over the segment.
    pub util: f64,
}

impl TraceSeg {
    /// Segment duration (µs).
    pub fn dt(&self) -> f64 {
        self.t1 - self.t0
    }
}

/// The piecewise-constant utilization curve φ(t) of one device.
#[derive(Clone, Debug, Default)]
pub struct UtilTrace {
    segs: Vec<TraceSeg>,
}

impl UtilTrace {
    /// Empty trace.
    pub fn new() -> Self {
        UtilTrace::default()
    }

    /// Appends a segment, merging with the previous one if the utilization
    /// is unchanged (keeps traces compact over long runs).
    pub fn push(&mut self, t0: f64, t1: f64, util: f64) {
        if t1 <= t0 {
            return;
        }
        if let Some(last) = self.segs.last_mut() {
            if (last.util - util).abs() < 1e-12 && (last.t1 - t0).abs() < 1e-9 {
                last.t1 = t1;
                return;
            }
        }
        self.segs.push(TraceSeg { t0, t1, util });
    }

    /// The segments.
    pub fn segments(&self) -> &[TraceSeg] {
        &self.segs
    }

    /// ∫ φ(t) dt in µs — proportional to the computation volume served.
    pub fn integral(&self) -> f64 {
        self.segs.iter().map(|s| s.util * s.dt()).sum()
    }

    /// Time-weighted mean utilization over `[0, horizon]`.
    pub fn mean_over(&self, horizon: f64) -> f64 {
        if horizon <= 0.0 {
            return 0.0;
        }
        self.integral() / horizon
    }

    /// ∫ max(scale·φ(t) − 1, 0) dt — the "overused" area of Figure 8 used
    /// by the predictor when a hypothetical setting would exceed 100%.
    pub fn overflow_integral(&self, scale: f64) -> f64 {
        self.segs.iter().map(|s| ((scale * s.util - 1.0).max(0.0)) * s.dt()).sum()
    }

    /// Resamples the trace to `bins` equal-width bins over `[0, horizon]`
    /// (for plotting Figure 16-style curves).
    pub fn resample(&self, horizon: f64, bins: usize) -> Vec<f64> {
        let mut out = vec![0.0f64; bins];
        if horizon <= 0.0 || bins == 0 {
            return out;
        }
        let w = horizon / bins as f64;
        for s in &self.segs {
            // Distribute the segment's area over the bins it spans.
            let b0 = ((s.t0 / w).floor() as usize).min(bins - 1);
            let b1 = ((s.t1 / w).ceil() as usize).min(bins);
            for (b, slot) in out.iter_mut().enumerate().take(b1).skip(b0) {
                let lo = s.t0.max(b as f64 * w);
                let hi = s.t1.min((b + 1) as f64 * w);
                if hi > lo {
                    *slot += s.util * (hi - lo) / w;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_merges_equal_utilization() {
        let mut tr = UtilTrace::new();
        tr.push(0.0, 1.0, 0.5);
        tr.push(1.0, 2.0, 0.5);
        tr.push(2.0, 3.0, 0.8);
        assert_eq!(tr.segments().len(), 2);
        assert_eq!(tr.segments()[0].dt(), 2.0);
    }

    #[test]
    fn integral_and_mean() {
        let mut tr = UtilTrace::new();
        tr.push(0.0, 2.0, 0.5);
        tr.push(2.0, 4.0, 1.0);
        assert!((tr.integral() - 3.0).abs() < 1e-12);
        assert!((tr.mean_over(4.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn overflow_integral_clamps_at_one() {
        let mut tr = UtilTrace::new();
        tr.push(0.0, 1.0, 0.6);
        // scale 2 → 1.2, overflow 0.2 over 1 µs.
        assert!((tr.overflow_integral(2.0) - 0.2).abs() < 1e-9);
        // scale 1 → no overflow.
        assert_eq!(tr.overflow_integral(1.0), 0.0);
    }

    #[test]
    fn resample_preserves_area() {
        let mut tr = UtilTrace::new();
        tr.push(0.0, 3.0, 0.4);
        tr.push(3.0, 10.0, 0.9);
        let bins = tr.resample(10.0, 5);
        let area: f64 = bins.iter().sum::<f64>() * (10.0 / 5.0);
        assert!((area - tr.integral()).abs() < 1e-9, "area {area}");
    }

    #[test]
    fn zero_length_segments_ignored() {
        let mut tr = UtilTrace::new();
        tr.push(1.0, 1.0, 0.7);
        assert!(tr.segments().is_empty());
    }
}
