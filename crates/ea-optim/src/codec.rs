//! Delta serialization helpers for the comms layer.
//!
//! The elastic-averaging wire protocol ships flat `f32` parameter buffers
//! (local updates Δ and reference weights). These helpers define the one
//! canonical byte encoding — little-endian IEEE-754, densely packed — and
//! decode into pooled buffers so the receive path stays allocation-free in
//! steady state, matching the zero-copy discipline of the in-process path.

use ea_tensor::pool;

/// Bytes per encoded element.
pub const F32_WIRE_SIZE: usize = 4;

/// Appends the little-endian encoding of `values` to `out`.
///
/// On little-endian hosts the in-memory representation *is* the wire
/// format, so the whole buffer is appended with one memcpy — trivially
/// bit-exact, including NaN payloads. Big-endian hosts fall back to the
/// per-element swap.
pub fn encode_f32s_le(values: &[f32], out: &mut Vec<u8>) {
    #[cfg(target_endian = "little")]
    {
        let bytes = unsafe {
            std::slice::from_raw_parts(values.as_ptr().cast::<u8>(), std::mem::size_of_val(values))
        };
        out.extend_from_slice(bytes);
    }
    #[cfg(not(target_endian = "little"))]
    {
        out.reserve(values.len() * F32_WIRE_SIZE);
        for v in values {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Decodes a densely-packed little-endian `f32` buffer.
///
/// The destination comes from the global buffer pool, so round-trips
/// through encode/decode recycle storage instead of allocating. Returns
/// `Err` if `bytes` is not a whole number of 4-byte elements.
pub fn decode_f32s_le(bytes: &[u8]) -> Result<Vec<f32>, CodecError> {
    if !bytes.len().is_multiple_of(F32_WIRE_SIZE) {
        return Err(CodecError::RaggedLength(bytes.len()));
    }
    let n = bytes.len() / F32_WIRE_SIZE;
    let mut out = pool::take_cleared(n);
    decode_f32s_le_into(bytes, &mut out)?;
    Ok(out)
}

/// Decodes into a caller-provided buffer (cleared and refilled), so hot
/// paths can reuse one scratch vector across messages.
pub fn decode_f32s_le_into(bytes: &[u8], out: &mut Vec<f32>) -> Result<(), CodecError> {
    if !bytes.len().is_multiple_of(F32_WIRE_SIZE) {
        return Err(CodecError::RaggedLength(bytes.len()));
    }
    out.clear();
    let n = bytes.len() / F32_WIRE_SIZE;
    out.reserve(n);
    #[cfg(target_endian = "little")]
    {
        // One memcpy into the (reserved, unaliased) spare capacity; the
        // wire bytes already have host layout.
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                out.as_mut_ptr().cast::<u8>(),
                n * F32_WIRE_SIZE,
            );
            out.set_len(n);
        }
    }
    #[cfg(not(target_endian = "little"))]
    for chunk in bytes.chunks_exact(F32_WIRE_SIZE) {
        out.push(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
    }
    Ok(())
}

/// A malformed flat-buffer encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Byte length is not a multiple of the element size.
    RaggedLength(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::RaggedLength(n) => {
                write!(f, "{n} bytes is not a whole number of f32 elements")
            }
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_bits() {
        let vals = vec![0.0f32, -0.0, 1.5, f32::MIN_POSITIVE, f32::MAX, -123.456, f32::INFINITY];
        let mut bytes = Vec::new();
        encode_f32s_le(&vals, &mut bytes);
        assert_eq!(bytes.len(), vals.len() * F32_WIRE_SIZE);
        let back = decode_f32s_le(&bytes).unwrap();
        for (a, b) in vals.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn nan_payload_roundtrips_bit_exactly() {
        let vals = vec![f32::from_bits(0x7fc0_1234)];
        let mut bytes = Vec::new();
        encode_f32s_le(&vals, &mut bytes);
        let back = decode_f32s_le(&bytes).unwrap();
        assert_eq!(back[0].to_bits(), 0x7fc0_1234);
    }

    #[test]
    fn ragged_length_is_rejected() {
        assert_eq!(decode_f32s_le(&[0u8; 7]), Err(CodecError::RaggedLength(7)));
        let mut out = Vec::new();
        assert!(decode_f32s_le_into(&[0u8; 5], &mut out).is_err());
    }

    #[test]
    fn decode_into_reuses_capacity() {
        let vals = vec![1.0f32; 128];
        let mut bytes = Vec::new();
        encode_f32s_le(&vals, &mut bytes);
        let mut out = Vec::with_capacity(128);
        decode_f32s_le_into(&bytes, &mut out).unwrap();
        let ptr = out.as_ptr();
        decode_f32s_le_into(&bytes, &mut out).unwrap();
        assert_eq!(out.as_ptr(), ptr, "scratch buffer should be reused");
    }

    #[test]
    fn empty_buffer_roundtrips() {
        let mut bytes = Vec::new();
        encode_f32s_le(&[], &mut bytes);
        assert!(bytes.is_empty());
        assert!(decode_f32s_le(&bytes).unwrap().is_empty());
    }
}
