//! Portable [`Reactor`] fallback for hosts without the raw epoll
//! bindings in [`crate::sys`] (non-Linux, or architectures beyond
//! x86_64/aarch64).
//!
//! Same public API and semantics as the epoll implementation, built from
//! blocking I/O: one accept thread, one reader thread + one writer thread
//! per connection, and a ticker thread driving [`ReactorHandler::poll`]
//! and idle timeouts. This trades the epoll reactor's scalability for
//! portability — correctness-equivalent, so downstream code and tests
//! never need a `cfg`.

use std::collections::HashMap;
use std::io;
use std::net::{Shutdown as SockShutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use super::{
    recycle_message, resolve_threads, ConnId, DisconnectReason, Outbox, ReactorConfig,
    ReactorHandler, GEN_MASK,
};
use crate::frame;
use crate::wire::Message;

/// Per-connection writer-channel command.
enum WriteCmd {
    Frame(Message),
    Close,
}

struct ConnEntry {
    tx: mpsc::Sender<WriteCmd>,
    stream: TcpStream,
    last_activity: Arc<Mutex<Instant>>,
    queued_bytes: Arc<AtomicUsize>,
    /// Frames handed to the writer thread but not yet written — the
    /// drain criterion for graceful shutdown (`queued_bytes` only counts
    /// frames the writer has started encoding).
    inflight: Arc<AtomicUsize>,
}

struct Shared {
    handler: Arc<dyn ReactorHandler>,
    idle_timeout: Option<Duration>,
    max_outbound_bytes: usize,
    handler_poll: Duration,
    stop: AtomicBool,
    /// Graceful-shutdown phase: refuse new connections while queued
    /// writes drain.
    draining: AtomicBool,
    conns: Mutex<HashMap<u64, ConnEntry>>,
    next_slot: AtomicUsize,
    gen: AtomicU32,
    live_conns: AtomicUsize,
    /// The ticker waits on this instead of a plain sleep, so a
    /// [`ReactorWaker`] can force an immediate handler poll.
    tick: Mutex<()>,
    tick_cv: Condvar,
}

impl Shared {
    /// Routes an outbox produced by any handler callback.
    fn route_outbox(self: &Arc<Self>, outbox: &mut Outbox) {
        for (to, msg) in outbox.sends.drain(..) {
            let conns = self.conns.lock().expect("reactor conns poisoned");
            match conns.get(&to.0) {
                Some(entry) => {
                    // Approximate backpressure accounting: frame size is
                    // payload-dominated; enforce the bound at enqueue.
                    let queued = entry.queued_bytes.load(Ordering::Relaxed);
                    if queued > self.max_outbound_bytes {
                        let _ = entry.stream.shutdown(SockShutdown::Both);
                        recycle_message(msg);
                        continue;
                    }
                    entry.inflight.fetch_add(1, Ordering::SeqCst);
                    if entry.tx.send(WriteCmd::Frame(msg)).is_err() {
                        // Writer gone; reader thread handles teardown.
                        entry.inflight.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                None => recycle_message(msg),
            }
        }
        for (to, _why) in outbox.closes.drain(..) {
            let conns = self.conns.lock().expect("reactor conns poisoned");
            if let Some(entry) = conns.get(&to.0) {
                let _ = entry.tx.send(WriteCmd::Close);
                let _ = entry.stream.shutdown(SockShutdown::Read);
            }
        }
    }
}

/// Thread-per-connection fallback server. See [`super`] for semantics.
pub struct Reactor {
    shared: Arc<Shared>,
    accept_join: Option<JoinHandle<()>>,
    ticker_join: Option<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl Reactor {
    /// Takes ownership of `listener` and serves it until [`shutdown`]
    /// (or drop).
    ///
    /// [`shutdown`]: Reactor::shutdown
    pub fn spawn(
        listener: TcpListener,
        handler: Arc<dyn ReactorHandler>,
        cfg: ReactorConfig,
    ) -> io::Result<Reactor> {
        // Thread count is meaningless here (every connection gets its own
        // threads) but is resolved anyway so EA_COMMS_THREADS misuse is
        // caught identically on all platforms.
        let _ = resolve_threads(cfg.threads);
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            handler,
            idle_timeout: cfg.idle_timeout,
            max_outbound_bytes: cfg.max_outbound_bytes,
            handler_poll: cfg.handler_poll,
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_slot: AtomicUsize::new(0),
            gen: AtomicU32::new(0),
            live_conns: AtomicUsize::new(0),
            tick: Mutex::new(()),
            tick_cv: Condvar::new(),
        });

        // Bounded accept timeout so the loop notices `stop`.
        listener.set_nonblocking(true)?;
        let accept_shared = Arc::clone(&shared);
        let accept_join = std::thread::Builder::new()
            .name("ea-reactor-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;

        let ticker_shared = Arc::clone(&shared);
        let ticker_join = std::thread::Builder::new()
            .name("ea-reactor-ticker".into())
            .spawn(move || ticker_loop(ticker_shared))?;

        Ok(Reactor {
            shared,
            accept_join: Some(accept_join),
            ticker_join: Some(ticker_join),
            local_addr,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Currently-open connections.
    pub fn live_connections(&self) -> usize {
        self.shared.live_conns.load(Ordering::Relaxed)
    }

    /// A handle that wakes the ticker thread from any thread. See
    /// [`ReactorWaker`].
    pub fn waker(&self) -> ReactorWaker {
        ReactorWaker { shared: Arc::clone(&self.shared) }
    }

    /// Stops the server, closing every connection with
    /// [`DisconnectReason::Shutdown`].
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Graceful shutdown: gives the handler one [`on_shutdown`] callback
    /// to complete or reject its deferred work, stops accepting new
    /// connections, waits (up to `timeout`) until every frame handed to
    /// a writer thread has been written, then closes everything.
    ///
    /// [`on_shutdown`]: ReactorHandler::on_shutdown
    pub fn shutdown_graceful(mut self, timeout: Duration) {
        let mut outbox = Outbox::default();
        self.shared.handler.on_shutdown(&mut outbox);
        self.shared.route_outbox(&mut outbox);
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.tick_cv.notify_all();
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            let pending = {
                let conns = self.shared.conns.lock().expect("reactor conns poisoned");
                conns.values().any(|e| e.inflight.load(Ordering::SeqCst) > 0)
            };
            if !pending {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        {
            let conns = self.shared.conns.lock().expect("reactor conns poisoned");
            for entry in conns.values() {
                let _ = entry.tx.send(WriteCmd::Close);
                let _ = entry.stream.shutdown(SockShutdown::Both);
            }
        }
        if let Some(j) = self.accept_join.take() {
            let _ = j.join();
        }
        if let Some(j) = self.ticker_join.take() {
            let _ = j.join();
        }
        // Wait briefly for per-connection readers to run their
        // disconnect callbacks.
        let deadline = Instant::now() + Duration::from_secs(2);
        while self.shared.live_conns.load(Ordering::Relaxed) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.draining.load(Ordering::SeqCst) {
                    drop(stream); // refused: graceful shutdown in progress
                    continue;
                }
                let _ = stream.set_nodelay(true);
                spawn_conn(stream, &shared);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Cloneable handle that cuts short the ticker thread's sleep, so
/// deferred work completed outside the reactor is picked up by
/// [`ReactorHandler::poll`] immediately instead of at the next
/// `handler_poll` tick. Safe to call from any thread, at any rate.
#[derive(Clone)]
pub struct ReactorWaker {
    shared: Arc<Shared>,
}

impl ReactorWaker {
    /// Wakes the ticker thread.
    pub fn wake(&self) {
        self.shared.tick_cv.notify_all();
    }
}

fn ticker_loop(shared: Arc<Shared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        {
            let guard = shared.tick.lock().expect("reactor ticker poisoned");
            let _ = shared.tick_cv.wait_timeout(guard, shared.handler_poll);
        }
        if shared.handler.has_deferred() {
            let mut outbox = Outbox::default();
            shared.handler.poll(&mut outbox);
            shared.route_outbox(&mut outbox);
        }
        if let Some(timeout) = shared.idle_timeout {
            let now = Instant::now();
            let conns = shared.conns.lock().expect("reactor conns poisoned");
            for entry in conns.values() {
                let last = *entry.last_activity.lock().expect("activity poisoned");
                if now.saturating_duration_since(last) >= timeout {
                    // Unblock the reader; it reports IdleTimeout.
                    let _ = entry.stream.shutdown(SockShutdown::Both);
                }
            }
        }
    }
}

fn spawn_conn(stream: TcpStream, shared: &Arc<Shared>) {
    let slot = shared.next_slot.fetch_add(1, Ordering::Relaxed) & 0xFFFF_FFFF;
    let gen = shared.gen.fetch_add(1, Ordering::Relaxed) & GEN_MASK;
    let id = ConnId::new(0, gen, slot);
    let (tx, rx) = mpsc::channel::<WriteCmd>();
    let last_activity = Arc::new(Mutex::new(Instant::now()));
    let queued_bytes = Arc::new(AtomicUsize::new(0));
    let inflight = Arc::new(AtomicUsize::new(0));

    let write_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let reg_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    shared.conns.lock().expect("reactor conns poisoned").insert(
        id.0,
        ConnEntry {
            tx,
            stream: reg_stream,
            last_activity: Arc::clone(&last_activity),
            queued_bytes: Arc::clone(&queued_bytes),
            inflight: Arc::clone(&inflight),
        },
    );
    shared.live_conns.fetch_add(1, Ordering::Relaxed);

    // Writer thread: drains the channel, encodes and writes frames.
    let wq = Arc::clone(&queued_bytes);
    let winflight = Arc::clone(&inflight);
    let writer = std::thread::Builder::new().name("ea-reactor-writer".into()).spawn(move || {
        let mut stream = write_stream;
        let mut scratch = Vec::new();
        let mut wire = Vec::new();
        while let Ok(cmd) = rx.recv() {
            match cmd {
                WriteCmd::Frame(msg) => {
                    msg.encode_payload(&mut scratch);
                    let ty = msg.wire_type();
                    recycle_message(msg);
                    frame::encode_frame(ty, &scratch, &mut wire);
                    wq.fetch_add(wire.len(), Ordering::Relaxed);
                    let ok = std::io::Write::write_all(&mut stream, &wire).is_ok();
                    wq.fetch_sub(wire.len().min(wq.load(Ordering::Relaxed)), Ordering::Relaxed);
                    winflight.fetch_sub(1, Ordering::SeqCst);
                    if !ok {
                        break;
                    }
                    crate::trace::counters().on_send(wire.len() as u64);
                }
                WriteCmd::Close => {
                    let _ = stream.shutdown(SockShutdown::Both);
                    break;
                }
            }
        }
    });
    if writer.is_err() {
        cleanup_conn(shared, id);
        return;
    }

    // Reader thread: blocking frame decode → handler dispatch.
    let shared = Arc::clone(shared);
    let _ = std::thread::Builder::new().name("ea-reactor-reader".into()).spawn(move || {
        let mut stream = stream;
        let reason = read_loop(&mut stream, id, &shared, &last_activity);
        cleanup_conn(&shared, id);
        shared.handler.on_disconnect(id, &reason);
    });
}

fn cleanup_conn(shared: &Arc<Shared>, id: ConnId) {
    if shared.conns.lock().expect("reactor conns poisoned").remove(&id.0).is_some() {
        shared.live_conns.fetch_sub(1, Ordering::Relaxed);
    }
}

fn read_loop(
    stream: &mut TcpStream,
    id: ConnId,
    shared: &Arc<Shared>,
    last_activity: &Arc<Mutex<Instant>>,
) -> DisconnectReason {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return DisconnectReason::Shutdown;
        }
        match frame::read_frame(stream) {
            Ok(Some((ty, payload))) => {
                let msg = match Message::decode_payload(ty, &payload) {
                    Ok(m) => m,
                    Err(e) => return DisconnectReason::Frame(e),
                };
                crate::trace::counters().on_recv((frame::HEADER_LEN + payload.len() + 4) as u64);
                *last_activity.lock().expect("activity poisoned") = Instant::now();
                let mut outbox = Outbox::default();
                shared.handler.on_message(id, msg, &mut outbox);
                shared.route_outbox(&mut outbox);
            }
            Ok(None) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return DisconnectReason::Shutdown;
                }
                // A locally-initiated idle shutdown also reads as clean
                // EOF; attribute it correctly.
                if let Some(t) = shared.idle_timeout {
                    let last = *last_activity.lock().expect("activity poisoned");
                    if Instant::now().saturating_duration_since(last) >= t {
                        return DisconnectReason::IdleTimeout;
                    }
                }
                return DisconnectReason::PeerClosed;
            }
            Err(frame::ReadFrameError::Frame(e)) => return DisconnectReason::Frame(e),
            Err(frame::ReadFrameError::Io(e)) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return DisconnectReason::Shutdown;
                }
                if shared.idle_timeout.is_some()
                    && matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionReset
                            | io::ErrorKind::ConnectionAborted
                            | io::ErrorKind::BrokenPipe
                            | io::ErrorKind::UnexpectedEof
                    )
                {
                    // The ticker shut us down for idleness.
                    let last = *last_activity.lock().expect("activity poisoned");
                    if let Some(t) = shared.idle_timeout {
                        if Instant::now().saturating_duration_since(last) >= t {
                            return DisconnectReason::IdleTimeout;
                        }
                    }
                }
                return DisconnectReason::Io(e);
            }
        }
    }
}
