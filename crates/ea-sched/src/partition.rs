//! PipeDream-style model partitioner.
//!
//! The paper reuses PipeDream's partitioning (§6: "we employ the existing
//! method used in PipeDream") rather than inventing one; so do we: a
//! dynamic program over contiguous layer ranges that minimizes the
//! bottleneck stage's compute time, breaking ties toward cheaper stage
//! boundaries (smaller activations crossing between devices).

use ea_models::ModelSpec;

/// A partition of a model into contiguous stages: `ranges[k] = (lo, hi)`
/// gives the layers `[lo, hi)` of stage `k`.
pub type Partition = Vec<(usize, usize)>;

/// Cost of a candidate stage: total fwd+bwd FLOPs of its layers.
fn stage_flops(spec: &ModelSpec, lo: usize, hi: usize) -> f64 {
    let (_, fwd, _, _) = spec.stage_cost(lo, hi);
    fwd * (1.0 + spec.bwd_factor)
}

/// Splits `spec` into `k` contiguous, non-empty stages minimizing the
/// bottleneck stage FLOPs (secondary: total boundary bytes).
pub fn partition_model(spec: &ModelSpec, k: usize) -> Partition {
    partition_model_hetero(spec, &vec![1.0; k])
}

/// Heterogeneity-aware variant: stage `s` lands on a device with relative
/// speed `speeds[s]`, so the dynamic program minimizes the bottleneck
/// *time* `stage_flops / speed` instead of raw FLOPs. With uniform speeds
/// this is exactly [`partition_model`]; with a straggler it shifts layers
/// away from the slow device (an extension beyond the paper, exercised by
/// the straggler experiment).
pub fn partition_model_hetero(spec: &ModelSpec, speeds: &[f64]) -> Partition {
    let k = speeds.len();
    let l = spec.num_layers();
    assert!(k >= 1 && k <= l, "cannot split {l} layers into {k} stages");
    assert!(speeds.iter().all(|&s| s > 0.0), "speeds must be positive");

    // dp[i][s] = minimal bottleneck for the first i layers in s stages;
    // tie-broken by accumulated boundary bytes. choice[i][s] = split point.
    let inf = f64::INFINITY;
    let mut dp = vec![vec![(inf, u64::MAX); k + 1]; l + 1];
    let mut choice = vec![vec![0usize; k + 1]; l + 1];
    dp[0][0] = (0.0, 0);
    for s in 1..=k {
        for i in s..=l {
            for j in (s - 1)..i {
                let (prev_cost, prev_comm) = dp[j][s - 1];
                if prev_cost.is_infinite() {
                    continue;
                }
                let cost = prev_cost.max(stage_flops(spec, j, i) / speeds[s - 1]);
                let comm = prev_comm.saturating_add(if j > 0 { spec.boundary_bytes(j) } else { 0 });
                if cost < dp[i][s].0 - 1e-9
                    || ((cost - dp[i][s].0).abs() <= 1e-9 && comm < dp[i][s].1)
                {
                    dp[i][s] = (cost, comm);
                    choice[i][s] = j;
                }
            }
        }
    }

    let mut ranges = Vec::with_capacity(k);
    let mut i = l;
    for s in (1..=k).rev() {
        let j = choice[i][s];
        ranges.push((j, i));
        i = j;
    }
    ranges.reverse();
    ranges
}

/// Brute-force optimal bottleneck (exponential; test oracle only).
#[cfg(test)]
fn brute_force_bottleneck(spec: &ModelSpec, k: usize) -> f64 {
    fn rec(spec: &ModelSpec, lo: usize, k: usize, l: usize) -> f64 {
        if k == 1 {
            return stage_flops(spec, lo, l);
        }
        let mut best = f64::INFINITY;
        for mid in lo + 1..=l - (k - 1) {
            let c = stage_flops(spec, lo, mid).max(rec(spec, mid, k - 1, l));
            best = best.min(c);
        }
        best
    }
    rec(spec, 0, k, spec.num_layers())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_models::{awd_spec, bert_spec, gnmt_spec};

    fn check_valid(spec: &ModelSpec, p: &Partition, k: usize) {
        assert_eq!(p.len(), k);
        assert_eq!(p[0].0, 0);
        assert_eq!(p[k - 1].1, spec.num_layers());
        for w in p.windows(2) {
            assert_eq!(w[0].1, w[1].0, "stages must be contiguous");
        }
        for &(lo, hi) in p {
            assert!(lo < hi, "stage must be non-empty");
        }
    }

    #[test]
    fn partitions_are_valid_for_all_workloads() {
        for spec in [gnmt_spec(), bert_spec(), awd_spec()] {
            for k in 1..=4 {
                let p = partition_model(&spec, k);
                check_valid(&spec, &p, k);
            }
        }
        check_valid(&gnmt_spec(), &partition_model(&gnmt_spec(), 6), 6);
        check_valid(&bert_spec(), &partition_model(&bert_spec(), 6), 6);
    }

    #[test]
    fn dp_matches_brute_force_bottleneck() {
        for spec in [gnmt_spec(), awd_spec()] {
            for k in 2..=4 {
                let p = partition_model(&spec, k);
                let got: f64 =
                    p.iter().map(|&(lo, hi)| stage_flops(&spec, lo, hi)).fold(0.0, f64::max);
                let want = brute_force_bottleneck(&spec, k);
                assert!(
                    (got - want).abs() <= 1e-6 * want,
                    "{} k={k}: dp {got} vs brute {want}",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn six_way_bert_is_roughly_balanced() {
        let spec = bert_spec();
        let p = partition_model(&spec, 6);
        let costs: Vec<f64> = p.iter().map(|&(lo, hi)| stage_flops(&spec, lo, hi)).collect();
        let max = costs.iter().cloned().fold(0.0, f64::max);
        let min = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min < 2.5, "imbalance {max}/{min}");
    }

    #[test]
    fn single_stage_is_whole_model() {
        let spec = awd_spec();
        let p = partition_model(&spec, 1);
        assert_eq!(p, vec![(0, spec.num_layers())]);
    }
}

#[cfg(test)]
mod hetero_tests {
    use super::*;
    use ea_models::gnmt_spec;

    #[test]
    fn uniform_speeds_match_plain_partitioner() {
        let spec = gnmt_spec();
        assert_eq!(partition_model(&spec, 6), partition_model_hetero(&spec, &[1.0; 6]));
    }

    #[test]
    fn straggler_stage_gets_fewer_flops() {
        let spec = gnmt_spec();
        let mut speeds = vec![1.0; 6];
        speeds[2] = 0.4;
        let p = partition_model_hetero(&spec, &speeds);
        let flops = |lo: usize, hi: usize| -> f64 {
            let (_, f, _, _) = spec.stage_cost(lo, hi);
            f
        };
        let straggler = flops(p[2].0, p[2].1);
        let others: f64 =
            (0..6).filter(|&s| s != 2).map(|s| flops(p[s].0, p[s].1)).fold(0.0, f64::max);
        assert!(
            straggler < others,
            "straggler stage must carry less work: {straggler} vs {others}"
        );
        // Bottleneck time is balanced: slow stage time within 2.5x of max.
        let t_straggler = straggler / 0.4;
        assert!(t_straggler < others / 0.4, "time-balanced: {t_straggler}");
    }

    #[test]
    #[should_panic]
    fn zero_speed_rejected() {
        partition_model_hetero(&gnmt_spec(), &[1.0, 0.0]);
    }
}
