//! Property-based tests of the SIMD kernel layer (DESIGN.md §13): every
//! vectorized kernel must produce results bit-identical to the forced
//! scalar path — or, for the explicitly reassociated reductions, results
//! that are level-independent by construction — across hostile shapes:
//! zero dimensions, 1-row/1-column matrices, and lengths that are not a
//! multiple of the 8-wide lane count.

use ea_tensor::{
    col_sums, log_softmax_rows_into, matmul_a_bt_into, matmul_at_b_into, matmul_into, row_sums,
    simd, softmax_rows_into, Tensor,
};
use proptest::prelude::*;
use std::sync::Mutex;

/// `force_level` is process-global, so comparisons must not interleave
/// across test threads.
static LEVEL_LOCK: Mutex<()> = Mutex::new(());

/// Resets the forced dispatch level even if an assertion unwinds.
struct ForceGuard;

impl Drop for ForceGuard {
    fn drop(&mut self) {
        simd::force_level(None);
    }
}

/// Runs `f` once under forced-scalar dispatch and once under the
/// auto-detected level, returning both results for comparison.
fn on_both_levels<T>(mut f: impl FnMut() -> T) -> (T, T) {
    let _lock = LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = ForceGuard;
    simd::force_level(Some(simd::Level::Scalar));
    let scalar = f();
    simd::force_level(None);
    let vector = f();
    (scalar, vector)
}

#[track_caller]
fn assert_bits_eq(scalar: &[f32], vector: &[f32]) {
    assert_eq!(scalar.len(), vector.len());
    for (i, (a, b)) in scalar.iter().zip(vector).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "element {i} differs: scalar {a} vs vector {b}");
    }
}

/// Lengths that straddle every lane-handling edge: empty, sub-lane,
/// exact-lane, lane+1, and larger non-multiples of 8.
const LENS: [usize; 14] = [0, 1, 2, 7, 8, 9, 15, 16, 17, 31, 33, 64, 100, 137];

/// Matrix dims covering zero, one (single row / single column), and the
/// microkernel's MR=4 / NR=16 block edges.
const DIMS: [usize; 10] = [0, 1, 2, 3, 4, 5, 15, 16, 17, 31];

fn len_strategy() -> impl Strategy<Value = usize> {
    (0usize..LENS.len()).prop_map(|i| LENS[i])
}

fn dim_strategy() -> impl Strategy<Value = usize> {
    (0usize..DIMS.len()).prop_map(|i| DIMS[i])
}

/// Deterministic pseudo-random fill in [-3, 3): SplitMix64 stream keyed by
/// `seed`, so each proptest case gets fresh data at any length.
fn fill(seed: u64, n: usize) -> Vec<f32> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            ((z >> 40) as f32 / (1u64 << 24) as f32) * 6.0 - 3.0
        })
        .collect()
}

fn mat(seed: u64, r: usize, c: usize) -> Tensor {
    Tensor::from_vec(fill(seed, r * c), &[r, c])
}

/// A hostile output tensor (wrong shape, NaN contents) that the `_into`
/// kernels must fully overwrite.
fn dirty_out() -> Tensor {
    Tensor::from_vec(vec![f32::NAN; 3], &[3])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn elementwise_kernels_match_scalar(n in len_strategy(), seed in 0u64..u64::MAX, s in -2.0f32..2.0) {
        let a = fill(seed, n);
        let b = fill(seed ^ 0x5555_5555, n);
        let (sc, ve) = on_both_levels(|| {
            let mut x = a.clone();
            let mut y = b.clone();
            let mut out = vec![f32::NAN; n];
            simd::scale(&mut x, s);
            simd::axpy(&mut y, s, &a);
            simd::add_assign(&mut y, &a);
            simd::add_slices(&mut out, &x, &y);
            simd::sub_slices(&mut x, &out, &b);
            simd::mul_slices(&mut y, &x, &out);
            simd::sub_scalar(&mut y, s);
            (x, y, out)
        });
        assert_bits_eq(&sc.0, &ve.0);
        assert_bits_eq(&sc.1, &ve.1);
        assert_bits_eq(&sc.2, &ve.2);
    }

    #[test]
    fn reductions_are_level_independent(n in len_strategy(), seed in 0u64..u64::MAX) {
        // sum_f32 / sum_squares use the fixed lane-blocked tree at every
        // level, so even these reassociated reductions must agree exactly.
        let x = fill(seed, n);
        let (sc, ve) = on_both_levels(|| {
            (simd::sum_f32(&x), simd::sum_squares(&x), simd::max_value(&x))
        });
        prop_assert_eq!(sc.0.to_bits(), ve.0.to_bits());
        prop_assert_eq!(sc.1.to_bits(), ve.1.to_bits());
        prop_assert_eq!(sc.2.to_bits(), ve.2.to_bits());
    }

    #[test]
    fn optimizer_kernels_match_scalar(n in len_strategy(), seed in 0u64..u64::MAX, lr in 1e-4f32..0.5) {
        let p0 = fill(seed, n);
        let g = fill(seed ^ 0xAAAA, n);
        let m0 = fill(seed ^ 0xBBBB, n);
        let v0: Vec<f32> = fill(seed ^ 0xCCCC, n).iter().map(|v| v.abs()).collect();
        let (sc, ve) = on_both_levels(|| {
            let mut p_sgd = p0.clone();
            simd::sgd_step(&mut p_sgd, &g, lr);
            let mut p_mom = p0.clone();
            let mut vel = m0.clone();
            simd::momentum_step(&mut p_mom, &mut vel, &g, lr, 0.9);
            let mut p_adam = p0.clone();
            let mut m = m0.clone();
            let mut v = v0.clone();
            simd::adam_step(&mut p_adam, &mut m, &mut v, &g, lr, 0.9, 0.999, 1e-8, 0.1, 0.001);
            let mut avg = m0.clone();
            simd::asgd_avg_update(&mut avg, &p0, 0.25);
            (p_sgd, p_mom, vel, p_adam, m, v, avg)
        });
        assert_bits_eq(&sc.0, &ve.0);
        assert_bits_eq(&sc.1, &ve.1);
        assert_bits_eq(&sc.2, &ve.2);
        assert_bits_eq(&sc.3, &ve.3);
        assert_bits_eq(&sc.4, &ve.4);
        assert_bits_eq(&sc.5, &ve.5);
        assert_bits_eq(&sc.6, &ve.6);
    }

    #[test]
    fn elastic_kernels_match_scalar(n in len_strategy(), seed in 0u64..u64::MAX, alpha in 0.0f32..1.0) {
        let w0 = fill(seed, n);
        let d0 = fill(seed ^ 0x1111, n);
        let r = fill(seed ^ 0x2222, n);
        let (sc, ve) = on_both_levels(|| {
            let mut w = w0.clone();
            simd::elastic_pull(&mut w, &r, alpha);
            let mut wf = w0.clone();
            let mut d = d0.clone();
            simd::delta_pull(&mut wf, &mut d, &r, alpha);
            (w, wf, d)
        });
        assert_bits_eq(&sc.0, &ve.0);
        assert_bits_eq(&sc.1, &ve.1);
        assert_bits_eq(&sc.2, &ve.2);
    }

    #[test]
    fn matmul_matches_scalar(m in dim_strategy(), k in dim_strategy(), n in dim_strategy(), seed in 0u64..u64::MAX) {
        let a = mat(seed, m, k);
        let b = mat(seed ^ 0x3333, k, n);
        let (sc, ve) = on_both_levels(|| {
            let mut out = dirty_out();
            matmul_into(&a, &b, &mut out);
            out.data().to_vec()
        });
        assert_bits_eq(&sc, &ve);
    }

    #[test]
    fn matmul_transposed_variants_match_scalar(m in dim_strategy(), k in dim_strategy(), n in dim_strategy(), seed in 0u64..u64::MAX) {
        // A zero dim makes `Shape::as_matrix` collapse [r, 0] to (0, 0),
        // which the kernels' own shape asserts reject for mixed-transpose
        // operands; zero-dim coverage lives in `matmul_matches_scalar`.
        prop_assume!(m > 0 && k > 0 && n > 0);
        let a = mat(seed, m, k);
        let w = mat(seed ^ 0x4444, k, n);
        let c = mat(seed ^ 0x6666, m, n);
        let (sc, ve) = on_both_levels(|| {
            // dx = dy · Wᵀ and dw = Aᵀ · dy: the two backward kernels.
            let mut dx = dirty_out();
            matmul_a_bt_into(&c, &w, &mut dx);
            let mut dw = dirty_out();
            matmul_at_b_into(&a, &c, &mut dw);
            (dx.data().to_vec(), dw.data().to_vec())
        });
        assert_bits_eq(&sc.0, &ve.0);
        assert_bits_eq(&sc.1, &ve.1);
    }

    #[test]
    fn softmax_and_sums_match_scalar(r in dim_strategy(), c in dim_strategy(), seed in 0u64..u64::MAX) {
        let t = mat(seed, r, c);
        let (sc, ve) = on_both_levels(|| {
            let mut sm = dirty_out();
            softmax_rows_into(&t, &mut sm);
            let mut lsm = dirty_out();
            log_softmax_rows_into(&t, &mut lsm);
            (
                sm.data().to_vec(),
                lsm.data().to_vec(),
                row_sums(&t).data().to_vec(),
                col_sums(&t).data().to_vec(),
            )
        });
        assert_bits_eq(&sc.0, &ve.0);
        assert_bits_eq(&sc.1, &ve.1);
        assert_bits_eq(&sc.2, &ve.2);
        assert_bits_eq(&sc.3, &ve.3);
    }
}

proptest! {
    /// The vectorized log-softmax is consistent with softmax in *value*
    /// (not just level-independent in bits): each row's logsumexp is 0
    /// and `log_softmax ≈ ln(softmax)` elementwise. Guards against a
    /// kernel that is bit-identical across levels but simply wrong.
    #[test]
    fn log_softmax_is_log_of_softmax(r in 1usize..16, c in 1usize..40, seed in 0u64..u64::MAX) {
        let t = mat(seed, r, c);
        let mut sm = dirty_out();
        softmax_rows_into(&t, &mut sm);
        let mut lsm = dirty_out();
        log_softmax_rows_into(&t, &mut lsm);
        for i in 0..r {
            let row = &lsm.data()[i * c..(i + 1) * c];
            let lse: f32 = row.iter().map(|v| v.exp()).sum::<f32>().ln();
            prop_assert!(lse.abs() < 1e-5, "row {i}: logsumexp {lse}");
            for (j, &got) in row.iter().enumerate() {
                let want = sm.data()[i * c + j].ln();
                // ln of a subnormal softmax output is noisy; compare
                // where softmax has headroom.
                if want > -80.0 {
                    prop_assert!((got - want).abs() < 1e-4,
                        "({i},{j}): log_softmax {got} vs ln(softmax) {want}");
                }
            }
        }
    }
}

/// Fixed regression shapes: the microkernel's partial-tile paths (1-row,
/// 1-col, sub-NR right edge, k = 0) must all agree with scalar exactly.
#[test]
fn matmul_partial_tiles_match_scalar() {
    for (m, k, n) in [
        (1usize, 1usize, 1usize),
        (1, 8, 16),
        (4, 0, 16), // k = 0: output must be all zeros at every level
        (0, 5, 7),
        (5, 3, 1),
        (3, 17, 15),
        (4, 4, 33),
        (7, 9, 31),
    ] {
        let a = mat(m as u64 * 31 + k as u64, m, k);
        let b = mat(k as u64 * 17 + n as u64, k, n);
        let (sc, ve) = on_both_levels(|| {
            let mut out = dirty_out();
            matmul_into(&a, &b, &mut out);
            out.data().to_vec()
        });
        assert_eq!(
            sc.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            ve.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "shape ({m},{k},{n}) diverged"
        );
        if k == 0 {
            assert!(ve.iter().all(|&v| v == 0.0), "k=0 must produce zeros");
        }
    }
}

/// Zero-skip semantics: sparse A rows must take the same skip branches at
/// every level (matmul and at_b skip zero A elements; a_bt does not).
#[test]
fn matmul_zero_skip_matches_scalar() {
    let m = 6;
    let k = 11;
    let n = 19;
    let mut adata = fill(7, m * k);
    for (i, v) in adata.iter_mut().enumerate() {
        if i % 3 == 0 {
            *v = 0.0;
        }
    }
    let a = Tensor::from_vec(adata, &[m, k]);
    let b = mat(11, k, n);
    let (sc, ve) = on_both_levels(|| {
        let mut out = dirty_out();
        matmul_into(&a, &b, &mut out);
        out.data().to_vec()
    });
    assert_bits_eq(&sc, &ve);
}
