//! Reductions, softmax and layout helpers.
//!
//! The softmax family has `_into` variants that write into a
//! caller-supplied tensor, reusing its buffer when possible; the
//! allocating forms wrap them with a pooled output.
//!
//! Vectorization policy (DESIGN.md §13): every kernel here is
//! *level-independent* — identical bits whether dispatch picks scalar,
//! AVX2 or NEON. [`softmax_rows`] and [`log_softmax_rows`] use the
//! fully vectorized [`simd::softmax_row`] / [`simd::log_softmax_row`]:
//! a polynomial `exp` whose lanes are bit-identical to its scalar form
//! on every level, and the fixed 8-lane reduction tree for the
//! denominator (deterministic, but reassociated relative to the old
//! sequential `libm` version — a one-time value change covered by the
//! §13 policy; log-softmax made the same switch one PR after softmax,
//! so its log-sum term, which lands directly in every training loss,
//! changed values once at that point). `row_sums` uses the
//! deterministic lane-blocked sum; it feeds no training-path
//! computation.

use crate::simd;
use crate::Tensor;

/// Transpose of the matrix view, written into `out`.
pub fn transpose_into(t: &Tensor, out: &mut Tensor) {
    let (r, c) = t.shape().as_matrix();
    out.prepare_out(&[c, r]);
    let obuf = out.data_mut();
    let data = t.data();
    for i in 0..r {
        for j in 0..c {
            obuf[j * r + i] = data[i * c + j];
        }
    }
}

/// Transpose of the matrix view.
pub fn transpose(t: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(&[0]);
    transpose_into(t, &mut out);
    out
}

/// Per-row sums of the matrix view. Uses the deterministic lane-blocked
/// reduction: the result is identical across SIMD levels (same fixed
/// combine tree everywhere), though reassociated relative to a plain
/// sequential sum.
pub fn row_sums(t: &Tensor) -> Tensor {
    let (r, c) = t.shape().as_matrix();
    let mut out = crate::pool::take_cleared(r);
    for i in 0..r {
        out.push(simd::sum_f32(&t.data()[i * c..(i + 1) * c]));
    }
    Tensor::from_vec(out, &[r])
}

/// Per-column sums of the matrix view (e.g. bias gradients).
///
/// Streams `data` row-major in a single pass, accumulating each row into
/// the output vector — every element of column `j` is added in row order,
/// so the result matches the textbook strided column walk bit-for-bit
/// while touching memory sequentially.
pub fn col_sums(t: &Tensor) -> Tensor {
    let (r, c) = t.shape().as_matrix();
    let mut out = Tensor::zeros(&[c]);
    let obuf = out.data_mut();
    let data = t.data();
    for i in 0..r {
        simd::add_assign(obuf, &data[i * c..(i + 1) * c]);
    }
    out
}

fn softmax_row(row: &mut [f32]) {
    simd::softmax_row(row);
}

/// Numerically-stable softmax per row of the matrix view, written into
/// `out` (which may alias `t` only as a distinct tensor — the kernel
/// copies the input before transforming).
pub fn softmax_rows_into(t: &Tensor, out: &mut Tensor) {
    let (r, c) = t.shape().as_matrix();
    out.prepare_out(&[r, c]);
    let obuf = out.data_mut();
    obuf.copy_from_slice(t.data());
    for i in 0..r {
        softmax_row(&mut obuf[i * c..(i + 1) * c]);
    }
}

/// Numerically-stable softmax applied independently to each row of the
/// matrix view.
pub fn softmax_rows(t: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(&[0]);
    softmax_rows_into(t, &mut out);
    out
}

/// Numerically-stable log-softmax per row, written into `out`.
pub fn log_softmax_rows_into(t: &Tensor, out: &mut Tensor) {
    let (r, c) = t.shape().as_matrix();
    out.prepare_out(&[r, c]);
    let obuf = out.data_mut();
    obuf.copy_from_slice(t.data());
    for i in 0..r {
        simd::log_softmax_row(&mut obuf[i * c..(i + 1) * c]);
    }
}

/// Numerically-stable log-softmax applied per row.
pub fn log_softmax_rows(t: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(&[0]);
    log_softmax_rows_into(t, &mut out);
    out
}

/// Index of the maximum element in each row of the matrix view (first
/// occurrence wins ties).
pub fn argmax_rows(t: &Tensor) -> Vec<usize> {
    let (r, c) = t.shape().as_matrix();
    let mut out = Vec::with_capacity(r);
    for i in 0..r {
        let row = &t.data()[i * c..(i + 1) * c];
        let mut best = 0;
        for (j, &x) in row.iter().enumerate() {
            if x > row[best] {
                best = j;
            }
        }
        out.push(best);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allclose;

    #[test]
    fn transpose_roundtrip() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let tt = transpose(&transpose(&t));
        assert_eq!(tt, t);
        assert_eq!(transpose(&t).at(&[2, 1]), t.at(&[1, 2]));
    }

    #[test]
    fn sums() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(row_sums(&t).data(), &[3.0, 7.0]);
        assert_eq!(col_sums(&t).data(), &[4.0, 6.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let s = softmax_rows(&t);
        for sum in row_sums(&s).data() {
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Softmax is shift-invariant.
        let shifted = softmax_rows(&t.map(|x| x + 100.0));
        assert!(allclose(&s, &shifted, 1e-5));
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let t = Tensor::from_vec(vec![1000.0, 1001.0], &[1, 2]);
        let s = softmax_rows(&t);
        assert!(!s.has_non_finite());
        assert!(s.at(&[0, 1]) > s.at(&[0, 0]));
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let t = Tensor::from_vec(vec![0.5, -0.3, 2.0], &[1, 3]);
        let a = log_softmax_rows(&t);
        let b = softmax_rows(&t).map(f32::ln);
        assert!(allclose(&a, &b, 1e-5));
    }

    #[test]
    fn softmax_into_reuses_buffer_and_overwrites() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let mut out = Tensor::full(&[2, 3], f32::NAN);
        let ptr = out.data().as_ptr();
        softmax_rows_into(&t, &mut out);
        assert_eq!(out.data().as_ptr(), ptr);
        assert!(!out.has_non_finite());
        assert!(allclose(&out, &softmax_rows(&t), 0.0));
    }

    #[test]
    fn argmax_rows_first_tie_wins() {
        let t = Tensor::from_vec(vec![1.0, 3.0, 3.0, 0.0, -1.0, -2.0], &[2, 3]);
        assert_eq!(argmax_rows(&t), vec![1, 0]);
    }
}
