//! Execution results and per-device accounting.

use crate::{OomEvent, UtilTrace};

/// Per-device accounting of one simulated run.
///
/// The three time buckets correspond to the paper's Equation (1):
/// `T = T_gpu + T_com + T_bub` — compute, communication that blocks the
/// GPU, and bubble (waiting on other GPUs).
#[derive(Clone, Debug, Default)]
pub struct DeviceStats {
    /// Time with at least one kernel resident (µs) — `T_gpu`.
    pub busy_us: f64,
    /// Idle time while some local stream waits on a receive (µs) — `T_com`.
    pub comm_blocked_us: f64,
    /// Remaining idle time (µs) — `T_bub`.
    pub idle_us: f64,
    /// Σ service time of inbound transfers (µs) — the paper's `𝕋ᵏ`.
    pub total_comm_us: f64,
    /// Peak memory footprint (bytes).
    pub peak_mem: u64,
    /// The φᵏ(t) utilization curve.
    pub trace: UtilTrace,
}

impl DeviceStats {
    /// Mean utilization over the run's makespan.
    pub fn mean_util(&self, makespan_us: f64) -> f64 {
        self.trace.mean_over(makespan_us)
    }
}

/// The outcome of simulating a program.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// End-to-end time (µs).
    pub makespan_us: f64,
    /// Per-device accounting, indexed by `DeviceId`.
    pub devices: Vec<DeviceStats>,
    /// First out-of-memory event, if any.
    pub oom: Option<OomEvent>,
}

impl SimResult {
    /// Makespan in seconds.
    pub fn makespan_s(&self) -> f64 {
        self.makespan_us * 1e-6
    }

    /// Peak memory over all devices (bytes).
    pub fn max_peak_mem(&self) -> u64 {
        self.devices.iter().map(|d| d.peak_mem).max().unwrap_or(0)
    }

    /// Mean of the per-device mean utilizations.
    pub fn mean_util(&self) -> f64 {
        if self.devices.is_empty() || self.makespan_us <= 0.0 {
            return 0.0;
        }
        let sum: f64 = self.devices.iter().map(|d| d.mean_util(self.makespan_us)).sum();
        sum / self.devices.len() as f64
    }

    /// True if the run overflowed some device's memory.
    pub fn is_oom(&self) -> bool {
        self.oom.is_some()
    }
}
