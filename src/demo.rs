//! Shared configuration for the two-process elastic-averaging demo.
//!
//! The `elastic_server` and `elastic_worker` examples (and the CI smoke
//! test comparing them against the in-process trainer) must agree exactly
//! on the model, optimizer, task, and batch schedule — everything here is
//! seeded, so any process reconstructs the identical workload from the
//! round number and pipeline id alone.

use ea_autograd::Stage;
use ea_comms::crc32;
use ea_data::{Batch, SyntheticTask};
use ea_models::{gnmt_analogue, AnalogueConfig};
use ea_optim::{OptKind, Optimizer};
use ea_runtime::ElasticTrainer;
use ea_tensor::TensorRng;

/// Pipelines in the demo ensemble (the server waits for this many).
pub const N_PIPELINES: usize = 2;
/// Micro-batches per pipeline step.
pub const MICROS: usize = 2;
/// Elastic-averaging rounds the demo runs.
pub const ROUNDS: u64 = 10;
/// Examples per pipeline per round.
pub const BATCH: usize = 8;
/// Model/reference initialization seed (identical across processes).
pub const MODEL_SEED: u64 = 42;
/// Synthetic-task seed.
pub const TASK_SEED: u64 = 7;

/// Demo model: the small GNMT analogue used throughout the test suite.
pub const CFG: AnalogueConfig =
    AnalogueConfig { vocab: 16, seq: 4, hidden: 16, blocks: 2, stages: 2 };

/// The α pull strength: the paper's 1/N default.
pub fn alpha() -> f32 {
    1.0 / N_PIPELINES as f32
}

/// Freshly initialized demo stages (same weights in every process).
pub fn model_stages() -> Vec<Stage> {
    gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(MODEL_SEED)).into_stages()
}

/// Initial reference weights, one flat vector per stage.
pub fn initial_reference() -> Vec<Vec<f32>> {
    model_stages().iter().map(|s| s.params_flat()).collect()
}

/// One Adam optimizer per stage.
pub fn optimizers() -> Vec<Box<dyn Optimizer>> {
    (0..CFG.stages).map(|_| OptKind::Adam { lr: 1e-2 }.build()).collect()
}

/// The synthetic copy-translation task.
pub fn task() -> SyntheticTask {
    SyntheticTask::copy_translate(CFG.vocab, CFG.seq, TASK_SEED)
}

/// The batch pipeline `pipe` trains on in `round` — the same global
/// schedule the in-process trainer uses (`index = round·N + pipe`).
pub fn worker_batch(task: &SyntheticTask, round: u64, pipe: usize) -> Batch {
    task.batch(BATCH, round * N_PIPELINES as u64 + pipe as u64)
}

/// Builds the in-process baseline trainer for the identical workload.
pub fn local_trainer() -> ElasticTrainer {
    let stages = (0..N_PIPELINES).map(|_| model_stages()).collect();
    let opts = (0..N_PIPELINES).map(|_| optimizers()).collect();
    let eval = gnmt_analogue(CFG, &mut TensorRng::seed_from_u64(MODEL_SEED));
    ElasticTrainer::new(stages, opts, MICROS, Some(alpha()), eval)
}

/// Runs the baseline for [`ROUNDS`] rounds; returns per-round mean losses
/// and the final per-stage reference weights.
pub fn run_local_baseline() -> (Vec<f32>, Vec<Vec<f32>>) {
    let task = task();
    let mut trainer = local_trainer();
    let losses = (0..ROUNDS)
        .map(|r| {
            let batches: Vec<Batch> = (0..N_PIPELINES).map(|p| worker_batch(&task, r, p)).collect();
            trainer.round(&batches)
        })
        .collect();
    let refs = (0..CFG.stages).map(|s| trainer.reference(s)).collect();
    (losses, refs)
}

/// Bit-exact checksum of a weight vector (CRC32 over the little-endian
/// f32 bytes) — what the demo processes print to compare final references
/// across process boundaries.
pub fn weights_checksum(weights: &[f32]) -> u32 {
    let mut bytes = Vec::with_capacity(weights.len() * 4);
    ea_optim::encode_f32s_le(weights, &mut bytes);
    crc32(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_runs_and_is_deterministic() {
        let (losses_a, refs_a) = run_local_baseline();
        let (losses_b, refs_b) = run_local_baseline();
        assert_eq!(losses_a, losses_b);
        assert_eq!(refs_a, refs_b);
        assert_eq!(losses_a.len(), ROUNDS as usize);
        assert!(losses_a.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn checksum_is_sensitive_to_single_bit_flips() {
        let w = vec![0.5f32, -1.25, 3.0];
        let mut v = w.clone();
        v[1] = f32::from_bits(v[1].to_bits() ^ 1);
        assert_ne!(weights_checksum(&w), weights_checksum(&v));
    }
}
