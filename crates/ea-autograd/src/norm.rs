//! Layer normalization.

use crate::{ForwardCtx, Layer, Param, Saved};
use ea_tensor::{pool, Tensor};

const EPS: f32 = 1e-5;

/// LayerNorm over the last dimension of the matrix view, with learned
/// per-feature gain and bias.
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    dim: usize,
}

impl LayerNorm {
    /// Identity-initialized layer norm of width `dim`.
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Param::new("ln.gamma", Tensor::ones(&[dim])),
            beta: Param::new("ln.beta", Tensor::zeros(&[dim])),
            dim,
        }
    }
}

impl Layer for LayerNorm {
    fn forward(&self, x: &Tensor, _ctx: &ForwardCtx) -> (Tensor, Saved) {
        let (r, c) = x.shape().as_matrix();
        assert_eq!(c, self.dim, "layernorm width mismatch");
        // Every element is written below, so pooled buffers with stale
        // contents are fine.
        let mut y = pool::take_buf(r * c);
        // Stash normalized activations and inverse std per row.
        let mut xhat = pool::take_buf(r * c);
        let mut inv_std = pool::take_buf(r);
        let xdata = x.data();
        let gamma = self.gamma.value.data();
        let beta = self.beta.value.data();
        for i in 0..r {
            let row = &xdata[i * c..(i + 1) * c];
            let mean = row.iter().sum::<f32>() / c as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / c as f32;
            let inv = 1.0 / (var + EPS).sqrt();
            inv_std[i] = inv;
            for j in 0..c {
                let h = (row[j] - mean) * inv;
                xhat[i * c + j] = h;
                y[i * c + j] = h * gamma[j] + beta[j];
            }
        }
        (
            Tensor::from_vec(y, x.dims()),
            Saved::new(vec![Tensor::from_vec(xhat, &[r, c]), Tensor::from_vec(inv_std, &[r])]),
        )
    }

    fn backward(&mut self, saved: &Saved, dy: &Tensor) -> Tensor {
        let xhat = saved.get(0);
        let inv_std = saved.get(1);
        let (r, c) = xhat.shape().as_matrix();
        // Fully overwritten below.
        let mut dx = pool::take_buf(r * c);
        let gamma = self.gamma.value.data();
        let ggrad = self.gamma.grad.data_mut();
        let bgrad = self.beta.grad.data_mut();
        let dydata = dy.data();
        let xhdata = xhat.data();
        let invdata = inv_std.data();
        for i in 0..r {
            let hy = &dydata[i * c..(i + 1) * c];
            let hx = &xhdata[i * c..(i + 1) * c];
            // dxhat = dy * gamma
            // dx = inv_std/c * (c*dxhat - sum(dxhat) - xhat*sum(dxhat*xhat))
            let mut sum_dxh = 0.0f32;
            let mut sum_dxh_h = 0.0f32;
            for j in 0..c {
                let dxh = hy[j] * gamma[j];
                sum_dxh += dxh;
                sum_dxh_h += dxh * hx[j];
            }
            let scale = invdata[i] / c as f32;
            for j in 0..c {
                let dxh = hy[j] * gamma[j];
                dx[i * c + j] = scale * (c as f32 * dxh - sum_dxh - hx[j] * sum_dxh_h);
            }
            // Parameter gradients.
            for j in 0..c {
                ggrad[j] += hy[j] * hx[j];
                bgrad[j] += hy[j];
            }
        }
        Tensor::from_vec(dx, dy.dims())
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.gamma);
        f(&self.beta);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn name(&self) -> &'static str {
        "LayerNorm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck_layer;

    #[test]
    fn output_rows_are_normalized() {
        let ln = LayerNorm::new(8);
        let x = ea_tensor::uniform(&[4, 8], -2.0, 3.0, &mut ea_tensor::TensorRng::seed_from_u64(0));
        let (y, _) = ln.forward(&x, &ForwardCtx::eval());
        for i in 0..4 {
            let row = y.row(i);
            assert!(row.mean().abs() < 1e-5);
            let var = row.data().iter().map(|v| v * v).sum::<f32>() / 8.0;
            assert!((var - 1.0).abs() < 1e-3, "row variance {var}");
        }
    }

    #[test]
    fn gradcheck() {
        gradcheck_layer(LayerNorm::new(6), &[3, 6], 3e-2, 11);
    }

    #[test]
    fn constant_row_is_stable() {
        let ln = LayerNorm::new(4);
        let x = Tensor::full(&[1, 4], 3.0);
        let (y, _) = ln.forward(&x, &ForwardCtx::eval());
        assert!(!y.has_non_finite());
    }
}
