//! End-to-end tests for the transport-backed elastic trainer: the same
//! training loop over the in-process shards, the loopback backend, the
//! TCP backend, and the fault-injected TCP backend must all produce
//! byte-identical losses and reference weights.

use avgpipe_suite::demo;
use ea_comms::{
    loopback_endpoint, FaultConfig, FaultyTransport, Listener, RemoteShards, RetryConfig,
    ShardChannel, ShardClient, TcpConfig, TcpServer, TcpTransport,
};
use ea_data::Batch;
use ea_models::gnmt_analogue;
use ea_runtime::{ElasticTrainer, RefShardServer};
use ea_tensor::TensorRng;
use std::sync::Arc;

/// Builds the demo trainer over an arbitrary shard channel.
fn trainer_with(channel: Arc<dyn ShardChannel>) -> ElasticTrainer {
    let stages = (0..demo::N_PIPELINES).map(|_| demo::model_stages()).collect();
    let opts = (0..demo::N_PIPELINES).map(|_| demo::optimizers()).collect();
    let eval = gnmt_analogue(demo::CFG, &mut TensorRng::seed_from_u64(demo::MODEL_SEED));
    ElasticTrainer::with_channel(stages, opts, demo::MICROS, Some(demo::alpha()), eval, channel)
}

/// Runs `rounds` demo rounds; returns per-round losses and final
/// references.
fn run(trainer: &mut ElasticTrainer, rounds: u64) -> (Vec<f32>, Vec<Vec<f32>>) {
    let task = demo::task();
    let losses = (0..rounds)
        .map(|r| {
            let batches: Vec<Batch> =
                (0..demo::N_PIPELINES).map(|p| demo::worker_batch(&task, r, p)).collect();
            trainer.round(&batches)
        })
        .collect();
    let refs = (0..demo::CFG.stages).map(|s| trainer.reference(s)).collect();
    (losses, refs)
}

fn run_local(rounds: u64) -> (Vec<f32>, Vec<Vec<f32>>) {
    run(&mut demo::local_trainer(), rounds)
}

fn assert_identical(
    (losses, refs): (Vec<f32>, Vec<Vec<f32>>),
    (base_losses, base_refs): (Vec<f32>, Vec<Vec<f32>>),
) {
    assert_eq!(losses, base_losses, "per-round losses must be byte-identical");
    for (s, (a, b)) in refs.iter().zip(&base_refs).enumerate() {
        assert!(
            a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
            "stage {s} reference weights differ"
        );
    }
}

#[test]
fn loopback_training_is_byte_identical_to_in_process() {
    let rounds = 4;
    let server = RefShardServer::from_initial_weights(demo::initial_reference(), demo::N_PIPELINES);
    let (hub, mut listener) = loopback_endpoint();
    let clients: Vec<ShardClient> = (0..demo::N_PIPELINES)
        .map(|p| {
            let conn = hub.connect().unwrap();
            // Service threads exit when their client disconnects.
            let _detached = server.spawn_conn(listener.accept().unwrap());
            ShardClient::handshake(Box::new(conn), p, RetryConfig::default()).unwrap()
        })
        .collect();
    let channel: Arc<dyn ShardChannel> = Arc::new(RemoteShards::new(clients).unwrap());
    let result = run(&mut trainer_with(channel), rounds);
    assert_identical(result, run_local(rounds));
}

#[test]
fn tcp_training_is_byte_identical_to_in_process() {
    let rounds = 4;
    let server = RefShardServer::from_initial_weights(demo::initial_reference(), demo::N_PIPELINES);
    let mut listener = TcpServer::bind("127.0.0.1:0", TcpConfig::default()).unwrap();
    let addr = listener.local_addr().unwrap();
    let clients: Vec<ShardClient> = (0..demo::N_PIPELINES)
        .map(|p| {
            let conn = TcpTransport::connect(addr, TcpConfig::default()).unwrap();
            let _detached = server.spawn_conn(listener.accept().unwrap());
            ShardClient::handshake(Box::new(conn), p, RetryConfig::default()).unwrap()
        })
        .collect();
    let channel: Arc<dyn ShardChannel> = Arc::new(RemoteShards::new(clients).unwrap());
    let result = run(&mut trainer_with(channel), rounds);
    assert_identical(result, run_local(rounds));
}

/// The acceptance test of the fault-injection shim: 10% drop, 10% delay,
/// 10% duplicate on *both* sides of every connection, and training still
/// produces bit-for-bit the in-process result — retries make delivery
/// at-least-once, idempotent submissions make it effectively exactly-once.
#[test]
fn faulty_tcp_training_is_byte_identical_at_ten_percent_loss() {
    let rounds = 3;
    let server = RefShardServer::from_initial_weights(demo::initial_reference(), demo::N_PIPELINES);
    let mut listener = TcpServer::bind("127.0.0.1:0", TcpConfig::default()).unwrap();
    let addr = listener.local_addr().unwrap();
    // Tight reply timeout so dropped messages retransmit quickly.
    let retry =
        RetryConfig { reply_timeout: std::time::Duration::from_millis(100), max_attempts: 30 };
    let clients: Vec<ShardClient> = (0..demo::N_PIPELINES)
        .map(|p| {
            let conn = TcpTransport::connect(addr, TcpConfig::default()).unwrap();
            let faulty = FaultyTransport::new(conn, FaultConfig::lossy_10(), 100 + p as u64);
            // The server's side of this connection injects faults too.
            let server_conn = FaultyTransport::new(
                listener.accept().unwrap(),
                FaultConfig::lossy_10(),
                200 + p as u64,
            );
            let _detached = server.spawn_conn(Box::new(server_conn));
            ShardClient::handshake(Box::new(faulty), p, retry).unwrap()
        })
        .collect();
    let channel: Arc<dyn ShardChannel> = Arc::new(RemoteShards::new(clients).unwrap());
    let result = run(&mut trainer_with(channel), rounds);
    assert_identical(result, run_local(rounds));
}
