//! Framework-level elastic-averaging update rules (paper §3.2, Figure 6).
//!
//! Unlike classic EASGD, these rules are *decoupled* from the local
//! optimizer: a pipeline first applies its own optimizer step (Step ❶),
//! then dilutes its weights toward the reference model (Step ❷), and ships
//! the local update to the reference process (Step ❸). The reference
//! process accumulates one update per pipeline (Step ❹) and, once all `N`
//! have arrived, normalizes and applies them (Step ❺).

/// Configuration of the elastic-averaging framework.
#[derive(Clone, Copy, Debug)]
pub struct ElasticConfig {
    /// Number of parallel pipelines `N`.
    pub n_pipelines: usize,
    /// The pull strength α ∈ [0, 1]; the paper sets α = 1/N empirically.
    pub alpha: f32,
}

impl ElasticConfig {
    /// The paper's default: α = 1/N.
    pub fn with_default_alpha(n_pipelines: usize) -> Self {
        assert!(n_pipelines >= 1, "need at least one pipeline");
        ElasticConfig { n_pipelines, alpha: 1.0 / n_pipelines as f32 }
    }

    /// Explicit α.
    pub fn new(n_pipelines: usize, alpha: f32) -> Self {
        assert!(n_pipelines >= 1, "need at least one pipeline");
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        ElasticConfig { n_pipelines, alpha }
    }
}

/// Step ❷: dilute the parallel-model weights with the reference weights in
/// ratio `(1-α) : α`, i.e. `w ← (1-α)·w + α·w̃`.
pub fn elastic_pull(local: &mut [f32], reference: &[f32], alpha: f32) {
    assert_eq!(local.len(), reference.len(), "parameter length mismatch");
    ea_tensor::simd::elastic_pull(local, reference, alpha);
}

/// Fused Steps ❶–❸ for one stage: local optimizer step, elastic pull and
/// local-update extraction in a single pass over the parameters.
///
/// On return, `params` holds the pulled weights
/// `(1-α)·w_new + α·w̃` and `delta` holds the local update
/// `Δ = w_new − w_old` (the optimizer step only, *before* the pull) ready
/// for [`ReferenceAccumulator::receive`]. `delta` is cleared and refilled,
/// so callers can reuse one buffer across rounds.
///
/// Element-wise this computes exactly what the unfused sequence
/// (`params_flat` snapshot → `opt.step` → subtract → [`elastic_pull`])
/// computes — same expressions, same order — so switching to the fused
/// form changes no training result, only the number of passes and
/// allocations.
pub fn step_pull_delta(
    opt: &mut dyn crate::Optimizer,
    params: &mut [f32],
    grads: &[f32],
    reference: &[f32],
    alpha: f32,
    delta: &mut Vec<f32>,
) {
    assert_eq!(params.len(), grads.len(), "gradient length mismatch");
    assert_eq!(params.len(), reference.len(), "reference length mismatch");
    // Snapshot w_old into the delta buffer, then let the optimizer update
    // the parameters in place.
    delta.clear();
    delta.extend_from_slice(params);
    opt.step(params, grads);
    ea_tensor::simd::delta_pull(params, delta, reference, alpha);
}

/// Steps ❹–❺: the reference-side accumulator.
///
/// Each parallel pipeline sends the *local update* `Δ_i` it computed for
/// the batch (new-weights − old-weights before the pull). Once all `N`
/// updates of a round arrive, `try_apply` normalizes by `N` and adds the
/// mean update into the reference weights.
pub struct ReferenceAccumulator {
    acc: Vec<f32>,
    received: usize,
    n_pipelines: usize,
    rounds_applied: u64,
}

impl ReferenceAccumulator {
    /// Accumulator for `n_pipelines` pipelines over `param_len` weights.
    pub fn new(param_len: usize, n_pipelines: usize) -> Self {
        assert!(n_pipelines >= 1);
        ReferenceAccumulator {
            acc: vec![0.0; param_len],
            received: 0,
            n_pipelines,
            rounds_applied: 0,
        }
    }

    /// Step ❹: receives one pipeline's local update.
    ///
    /// Panics if more than `N` updates arrive within one round — that
    /// would mean a pipeline raced ahead of the barrier.
    pub fn receive(&mut self, local_update: &[f32]) {
        assert_eq!(local_update.len(), self.acc.len(), "update length mismatch");
        assert!(
            self.received < self.n_pipelines,
            "received more updates than pipelines in one round"
        );
        ea_tensor::simd::add_assign(&mut self.acc, local_update);
        self.received += 1;
    }

    /// Number of updates received in the current round.
    pub fn pending(&self) -> usize {
        self.received
    }

    /// Rounds applied so far.
    pub fn rounds_applied(&self) -> u64 {
        self.rounds_applied
    }

    /// Step ❺: if every pipeline has reported, applies the normalized
    /// accumulated update to `reference` and resets the round. Returns
    /// true if an application happened.
    pub fn try_apply(&mut self, reference: &mut [f32]) -> bool {
        if self.received < self.n_pipelines {
            return false;
        }
        let inv = 1.0 / self.n_pipelines as f32;
        // `r += a * inv` with `axpy(r, inv, a)` computes `r += inv * a` —
        // identical by commutativity of the single multiply, so this stays
        // bit-exact against the seed expression.
        ea_tensor::simd::axpy(reference, inv, &self.acc);
        self.acc.fill(0.0);
        self.received = 0;
        self.rounds_applied += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_alpha_is_one_over_n() {
        let c = ElasticConfig::with_default_alpha(4);
        assert!((c.alpha - 0.25).abs() < 1e-7);
    }

    #[test]
    fn pull_moves_toward_reference() {
        let mut w = vec![0.0f32, 10.0];
        let r = vec![10.0f32, 0.0];
        elastic_pull(&mut w, &r, 0.25);
        assert_eq!(w, vec![2.5, 7.5]);
    }

    #[test]
    fn pull_with_alpha_one_copies_reference() {
        let mut w = vec![1.0f32, 2.0];
        let r = vec![5.0f32, 6.0];
        elastic_pull(&mut w, &r, 1.0);
        assert_eq!(w, r);
    }

    #[test]
    fn pull_with_alpha_zero_is_noop() {
        let mut w = vec![1.0f32, 2.0];
        let r = vec![5.0f32, 6.0];
        elastic_pull(&mut w, &r, 0.0);
        assert_eq!(w, vec![1.0, 2.0]);
    }

    #[test]
    fn accumulator_waits_for_all_pipelines() {
        let mut acc = ReferenceAccumulator::new(2, 3);
        let mut reference = vec![0.0f32, 0.0];
        acc.receive(&[3.0, 0.0]);
        assert!(!acc.try_apply(&mut reference));
        acc.receive(&[3.0, 3.0]);
        assert!(!acc.try_apply(&mut reference));
        acc.receive(&[3.0, 6.0]);
        assert!(acc.try_apply(&mut reference));
        // Mean of the three updates.
        assert_eq!(reference, vec![3.0, 3.0]);
        assert_eq!(acc.rounds_applied(), 1);
        assert_eq!(acc.pending(), 0);
    }

    #[test]
    fn accumulator_resets_between_rounds() {
        let mut acc = ReferenceAccumulator::new(1, 2);
        let mut reference = vec![0.0f32];
        acc.receive(&[2.0]);
        acc.receive(&[4.0]);
        assert!(acc.try_apply(&mut reference));
        assert_eq!(reference, vec![3.0]);
        acc.receive(&[-2.0]);
        acc.receive(&[-4.0]);
        assert!(acc.try_apply(&mut reference));
        assert_eq!(reference, vec![0.0]);
    }

    #[test]
    #[should_panic]
    fn accumulator_rejects_overflow_round() {
        let mut acc = ReferenceAccumulator::new(1, 1);
        acc.receive(&[1.0]);
        acc.receive(&[1.0]);
    }

    #[test]
    fn step_pull_delta_matches_unfused_sequence_sgd() {
        let grads = vec![0.5f32, -1.0, 2.0];
        let reference = vec![1.0f32, 1.0, 1.0];
        let alpha = 0.25;

        // Unfused: snapshot, step, delta, pull.
        let mut w_ref = vec![0.2f32, -0.4, 0.6];
        let before = w_ref.clone();
        let mut opt = crate::Sgd::new(0.1);
        crate::Optimizer::step(&mut opt, &mut w_ref, &grads);
        let expect_delta: Vec<f32> = w_ref.iter().zip(&before).map(|(a, b)| a - b).collect();
        elastic_pull(&mut w_ref, &reference, alpha);

        // Fused.
        let mut w = vec![0.2f32, -0.4, 0.6];
        let mut opt2 = crate::Sgd::new(0.1);
        let mut delta = Vec::new();
        step_pull_delta(&mut opt2, &mut w, &grads, &reference, alpha, &mut delta);

        assert_eq!(w, w_ref, "pulled weights must be bit-identical");
        assert_eq!(delta, expect_delta, "delta must be bit-identical");
    }

    #[test]
    fn step_pull_delta_matches_unfused_sequence_adam() {
        // Adam carries internal state; run several rounds to exercise it.
        let reference = vec![0.5f32; 4];
        let alpha = 0.5;
        let mut w_ref = vec![0.1f32, 0.2, 0.3, 0.4];
        let mut w = w_ref.clone();
        let mut opt_ref = crate::Adam::new(0.01);
        let mut opt = crate::Adam::new(0.01);
        let mut delta = vec![7.0f32; 4]; // stale contents must not leak
        for round in 0..5 {
            let grads: Vec<f32> = (0..4).map(|i| ((round * 4 + i) as f32 * 0.3).sin()).collect();

            let before = w_ref.clone();
            crate::Optimizer::step(&mut opt_ref, &mut w_ref, &grads);
            let expect_delta: Vec<f32> = w_ref.iter().zip(&before).map(|(a, b)| a - b).collect();
            elastic_pull(&mut w_ref, &reference, alpha);

            step_pull_delta(&mut opt, &mut w, &grads, &reference, alpha, &mut delta);
            assert_eq!(w, w_ref, "round {round}: weights diverged");
            assert_eq!(delta, expect_delta, "round {round}: delta diverged");
        }
    }

    #[test]
    fn step_pull_delta_reuses_delta_capacity() {
        let mut opt = crate::Sgd::new(0.1);
        let mut w = vec![1.0f32; 8];
        let grads = vec![0.1f32; 8];
        let reference = vec![0.0f32; 8];
        let mut delta = Vec::with_capacity(8);
        step_pull_delta(&mut opt, &mut w, &grads, &reference, 0.1, &mut delta);
        let ptr = delta.as_ptr();
        step_pull_delta(&mut opt, &mut w, &grads, &reference, 0.1, &mut delta);
        assert_eq!(delta.as_ptr(), ptr, "delta buffer should be reused");
    }

    #[test]
    fn pull_is_contraction_between_replicas() {
        // Two replicas pulled toward the same reference get closer to
        // each other — the divergence-prevention property of Figure 5(b).
        let mut a = vec![0.0f32];
        let mut b = vec![8.0f32];
        let r = vec![4.0f32];
        let before = (a[0] - b[0]).abs();
        elastic_pull(&mut a, &r, 0.5);
        elastic_pull(&mut b, &r, 0.5);
        assert!((a[0] - b[0]).abs() < before);
    }
}
