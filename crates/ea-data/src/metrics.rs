//! Task-level evaluation metrics beyond raw accuracy.

use ea_tensor::{log_softmax_rows, Tensor};

/// Perplexity of a batch of predictions: `exp(mean NLL)` — the language-
/// modeling metric AWD-LSTM reports on Penn Treebank.
pub fn perplexity(logits: &Tensor, targets: &[usize]) -> f64 {
    let (r, c) = logits.shape().as_matrix();
    assert_eq!(r, targets.len(), "target count must equal rows");
    let logp = log_softmax_rows(logits);
    let mut nll = 0.0f64;
    for (i, &t) in targets.iter().enumerate() {
        assert!(t < c, "target class {t} out of range {c}");
        nll -= logp.data()[i * c + t] as f64;
    }
    (nll / r as f64).exp()
}

/// Top-`k` accuracy: fraction of rows whose target is among the `k`
/// highest-scoring classes.
pub fn top_k_accuracy(logits: &Tensor, targets: &[usize], k: usize) -> f64 {
    let (r, c) = logits.shape().as_matrix();
    assert_eq!(r, targets.len(), "target count must equal rows");
    assert!(k >= 1 && k <= c, "k must be in [1, classes]");
    let mut hits = 0usize;
    for (i, &t) in targets.iter().enumerate() {
        let row = &logits.data()[i * c..(i + 1) * c];
        let target_score = row[t];
        // Count how many classes strictly beat the target.
        let better = row.iter().filter(|&&x| x > target_score).count();
        if better < k {
            hits += 1;
        }
    }
    hits as f64 / r.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perplexity_of_uniform_logits_is_vocab_size() {
        let logits = Tensor::zeros(&[4, 8]);
        let p = perplexity(&logits, &[0, 1, 2, 3]);
        assert!((p - 8.0).abs() < 1e-4, "uniform perplexity {p}");
    }

    #[test]
    fn perplexity_of_confident_correct_predictions_is_near_one() {
        let mut logits = Tensor::full(&[2, 4], -20.0);
        logits.set(&[0, 1], 20.0);
        logits.set(&[1, 3], 20.0);
        let p = perplexity(&logits, &[1, 3]);
        assert!(p < 1.001, "perplexity {p}");
    }

    #[test]
    fn top_k_accuracy_is_monotone_in_k() {
        let logits = Tensor::from_vec(
            vec![
                3.0, 2.0, 1.0, 0.0, // target 2 is 3rd best
                0.0, 1.0, 2.0, 3.0, // target 0 is worst
            ],
            &[2, 4],
        );
        let targets = [2usize, 0];
        let a1 = top_k_accuracy(&logits, &targets, 1);
        let a3 = top_k_accuracy(&logits, &targets, 3);
        let a4 = top_k_accuracy(&logits, &targets, 4);
        assert_eq!(a1, 0.0);
        assert_eq!(a3, 0.5);
        assert_eq!(a4, 1.0);
    }

    #[test]
    fn top_1_matches_accuracy() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(top_k_accuracy(&logits, &[0, 1], 1), 1.0);
        assert_eq!(top_k_accuracy(&logits, &[0, 1], 1), crate::accuracy(&logits, &[0, 1]));
    }
}
