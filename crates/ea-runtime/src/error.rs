//! The runtime's shared error type.
//!
//! Malformed input — a corrupt checkpoint, a bad peer submitting the
//! wrong-sized delta, a duplicate submission — must surface as `Err`, not
//! a panic: the transport layer rejects bad frames gracefully and a wrong
//! message from one worker cannot abort training for everyone else.

/// A recoverable runtime error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// A checkpoint's stage count does not match the target model.
    StageCountMismatch {
        /// Stages in the checkpoint.
        checkpoint: usize,
        /// Stages in the model.
        model: usize,
    },
    /// A flat parameter/update buffer has the wrong length.
    LengthMismatch {
        /// What the buffer was for (e.g. `"stage 2 params"`).
        what: String,
        /// Expected element count.
        expected: usize,
        /// Received element count.
        got: usize,
    },
    /// A pipeline submitted twice in one round (non-idempotent path).
    DuplicateSubmit {
        /// The submitting pipeline.
        pipe: usize,
        /// The round in question.
        round: u64,
    },
    /// A submission referenced a round the shard has not opened yet.
    RoundAhead {
        /// The submitted round.
        round: u64,
        /// The shard's current version.
        version: u64,
    },
    /// A pipeline or shard index was out of range.
    IndexOutOfRange {
        /// What kind of index.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// Number of valid entries.
        len: usize,
    },
    /// A submission arrived from a pipeline whose membership lease had
    /// already expired (it was evicted from the quorum).
    LeaseExpired {
        /// The evicted pipeline.
        pipe: usize,
        /// The round it tried to submit for.
        round: u64,
    },
    /// A worker's pipeline failed (panicked stage thread, hung channel,
    /// unrecoverable comms) and reports the failure instead of aborting.
    WorkerFailed {
        /// Human-readable cause.
        what: String,
    },
    /// Evicting a member would leave the quorum empty — averaging cannot
    /// proceed with zero live pipelines.
    QuorumLost {
        /// Live members remaining (before the refused eviction).
        live: usize,
        /// The shard version at which quorum was lost.
        round: u64,
    },
    /// A checkpoint file is torn, truncated, or fails its checksum.
    CorruptCheckpoint {
        /// What the validation found.
        why: String,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::StageCountMismatch { checkpoint, model } => {
                write!(f, "checkpoint has {checkpoint} stages, model has {model}")
            }
            Error::LengthMismatch { what, expected, got } => {
                write!(f, "{what}: expected {expected} elements, got {got}")
            }
            Error::DuplicateSubmit { pipe, round } => {
                write!(f, "pipeline {pipe} submitted twice in round {round}")
            }
            Error::RoundAhead { round, version } => {
                write!(f, "submission for round {round} but shard is at version {version}")
            }
            Error::IndexOutOfRange { what, index, len } => {
                write!(f, "{what} index {index} out of range (len {len})")
            }
            Error::LeaseExpired { pipe, round } => {
                write!(f, "pipeline {pipe}'s lease expired; submission for round {round} refused")
            }
            Error::WorkerFailed { what } => {
                write!(f, "worker pipeline failed: {what}")
            }
            Error::QuorumLost { live, round } => {
                write!(f, "quorum lost at round {round}: {live} live member(s) remain")
            }
            Error::CorruptCheckpoint { why } => {
                write!(f, "corrupt checkpoint: {why}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_the_fault_variants() {
        let cases: Vec<(Error, &str)> = vec![
            (
                Error::LeaseExpired { pipe: 2, round: 7 },
                "pipeline 2's lease expired; submission for round 7 refused",
            ),
            (
                Error::WorkerFailed { what: "stage 1 panicked".into() },
                "worker pipeline failed: stage 1 panicked",
            ),
            (
                Error::QuorumLost { live: 1, round: 4 },
                "quorum lost at round 4: 1 live member(s) remain",
            ),
            (
                Error::CorruptCheckpoint { why: "checksum mismatch".into() },
                "corrupt checkpoint: checksum mismatch",
            ),
        ];
        for (err, want) in cases {
            assert_eq!(err.to_string(), want);
        }
    }

    #[test]
    fn display_covers_the_seed_variants() {
        assert_eq!(
            Error::StageCountMismatch { checkpoint: 2, model: 3 }.to_string(),
            "checkpoint has 2 stages, model has 3"
        );
        assert_eq!(
            Error::DuplicateSubmit { pipe: 0, round: 1 }.to_string(),
            "pipeline 0 submitted twice in round 1"
        );
    }
}
