//! Fully-connected layer.

use crate::{ForwardCtx, Layer, Param, Saved};
use ea_tensor::{
    col_sums, matmul, matmul_a_bt, matmul_at_b_into, xavier_uniform, Tensor, TensorRng,
};

/// `y = x · W + b`, with `W: [in, out]`, `b: [out]`.
///
/// Inputs of higher rank are treated through the matrix view, so a
/// `[batch, seq, in]` activation maps to `[batch*seq, out]`.
pub struct Linear {
    w: Param,
    b: Param,
    in_dim: usize,
    out_dim: usize,
    /// Scratch for the weight gradient, reused across backward calls so
    /// the hot path computes `dW` without allocating.
    dw_scratch: Tensor,
}

impl Linear {
    /// Xavier-initialized linear layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut TensorRng) -> Self {
        Linear {
            w: Param::new("linear.w", xavier_uniform(in_dim, out_dim, rng)),
            b: Param::new("linear.b", Tensor::zeros(&[out_dim])),
            in_dim,
            out_dim,
            dw_scratch: Tensor::zeros(&[0]),
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

impl Layer for Linear {
    fn forward(&self, x: &Tensor, _ctx: &ForwardCtx) -> (Tensor, Saved) {
        let (_, c) = x.shape().as_matrix();
        assert_eq!(c, self.in_dim, "linear input width mismatch");
        let mut y = matmul(x, &self.w.value);
        y.add_row_broadcast_assign(&self.b.value);
        (y, Saved::new(vec![x.clone()]))
    }

    fn backward(&mut self, saved: &Saved, dy: &Tensor) -> Tensor {
        let x = saved.get(0);
        matmul_at_b_into(x, dy, &mut self.dw_scratch);
        self.w.accumulate_grad(&self.dw_scratch);
        self.b.accumulate_grad(&col_sums(dy));
        matmul_a_bt(dy, &self.w.value)
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.w);
        f(&self.b);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }

    fn name(&self) -> &'static str {
        "Linear"
    }

    fn flops_per_row(&self) -> u64 {
        2 * self.in_dim as u64 * self.out_dim as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck_layer;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = TensorRng::seed_from_u64(0);
        let mut l = Linear::new(3, 2, &mut rng);
        // Make weights zero; output should equal the bias everywhere.
        l.w.value.data_mut().fill(0.0);
        l.b.value = Tensor::from_vec(vec![1.0, -1.0], &[2]);
        let x = Tensor::ones(&[4, 3]);
        let (y, _) = l.forward(&x, &ForwardCtx::eval());
        assert_eq!(y.dims(), &[4, 2]);
        for i in 0..4 {
            assert_eq!(y.at(&[i, 0]), 1.0);
            assert_eq!(y.at(&[i, 1]), -1.0);
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = TensorRng::seed_from_u64(1);
        let layer = Linear::new(4, 3, &mut rng);
        gradcheck_layer(layer, &[5, 4], 2e-2, 42);
    }

    #[test]
    fn backward_accumulates_over_micro_batches() {
        let mut rng = TensorRng::seed_from_u64(2);
        let mut l = Linear::new(2, 2, &mut rng);
        let x = Tensor::ones(&[1, 2]);
        let dy = Tensor::ones(&[1, 2]);
        let (_, s) = l.forward(&x, &ForwardCtx::eval());
        l.backward(&s, &dy);
        let g1 = l.w.grad.clone();
        l.backward(&s, &dy);
        assert!(ea_tensor::allclose(&l.w.grad, &g1.scale(2.0), 1e-6));
    }
}
