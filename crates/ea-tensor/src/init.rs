//! Deterministic random initialization.
//!
//! Every initializer is parameterized by an explicit [`TensorRng`] so that
//! the statistical-efficiency experiments (paper Figure 14) are exactly
//! reproducible across runs and across the different training systems being
//! compared (all systems start from bit-identical weights).

use crate::Tensor;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Deterministic random number generator for tensor initialization.
///
/// A thin wrapper over ChaCha8 so callers never accidentally reach for a
/// thread-local, nondeterministic RNG.
pub struct TensorRng {
    rng: ChaCha8Rng,
}

impl TensorRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        TensorRng { rng: ChaCha8Rng::seed_from_u64(seed) }
    }

    /// Derives an independent child stream, used to give each parallel
    /// pipeline its own data order while staying reproducible.
    pub fn fork(&mut self, tag: u64) -> TensorRng {
        let seed = self.rng.gen::<u64>() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TensorRng::seed_from_u64(seed)
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        self.rng.gen_range(lo..hi)
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    /// Bernoulli sample with probability `p`.
    pub fn coin(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    /// Access to the underlying rand RNG for ad-hoc sampling.
    pub fn inner(&mut self) -> &mut ChaCha8Rng {
        &mut self.rng
    }
}

/// Tensor with elements uniform in `[lo, hi)`.
pub fn uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut TensorRng) -> Tensor {
    let n: usize = dims.iter().product();
    Tensor::from_vec((0..n).map(|_| rng.uniform(lo, hi)).collect(), dims)
}

/// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` weight.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut TensorRng) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(&[fan_in, fan_out], -bound, bound, rng)
}

/// Kaiming/He uniform initialization for a `[fan_in, fan_out]` weight.
pub fn kaiming_uniform(fan_in: usize, fan_out: usize, rng: &mut TensorRng) -> Tensor {
    let bound = (3.0 / fan_in as f32).sqrt();
    uniform(&[fan_in, fan_out], -bound, bound, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_tensor() {
        let mut r1 = TensorRng::seed_from_u64(7);
        let mut r2 = TensorRng::seed_from_u64(7);
        let a = uniform(&[4, 4], -1.0, 1.0, &mut r1);
        let b = uniform(&[4, 4], -1.0, 1.0, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut r1 = TensorRng::seed_from_u64(7);
        let mut r2 = TensorRng::seed_from_u64(8);
        let a = uniform(&[4, 4], -1.0, 1.0, &mut r1);
        let b = uniform(&[4, 4], -1.0, 1.0, &mut r2);
        assert_ne!(a, b);
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut parent1 = TensorRng::seed_from_u64(1);
        let mut parent2 = TensorRng::seed_from_u64(1);
        let mut c1 = parent1.fork(3);
        let mut c2 = parent2.fork(3);
        assert_eq!(c1.uniform(0.0, 1.0), c2.uniform(0.0, 1.0));
        let mut other = TensorRng::seed_from_u64(1).fork(4);
        // Children with different tags should not collide.
        assert_ne!(TensorRng::seed_from_u64(1).fork(3).uniform(0.0, 1.0), other.uniform(0.0, 1.0));
    }

    #[test]
    fn xavier_bound_respected() {
        let mut rng = TensorRng::seed_from_u64(0);
        let w = xavier_uniform(100, 100, &mut rng);
        let bound = (6.0 / 200.0f32).sqrt();
        assert!(w.abs_max() <= bound);
        assert!(w.abs_max() > bound * 0.5, "should come close to the bound");
    }

    #[test]
    fn uniform_range_respected() {
        let mut rng = TensorRng::seed_from_u64(0);
        let t = uniform(&[1000], -0.25, 0.5, &mut rng);
        assert!(t.data().iter().all(|&x| (-0.25..0.5).contains(&x)));
    }
}
