//! Tuning parallelism degrees (§5): profiling-based method, exhaustive
//! traversal, and the two naive guidelines of Figure 19.

use crate::{predict, Profiler};
use ea_models::ModelSpec;
use ea_sched::{pipeline_program, Partition, PipeStyle};
use ea_sim::{ClusterConfig, Simulator};

/// The tuning strategies compared in Figures 18–19.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TuneMethod {
    /// Profile one setting, predict the rest (the paper's method).
    ProfilingBased,
    /// Simulate every setting for a few batches (ground truth, slow).
    Traversal,
    /// Maximize the micro-batch number (micro-batch size 1), then the
    /// pipeline count.
    MaxNum,
    /// Maximize the micro-batch size (one micro-batch), then the
    /// pipeline count.
    MaxSize,
}

impl TuneMethod {
    /// Display name used in the figure output.
    pub fn name(self) -> &'static str {
        match self {
            TuneMethod::ProfilingBased => "profiling",
            TuneMethod::Traversal => "traversal",
            TuneMethod::MaxNum => "max-num",
            TuneMethod::MaxSize => "max-size",
        }
    }
}

/// The outcome of a tuning run.
#[derive(Clone, Debug)]
pub struct TuneOutcome {
    /// Chosen micro-batch count M.
    pub m: usize,
    /// Chosen pipeline count N.
    pub n: usize,
    /// Tuning cost in simulated seconds (what Figure 18 reports as
    /// minutes/hours of cluster time).
    pub tuning_cost_s: f64,
    /// Settings evaluated.
    pub evaluated: usize,
}

/// Divisors of `batch`, the candidate micro-batch counts.
fn divisors(batch: usize) -> Vec<usize> {
    (1..=batch).filter(|d| batch.is_multiple_of(*d)).collect()
}

/// Tunes `(M, N)` for AvgPipe on the given workload under a per-device
/// memory limit. `max_n` bounds the pipeline count considered.
#[allow(clippy::too_many_arguments)]
pub fn tune(
    spec: &ModelSpec,
    cluster: &ClusterConfig,
    partition: &Partition,
    batch: usize,
    opt_state_per_param: usize,
    mem_limit: u64,
    method: TuneMethod,
    max_n: usize,
) -> TuneOutcome {
    let profiler =
        Profiler::new(spec.clone(), cluster.clone(), partition.clone(), batch, opt_state_per_param);
    let sim = Simulator::new(cluster.clone());
    let kk = partition.len();

    // Measured per-batch time of a candidate, `None` if it overflows.
    let measure = |m: usize, n: usize, batches: usize| -> (Option<f64>, f64) {
        let plan = profiler.plan(m, n);
        // Feasibility and ranking at the 1F1B floor depth; Algorithm 1
        // deepens the advance within the memory budget at run time.
        let a = kk - 1;
        let prog = pipeline_program(&plan, &PipeStyle::avgpipe(n, a), batches);
        match sim.run(&prog) {
            Ok(r) => {
                let per_batch = r.makespan_us / (batches as f64 * n as f64);
                let fits = r.devices.iter().all(|d| d.peak_mem <= mem_limit);
                (fits.then_some(per_batch), r.makespan_us)
            }
            Err(_) => (None, 0.0),
        }
    };

    match method {
        TuneMethod::ProfilingBased => {
            let profile = profiler.profile_default();
            let mut best: Option<(f64, usize, usize)> = None;
            let mut smallest: Option<(u64, usize, usize)> = None;
            let mut evaluated = 0;
            for &m in &divisors(batch) {
                for n in 1..=max_n {
                    evaluated += 1;
                    let pred = predict(&profile, m, n);
                    let peak = pred.per_device_mem.iter().copied().max().unwrap_or(0);
                    if smallest.is_none_or(|(bp, _, _)| peak < bp) {
                        smallest = Some((peak, m, n));
                    }
                    if !pred.fits(mem_limit) {
                        continue;
                    }
                    // Per batch of data: the predicted iteration time is
                    // already per-batch (Equation 2 normalizes by n*).
                    let t = pred.t_us;
                    if best.is_none_or(|(bt, _, _)| t < bt) {
                        best = Some((t, m, n));
                    }
                }
            }
            // When nothing fits (a budget below even one replica plus the
            // reference model), fall back to the smallest-footprint
            // setting; the caller reports the overflow honestly.
            let (_, m, n) = best.unwrap_or_else(|| {
                let (_, m, n) = smallest.expect("at least one candidate");
                (0.0, m, n)
            });
            TuneOutcome { m, n, tuning_cost_s: profile.profiling_cost_us * 1e-6, evaluated }
        }
        TuneMethod::Traversal => {
            let mut best: Option<(f64, usize, usize)> = None;
            let mut cost = 0.0;
            let mut evaluated = 0;
            for &m in &divisors(batch) {
                for n in 1..=max_n {
                    evaluated += 1;
                    let (t, spent) = measure(m, n, 10);
                    cost += spent;
                    if let Some(t) = t {
                        if best.is_none_or(|(bt, _, _)| t < bt) {
                            best = Some((t, m, n));
                        }
                    }
                }
            }
            let (_, m, n) = best.unwrap_or((0.0, batch, 1));
            TuneOutcome { m, n, tuning_cost_s: cost * 1e-6, evaluated }
        }
        TuneMethod::MaxNum | TuneMethod::MaxSize => {
            let m = if method == TuneMethod::MaxNum { batch } else { 1 };
            // Grow N while the setting still fits.
            let mut n_best = 1;
            let mut cost = 0.0;
            let mut evaluated = 0;
            for n in 1..=max_n {
                evaluated += 1;
                let (t, spent) = measure(m, n, 2);
                cost += spent;
                if t.is_some() {
                    n_best = n;
                } else {
                    break;
                }
            }
            TuneOutcome { m, n: n_best, tuning_cost_s: cost * 1e-6, evaluated }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_models::{awd_spec, gnmt_spec};
    use ea_sched::partition_model;

    const GB: u64 = 1 << 30;

    #[test]
    fn divisors_of_128() {
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
    }

    #[test]
    fn profiling_tuner_is_much_cheaper_than_traversal() {
        let spec = awd_spec();
        let part = partition_model(&spec, 4);
        let cluster = ClusterConfig::paper_testbed_two_nodes();
        let p = tune(&spec, &cluster, &part, 40, 4, 16 * GB, TuneMethod::ProfilingBased, 4);
        let t = tune(&spec, &cluster, &part, 40, 4, 16 * GB, TuneMethod::Traversal, 4);
        assert!(
            p.tuning_cost_s * 5.0 < t.tuning_cost_s,
            "profiling {} s vs traversal {} s",
            p.tuning_cost_s,
            t.tuning_cost_s
        );
    }

    #[test]
    fn profiling_choice_is_near_traversal_quality() {
        let spec = awd_spec();
        let part = partition_model(&spec, 4);
        let cluster = ClusterConfig::paper_testbed_two_nodes();
        let p = tune(&spec, &cluster, &part, 40, 4, 16 * GB, TuneMethod::ProfilingBased, 4);
        let t = tune(&spec, &cluster, &part, 40, 4, 16 * GB, TuneMethod::Traversal, 4);

        // Evaluate both choices with the simulator.
        let profiler = Profiler::new(spec, cluster.clone(), part, 40, 4);
        let sim = Simulator::new(cluster);
        let eval = |m: usize, n: usize| {
            let plan = profiler.plan(m, n);
            let prog = pipeline_program(&plan, &PipeStyle::avgpipe(n, 3 + m.min(8)), 4);
            let r = sim.run(&prog).unwrap();
            r.makespan_us / (4.0 * n as f64)
        };
        let tp = eval(p.m, p.n);
        let tt = eval(t.m, t.n);
        assert!(
            tp <= tt * 1.6,
            "profiling pick ({}, {}) {tp} µs vs traversal ({}, {}) {tt} µs",
            p.m,
            p.n,
            t.m,
            t.n
        );
    }

    #[test]
    fn max_size_wins_on_awd_and_max_num_is_catastrophic() {
        // Figure 19's AWD column: max-size is near-optimal, max-num 15×
        // worse.
        let spec = awd_spec();
        let part = partition_model(&spec, 4);
        let cluster = ClusterConfig::paper_testbed_two_nodes();
        let size = tune(&spec, &cluster, &part, 40, 4, 16 * GB, TuneMethod::MaxSize, 4);
        let num = tune(&spec, &cluster, &part, 40, 4, 16 * GB, TuneMethod::MaxNum, 4);
        assert_eq!(size.m, 1, "max-size takes the whole batch as one micro-batch");
        assert_eq!(num.m, 40);
        let profiler = Profiler::new(spec, cluster.clone(), part, 40, 4);
        let sim = Simulator::new(cluster);
        let eval = |m: usize, n: usize| {
            let plan = profiler.plan(m, n);
            let prog = pipeline_program(&plan, &PipeStyle::avgpipe(n, 3 + m.min(8)), 4);
            sim.run(&prog).unwrap().makespan_us / (4.0 * n as f64)
        };
        assert!(eval(size.m, size.n) < eval(num.m, num.n));
    }

    #[test]
    fn gnmt_profiling_tuner_prefers_many_micros() {
        // Figure 19's GNMT column: the bubble issue dominates, so the
        // tuned micro-batch number should be large (micro size small).
        let spec = gnmt_spec();
        let part = partition_model(&spec, 6);
        let cluster = ClusterConfig::paper_testbed();
        let p = tune(&spec, &cluster, &part, 128, 8, 16 * GB, TuneMethod::ProfilingBased, 4);
        assert!(p.m >= 16, "expected many micro-batches, got M={}", p.m);
        assert!(p.n >= 2, "expected parallel pipelines, got N={}", p.n);
    }
}
