//! The benchmark harness: one module per figure of the paper's §7.
//!
//! Every experiment is a pure function returning a serializable result,
//! so the `repro` binary can print tables and dump JSON, and the
//! integration tests can assert the paper's qualitative claims hold.
//!
//! Conventions shared by all experiments:
//!
//! * Cluster: the paper's testbed (3 nodes × 2 V100, 1 Gbps Ethernet;
//!   AWD uses 2 nodes × 2).
//! * Memory cap: [`EFFECTIVE_GPU_MEM`] = 16 GiB of the V100's 32 GB —
//!   the usable budget after framework reserves, fragmentation and NCCL
//!   buffers (the paper's artifact runs in 10 GB).
//! * Optimizers: Adam for GNMT/BERT (8 state bytes/param), ASGD for AWD
//!   (4 bytes/param), matching §7's setups.

pub mod experiments;

/// Usable bytes per GPU in all performance experiments.
pub const EFFECTIVE_GPU_MEM: u64 = 16 * (1 << 30);

/// Maximum parallel pipelines the tuner may consider.
pub const MAX_PIPELINES: usize = 4;

pub use experiments::*;
