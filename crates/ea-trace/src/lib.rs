//! Runtime observability: spans, counters, histograms, and exporters.
//!
//! The §5 tuning loop is driven by *observed* signals — the utilization
//! curve φᵏ(t), `T_gpu`, communication totals and the memory split — so
//! the runtime needs a measurement layer that is always compiled in,
//! near-free when disabled, and cheap enough to leave on in production
//! runs. This crate provides it:
//!
//! * **Spans and events** ([`span`], [`instant`]) recorded into
//!   lock-free per-thread ring buffers ([`ring`]). A disabled span site
//!   costs one relaxed atomic load; an enabled one costs two clock reads
//!   and a ring write, no allocation, no lock.
//! * **Metrics** ([`metrics`]): monotonic [`Counter`]s, [`Gauge`]s and
//!   log-linear-bucket timing [`Histogram`]s (p50/p95/p99), collected in
//!   [`Registry`] instances plus a process-wide [`metrics::global`]
//!   registry, all renderable as Prometheus text exposition.
//! * **Exporters**: [`chrome::chrome_trace_json`] renders drained spans
//!   in the Chrome Trace Event Format with the *same* conventions as
//!   `ea-sim`'s simulated timelines (`F{m}`/`B{m}` labels, `compute` /
//!   `comm` categories), so a real run and its simulation open
//!   side-by-side in `chrome://tracing`.
//! * **Leveled logging** ([`log`]): the runtime's stderr diagnostics
//!   routed through one API that also counts per-level totals and
//!   rate-limits repetitive sites (lease-eviction spam).
//!
//! # Switches
//!
//! `EA_TRACE=off` (default) disables recording; `EA_TRACE=counters`
//! enables counters and timing histograms; `EA_TRACE=spans` additionally
//! records spans into the ring buffers. Tests and tools can override the
//! environment with [`set_level`].

pub mod chrome;
pub mod clock;
pub mod level;
pub mod log;
pub mod metrics;
pub mod name;
pub mod ring;
pub mod span;

pub use chrome::chrome_trace_json;
pub use clock::now_us;
pub use level::{counters_enabled, level, set_level, spans_enabled, Level};
pub use log::{LogLevel, RateLimit};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use name::StaticName;
pub use ring::{drain, Category, TraceEvent};
pub use span::{instant, span, span_arg, SpanGuard};
