//! Reactor frontend: one listener, one handler, two protocols.
//!
//! [`ServeDispatch`] composes the serving engine with ea-runtime's
//! [`ReactorDispatch`], so a single reactor fleet multiplexes *both*
//! populations the paper's deployment story implies: training pipelines
//! speaking the elastic-averaging protocol (hello/pull/submit/
//! heartbeat) and inference clients speaking the serving extension
//! (`Infer`, `SubscribeWeights`). Routing is by message type —
//! `Infer` goes to the [`ServeEngine`]'s admission queue; everything
//! else (including weight subscriptions from *other* serving replicas)
//! delegates to the trainer dispatch, sharing its shards, membership,
//! and metrics.
//!
//! Replies flow back asynchronously: the executor thread queues
//! [`Completion`](crate::engine::Completion)s and pokes the reactor via
//! its waker; the next handler `poll` drains them into `InferReply`
//! frames on the owning connections. Graceful shutdown first runs the
//! trainer-side protocol drain, then serves out the admitted inference
//! queue and flushes the final completions, so an accepted request is
//! answered even when the server is going down.

use std::io;
use std::net::TcpListener;
use std::sync::Arc;

use ea_comms::reactor::{ConnId, DisconnectReason, Outbox, Reactor, ReactorConfig, ReactorHandler};
use ea_comms::wire::Message;
use ea_runtime::{ReactorDispatch, RefShardServer};

use crate::batcher::Admission;
use crate::engine::ServeEngine;

/// Composite handler: inference frontend + trainer protocol.
pub struct ServeDispatch {
    engine: Arc<ServeEngine>,
    trainer: Arc<ReactorDispatch>,
}

impl ServeDispatch {
    /// A dispatch routing `Infer` to `engine` and every other message
    /// to `trainer`.
    pub fn new(engine: Arc<ServeEngine>, trainer: Arc<ReactorDispatch>) -> ServeDispatch {
        ServeDispatch { engine, trainer }
    }

    /// Sends every queued completion as an `InferReply`.
    fn flush_completions(&self, out: &mut Outbox) {
        for c in self.engine.drain_completions() {
            out.send(
                c.conn,
                Message::InferReply {
                    id: c.id,
                    version: c.version,
                    shed: c.shed,
                    output: c.output,
                },
            );
        }
    }
}

impl ReactorHandler for ServeDispatch {
    fn on_message(&self, conn: ConnId, msg: Message, out: &mut Outbox) {
        match msg {
            Message::Infer { id, input } => match self.engine.submit(conn, id, input) {
                Admission::Accepted => {} // answered via poll()
                Admission::Shed => out.send(
                    conn,
                    Message::InferReply {
                        id,
                        version: self.engine.served_version(),
                        shed: true,
                        output: Vec::new(),
                    },
                ),
            },
            other => self.trainer.on_message(conn, other, out),
        }
    }

    fn on_disconnect(&self, conn: ConnId, reason: &DisconnectReason) {
        // Completions addressed to a vanished connection are dropped by
        // the reactor's generation check; nothing to scrub here.
        self.trainer.on_disconnect(conn, reason);
    }

    fn poll(&self, out: &mut Outbox) {
        self.trainer.poll(out);
        self.flush_completions(out);
    }

    fn has_deferred(&self) -> bool {
        self.trainer.has_deferred() || self.engine.has_pending()
    }

    fn on_shutdown(&self, out: &mut Outbox) {
        self.trainer.on_shutdown(out);
        // Serve out everything already admitted, then answer it all.
        self.engine.shutdown();
        self.flush_completions(out);
    }
}

/// Spawns a reactor serving both protocols on `listener`, with the
/// engine's completion waker wired to the reactor so replies never wait
/// out a poll interval. The trainer protocol (leases, rounds, weight
/// subscriptions) runs against `trainer`'s shards.
pub fn spawn_serving(
    listener: TcpListener,
    cfg: ReactorConfig,
    engine: Arc<ServeEngine>,
    trainer: &RefShardServer,
) -> io::Result<Reactor> {
    let dispatch = Arc::new(ServeDispatch::new(Arc::clone(&engine), trainer.dispatch()));
    let reactor = Reactor::spawn(listener, dispatch, cfg)?;
    let waker = reactor.waker();
    engine.set_waker(Box::new(move || waker.wake()));
    Ok(reactor)
}
