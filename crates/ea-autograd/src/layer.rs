//! The [`Layer`] abstraction shared by every NN module.

use crate::Param;
use ea_tensor::Tensor;

/// Per-micro-batch forward context.
///
/// `train` toggles dropout; `step`/`micro` seed the deterministic dropout
/// masks so that a rerun of an experiment draws identical masks.
#[derive(Clone, Copy, Debug)]
pub struct ForwardCtx {
    /// Training mode (enables dropout).
    pub train: bool,
    /// Global optimizer-step counter.
    pub step: u64,
    /// Micro-batch index within the current batch.
    pub micro: u64,
}

impl ForwardCtx {
    /// Training-mode context.
    pub fn train(step: u64, micro: u64) -> Self {
        ForwardCtx { train: true, step, micro }
    }

    /// Evaluation-mode context (dropout disabled).
    pub fn eval() -> Self {
        ForwardCtx { train: false, step: 0, micro: 0 }
    }
}

/// Opaque activation stash produced by `forward` and consumed by
/// `backward`. Its byte size is exactly what the pipeline schedules trade
/// against time.
#[derive(Clone, Debug, Default)]
pub struct Saved {
    tensors: Vec<Tensor>,
}

impl Saved {
    /// Stash with the given tensors.
    pub fn new(tensors: Vec<Tensor>) -> Self {
        Saved { tensors }
    }

    /// Stash holding nothing (stateless layers in eval mode).
    pub fn empty() -> Self {
        Saved { tensors: Vec::new() }
    }

    /// Tensor `i` of the stash.
    pub fn get(&self, i: usize) -> &Tensor {
        &self.tensors[i]
    }

    /// Number of stashed tensors.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// True if nothing is stashed.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total stashed bytes (f32 elements × 4).
    pub fn bytes(&self) -> usize {
        self.tensors.iter().map(|t| t.numel() * 4).sum()
    }
}

/// A differentiable module with explicit activation stashing.
///
/// Contract:
/// * `forward` must not mutate parameters — layers hold no interior
///   mutability (randomness comes from [`ForwardCtx`]), which is what
///   makes the `Sync` bound sound and lets inference serving share a
///   read-only model snapshot across threads.
/// * `backward(saved, dy)` must (a) add this layer's parameter gradients
///   into its [`Param::grad`] accumulators and (b) return `dx`, the
///   gradient w.r.t. the layer input, given `saved` produced by a
///   `forward` call on that same input with the same [`ForwardCtx`].
pub trait Layer: Send + Sync {
    /// Runs the layer on `x`, returning the output and the activation
    /// stash needed for the matching `backward`.
    fn forward(&self, x: &Tensor, ctx: &ForwardCtx) -> (Tensor, Saved);

    /// Backpropagates `dy` through the layer using `saved`, accumulating
    /// parameter gradients and returning the input gradient.
    fn backward(&mut self, saved: &Saved, dy: &Tensor) -> Tensor;

    /// Visits all parameters (read-only).
    fn visit_params(&self, f: &mut dyn FnMut(&Param));

    /// Visits all parameters mutably.
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Short type name for diagnostics.
    fn name(&self) -> &'static str;

    /// Approximate forward FLOPs for a micro-batch of `rows` matrix-view
    /// rows. Used only by tests and diagnostics; the performance
    /// experiments use the cost specs in `ea-models` instead.
    fn flops_per_row(&self) -> u64 {
        0
    }

    /// Vocabulary size if this layer consumes f32-encoded token ids
    /// (values that must round into `[0, vocab)`); `None` for layers
    /// taking dense inputs. Serving admission queries the model's first
    /// layer so malformed remote inputs can be shed before `forward`
    /// would assert on them.
    fn input_vocab(&self) -> Option<usize> {
        None
    }
}

/// Convenience: a layer with no parameters visits nothing.
#[macro_export]
macro_rules! no_params {
    () => {
        fn visit_params(&self, _f: &mut dyn FnMut(&$crate::Param)) {}
        fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut $crate::Param)) {}
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saved_bytes_counts_f32() {
        let s = Saved::new(vec![Tensor::zeros(&[2, 3]), Tensor::zeros(&[4])]);
        assert_eq!(s.bytes(), (6 + 4) * 4);
        assert_eq!(s.len(), 2);
        assert!(Saved::empty().is_empty());
    }

    #[test]
    fn ctx_constructors() {
        let c = ForwardCtx::train(5, 2);
        assert!(c.train);
        assert_eq!((c.step, c.micro), (5, 2));
        assert!(!ForwardCtx::eval().train);
    }
}
