//! Sequence GRU layer with in-layer BPTT — the lighter-weight sibling of
//! [`crate::LstmSeq`], useful for seq2seq variants of the analogue
//! models.

use crate::{ForwardCtx, Layer, Param, Saved};
use ea_tensor::{col_sums, matmul, matmul_a_bt, matmul_at_b, xavier_uniform, Tensor, TensorRng};

/// A single-direction GRU unrolled over a fixed sequence length.
///
/// Same interface and layout as [`crate::LstmSeq`]: inputs
/// `[batch*seq, in_dim]` batch-major, outputs `[batch*seq, hidden]`.
///
/// Gate equations (gate order within the 3h width: `[r, z, n]`):
///
/// ```text
/// r_t = σ(x_t·W_xr + h_{t-1}·W_hr + b_r)
/// z_t = σ(x_t·W_xz + h_{t-1}·W_hz + b_z)
/// n_t = tanh(x_t·W_xn + r_t ⊙ (h_{t-1}·W_hn) + b_n)
/// h_t = (1 − z_t) ⊙ n_t + z_t ⊙ h_{t-1}
/// ```
pub struct GruSeq {
    wx: Param,
    wh: Param,
    b: Param,
    seq: usize,
    in_dim: usize,
    hidden: usize,
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl GruSeq {
    /// Creates a GRU over sequences of length `seq`.
    pub fn new(seq: usize, in_dim: usize, hidden: usize, rng: &mut TensorRng) -> Self {
        GruSeq {
            wx: Param::new("gru.wx", xavier_uniform(in_dim, 3 * hidden, rng)),
            wh: Param::new("gru.wh", xavier_uniform(hidden, 3 * hidden, rng)),
            b: Param::new("gru.b", Tensor::zeros(&[3 * hidden])),
            seq,
            in_dim,
            hidden,
        }
    }

    fn gather_t(&self, x: &Tensor, t: usize, batch: usize, width: usize) -> Tensor {
        let mut out = Vec::with_capacity(batch * width);
        for b in 0..batch {
            let r = b * self.seq + t;
            out.extend_from_slice(&x.data()[r * width..(r + 1) * width]);
        }
        Tensor::from_vec(out, &[batch, width])
    }

    fn scatter_t(&self, dst: &mut [f32], block: &Tensor, t: usize, batch: usize, width: usize) {
        for b in 0..batch {
            let r = b * self.seq + t;
            dst[r * width..(r + 1) * width]
                .copy_from_slice(&block.data()[b * width..(b + 1) * width]);
        }
    }
}

impl Layer for GruSeq {
    fn forward(&self, x: &Tensor, _ctx: &ForwardCtx) -> (Tensor, Saved) {
        let (rows, c) = x.shape().as_matrix();
        assert_eq!(c, self.in_dim, "gru input width mismatch");
        assert_eq!(rows % self.seq, 0, "rows must be a multiple of seq");
        let batch = rows / self.seq;
        let h = self.hidden;

        let mut h_prev = Tensor::zeros(&[batch, h]);
        let mut h_all = vec![0.0f32; rows * h];
        // Stash post-activation gates [r, z, n] and the raw h-side
        // contribution to the candidate gate (needed for backward).
        let mut gates_all = vec![0.0f32; rows * 3 * h];
        let mut hn_all = vec![0.0f32; rows * h];

        for t in 0..self.seq {
            let xt = self.gather_t(x, t, batch, self.in_dim);
            let xpre = matmul(&xt, &self.wx.value).add_row_broadcast(&self.b.value);
            let hpre = matmul(&h_prev, &self.wh.value);
            let mut gates = Tensor::zeros(&[batch, 3 * h]);
            let mut ht = Tensor::zeros(&[batch, h]);
            let mut hn = Tensor::zeros(&[batch, h]);
            for bi in 0..batch {
                for j in 0..h {
                    let base = bi * 3 * h;
                    let r = sigmoid(xpre.data()[base + j] + hpre.data()[base + j]);
                    let z = sigmoid(xpre.data()[base + h + j] + hpre.data()[base + h + j]);
                    let hn_j = hpre.data()[base + 2 * h + j];
                    let n = (xpre.data()[base + 2 * h + j] + r * hn_j).tanh();
                    gates.data_mut()[base + j] = r;
                    gates.data_mut()[base + h + j] = z;
                    gates.data_mut()[base + 2 * h + j] = n;
                    hn.data_mut()[bi * h + j] = hn_j;
                    ht.data_mut()[bi * h + j] =
                        (1.0 - z) * n + z * h_prev.data()[bi * h + j];
                }
            }
            self.scatter_t(&mut h_all, &ht, t, batch, h);
            self.scatter_t(&mut gates_all, &gates, t, batch, 3 * h);
            self.scatter_t(&mut hn_all, &hn, t, batch, h);
            h_prev = ht;
        }

        let y = Tensor::from_vec(h_all, &[rows, h]);
        let saved = Saved::new(vec![
            x.clone(),
            y.clone(),
            Tensor::from_vec(gates_all, &[rows, 3 * h]),
            Tensor::from_vec(hn_all, &[rows, h]),
        ]);
        (y, saved)
    }

    fn backward(&mut self, saved: &Saved, dy: &Tensor) -> Tensor {
        let x = saved.get(0);
        let h_all = saved.get(1);
        let gates_all = saved.get(2);
        let hn_all = saved.get(3);
        let (rows, _) = x.shape().as_matrix();
        let batch = rows / self.seq;
        let h = self.hidden;

        let mut dx = vec![0.0f32; rows * self.in_dim];
        let mut dh_next = Tensor::zeros(&[batch, h]);

        for t in (0..self.seq).rev() {
            let gates = self.gather_t(gates_all, t, batch, 3 * h);
            let hn = self.gather_t(hn_all, t, batch, h);
            let h_prev = if t == 0 {
                Tensor::zeros(&[batch, h])
            } else {
                self.gather_t(h_all, t - 1, batch, h)
            };
            let dy_t = self.gather_t(dy, t, batch, h);

            // Gradients w.r.t. the x-side and h-side pre-activations.
            let mut dxpre = Tensor::zeros(&[batch, 3 * h]);
            let mut dhpre = Tensor::zeros(&[batch, 3 * h]);
            let mut dh_prev_direct = Tensor::zeros(&[batch, h]);
            for bi in 0..batch {
                for j in 0..h {
                    let base = bi * 3 * h;
                    let r = gates.data()[base + j];
                    let z = gates.data()[base + h + j];
                    let n = gates.data()[base + 2 * h + j];
                    let hn_j = hn.data()[bi * h + j];
                    let hp = h_prev.data()[bi * h + j];
                    let dh = dy_t.data()[bi * h + j] + dh_next.data()[bi * h + j];

                    let dn = dh * (1.0 - z);
                    let dz = dh * (hp - n);
                    let dpre_n = dn * (1.0 - n * n);
                    let dr = dpre_n * hn_j;
                    let dpre_r = dr * r * (1.0 - r);
                    let dpre_z = dz * z * (1.0 - z);

                    dxpre.data_mut()[base + j] = dpre_r;
                    dxpre.data_mut()[base + h + j] = dpre_z;
                    dxpre.data_mut()[base + 2 * h + j] = dpre_n;
                    // h-side: r and z share pre-activations with x-side;
                    // the candidate's h contribution is gated by r.
                    dhpre.data_mut()[base + j] = dpre_r;
                    dhpre.data_mut()[base + h + j] = dpre_z;
                    dhpre.data_mut()[base + 2 * h + j] = dpre_n * r;
                    dh_prev_direct.data_mut()[bi * h + j] = dh * z;
                }
            }

            let xt = self.gather_t(x, t, batch, self.in_dim);
            self.wx.accumulate_grad(&matmul_at_b(&xt, &dxpre));
            self.wh.accumulate_grad(&matmul_at_b(&h_prev, &dhpre));
            self.b.accumulate_grad(&col_sums(&dxpre));
            let dxt = matmul_a_bt(&dxpre, &self.wx.value);
            self.scatter_t(&mut dx, &dxt, t, batch, self.in_dim);
            let mut dhp = matmul_a_bt(&dhpre, &self.wh.value);
            dhp.add_assign(&dh_prev_direct);
            dh_next = dhp;
        }

        Tensor::from_vec(dx, x.dims())
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.wx);
        f(&self.wh);
        f(&self.b);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.wx);
        f(&mut self.wh);
        f(&mut self.b);
    }

    fn name(&self) -> &'static str {
        "GruSeq"
    }

    fn flops_per_row(&self) -> u64 {
        2 * 3 * self.hidden as u64 * (self.in_dim + self.hidden) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck_layer;

    #[test]
    fn forward_shapes_and_bounded_state() {
        let mut rng = TensorRng::seed_from_u64(0);
        let gru = GruSeq::new(4, 3, 5, &mut rng);
        let x = ea_tensor::uniform(&[2 * 4, 3], -1.0, 1.0, &mut rng);
        let (y, s) = gru.forward(&x, &ForwardCtx::eval());
        assert_eq!(y.dims(), &[8, 5]);
        assert_eq!(s.len(), 4);
        // GRU hidden state is a convex combination of tanh outputs and
        // stays in (-1, 1).
        assert!(y.abs_max() <= 1.0);
    }

    #[test]
    fn state_propagates_through_time() {
        let mut rng = TensorRng::seed_from_u64(1);
        let gru = GruSeq::new(3, 2, 4, &mut rng);
        // Constant inputs: outputs still differ across time because the
        // hidden state evolves.
        let x = Tensor::ones(&[3, 2]);
        let (y, _) = gru.forward(&x, &ForwardCtx::eval());
        assert_ne!(y.row(0), y.row(1));
        assert_ne!(y.row(1), y.row(2));
    }

    #[test]
    fn gradcheck_short_sequence() {
        let mut rng = TensorRng::seed_from_u64(2);
        let gru = GruSeq::new(2, 3, 2, &mut rng);
        gradcheck_layer(gru, &[2 * 2, 3], 5e-2, 23);
    }

    #[test]
    fn gradcheck_longer_sequence_multi_batch() {
        let mut rng = TensorRng::seed_from_u64(3);
        let gru = GruSeq::new(3, 2, 3, &mut rng);
        gradcheck_layer(gru, &[2 * 3, 2], 5e-2, 24);
    }

    #[test]
    fn gru_has_three_quarters_of_lstm_parameters() {
        let mut rng = TensorRng::seed_from_u64(4);
        let gru = GruSeq::new(4, 8, 8, &mut rng);
        let lstm = crate::LstmSeq::new(4, 8, 8, &mut rng);
        let count = |l: &dyn Layer| {
            let mut n = 0;
            l.visit_params(&mut |p| n += p.numel());
            n
        };
        assert_eq!(4 * count(&gru), 3 * count(&lstm));
    }
}
