//! Learning-rate schedules, composable with any [`crate::Optimizer`].
//!
//! The paper's framework claim (§3.2) is that elastic averaging should
//! compose with whatever local training recipe the user picks; schedules
//! are part of that recipe (BERT pretraining uses linear warmup/decay,
//! AWD-LSTM decays on plateau).

/// A learning-rate policy: maps a step counter to a multiplier of the
/// base learning rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LrSchedule {
    /// Constant base rate.
    Constant,
    /// Linear warmup over `warmup` steps, then constant.
    Warmup {
        /// Steps to ramp from 0 → 1.
        warmup: u64,
    },
    /// Linear warmup then linear decay to zero at `total` steps (the BERT
    /// recipe).
    WarmupLinearDecay {
        /// Steps to ramp from 0 → 1.
        warmup: u64,
        /// Total steps; the multiplier reaches 0 here.
        total: u64,
    },
    /// Cosine decay from 1 → `floor` over `total` steps.
    Cosine {
        /// Total steps of the decay.
        total: u64,
        /// Final multiplier in `[0, 1]`.
        floor: f32,
    },
    /// Multiply by `gamma` every `every` steps (step decay).
    StepDecay {
        /// Interval between decays.
        every: u64,
        /// Per-decay multiplier in `(0, 1]`.
        gamma: f32,
    },
}

impl LrSchedule {
    /// Multiplier at `step` (0-based).
    pub fn multiplier(&self, step: u64) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::Warmup { warmup } => {
                if warmup == 0 || step >= warmup {
                    1.0
                } else {
                    (step + 1) as f32 / warmup as f32
                }
            }
            LrSchedule::WarmupLinearDecay { warmup, total } => {
                assert!(total > warmup, "total must exceed warmup");
                if step < warmup {
                    if warmup == 0 {
                        1.0
                    } else {
                        (step + 1) as f32 / warmup as f32
                    }
                } else if step >= total {
                    0.0
                } else {
                    (total - step) as f32 / (total - warmup) as f32
                }
            }
            LrSchedule::Cosine { total, floor } => {
                let t = (step.min(total)) as f32 / total.max(1) as f32;
                let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
                floor + (1.0 - floor) * cos
            }
            LrSchedule::StepDecay { every, gamma } => gamma.powi((step / every.max(1)) as i32),
        }
    }
}

/// Wraps an optimizer with a learning-rate schedule. Each `step` call
/// sets the wrapped optimizer's rate to `base_lr × multiplier(step)`.
pub struct Scheduled {
    inner: Box<dyn crate::Optimizer>,
    base_lr: f32,
    schedule: LrSchedule,
    step: u64,
}

impl Scheduled {
    /// Wraps `inner`, whose current learning rate becomes the base rate.
    pub fn new(inner: Box<dyn crate::Optimizer>, schedule: LrSchedule) -> Self {
        let base_lr = inner.lr();
        Scheduled { inner, base_lr, schedule, step: 0 }
    }

    /// The schedule in effect.
    pub fn schedule(&self) -> LrSchedule {
        self.schedule
    }
}

impl crate::Optimizer for Scheduled {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        let mult = self.schedule.multiplier(self.step);
        self.inner.set_lr(self.base_lr * mult);
        self.inner.step(params, grads);
        self.step += 1;
    }

    fn lr(&self) -> f32 {
        self.inner.lr()
    }

    fn set_lr(&mut self, lr: f32) {
        self.base_lr = lr;
    }

    fn name(&self) -> &'static str {
        "scheduled"
    }

    fn fresh(&self) -> Box<dyn crate::Optimizer> {
        Box::new(Scheduled {
            inner: self.inner.fresh(),
            base_lr: self.base_lr,
            schedule: self.schedule,
            step: 0,
        })
    }

    fn state_bytes_per_param(&self) -> usize {
        self.inner.state_bytes_per_param()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Optimizer, Sgd};

    #[test]
    fn warmup_ramps_linearly() {
        let s = LrSchedule::Warmup { warmup: 4 };
        assert_eq!(s.multiplier(0), 0.25);
        assert_eq!(s.multiplier(1), 0.5);
        assert_eq!(s.multiplier(3), 1.0);
        assert_eq!(s.multiplier(100), 1.0);
    }

    #[test]
    fn warmup_linear_decay_hits_zero_at_total() {
        let s = LrSchedule::WarmupLinearDecay { warmup: 2, total: 10 };
        assert!(s.multiplier(0) < 1.0);
        assert_eq!(s.multiplier(2), 1.0);
        assert_eq!(s.multiplier(10), 0.0);
        assert!(s.multiplier(6) > 0.0 && s.multiplier(6) < 1.0);
    }

    #[test]
    fn cosine_decays_to_floor() {
        let s = LrSchedule::Cosine { total: 100, floor: 0.1 };
        assert!((s.multiplier(0) - 1.0).abs() < 1e-6);
        assert!((s.multiplier(100) - 0.1).abs() < 1e-6);
        assert!(s.multiplier(50) > 0.1 && s.multiplier(50) < 1.0);
    }

    #[test]
    fn step_decay_is_multiplicative() {
        let s = LrSchedule::StepDecay { every: 10, gamma: 0.5 };
        assert_eq!(s.multiplier(0), 1.0);
        assert_eq!(s.multiplier(10), 0.5);
        assert_eq!(s.multiplier(25), 0.25);
    }

    #[test]
    fn scheduled_sgd_applies_the_multiplier() {
        let mut opt = Scheduled::new(Box::new(Sgd::new(1.0)), LrSchedule::Warmup { warmup: 2 });
        let mut p = vec![0.0f32];
        opt.step(&mut p, &[1.0]); // lr = 0.5
        assert!((p[0] + 0.5).abs() < 1e-6);
        opt.step(&mut p, &[1.0]); // lr = 1.0
        assert!((p[0] + 1.5).abs() < 1e-6);
    }

    #[test]
    fn fresh_resets_the_step_counter() {
        let mut opt = Scheduled::new(Box::new(Sgd::new(1.0)), LrSchedule::Warmup { warmup: 2 });
        let mut p = vec![0.0f32];
        opt.step(&mut p, &[1.0]);
        opt.step(&mut p, &[1.0]);
        let mut f = opt.fresh();
        let mut q = vec![0.0f32];
        f.step(&mut q, &[1.0]);
        assert!((q[0] + 0.5).abs() < 1e-6, "fresh copy must restart warmup");
    }
}
