//! Pipeline schedules and the model partitioner.
//!
//! Everything the paper compares is expressed here as a *program
//! generator*: a pure function from a workload cost model
//! (`ea_models::ModelSpec`), a cluster (`ea_sim::ClusterConfig`) and
//! parallelism degrees to an `ea_sim::Program` — per-stream instruction
//! lists the simulator executes. One generator per system:
//!
//! | System            | Generator                                   |
//! |-------------------|---------------------------------------------|
//! | PyTorch DDP       | [`data_parallel_program`]                   |
//! | GPipe             | [`pipeline_program`] with [`WarmupPolicy::Afab`]  |
//! | Dapple            | [`WarmupPolicy::OneFOneB`], flush per batch  |
//! | PipeDream         | [`PipeStyle::pipedream`] (K−k weight versions, no flush) |
//! | PipeDream-2BW     | [`PipeStyle::pipedream_2bw`] (2 versions, no flush) |
//! | AvgPipe           | [`PipeStyle::avgpipe`] (N pipelines, advance forward propagation, reference model) |
//!
//! The advance-forward-propagation knob is the per-stage warmup depth:
//! `warmup_k = min(M, max(K−1−k, a−k))`, which degenerates to 1F1B at
//! `a = K−1` and to AFAB at `a = M+K−1` — exactly the trade-off of the
//! paper's §4.2.

//! ```
//! use ea_models::awd_spec;
//! use ea_sched::{partition_model, pipeline_program, PipelinePlan, PipeStyle};
//! use ea_sim::{ClusterConfig, Simulator};
//!
//! let spec = awd_spec();
//! let cluster = ClusterConfig::paper_testbed_two_nodes();
//! let partition = partition_model(&spec, cluster.num_devices());
//! let plan = PipelinePlan::new(spec, cluster.clone(), partition, 40, 8, 4);
//!
//! // Two parallel pipelines with advance forward propagation depth 5.
//! let program = pipeline_program(&plan, &PipeStyle::avgpipe(2, 5), 2);
//! let result = Simulator::new(cluster).run(&program).unwrap();
//! assert!(result.makespan_us > 0.0 && !result.is_oom());
//! ```

mod adaptive;
mod chimera;
mod dp;
mod partition;
mod pipeline;
mod plan;
mod recompute;
mod validate;

pub use adaptive::AdvanceController;
pub use chimera::chimera_program;
pub use dp::data_parallel_program;
pub use partition::{partition_model, partition_model_hetero, Partition};
pub use pipeline::{pipeline_program, PipeStyle, WarmupPolicy};
pub use plan::PipelinePlan;
pub use recompute::RecomputePolicy;
pub use validate::{check_stash_bounds, max_live_activations};
