//! Scaled-down runnable analogues of GNMT, BERT and AWD-LSTM.
//!
//! These train for real on the synthetic tasks in `ea-data`. The layer
//! *types* match the originals (LSTM stacks, transformer encoder blocks,
//! weight-dropped LSTM LM) so the update semantics being compared in the
//! statistical-efficiency experiments exercise the genuine architectures,
//! just at laptop scale.

use ea_autograd::{
    Activation, ActivationKind, Dropout, Embedding, Layer, LayerNorm, Linear, LstmSeq, Residual,
    SelfAttention, Stage, StagedModel,
};
use ea_tensor::TensorRng;

/// Size configuration for an analogue model.
#[derive(Clone, Copy, Debug)]
pub struct AnalogueConfig {
    /// Vocabulary size of the synthetic task.
    pub vocab: usize,
    /// Sequence length.
    pub seq: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Number of recurrent/encoder blocks.
    pub blocks: usize,
    /// Number of pipeline stages to partition into.
    pub stages: usize,
}

impl AnalogueConfig {
    /// A small default suitable for convergence tests.
    pub fn small(stages: usize) -> Self {
        AnalogueConfig { vocab: 32, seq: 8, hidden: 32, blocks: 4, stages }
    }
}

/// Splits a flat layer list into `k` contiguous stages with balanced layer
/// counts (earlier stages take the remainder).
fn split_stages(mut layers: Vec<Box<dyn Layer>>, k: usize) -> StagedModel {
    assert!(k >= 1, "need at least one stage");
    assert!(layers.len() >= k, "cannot split {} layers into {k} stages", layers.len());
    let n = layers.len();
    let base = n / k;
    let extra = n % k;
    let mut stages = Vec::with_capacity(k);
    for s in 0..k {
        let take = base + usize::from(s < extra);
        let rest = layers.split_off(take);
        stages.push(Stage::new(layers));
        layers = rest;
    }
    StagedModel::new(stages)
}

/// GNMT analogue: embedding → stacked LSTMs → vocabulary projection,
/// trained as a sequence transduction (copy-translation) task.
pub fn gnmt_analogue(cfg: AnalogueConfig, rng: &mut TensorRng) -> StagedModel {
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    layers.push(Box::new(Embedding::new(cfg.vocab, cfg.hidden, rng)));
    for _ in 0..cfg.blocks {
        layers.push(Box::new(LstmSeq::new(cfg.seq, cfg.hidden, cfg.hidden, rng)));
    }
    layers.push(Box::new(Linear::new(cfg.hidden, cfg.vocab, rng)));
    split_stages(layers, cfg.stages)
}

/// BERT analogue: embedding → transformer encoder blocks (pre-LN residual
/// attention + feed-forward) → token classification head, trained on a
/// masked-token denoising task.
pub fn bert_analogue(cfg: AnalogueConfig, rng: &mut TensorRng) -> StagedModel {
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    layers.push(Box::new(Embedding::new(cfg.vocab, cfg.hidden, rng)));
    let heads = if cfg.hidden.is_multiple_of(4) { 4 } else { 1 };
    for b in 0..cfg.blocks {
        layers.push(Box::new(Residual::new(vec![
            Box::new(LayerNorm::new(cfg.hidden)),
            Box::new(SelfAttention::new(cfg.seq, cfg.hidden, heads, rng)),
        ])));
        layers.push(Box::new(Residual::new(vec![
            Box::new(LayerNorm::new(cfg.hidden)),
            Box::new(Linear::new(cfg.hidden, 2 * cfg.hidden, rng)),
            Box::new(Activation::new(ActivationKind::Gelu)),
            Box::new(Linear::new(2 * cfg.hidden, cfg.hidden, rng)),
        ])));
        let _ = b;
    }
    layers.push(Box::new(LayerNorm::new(cfg.hidden)));
    layers.push(Box::new(Linear::new(cfg.hidden, cfg.vocab, rng)));
    split_stages(layers, cfg.stages)
}

/// AWD-LSTM analogue: embedding → dropout-regularized LSTM stack →
/// decoder, trained as next-token language modeling.
pub fn awd_analogue(cfg: AnalogueConfig, rng: &mut TensorRng) -> StagedModel {
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    layers.push(Box::new(Embedding::new(cfg.vocab, cfg.hidden, rng)));
    layers.push(Box::new(Dropout::new(0.1, 17)));
    for b in 0..cfg.blocks {
        layers.push(Box::new(LstmSeq::new(cfg.seq, cfg.hidden, cfg.hidden, rng)));
        layers.push(Box::new(Dropout::new(0.1, 100 + b as u64)));
    }
    layers.push(Box::new(Linear::new(cfg.hidden, cfg.vocab, rng)));
    split_stages(layers, cfg.stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_autograd::ForwardCtx;
    use ea_tensor::Tensor;

    fn token_input(cfg: &AnalogueConfig, batch: usize) -> Tensor {
        let n = batch * cfg.seq;
        Tensor::from_vec((0..n).map(|i| (i % cfg.vocab) as f32).collect(), &[n])
    }

    #[test]
    fn gnmt_analogue_runs_end_to_end() {
        let cfg = AnalogueConfig::small(3);
        let mut rng = TensorRng::seed_from_u64(0);
        let mut m = gnmt_analogue(cfg, &mut rng);
        assert_eq!(m.num_stages(), 3);
        let x = token_input(&cfg, 2);
        let (y, saves) = m.forward(&x, &ForwardCtx::eval());
        assert_eq!(y.dims(), &[2 * cfg.seq, cfg.vocab]);
        let dy = Tensor::full(y.dims(), 0.01);
        m.backward(&saves, &dy);
    }

    #[test]
    fn bert_analogue_runs_end_to_end() {
        let cfg = AnalogueConfig { vocab: 16, seq: 4, hidden: 16, blocks: 2, stages: 2 };
        let mut rng = TensorRng::seed_from_u64(1);
        let mut m = bert_analogue(cfg, &mut rng);
        let x = token_input(&cfg, 3);
        let (y, saves) = m.forward(&x, &ForwardCtx::train(0, 0));
        assert_eq!(y.dims(), &[3 * cfg.seq, cfg.vocab]);
        let dy = Tensor::full(y.dims(), 0.01);
        let dx = m.backward(&saves, &dy);
        assert_eq!(dx.numel(), x.numel());
    }

    #[test]
    fn awd_analogue_runs_end_to_end() {
        let cfg = AnalogueConfig { vocab: 20, seq: 6, hidden: 12, blocks: 3, stages: 4 };
        let mut rng = TensorRng::seed_from_u64(2);
        let m = awd_analogue(cfg, &mut rng);
        assert_eq!(m.num_stages(), 4);
        let x = token_input(&cfg, 2);
        let y = m.forward_eval(&x);
        assert_eq!(y.dims(), &[2 * cfg.seq, cfg.vocab]);
    }

    #[test]
    fn stage_split_is_balanced() {
        let cfg = AnalogueConfig::small(2);
        let mut rng = TensorRng::seed_from_u64(3);
        let m = gnmt_analogue(cfg, &mut rng);
        // 6 layers into 2 stages → 3 + 3.
        assert_eq!(m.stage(0).num_layers(), 3);
        assert_eq!(m.stage(1).num_layers(), 3);
    }

    #[test]
    fn same_seed_same_model() {
        let cfg = AnalogueConfig::small(2);
        let mut r1 = TensorRng::seed_from_u64(9);
        let mut r2 = TensorRng::seed_from_u64(9);
        let a = gnmt_analogue(cfg, &mut r1);
        let b = gnmt_analogue(cfg, &mut r2);
        assert_eq!(a.stage(0).params_flat(), b.stage(0).params_flat());
    }

    #[test]
    #[should_panic]
    fn too_many_stages_panics() {
        let cfg = AnalogueConfig { vocab: 8, seq: 2, hidden: 4, blocks: 1, stages: 10 };
        let mut rng = TensorRng::seed_from_u64(4);
        gnmt_analogue(cfg, &mut rng);
    }
}
